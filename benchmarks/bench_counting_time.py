"""Experiment R1-time: Remark 1 — expected O(n^2 log n) interactions.

Measures raw interactions to termination of Counting-Upper-Bound and
checks the growth against the ``n^2 log n`` model (flat ratios) and
against a power-law fit of the exponent.
"""

import math
import random

from conftest import print_table

from repro.analysis.stats import fit_power_law, ratio_to_model
from repro.population.counting import CountingUpperBound


def _timing_sweep(ns, trials=15, seed=0):
    rng = random.Random(seed)
    rows = []
    for n in ns:
        total = 0
        for _ in range(trials):
            total += CountingUpperBound(n, 4, rng=rng).run().raw_interactions
        rows.append((n, total / trials))
    return rows


def test_remark1_interaction_growth(benchmark):
    rows = benchmark.pedantic(
        _timing_sweep, args=([64, 128, 256, 512, 1024],), rounds=1, iterations=1
    )
    ns = [r[0] for r in rows]
    times = [r[1] for r in rows]
    ratios = ratio_to_model(ns, times, lambda n: n * n * math.log(n))
    alpha, _c = fit_power_law(ns, times)
    print_table(
        "R1-time: raw interactions to halt vs n^2 log n",
        f"{'n':>6} {'interactions':>14} {'/ n^2 ln n':>11}",
        (f"{n:>6} {t:>14.0f} {r:>11.4f}" for (n, t), r in zip(rows, ratios)),
    )
    print(f"power-law exponent: {alpha:.2f} (model: ~2 with a log factor)")
    # The ratio to n^2 log n must stay within a constant band (no drift by
    # more than ~2.5x across a 16x range of n) and the exponent near 2.
    assert max(ratios) / min(ratios) < 2.5
    assert 1.6 < alpha < 2.4
