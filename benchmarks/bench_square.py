"""Experiments S4-sq and F2-sq2: the two square constructors of §4.2.

Protocol 1 grows perimetrically (one turn attempt per step); Protocol 2
uses turning marks. The bench compares their effective-interaction counts
on matched populations and traces Square2's Figure 2 phase structure.
"""

from conftest import print_table

from repro.core.simulator import Simulation
from repro.core.world import World
from repro.protocols.square import square_protocol
from repro.protocols.square2 import square2_protocol


def test_protocol1_square_events(benchmark):
    def sweep():
        rows = []
        protocol = square_protocol()
        for d in (3, 4, 5, 6):
            n = d * d
            world = World.of_free_nodes(n, protocol, leaders=1)
            sim = Simulation(world, protocol, seed=d)
            res = sim.run_to_stabilization(max_events=100_000)
            rows.append((d, n, res.events))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "S4-sq: Protocol 1 effective interactions",
        f"{'d':>3} {'n':>4} {'events':>7}",
        (f"{d:>3} {n:>4} {e:>7}" for d, n, e in rows),
    )
    for d, n, events in rows:
        assert n - 1 <= events <= 3 * n  # attachments plus turning bonds


def test_protocol2_phases(benchmark):
    def sweep():
        rows = []
        protocol = square2_protocol()
        for phase in (1, 2, 3, 4):
            n = 4 * phase * phase + 4
            world = World.of_free_nodes(n, protocol, leaders=1)
            sim = Simulation(world, protocol, seed=phase)
            res = sim.run_to_stabilization(max_events=200_000)
            rows.append((phase, 2 * phase, n, res.events))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "F2-sq2: Protocol 2 phase sweep (n = 4p^2 + 4)",
        f"{'phase':>6} {'side':>5} {'n':>4} {'events':>7}",
        (f"{p:>6} {s:>5} {n:>4} {e:>7}" for p, s, n, e in rows),
    )
    for _p, side, n, events in rows:
        assert events >= n - 1


def test_square2_uses_fewer_leader_turns(benchmark):
    """The turning-mark design: Protocol 2's leader turns only at marks,
    so its per-node effective work stays lower than Protocol 1's
    perimeter-circling on comparable populations."""

    def measure():
        p1 = square_protocol()
        w1 = World.of_free_nodes(36, p1, leaders=1)
        e1 = Simulation(w1, p1, seed=9).run_to_stabilization(200_000).events
        p2 = square2_protocol()
        w2 = World.of_free_nodes(40, p2, leaders=1)  # 6x6 + 4 marks
        e2 = Simulation(w2, p2, seed=9).run_to_stabilization(200_000).events
        return e1 / 36, e2 / 40

    per1, per2 = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nF2-sq2: per-node events — Protocol 1: {per1:.2f}, Protocol 2: {per2:.2f}")
    assert per2 < per1 * 1.5  # comparable or better despite the marks
