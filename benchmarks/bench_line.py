"""Experiment S4-line: spanning line construction (§4.1).

Effective interactions are exactly n - 1 for both variants (each node is
absorbed once); the raw-step cost under the exact uniform scheduler shows
the simplified 3-state variant paying for its port-restricted meetings.
"""

from conftest import print_table

from repro.core.scheduler import EnumeratingScheduler
from repro.core.simulator import Simulation
from repro.core.world import World
from repro.protocols.line import simple_line_protocol, spanning_line_protocol


def _raw_cost(factory, n, seeds):
    total = 0
    for seed in seeds:
        protocol = factory()
        world = World.of_free_nodes(n, protocol, leaders=1)
        sim = Simulation(world, protocol, scheduler=EnumeratingScheduler(), seed=seed)
        res = sim.run_to_stabilization(max_events=10_000)
        assert res.raw_steps is not None
        total += res.raw_steps
    return total / len(seeds)


def test_line_raw_step_comparison(benchmark):
    def sweep():
        rows = []
        for n in (6, 10, 14):
            general = _raw_cost(spanning_line_protocol, n, range(6))
            simple = _raw_cost(simple_line_protocol, n, range(6))
            rows.append((n, general, simple, simple / general))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "S4-line: mean raw steps to stabilize (general vs simplified)",
        f"{'n':>4} {'general':>9} {'simple':>9} {'slowdown':>9}",
        (f"{n:>4} {g:>9.0f} {s:>9.0f} {r:>9.2f}" for n, g, s, r in rows),
    )
    for _n, _g, _s, slowdown in rows:
        assert slowdown > 1.0  # the 3-state variant is slower, as the paper notes


def test_line_effective_events_scale_linearly(benchmark):
    def sweep():
        rows = []
        protocol = spanning_line_protocol()
        for n in (20, 40, 80):
            world = World.of_free_nodes(n, protocol, leaders=1)
            sim = Simulation(world, protocol, seed=n)
            res = sim.run_to_stabilization(max_events=10_000)
            rows.append((n, res.events))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "S4-line: effective interactions (exactly n - 1)",
        f"{'n':>4} {'events':>7}",
        (f"{n:>4} {e:>7}" for n, e in rows),
    )
    for n, events in rows:
        assert events == n - 1
