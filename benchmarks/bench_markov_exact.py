"""Experiment T1-exact: exact Markov-chain analysis of Counting-Upper-Bound.

Ablation companion to F4-walk: replaces the Monte Carlo estimates with
exact dynamic programming / linear solves, giving (i) the exact failure
probability vs the paper's asymptotic ``1/n^(b-2)`` bound, (ii) the exact
expected estimate ``E[r0]/n`` behind Remark 2, and (iii) the closed-form
cross-checks of the ruin and Ehrenfest reductions used in Theorem 1's proof.
"""

from conftest import print_table

from repro.analysis.markov import (
    counting_exact_failure,
    counting_expected_estimate,
    counting_estimate_quantile,
    ehrenfest_mean_recurrence_exact,
    ehrenfest_spectral_gap,
    failure_table_exact,
    ruin_win_probability_exact,
)
from repro.analysis.walks import gambler_ruin_win_probability


def test_exact_failure_vs_bound(benchmark):
    rows = benchmark.pedantic(
        failure_table_exact,
        args=([32, 64, 128, 256, 512], [3, 4, 5]),
        rounds=1,
        iterations=1,
    )
    print_table(
        "T1-exact: exact failure probability vs 1/n^(b-2)",
        f"{'n':>5} {'b':>3} {'exact':>12} {'bound':>12} {'ratio':>8}",
        (
            f"{n:>5} {b:>3} {f:>12.3e} {bd:>12.3e} {f / bd:>8.3f}"
            for n, b, f, bd in rows
        ),
    )
    # The bound is asymptotic: the exact/bound ratio must shrink with n for
    # each fixed b and be below 1 by n = 512.
    for b in (3, 4, 5):
        ratios = [f / bd for n, bb, f, bd in rows if bb == b]
        assert all(x >= y - 1e-15 for x, y in zip(ratios, ratios[1:]))
        assert ratios[-1] < 1.0


def test_exact_estimate_quality(benchmark):
    def table():
        rows = []
        for n in (100, 200, 400, 800):
            mean = counting_expected_estimate(n, 4)
            q10 = counting_estimate_quantile(n, 4, 0.1)
            rows.append((n, mean / n, q10 / n))
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    print_table(
        "R2-exact: exact E[r0]/n and 10th-percentile r0/n (b = 4)",
        f"{'n':>5} {'E[r0]/n':>9} {'q10/n':>7}",
        (f"{n:>5} {m:>9.4f} {q:>7.4f}" for n, m, q in rows),
    )
    # Remark 2: the estimate is close to (9/10) n and improves with n.
    means = [m for _n, m, _q in rows]
    assert all(x <= y + 1e-12 for x, y in zip(means, means[1:]))
    assert means[-1] > 0.85


def test_ruin_linear_solve_matches_feller_formula(benchmark):
    def compare():
        rows = []
        for b in (3, 4, 6, 8):
            p = 0.25
            x = (1 - p) / p
            rows.append(
                (
                    b,
                    ruin_win_probability_exact(b, p, start=1),
                    gambler_ruin_win_probability(x, b),
                )
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    print_table(
        "Ruin: linear solve vs Feller closed form (p = 1/4)",
        f"{'b':>3} {'solve':>12} {'formula':>12}",
        (f"{b:>3} {s:>12.3e} {f:>12.3e}" for b, s, f in rows),
    )
    for _b, solve, formula in rows:
        assert abs(solve - formula) / formula < 1e-9


def test_ehrenfest_exact_quantities(benchmark):
    def table():
        return [
            (
                balls,
                ehrenfest_mean_recurrence_exact(balls, 0),
                2.0**balls,
                ehrenfest_spectral_gap(balls),
                2.0 / balls,
            )
            for balls in (8, 16, 24, 32)
        ]

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    print_table(
        "Ehrenfest: recurrence at empty urn and spectral gap vs closed forms",
        f"{'balls':>6} {'1/pi(0)':>12} {'2^balls':>12} {'gap':>9} {'2/balls':>9}",
        (
            f"{n:>6} {rec:>12.4g} {ref:>12.4g} {gap:>9.5f} {gref:>9.5f}"
            for n, rec, ref, gap, gref in rows
        ),
    )
    for _n, rec, ref, gap, gref in rows:
        assert abs(rec - ref) / ref < 1e-9
        assert abs(gap - gref) < 1e-8
