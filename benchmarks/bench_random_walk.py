"""Experiments F4-walk and KAC: the random-walk reductions of Theorem 1.

(i) The Figure 4 walk's empirical failure probability against the paper's
``1/n^(b-2)`` bound and against the full protocol; (ii) Kac's mean
recurrence time ``2^(2R)`` for the Ehrenfest model, plus the exact
within-horizon return probabilities used in the proof.
"""

import random

from conftest import print_table

from repro.analysis.walks import (
    CountingWalk,
    counting_failure_bound,
    ehrenfest_mean_recurrence,
    ehrenfest_return_probability,
    walk_failure_table,
)
from repro.population.counting import CountingUpperBound


def test_figure4_walk_failure_vs_bound(benchmark):
    rows = benchmark.pedantic(
        walk_failure_table,
        args=([32, 64, 128], [3, 4, 5]),
        kwargs={"trials": 3000, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print_table(
        "F4-walk: empirical failure of the counting walk vs 1/n^(b-2)",
        f"{'n':>5} {'b':>3} {'empirical':>10} {'bound':>10}",
        (f"{n:>5} {b:>3} {f:>10.4f} {bd:>10.4f}" for n, b, f, bd in rows),
    )
    for _n, _b, fail, bound in rows:
        assert fail <= bound + 0.02


def test_walk_equals_protocol_law(benchmark):
    def compare():
        n, b, trials = 48, 3, 2000
        rng = random.Random(1)
        wf, _ = CountingWalk(n, b).failure_probability(trials, seed=2)
        pf = sum(
            int(not CountingUpperBound(n, b, rng=rng).run().success)
            for _ in range(trials)
        ) / trials
        return wf, pf

    wf, pf = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nF4-walk cross-check: walk failure {wf:.4f} vs protocol {pf:.4f}")
    assert abs(wf - pf) < 0.025


def test_kac_recurrence(benchmark):
    def kac_rows():
        return [(R, ehrenfest_mean_recurrence(R, -R), 2.0 ** (2 * R))
                for R in (2, 4, 8, 16)]

    rows = benchmark.pedantic(kac_rows, rounds=1, iterations=1)
    print_table(
        "KAC: Ehrenfest mean recurrence at the empty urn vs 2^(2R)",
        f"{'R':>4} {'Kac formula':>14} {'2^(2R)':>12}",
        (f"{R:>4} {kac:>14.1f} {ref:>12.1f}" for R, kac, ref in rows),
    )
    for _R, kac, ref in rows:
        assert abs(kac - ref) / ref < 1e-9


def test_ehrenfest_return_probabilities(benchmark):
    def dp_rows():
        return [
            (b, ehrenfest_return_probability(60, b, 60)) for b in (2, 3, 4, 5)
        ]

    rows = benchmark.pedantic(dp_rows, rounds=1, iterations=1)
    print_table(
        "Ehrenfest: P[empty within n steps | start b] (n = 60)",
        f"{'b':>3} {'P[return]':>11}",
        (f"{b:>3} {p:>11.5f}" for b, p in rows),
    )
    probs = [p for _b, p in rows]
    assert all(a > b for a, b in zip(probs, probs[1:]))  # decreasing in b
