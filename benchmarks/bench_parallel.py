"""Experiment T5-par: parallel pixel simulations (§6.4, Theorem 5)."""

from conftest import print_table

from repro.constructors.parallel import run_parallel_3d, run_parallel_segments
from repro.machines.shape_programs import line_program, star_program


def test_3d_slab_speedup(benchmark):
    def sweep():
        rows = []
        for d in (4, 6, 8, 10):
            res = run_parallel_3d(line_program(), d, build_world=(d <= 6))
            rows.append((d, res.k, res.n, res.parallel_interactions,
                         res.sequential_interactions, res.speedup,
                         res.sequential_interactions - res.parallel_interactions))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "T5-par: 3D slab, parallel vs sequential simulation phase",
        f"{'d':>3} {'k':>4} {'n':>6} {'parallel':>9} {'sequential':>11} "
        f"{'speedup':>8} {'saved':>7}",
        (f"{d:>3} {k:>4} {n:>6} {p:>9} {s:>11} {x:>8.2f} {sv:>7}"
         for d, k, n, p, s, x, sv in rows),
    )
    # Theorem 5's shape: the parallel schedule always wins end to end, the
    # end-to-end advantage is substantial (>= 1.5x here), and the absolute
    # interactions saved grow with the number of concurrent machines d².
    for _d, _k, _n, par, seq, speedup, _sv in rows:
        assert par < seq
        assert speedup > 1.5
    saved = [sv for *_rest, sv in rows]
    assert all(b > a for a, b in zip(saved, saved[1:]))


def test_segments_2d_variant(benchmark):
    def sweep():
        rows = []
        for d in (4, 6, 8):
            res = run_parallel_segments(star_program(), d, seed=d)
            rows.append((d, res.assembly_interactions, res.speedup))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "T5-par: segmented 2D variant — key-matching assembly",
        f"{'d':>3} {'assembly contacts':>18} {'speedup':>8}",
        (f"{d:>3} {c:>18} {s:>8.2f}" for d, c, s in rows),
    )
    for d, contacts, _s in rows:
        assert contacts >= d - 1
