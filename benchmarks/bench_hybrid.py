"""Experiment S8-hybrid: active vs passive mobility (§8's Nubot combination).

The walker dimer translates two cells per four-interaction cycle under its
movement rules; the purely passive model keeps every component's internal
geometry rigid forever. The bench quantifies that qualitative gap and
checks the walker's speed matches the gait analysis exactly.
"""

from conftest import print_table

from repro.hybrid.movement import (
    HybridSimulation,
    MovementProtocol,
    make_walker_world,
    walker_protocol,
)


def _displacement(world, nids):
    return min(world.nodes[n].pos.x for n in nids)


def test_walker_speed_vs_passive_rigidity(benchmark):
    def race():
        rows = []
        for label, protocol in (
            ("walker (active)", walker_protocol()),
            ("passive (no moves)", MovementProtocol([], name="inert")),
        ):
            world, mover, pivot = make_walker_world()
            sim = HybridSimulation(world, protocol, seed=0)
            start = _displacement(world, (mover, pivot))
            for _ in range(200):
                if not sim.step():
                    break
            end = _displacement(world, (mover, pivot))
            rows.append((label, sim.events, sim.moves, end - start))
        return rows

    rows = benchmark.pedantic(race, rounds=1, iterations=1)
    print_table(
        "S8-hybrid: displacement after 200 scheduler opportunities",
        f"{'model':>20} {'events':>7} {'moves':>6} {'dx':>5}",
        (f"{lbl:>20} {e:>7} {m:>6} {dx:>5}" for lbl, e, m, dx in rows),
    )
    by_label = {lbl: (e, m, dx) for lbl, e, m, dx in rows}
    active = by_label["walker (active)"]
    passive = by_label["passive (no moves)"]
    # Gait analysis: two cells per four interactions.
    assert active[2] == active[0] // 2
    # The passive dimer cannot change its geometry at all.
    assert passive[2] == 0
    assert passive[0] == 0
