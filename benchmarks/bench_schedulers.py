"""Ablation: the three uniform-scheduler implementations (DESIGN.md §2).

The library ships three provably law-identical implementations of the
paper's uniform random scheduler. This ablation confirms (i) they build
the same structures with the same effective-event counts, (ii) the raw
step counters of the two exact implementations agree in expectation, and
(iii) the hot-set scheduler is the fastest — the reason it is the default.
"""

import random
import time

from conftest import print_table

from repro.core.scheduler import (
    EnumeratingScheduler,
    HotScheduler,
    RejectionScheduler,
)
from repro.core.simulator import Simulation
from repro.core.world import World
from repro.protocols.line import spanning_line_protocol


def _run(make_scheduler, n: int, seed: int):
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(n, protocol, leaders=1)
    sim = Simulation(world, protocol, scheduler=make_scheduler(), seed=seed)
    start = time.perf_counter()
    sim.run_to_stabilization(max_events=100_000)
    elapsed = time.perf_counter() - start
    shapes = world.output_shapes(protocol)
    assert len(shapes) == 1 and shapes[0].is_line() and len(shapes[0]) == n
    return sim.events, sim.raw_steps, elapsed


def test_scheduler_ablation(benchmark):
    n = 14
    trials = 8

    def ablate():
        rng = random.Random(0)
        rows = []
        for name, factory in (
            ("enumerate", EnumeratingScheduler),
            ("rejection", RejectionScheduler),
            ("hot", HotScheduler),
        ):
            events, raws, times = [], [], []
            for _ in range(trials):
                e, r, t = _run(factory, n, rng.randrange(2**31))
                events.append(e)
                raws.append(r)
                times.append(t)
            rows.append(
                (
                    name,
                    sum(events) / trials,
                    sum(raws) / trials if name != "hot" else None,
                    sum(times) / trials,
                )
            )
        return rows

    rows = benchmark.pedantic(ablate, rounds=1, iterations=1)
    print_table(
        f"Scheduler ablation: spanning line, n = {n}, {trials} trials",
        f"{'scheduler':>10} {'events':>7} {'raw steps':>10} {'secs':>8}",
        (
            f"{name:>10} {ev:>7.1f} "
            f"{(f'{raw:>10.0f}' if raw is not None else '       n/a')} {t:>8.4f}"
            for name, ev, raw, t in rows
        ),
    )
    by_name = {name: (ev, raw, t) for name, ev, raw, t in rows}
    # Identical law: the effective-event count is deterministic (n - 1).
    for name, (ev, _raw, _t) in by_name.items():
        assert ev == n - 1, name
    # The exact raw-step counters agree within Monte-Carlo noise.
    enum_raw = by_name["enumerate"][1]
    rej_raw = by_name["rejection"][1]
    assert abs(enum_raw - rej_raw) / enum_raw < 0.6
    # The default is not slower than the reference enumeration.
    assert by_name["hot"][2] <= by_name["enumerate"][2] * 1.5
