"""Ablation: the scheduler implementations and the incremental cache.

The library ships provably law-identical implementations of the paper's
uniform random scheduler on one shared candidate layer (DESIGN.md §2,
``repro.core.candidates``). This ablation confirms:

(i)   all of them build the same structures — with *identical* seeded
      trajectories, by the scheduler RNG contract;
(ii)  the raw step counters of the two exact implementations agree in
      expectation;
(iii) the incremental candidate cache cuts the dominant cost metric —
      protocol-delta evaluations per run — by well over 2x against the
      non-cached hot scheduler on aggregation-style workloads at n >= 64
      (the acceptance bar of the cache PR), because after each event only
      the dirty neighborhood is re-examined instead of every hot node.

On leader-driven lines the effective set itself churns by Θ(n) per event
(every candidate involves the moving leader), so no scheduler can beat
Θ(n) evaluations there — the cache matches the brute-force hot scheduler
on that workload and wins wherever interactions are local.

Wall-clock numbers also reflect the packed geometry kernel underneath the
candidate layer (``repro.geometry.packed``; microbenched separately in
``bench_geometry.py``) and the cache's merge-delta pruning, which together
cut the n = 64 aggregation run ~3.3x against the PR 1 baseline.
"""

import random
import time

from conftest import append_raw_history, print_table

from repro.core.protocol import Rule, RuleProtocol
from repro.core.scheduler import make_scheduler
from repro.core.simulator import Simulation
from repro.core.world import World
from repro.geometry.ports import PORTS_2D, opposite
from repro.protocols.line import spanning_line_protocol


def aggregation_protocol() -> RuleProtocol:
    """Leaderless gluing: every meeting of free ports bonds (all states
    hot, interactions local) — the workload where incrementality pays."""
    rules = [Rule("g", p, "g", opposite(p), 0, "g", "g", 1) for p in PORTS_2D]
    return RuleProtocol(rules, initial_state="g", name="aggregation")


def _run(kind, kwargs, protocol, world, seed, max_events):
    scheduler = make_scheduler(kind, **kwargs)
    sim = Simulation(world, protocol, scheduler=scheduler, seed=seed)
    start = time.perf_counter()
    res = sim.run(max_events=max_events)
    elapsed = time.perf_counter() - start
    return res, scheduler.evaluations, elapsed


def test_scheduler_ablation(benchmark):
    """(i) + (ii): identical trajectories, agreeing raw-step counters."""
    n = 14
    trials = 8
    protocol = spanning_line_protocol()

    def ablate():
        rng = random.Random(0)
        rows = []
        variants = (
            ("enumerate", {}),
            ("rejection", {}),
            ("hot", {"incremental": False}),
            ("hot+cache", {"incremental": True}),
        )
        seeds = [rng.randrange(2**31) for _ in range(trials)]
        for name, kwargs in variants:
            kind = "hot" if name.startswith("hot") else name
            events, raws, evals, times = [], [], [], []
            for seed in seeds:
                world = World.of_free_nodes(n, protocol, leaders=1)
                res, ev, t = _run(kind, kwargs, protocol, world, seed, 100_000)
                assert res.stabilized
                shapes = world.output_shapes(protocol)
                assert len(shapes) == 1 and shapes[0].is_line()
                events.append(res.events)
                raws.append(res.raw_steps)
                evals.append(ev)
                times.append(t)
            rows.append(
                (
                    name,
                    sum(events) / trials,
                    (sum(raws) / trials) if raws[0] is not None else None,
                    sum(evals) / trials,
                    sum(times) / trials,
                )
            )
        return rows

    rows = benchmark.pedantic(ablate, rounds=1, iterations=1)
    print_table(
        f"Scheduler ablation: spanning line, n = {n}, {trials} trials",
        f"{'scheduler':>10} {'events':>7} {'raw steps':>10} {'evals':>9} {'secs':>8}",
        (
            f"{name:>10} {ev:>7.1f} "
            f"{(f'{raw:>10.0f}' if raw is not None else '       n/a')} "
            f"{evals:>9.0f} {t:>8.4f}"
            for name, ev, raw, evals, t in rows
        ),
    )
    by_name = {row[0]: row[1:] for row in rows}
    # Identical law: the effective-event count is deterministic (n - 1).
    for name, (ev, _raw, _evals, _t) in by_name.items():
        assert ev == n - 1, name
    # The exact raw-step counters agree within Monte-Carlo noise.
    enum_raw = by_name["enumerate"][1]
    rej_raw = by_name["rejection"][1]
    assert abs(enum_raw - rej_raw) / enum_raw < 0.6
    # Hot enumeration evaluates far fewer candidates than the reference.
    assert by_name["hot"][2] < by_name["enumerate"][2]


def test_incremental_cache_speedup(benchmark):
    """(iii): >= 2x fewer candidate evaluations at n >= 64, with seeded
    trajectories identical to the reference EnumeratingScheduler."""
    n = 64
    max_events = 200
    seed = 11
    protocol = aggregation_protocol()

    def measure():
        results = {}
        for name, kind, kwargs in (
            ("hot (seed)", "hot", {"incremental": False}),
            ("hot+cache", "hot", {"incremental": True}),
        ):
            world = World.of_free_nodes(n, protocol, leaders=0)
            res, evals, t = _run(kind, kwargs, protocol, world, seed, max_events)
            results[name] = (res.events, evals, t)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        f"Incremental candidate cache: aggregation, n = {n}, seed {seed}",
        f"{'scheduler':>11} {'events':>7} {'evals':>10} {'secs':>8}",
        (
            f"{name:>11} {ev:>7d} {evals:>10d} {t:>8.3f}"
            for name, (ev, evals, t) in results.items()
        ),
    )
    base_events, base_evals, base_time = results["hot (seed)"]
    cache_events, cache_evals, cache_time = results["hot+cache"]
    append_raw_history(
        "schedulers",
        events=cache_events,
        evaluations=cache_evals,
        wall_time=cache_time,
        evaluations_uncached=base_evals,
        speedup_evaluations=base_evals / cache_evals,
    )
    # Same trajectory (the contract makes this exact, not statistical).
    assert cache_events == base_events
    # The acceptance bar: >= 2x fewer candidate evaluations at n >= 64.
    assert base_evals >= 2 * cache_evals, (base_evals, cache_evals)

    # Trajectory identity with the reference scheduler on a smaller run
    # (full enumeration at n = 64 is exact but slow; the law equivalence
    # suite covers it exhaustively at small n).
    from repro.core.trace import TraceRecorder

    def trace(kind, kwargs, n_small=10):
        world = World.of_free_nodes(n_small, protocol, leaders=0)
        rec = TraceRecorder()
        sim = Simulation(
            world,
            protocol,
            scheduler=make_scheduler(kind, **kwargs),
            seed=seed,
            trace=rec.hook,
        )
        sim.run(max_events=50)
        return rec.to_list()

    assert trace("hot", {"incremental": True}) == trace("enumerate", {})
