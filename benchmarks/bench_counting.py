"""Experiments T1-halt, T1-whp, R2-est: Counting-Upper-Bound (Theorem 1).

Regenerates (i) the always-halts guarantee, (ii) the w.h.p. success rate
against the ``1/n^(b-2)`` bound, and (iii) Remark 2's observation that the
estimate ``r0`` is close to ``(9/10) n`` for populations up to 1000 nodes.

Runs through the declarative experiment layer: each sweep is a
``SweepSpec`` over the registered ``counting`` scenario, the rows are read
off the uniform ``ExperimentResult.metrics``, and the artifact is the
schema-validated ``BENCH_counting.json``.
"""

from conftest import print_table, write_bench

from repro.analysis.walks import counting_failure_bound
from repro.experiments import SweepSpec, run_sweep


def _counting_sweep(ns, trials, base_seed=0, b=4):
    sweep = SweepSpec(
        scenario="counting",
        grid={"n": list(ns), "b": [b], "trials": [trials]},
        trials=1,
        base_seed=base_seed,
    )
    return run_sweep(sweep)


def test_theorem1_success_rate(benchmark):
    results = benchmark.pedantic(
        _counting_sweep, args=([64, 256, 1024], 200), rounds=1, iterations=1
    )
    rows = [
        (
            r.params["n"],
            r.params["b"],
            r.metrics["success_rate"],
            counting_failure_bound(r.params["n"], r.params["b"]),
        )
        for r in results
    ]
    print_table(
        "T1-whp: success rate of Counting-Upper-Bound (b = 4)",
        f"{'n':>6} {'b':>3} {'success':>9} {'1 - bound':>10}",
        (f"{n:>6} {b:>3} {rate:>9.3f} {1 - bound:>10.4f}" for n, b, rate, bound in rows),
    )
    write_bench("counting", results, header={"experiment": "T1-whp"})
    for n, b, rate, bound in rows:
        assert rate >= 1 - 20 * bound - 0.03


def test_remark2_estimate_quality(benchmark):
    results = benchmark.pedantic(
        _counting_sweep,
        args=([100, 250, 500, 1000], 25),
        kwargs={"base_seed": 1},
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            r.params["n"],
            r.metrics["estimate_ratio"],
            r.metrics["min_estimate"] / r.params["n"],
            r.metrics["success_rate"],
        )
        for r in results
    ]
    print_table(
        "R2-est: estimate quality (paper: close to 0.9 n, usually higher)",
        f"{'n':>6} {'mean r0/n':>10} {'min r0/n':>9} {'success':>8}",
        (f"{n:>6} {m:>10.3f} {mn:>9.3f} {s:>8.2f}" for n, m, mn, s in rows),
    )
    for _n, mean_ratio, _min_ratio, success in rows:
        assert mean_ratio > 0.85
        assert success == 1.0


def test_theorem1_always_halts(benchmark):
    def halt_many():
        # 50 derived seeds, one execution each. ``run_counting`` raises
        # TerminationError past its effective-interaction cap, so fifty
        # *completed* trials are Theorem 1's always-halts witness — the
        # sweep itself would fail otherwise.
        sweep = SweepSpec(
            scenario="counting",
            grid={"n": [128], "trials": [1]},
            trials=50,
            base_seed=0,
        )
        return run_sweep(sweep)

    results = benchmark.pedantic(halt_many, rounds=1, iterations=1)
    assert len(results) == 50
    assert all(r.events > 0 for r in results)
