"""Experiments T1-halt, T1-whp, R2-est: Counting-Upper-Bound (Theorem 1).

Regenerates (i) the always-halts guarantee, (ii) the w.h.p. success rate
against the ``1/n^(b-2)`` bound, and (iii) Remark 2's observation that the
estimate ``r0`` is close to ``(9/10) n`` for populations up to 1000 nodes.
"""

import random

from conftest import print_table

from repro.analysis.walks import counting_failure_bound
from repro.population.counting import CountingUpperBound, estimate_quality


def _success_sweep(ns, b, trials, seed=0):
    rng = random.Random(seed)
    rows = []
    for n in ns:
        ok = 0
        for _ in range(trials):
            res = CountingUpperBound(n, b, rng=rng).run()
            ok += int(res.success)
        rows.append((n, b, ok / trials, counting_failure_bound(n, b)))
    return rows


def test_theorem1_success_rate(benchmark):
    rows = benchmark.pedantic(
        _success_sweep, args=([64, 256, 1024], 4, 200), rounds=1, iterations=1
    )
    print_table(
        "T1-whp: success rate of Counting-Upper-Bound (b = 4)",
        f"{'n':>6} {'b':>3} {'success':>9} {'1 - bound':>10}",
        (f"{n:>6} {b:>3} {rate:>9.3f} {1 - bound:>10.4f}" for n, b, rate, bound in rows),
    )
    for n, b, rate, bound in rows:
        assert rate >= 1 - 20 * bound - 0.03


def test_remark2_estimate_quality(benchmark):
    rows = benchmark.pedantic(
        estimate_quality,
        args=([100, 250, 500, 1000],),
        kwargs={"b": 4, "trials": 25, "seed": 1},
        rounds=1,
        iterations=1,
    )
    print_table(
        "R2-est: estimate quality (paper: close to 0.9 n, usually higher)",
        f"{'n':>6} {'mean r0/n':>10} {'min r0/n':>9} {'success':>8}",
        (f"{n:>6} {m:>10.3f} {mn:>9.3f} {s:>8.2f}" for n, m, mn, s in rows),
    )
    for _n, mean_ratio, _min_ratio, success in rows:
        assert mean_ratio > 0.85
        assert success == 1.0


def test_theorem1_always_halts(benchmark):
    def halt_many():
        for seed in range(50):
            CountingUpperBound(128, 4, seed=seed).run()  # raises otherwise
        return True

    assert benchmark.pedantic(halt_many, rounds=1, iterations=1)
