"""Rule-dispatch microbenchmark: compiled packed-int IR vs legacy tables.

PR 4 compiled the protocol layer (``repro.core.program``): states intern
to dense ids, each transition LHS packs into one int key, and ``delta``
dispatch becomes a single int-dict hit on ids the world already stores.
This benchmark pins the acceptance bar — **>= 2x over the legacy
dispatch** — on the real dispatch stream of the n = 64 aggregation
workload (the same workload as ``bench_schedulers.py``): every
``evaluate`` call of a 200-event cached-hot-scheduler run is recorded and
replayed through

* the *legacy* path, reproducing the seed's dispatch exactly: build an
  ``InteractionView`` of boundary states per call (what ``evaluate`` did)
  and look up nested tuple keys, as-presented then swapped (what
  ``RuleProtocol.handle`` did);
* the *compiled* path: the packed-IR ``CompiledProgram.lookup`` on
  interned ids, exactly what the bound scheduler fast path executes.

Results land in ``BENCH_dispatch.json``; CI runs this file and enforces
the bar. A whole-run wall-clock row (compiled vs ``compiled = False``
boundary dispatch, bit-identical trajectories) is reported for context.
"""

import json
import time
from pathlib import Path

from conftest import append_raw_history, print_table

from repro.core.protocol import InteractionView, Rule, RuleProtocol
from repro.core.simulator import Simulation
from repro.core.world import World
from repro.geometry.ports import PORT_INDEX, PORTS_2D, opposite


def aggregation_protocol() -> RuleProtocol:
    """Leaderless gluing (the bench_schedulers workload): every meeting of
    free opposite ports bonds."""
    rules = [Rule("g", p, "g", opposite(p), 0, "g", "g", 1) for p in PORTS_2D]
    return RuleProtocol(rules, initial_state="g", name="aggregation")


def record_dispatch_stream(n=64, max_events=200, seed=11):
    """The exact sequence of delta applications of one seeded run.

    The protocol runs with ``compiled = False`` so every ``evaluate``
    goes through ``handle`` — wrapped here to log the boundary view of
    each call. Trajectories are identical either way (pinned by
    ``tests/test_dsl.py``), so this is the stream the compiled path
    serves in the same run.
    """
    protocol = aggregation_protocol()
    protocol.compiled = False
    stream = []
    original = protocol.handle

    def recording_handle(view):
        stream.append((view.state1, view.port1, view.state2, view.port2, view.bond))
        return original(view)

    protocol.handle = recording_handle  # type: ignore[method-assign]
    world = World.of_free_nodes(n, protocol, leaders=0)
    Simulation(world, protocol, seed=seed).run(max_events=max_events)
    return stream


def legacy_dispatch(rules):
    """The seed's dispatch, reproduced: nested-tuple table, view built per
    call, presented-then-swapped lookups."""
    table = {r.lhs: r for r in rules}

    def dispatch(s1, p1, s2, p2, bond):
        view = InteractionView(s1, p1, s2, p2, bond)
        lhs = ((view.state1, view.port1), (view.state2, view.port2), view.bond)
        rule = table.get(lhs)
        if rule is not None:
            return rule.rhs
        swapped = ((view.state2, view.port2), (view.state1, view.port1), view.bond)
        rule = table.get(swapped)
        if rule is not None:
            return (rule.new_state2, rule.new_state1, rule.new_bond)
        return None

    return dispatch


def time_loop(fn, calls, repeats):
    start = time.perf_counter()
    for _ in range(repeats):
        for args in calls:
            fn(*args)
    return time.perf_counter() - start


def test_compiled_dispatch_beats_legacy(benchmark):
    stream = record_dispatch_stream()
    assert len(stream) > 10_000  # a real workload, not a toy corpus

    protocol = aggregation_protocol()
    program = protocol.program
    space = program.space
    # The compiled path's inputs are what the bound world stores: interned
    # ids and port indexes.
    compiled_calls = [
        (space.get_id(s1), PORT_INDEX[p1], space.get_id(s2), PORT_INDEX[p2], b)
        for s1, p1, s2, p2, b in stream
    ]
    legacy = legacy_dispatch(protocol.rules)

    # Cross-check before timing: both paths agree call for call.
    for (s1, p1, s2, p2, b), packed in zip(stream[:2000], compiled_calls[:2000]):
        assert legacy(s1, p1, s2, p2, b) == program.lookup(*packed)

    repeats = 20

    def measure():
        return {
            "legacy": time_loop(legacy, stream, repeats),
            "compiled": time_loop(program.lookup, compiled_calls, repeats),
        }

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    calls = len(stream) * repeats
    speedup = times["legacy"] / times["compiled"]

    # Context row: whole-run wall clock, compiled vs boundary dispatch.
    def run(compiled: bool):
        p = aggregation_protocol()
        p.compiled = compiled
        world = World.of_free_nodes(64, p, leaders=0)
        start = time.perf_counter()
        res = Simulation(world, p, seed=11).run(max_events=200)
        return res.events, time.perf_counter() - start

    events_c, wall_c = run(True)
    events_b, wall_b = run(False)
    assert events_c == events_b  # same trajectory, different dispatch

    print_table(
        "Rule dispatch: compiled packed-int IR vs legacy tuple tables",
        f"{'path':>10} {'calls':>9} {'secs':>9} {'Mcalls/s':>9}",
        (
            f"{name:>10} {calls:>9d} {secs:>9.4f} {calls / secs / 1e6:>9.2f}"
            for name, secs in times.items()
        ),
    )
    print(
        f"dispatch speedup: {speedup:.1f}x; full n=64 aggregation run "
        f"{wall_b:.3f}s boundary -> {wall_c:.3f}s compiled"
    )

    out = Path(__file__).parent / "BENCH_dispatch.json"
    out.write_text(
        json.dumps(
            {
                "workload": "aggregation n=64, 200 events, seed 11",
                "calls": calls,
                "cases": {
                    name: {
                        "seconds": secs,
                        "calls_per_sec": calls / secs,
                    }
                    for name, secs in times.items()
                },
                "speedups": {"dispatch": speedup},
                "wall_clock": {"compiled": wall_c, "boundary": wall_b},
            },
            indent=2,
        )
        + "\n"
    )
    append_raw_history(
        "dispatch",
        events=events_c,
        wall_time=wall_c,
        dispatch_calls=calls,
        speedup_dispatch=speedup,
    )
    # The acceptance bar of the compiled-IR PR.
    assert speedup >= 2.0, times
