"""Experiment S8-sync: the two-speed model of §8 (synchronous components).

A spanning line grows under the scheduler while an information wave floods
the finished body synchronously. Sweeping the speed ratio λ (internal
rounds per scheduler encounter) shows the regime change the paper
anticipates: a fast internal clock keeps every grown node informed (zero
lag), a slow one leaves a growing uninformed frontier.
"""

from conftest import print_table

from repro.core.world import World
from repro.protocols.line import spanning_line_protocol
from repro.sync.model import broadcast_program, distance_wave_program
from repro.sync.runner import TwoSpeedSimulation, run_component_rounds
from repro.geometry.vec import Vec


def grow_line_with_wave(n: int, ratio: float, seed: int):
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(n, protocol, leaders=1)
    program = broadcast_program(
        source_state="S", susceptible=lambda s: s == "q1"
    )
    sim = TwoSpeedSimulation(
        world, protocol, program, rounds_per_encounter=ratio, seed=seed
    )
    sim.step()
    world.set_state(0, "S")
    max_lag = 0
    while sim.step():
        states = world.states().values()
        informed = sum(1 for s in states if s in ("S", "informed"))
        body = informed + sum(1 for s in states if s == "q1")
        max_lag = max(max_lag, body - informed)
    return sim, max_lag


def test_speed_ratio_controls_information_lag(benchmark):
    def sweep():
        rows = []
        for ratio in (0.1, 0.5, 1.0, 2.0, 8.0):
            sim, lag = grow_line_with_wave(24, ratio, seed=9)
            rows.append((ratio, sim.encounters, sim.rounds, lag))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "S8-sync: spanning line (n = 24) + synchronous flood vs speed ratio",
        f"{'ratio':>6} {'encounters':>11} {'rounds':>7} {'max lag':>8}",
        (
            f"{ratio:>6.1f} {enc:>11} {rnd:>7} {lag:>8}"
            for ratio, enc, rnd, lag in rows
        ),
    )
    lags = [lag for _r, _e, _rnd, lag in rows]
    # Lag shrinks (weakly) as the internal clock speeds up, and the
    # extremes differ decisively.
    assert all(a >= b for a, b in zip(lags, lags[1:]))
    assert lags[0] > lags[-1]


def test_distance_wave_rounds_equal_eccentricity(benchmark):
    def wave(d: int) -> int:
        world = World(2)
        world.add_component_from_cells(
            {
                Vec(x, y): ("L" if (x, y) == (0, 0) else "q")
                for x in range(d)
                for y in range(d)
            }
        )
        program = distance_wave_program()
        rounds = 0
        while run_component_rounds(world, program, 1):
            rounds += 1
        return rounds

    rows = benchmark.pedantic(
        lambda: [(d, wave(d), 2 * (d - 1)) for d in (3, 5, 8, 12)],
        rounds=1,
        iterations=1,
    )
    print_table(
        "S8-sync: BFS wave rounds on a d x d square vs eccentricity 2(d-1)",
        f"{'d':>4} {'rounds':>7} {'2(d-1)':>7}",
        (f"{d:>4} {r:>7} {e:>7}" for d, r, e in rows),
    )
    for _d, rounds, ecc in rows:
        assert rounds == ecc
