"""Experiment R5-line: dropping the unique leader (§4.1 remark, Remark 5).

The leaderless spanning line pays two prices the paper predicts: it only
*stabilizes* (never terminates), and elections waste work — losing lines
are dismantled node by node and rebuilt by the winner. The bench measures
that overhead against the unique-leader §4.1 protocol.
"""

import random

from conftest import print_table

from repro.core.simulator import Simulation
from repro.core.world import World
from repro.protocols.leaderless_line import (
    is_spanning_line_configuration,
    leaderless_spanning_line_protocol,
)
from repro.protocols.line import spanning_line_protocol


def _events_to_line(protocol, n: int, leaders: int, seed: int) -> int:
    world = World.of_free_nodes(n, protocol, leaders=leaders)
    sim = Simulation(world, protocol, seed=seed)
    sim.run_to_stabilization(max_events=500_000)
    return sim.events


def test_leaderless_vs_unique_leader(benchmark):
    def sweep():
        rng = random.Random(0)
        rows = []
        for n in (8, 16, 24):
            trials = 5
            with_leader = sum(
                _events_to_line(
                    spanning_line_protocol(), n, 1, rng.randrange(2**31)
                )
                for _ in range(trials)
            ) / trials
            leaderless = 0.0
            for _ in range(trials):
                protocol = leaderless_spanning_line_protocol()
                world = World.of_free_nodes(n, protocol)
                sim = Simulation(world, protocol, seed=rng.randrange(2**31))
                sim.run_to_stabilization(max_events=500_000)
                assert is_spanning_line_configuration(world)
                leaderless += sim.events
            leaderless /= trials
            rows.append((n, with_leader, leaderless, leaderless / with_leader))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "R5-line: effective interactions to the spanning line",
        f"{'n':>4} {'with leader':>12} {'leaderless':>11} {'overhead':>9}",
        (
            f"{n:>4} {wl:>12.1f} {ll:>11.1f} {ov:>8.2f}x"
            for n, wl, ll, ov in rows
        ),
    )
    for _n, with_leader, leaderless, _ov in rows:
        # The unique-leader protocol needs exactly n - 1 events; the
        # leaderless one needs at least as many (and usually more, since
        # elections dismantle built lines).
        assert leaderless >= with_leader
