"""Acceptance bars for the streaming trace subsystem (the PR 9 tentpole).

Recording is observation-only: the :class:`~repro.trace.writer.TraceWriter`
hooks the simulation's applied-event stream, never touches the RNG, and
writes delta records incrementally in bounded memory — so tracing a run
must cost little. This benchmark records the §5.2 counting-on-a-line
scenario at ``n=64`` and enforces **traced wall <= 1.5x untraced wall**
(best-of-3 each, so the bar survives CI jitter), with the traced result
bit-identical to the untraced one.

The second bar is the point of checkpoints: replaying only the tail after
seeking to the last checkpoint must apply a deterministic fraction of the
records a full header-onwards replay applies (the ratio is a pure function
of the event count and the checkpoint interval), and both reconstructions
must land on the recorded final world digest.

Emits ``BENCH_trace.json`` (plus a ``history.jsonl`` record); CI runs this
as a smoke and enforces both bars (see ``.github/workflows/ci.yml``).
"""

import time

from conftest import print_table, write_bench

from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.trace.record import record_scenario
from repro.trace.replay import replay_trace

SCENARIO = "counting-line"
PARAMS = {"n": 64}
SEED = 11
CHECKPOINT_EVERY = 64
MAX_OVERHEAD = 1.5


def _best_of(fn, rounds=3):
    """Best wall time over ``rounds`` runs (and the last return value)."""
    best = float("inf")
    value = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_trace_recording_and_replay_bars(benchmark, tmp_path):
    """Recording overhead <= 1.5x; checkpoint seek replays only the tail."""
    spec = ExperimentSpec(scenario=SCENARIO, params=PARAMS, seed=SEED)

    def measure():
        untraced_wall, base = _best_of(lambda: run_experiment(spec.resolved()))
        traced_wall, (result, writer) = _best_of(
            lambda: record_scenario(
                SCENARIO,
                params=PARAMS,
                seed=SEED,
                path=tmp_path / "bench.trace",
                checkpoint_every=CHECKPOINT_EVERY,
            )
        )
        full_wall, full = _best_of(
            lambda: replay_trace(writer.path, verify=True, use_checkpoints=False)
        )
        seek_wall, seek = _best_of(
            lambda: replay_trace(writer.path, verify=True)
        )
        return base, result, writer, untraced_wall, traced_wall, (
            full,
            seek,
            full_wall,
            seek_wall,
        )

    base, result, writer, untraced_wall, traced_wall, replays = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )
    full, seek, full_wall, seek_wall = replays

    # Observation-only: the traced trajectory is the untraced one.
    assert result.metrics == base.metrics

    overhead = traced_wall / untraced_wall
    tail_fraction = seek.records_applied / max(1, full.records_applied)
    print_table(
        f"Trace recording: {SCENARIO} n={PARAMS['n']}, "
        f"{full.events} events, checkpoint every {CHECKPOINT_EVERY}",
        f"{'run':>12} {'secs':>9} {'records':>8}",
        (
            f"{'untraced':>12} {untraced_wall:>9.4f} {'-':>8}",
            f"{'traced':>12} {traced_wall:>9.4f} {'-':>8}",
            f"{'replay-full':>12} {full_wall:>9.4f} {full.records_applied:>8d}",
            f"{'replay-seek':>12} {seek_wall:>9.4f} {seek.records_applied:>8d}",
        ),
    )
    print(
        f"recording overhead: {overhead:.2f}x (bar {MAX_OVERHEAD:.1f}x); "
        f"seek applies {tail_fraction:.1%} of the records "
        f"({full_wall / max(seek_wall, 1e-9):.1f}x faster)"
    )

    assert overhead <= MAX_OVERHEAD, (
        f"recording overhead {overhead:.2f}x exceeds {MAX_OVERHEAD}x"
    )

    # Both reconstructions land on the recorded digest; the seek replay
    # applied only the post-checkpoint tail — a deterministic count, so
    # the ratio itself (not just wall time) is the enforced claim.
    reader_digest = full.digest
    assert seek.digest == reader_digest
    assert full.verified and seek.verified
    assert seek.start_events > 0, "no checkpoint to seek to; shrink the interval"
    assert seek.records_applied < full.records_applied
    assert full.records_applied - seek.records_applied >= seek.start_events

    write_bench(
        "trace",
        [result],
        header={
            "experiment": "trace recording overhead + checkpoint seek",
            "untraced_seconds": untraced_wall,
            "traced_seconds": traced_wall,
            "overhead_recording": overhead,
            "replay_full_seconds": full_wall,
            "replay_seek_seconds": seek_wall,
            "records_full": full.records_applied,
            "records_seek": seek.records_applied,
            "tail_fraction": tail_fraction,
            "checkpoint_every": CHECKPOINT_EVERY,
            "events": full.events,
        },
    )
