"""Experiment S8-faults: the robustness questions of the paper's §8.

(i) Under perpetual link breakage no construction stabilizes: a re-gluing
protocol under increasing breakage probability never quiesces, and the
largest component it sustains shrinks as the rate grows. (ii) Blueprint
repair reconstructs detached parts at a cost proportional to the damage,
not to the shape — the affirmative answer to §8's "can we reconstruct
broken parts without resetting the whole population?".
"""

import random

from conftest import print_table

from repro.core.protocol import Rule, RuleProtocol
from repro.core.world import World
from repro.faults.injection import FaultySimulation
from repro.faults.repair import damage_statistics, detach_part, repair_shape
from repro.geometry.ports import PORTS_2D, opposite
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec
from repro.machines.shape_programs import expected_shape, star_program


def gluing_protocol() -> RuleProtocol:
    rules = [
        Rule("q1", p, "q1", opposite(p), 0, "q1", "q1", 1) for p in PORTS_2D
    ]
    return RuleProtocol(rules, initial_state="q1", name="gluing")


def test_perpetual_breakage_prevents_stabilization(benchmark):
    def sweep():
        rows = []
        for prob in (0.0, 0.05, 0.2, 0.5):
            protocol = gluing_protocol()
            world = World(2)
            for _ in range(16):
                world.add_free_node("q1")
            sim = FaultySimulation(world, protocol, break_prob=prob, seed=11)
            res = sim.run(max_steps=1500)
            rows.append(
                (prob, res.stabilized, len(sim.breakages),
                 sim.largest_component_size())
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "S8-faults: gluing protocol under per-event breakage probability p",
        f"{'p':>5} {'stabilized':>10} {'faults':>7} {'max comp':>9}",
        (
            f"{p:>5.2f} {str(s):>10} {f:>7} {m:>9}"
            for p, s, f, m in rows
        ),
    )
    by_prob = {p: (s, f, m) for p, s, f, m in rows}
    assert by_prob[0.0][0] is True       # fault-free run stabilizes
    assert by_prob[0.5][0] is False      # perpetual setback never does
    assert by_prob[0.5][1] > 0


def test_repair_cost_tracks_damage_not_shape(benchmark):
    blueprint = Shape.from_cells(
        [Vec(x, y) for x in range(12) for y in range(12)]
    )

    rows = benchmark.pedantic(
        damage_statistics,
        args=(blueprint, [0.05, 0.1, 0.2, 0.4]),
        kwargs={"trials": 6, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print_table(
        "S8-repair: blueprint repair cost vs damage fraction (12x12 square)",
        f"{'fraction':>9} {'lost cells':>11} {'interactions':>13}",
        (f"{f:>9.2f} {lost:>11.1f} {cost:>13.1f}" for f, lost, cost in rows),
    )
    costs = [cost for _f, _l, cost in rows]
    assert all(a < b for a, b in zip(costs, costs[1:]))
    # Cost per lost cell is bounded (attach + at most 3 extra bonds).
    for _f, lost, cost in rows:
        assert cost <= 5 * lost + 1


def test_repair_restores_a_constructed_star(benchmark):
    # End-to-end: damage the star of Figure 7(c) and repair it from its
    # own blueprint.
    star = expected_shape(star_program(), 8)

    def damage_and_repair():
        rng = random.Random(5)
        damaged, lost = detach_part(star, 0.3, rng=rng)
        res = repair_shape(damaged, star, rng=rng)
        return lost, res

    lost, res = benchmark.pedantic(damage_and_repair, rounds=1, iterations=1)
    print(
        f"\nS8-repair star: lost {len(lost)} of {len(star.cells)} cells, "
        f"repaired in {res.interactions} interactions"
    )
    assert res.repaired.cells == star.cells
    assert res.nodes_attached == len(lost)
