"""Experiments T4-univ, F7-star, R4-pat: the universal constructor (§6.3).

For every shape program: build on d^2 nodes, release, compare against the
TM-defined shape, and record the waste (Theorem 4's bound: at most
``(d-1) d``, attained by the line). The star of Figure 7(c) and the
patterns of Remark 4 are regenerated explicitly.
"""

from conftest import print_table

from repro.constructors.tm_construction import (
    run_pattern_construction,
    run_shape_construction,
)
from repro.constructors.universal import run_universal
from repro.machines.shape_programs import (
    comb_program,
    cross_program,
    expected_shape,
    frame_program,
    full_square_program,
    line_program,
    ring_pattern_program,
    star_program,
)
from repro.viz.ascii_art import render_labels, render_shape


def test_theorem4_program_sweep(benchmark):
    programs = [
        line_program(),
        full_square_program(),
        cross_program(),
        star_program(),
        frame_program(),
        comb_program(),
    ]

    def sweep():
        rows = []
        d = 8
        for program in programs:
            res = run_shape_construction(program, d)
            assert res.shape.same_up_to_translation(expected_shape(program, d))
            rows.append((program.name, d, len(res.on_cells), res.waste,
                         res.interactions))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "T4-univ: shapes on the 8x8 square (waste bound: (d-1)d = 56)",
        f"{'program':>12} {'d':>3} {'|G|':>4} {'waste':>6} {'interactions':>13}",
        (f"{p:>12} {d:>3} {g:>4} {w:>6} {i:>13}" for p, d, g, w, i in rows),
    )
    for name, d, _g, waste, _i in rows:
        assert waste <= (d - 1) * d
        if name == "line":
            assert waste == (d - 1) * d  # the worst case is attained


def test_figure7_star_end_to_end(benchmark):
    res = benchmark.pedantic(
        run_universal, args=(star_program(), 49),
        kwargs={"seed": 7}, rounds=1, iterations=1,
    )
    assert res.count_exact and res.d == 7
    assert res.matches(star_program())
    print("\nF7-star: the star of Figure 7(c), built on 49 nodes:")
    print(render_shape(res.shape))
    print(
        f"counting events {res.counting_events}, square events "
        f"{res.square_events}, construction {res.construction_interactions}"
    )


def test_remark4_pattern(benchmark):
    colors, interactions = benchmark.pedantic(
        run_pattern_construction, args=(ring_pattern_program(3), 9),
        rounds=1, iterations=1,
    )
    print("\nR4-pat: concentric ring pattern on the 9x9 square:")
    print(render_labels(colors))
    print(f"interactions: {interactions}")
    assert len(colors) == 81
