"""Experiment R1-model: the exact expected-time references of Remark 1.

Remark 1 bounds Counting-Upper-Bound's expected running time by twice the
meet-everybody time, ``O(n² log n)`` interactions. This bench prints the
closed-form models against Monte-Carlo measurements and against the actual
protocol's raw-interaction counts, and contrasts them with the
``Θ(n log n)`` epidemic reference of Theorem 2's discussion.
"""

import random

import pytest
from conftest import print_table

from repro.analysis.timing import (
    counting_time_model,
    expected_epidemic_time,
    expected_leader_meet_all,
    timing_table,
)
from repro.population.counting import CountingUpperBound


def test_reference_times_model_vs_measured(benchmark):
    rows = benchmark.pedantic(
        timing_table, args=([16, 32, 64, 128],),
        kwargs={"trials": 30, "seed": 0}, rounds=1, iterations=1,
    )
    print_table(
        "R1-model: meet-everybody and epidemic times, model vs measured",
        f"{'n':>5} {'meet model':>11} {'meet meas':>10} "
        f"{'epid model':>11} {'epid meas':>10}",
        (
            f"{n:>5} {mm:>11.0f} {ms:>10.0f} {em:>11.0f} {es:>10.0f}"
            for n, mm, ms, em, es in rows
        ),
    )
    for _n, mm, ms, em, es in rows:
        assert abs(ms - mm) / mm < 0.35
        assert abs(es - em) / em < 0.35


def test_counting_time_against_remark1_model(benchmark):
    def measure():
        rng = random.Random(3)
        rows = []
        for n in (32, 64, 128):
            trials = 40
            total = sum(
                CountingUpperBound(n, 4, rng=rng).run().raw_interactions
                for _ in range(trials)
            )
            rows.append((n, total / trials, counting_time_model(n)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "R1-model: Counting-Upper-Bound raw interactions vs 2x meet-everybody",
        f"{'n':>5} {'measured':>10} {'model':>10} {'ratio':>6}",
        (
            f"{n:>5} {meas:>10.0f} {model:>10.0f} {meas / model:>6.3f}"
            for n, meas, model in rows
        ),
    )
    # The protocol stays within the model bound and in the same regime.
    for _n, measured, model in rows:
        assert measured < model
        assert measured > model / 20
    # Regime check: measured/model ratio is roughly flat across n.
    ratios = [meas / model for _n, meas, model in rows]
    assert max(ratios) / min(ratios) < 2.0


def test_meet_vs_epidemic_gap_grows_linearly(benchmark):
    def gaps():
        return [
            (n, expected_leader_meet_all(n) / expected_epidemic_time(n))
            for n in (32, 64, 128, 256)
        ]

    rows = benchmark.pedantic(gaps, rounds=1, iterations=1)
    print_table(
        "R1-model: (n^2 log n) / (n log n) gap",
        f"{'n':>5} {'ratio':>8}",
        (f"{n:>5} {r:>8.1f}" for n, r in rows),
    )
    ratios = [r for _n, r in rows]
    for a, b in zip(ratios, ratios[1:]):
        assert b / a == pytest.approx(2.0, rel=0.02)
