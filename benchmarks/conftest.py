"""Shared helpers for the benchmark harness.

Each benchmark regenerates one experiment of the registered scenario index
in EXPERIMENTS.md (the generated `repro list --format md` catalogue) and
prints the paper-style rows (run ``pytest benchmarks/ --benchmark-only -s``
to see them). Assertions encode the *shape* of the paper's claims — who
wins, by roughly what factor — not absolute timings.

Migrated benchmarks drive the declarative experiment layer
(``repro.experiments``): they build ``ExperimentSpec`` / ``SweepSpec``
objects, read ``ExperimentResult.metrics``, and emit their artifacts as
``BENCH_<scenario>.json`` through the one shared writer
(:func:`write_bench`) so every artifact validates against the same result
schema as ``repro sweep --json``.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

#: Where BENCH_<scenario>.json artifacts land (next to the benchmarks).
BENCH_DIR = Path(__file__).parent


def print_table(title: str, header: str, rows) -> None:
    print(f"\n== {title} ==")
    print(header)
    for row in rows:
        print(row)


def write_bench(scenario: str, results, header=None) -> Path:
    """Emit ``BENCH_<scenario>.json`` via the shared schema-validated writer."""
    from repro.experiments import write_bench_json

    return write_bench_json(scenario, results, BENCH_DIR, header)


def _untracked_bench_artifacts():
    """``BENCH_*.json`` files on disk that git does not track.

    Every benchmark that emits an artifact must have that artifact
    committed, so the repository always carries the current normalized
    set — an emitted-but-untracked file means a bench drifted.
    """
    try:
        tracked = subprocess.run(
            ["git", "ls-files", "BENCH_*.json"],
            cwd=BENCH_DIR,
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        ).stdout.split()
    except (OSError, subprocess.SubprocessError):
        return []  # no git (sdist, bare checkout): nothing to enforce
    return sorted(
        p.name for p in BENCH_DIR.glob("BENCH_*.json") if p.name not in tracked
    )


@pytest.fixture(scope="session", autouse=True)
def _bench_artifact_drift_guard():
    """Fail the session when a bench emitted an uncommitted artifact.

    A teardown failure (not ``pytest_sessionfinish``, whose exit status
    pytest snapshots before the hook runs) is what reliably turns into a
    non-zero exit code.
    """
    yield
    untracked = _untracked_bench_artifacts()
    assert not untracked, (
        "benchmark artifacts exist on disk but are not committed: "
        + ", ".join(untracked)
        + " — run `git add benchmarks/BENCH_*.json` so the tracked set "
        "stays in sync with what the benches emit"
    )
