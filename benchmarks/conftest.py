"""Shared helpers for the benchmark harness.

Each benchmark regenerates one experiment of the registered scenario index
in EXPERIMENTS.md (the generated `repro list --format md` catalogue) and
prints the paper-style rows (run ``pytest benchmarks/ --benchmark-only -s``
to see them). Assertions encode the *shape* of the paper's claims — who
wins, by roughly what factor — not absolute timings.

Migrated benchmarks drive the declarative experiment layer
(``repro.experiments``): they build ``ExperimentSpec`` / ``SweepSpec``
objects, read ``ExperimentResult.metrics``, and emit their artifacts as
``BENCH_<scenario>.json`` through the one shared writer
(:func:`write_bench`) so every artifact validates against the same result
schema as ``repro sweep --json``.
"""

from __future__ import annotations

from pathlib import Path

#: Where BENCH_<scenario>.json artifacts land (next to the benchmarks).
BENCH_DIR = Path(__file__).parent


def print_table(title: str, header: str, rows) -> None:
    print(f"\n== {title} ==")
    print(header)
    for row in rows:
        print(row)


def write_bench(scenario: str, results, header=None) -> Path:
    """Emit ``BENCH_<scenario>.json`` via the shared schema-validated writer."""
    from repro.experiments import write_bench_json

    return write_bench_json(scenario, results, BENCH_DIR, header)
