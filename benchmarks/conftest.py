"""Shared helpers for the benchmark harness.

Each benchmark regenerates one experiment of EXPERIMENTS.md and prints the
paper-style rows (run ``pytest benchmarks/ --benchmark-only -s`` to see
them). Assertions encode the *shape* of the paper's claims — who wins, by
roughly what factor — not absolute timings.
"""

from __future__ import annotations


def print_table(title: str, header: str, rows) -> None:
    print(f"\n== {title} ==")
    print(header)
    for row in rows:
        print(row)
