"""Shared helpers for the benchmark harness.

Each benchmark regenerates one experiment of the registered scenario index
in EXPERIMENTS.md (the generated `repro list --format md` catalogue) and
prints the paper-style rows (run ``pytest benchmarks/ --benchmark-only -s``
to see them). Assertions encode the *shape* of the paper's claims — who
wins, by roughly what factor — not absolute timings.

Migrated benchmarks drive the declarative experiment layer
(``repro.experiments``): they build ``ExperimentSpec`` / ``SweepSpec``
objects, read ``ExperimentResult.metrics``, and emit their artifacts as
``BENCH_<scenario>.json`` through the one shared writer
(:func:`write_bench`) so every artifact validates against the same result
schema as ``repro sweep --json``.
"""

from __future__ import annotations

import subprocess
import time
from pathlib import Path

import pytest

#: Where BENCH_<scenario>.json artifacts land (next to the benchmarks).
BENCH_DIR = Path(__file__).parent

#: The committed perf-trajectory log: one normalized record per bench run.
HISTORY_PATH = BENCH_DIR / "history.jsonl"


def print_table(title: str, header: str, rows) -> None:
    print(f"\n== {title} ==")
    print(header)
    for row in rows:
        print(row)


def git_sha() -> str | None:
    """The current commit, or ``None`` outside a git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=BENCH_DIR,
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None


def write_bench(scenario: str, results, header=None) -> Path:
    """Emit ``BENCH_<scenario>.json`` via the shared schema-validated writer.

    Every emission also appends one normalized record (scenario,
    deterministic counters, wall time, git SHA) to
    ``benchmarks/history.jsonl`` — the perf-trajectory log the regression
    gate compares against.
    """
    from repro.experiments import append_history, write_bench_json

    results = list(results)
    path = write_bench_json(scenario, results, BENCH_DIR, header)
    record = append_history(
        HISTORY_PATH,
        scenario,
        results,
        git_sha=git_sha(),
        recorded_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        extra=header,
    )
    _assert_history_record_valid(scenario, record)
    return path


def append_raw_history(bench: str, **counters) -> None:
    """History record for a bench whose artifact is not a result payload.

    The direct-artifact benches (geometry, dispatch, splits) measure
    kernel comparisons rather than scenario trials; they pass their
    normalized counters (``evaluations``, ``events``, ``wall_time``,
    speedups) explicitly and still land one record per run in
    ``history.jsonl``.
    """
    from repro.experiments import append_history

    record = append_history(
        HISTORY_PATH,
        bench,
        [],
        git_sha=git_sha(),
        recorded_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        extra=counters,
    )
    _assert_history_record_valid(bench, record)


def _assert_history_record_valid(bench: str, record: dict) -> None:
    """Schema-validate a just-appended ``history.jsonl`` record.

    The perf-trajectory gate is only as good as the log's uniformity, so
    a malformed append fails the emitting bench immediately instead of
    poisoning the committed history.
    """
    from repro.experiments.io import validate_history_record

    errors = validate_history_record(record)
    assert not errors, (
        f"bench {bench!r} appended an invalid history record: "
        + "; ".join(errors)
    )


def _untracked_bench_artifacts():
    """Emitted-on-disk artifacts that git does not track.

    Every benchmark that emits an artifact must have that artifact
    committed, so the repository always carries the current normalized
    set — an emitted-but-untracked file means a bench drifted. Covers the
    ``BENCH_*.json`` snapshots and the ``history.jsonl`` trajectory log.
    """
    try:
        tracked = subprocess.run(
            ["git", "ls-files", "BENCH_*.json", HISTORY_PATH.name],
            cwd=BENCH_DIR,
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        ).stdout.split()
    except (OSError, subprocess.SubprocessError):
        return []  # no git (sdist, bare checkout): nothing to enforce
    on_disk = sorted(BENCH_DIR.glob("BENCH_*.json"))
    if HISTORY_PATH.exists():
        on_disk.append(HISTORY_PATH)
    return sorted(p.name for p in on_disk if p.name not in tracked)


@pytest.fixture(scope="session", autouse=True)
def _bench_artifact_drift_guard():
    """Fail the session when a bench emitted an uncommitted artifact.

    A teardown failure (not ``pytest_sessionfinish``, whose exit status
    pytest snapshots before the hook runs) is what reliably turns into a
    non-zero exit code.
    """
    yield
    untracked = _untracked_bench_artifacts()
    assert not untracked, (
        "benchmark artifacts exist on disk but are not committed: "
        + ", ".join(untracked)
        + " — run `git add benchmarks/BENCH_*.json benchmarks/history.jsonl` "
        "so the tracked set stays in sync with what the benches emit"
    )
