"""Experiments P1-squar and S7-rep: shape replication (§7).

Both experiments run through the experiment layer — the registered
``squaring`` and ``replicate`` scenarios — and emit the schema-validated
``BENCH_squaring.json`` / ``BENCH_replicate.json`` artifacts.
"""

from conftest import print_table, write_bench

from repro.experiments import ExperimentSpec, run_experiment


def test_squaring_cost(benchmark):
    def sweep():
        return [
            run_experiment(
                ExperimentSpec("squaring", {"size": size}, seed=size)
            )
            for size in (8, 16, 32, 64)
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (
            r.params["size"],
            r.metrics["rect_cells"],
            r.metrics["fillers_used"],
            r.metrics["interactions"],
        )
        for r in results
    ]
    print_table(
        "P1-squar: squaring random shapes to R_G",
        f"{'|G|':>4} {'|R_G|':>6} {'fillers':>8} {'interactions':>13}",
        (f"{g:>4} {r:>6} {f:>8} {i:>13}" for g, r, f, i in rows),
    )
    write_bench("squaring", results, header={"experiment": "P1-squar"})
    for g, r, fillers, _i in rows:
        assert fillers == r - g


def test_replication_approaches(benchmark):
    def sweep():
        results = []
        for size in (8, 16, 32):
            a = run_experiment(
                ExperimentSpec(
                    "replicate", {"size": size, "approach": "shifting"}, seed=size
                )
            )
            b = run_experiment(
                ExperimentSpec(
                    "replicate", {"size": size, "approach": "columns"}, seed=size + 1
                )
            )
            assert a.metrics["identical"] and b.metrics["identical"]
            results.append((a, b))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (
            a.params["size"],
            a.metrics["nodes_used"],
            a.metrics["waste"],
            a.metrics["interactions"],
            b.metrics["interactions"],
        )
        for a, b in results
    ]
    print_table(
        "S7-rep: replication, shifting (A1) vs columns (A2)",
        f"{'|G|':>4} {'nodes':>6} {'waste':>6} {'A1 work':>8} {'A2 work':>8}",
        (f"{g:>4} {n:>6} {w:>6} {a:>8} {b:>8}" for g, n, w, a, b in rows),
    )
    write_bench(
        "replicate",
        [r for pair in results for r in pair],
        header={"experiment": "S7-rep"},
    )
    for _g, nodes, waste, _a, _b in rows:
        assert waste == nodes - 2 * _g
