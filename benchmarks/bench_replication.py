"""Experiments P1-squar and S7-rep: shape replication (§7)."""

import random

from conftest import print_table

from repro.geometry.random_shapes import random_connected_shape
from repro.replication.columns import replicate_by_columns
from repro.replication.shifting import replicate_by_shifting
from repro.replication.squaring import run_squaring


def test_squaring_cost(benchmark):
    def sweep():
        rng = random.Random(0)
        rows = []
        for size in (8, 16, 32, 64):
            shape = random_connected_shape(size, rng)
            res = run_squaring(shape, seed=size)
            rows.append((size, len(res.rectangle.cells), res.fillers_used,
                         res.interactions))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "P1-squar: squaring random shapes to R_G",
        f"{'|G|':>4} {'|R_G|':>6} {'fillers':>8} {'interactions':>13}",
        (f"{g:>4} {r:>6} {f:>8} {i:>13}" for g, r, f, i in rows),
    )
    for g, r, fillers, _i in rows:
        assert fillers == r - g


def test_replication_approaches(benchmark):
    def sweep():
        rng = random.Random(1)
        rows = []
        for size in (8, 16, 32):
            shape = random_connected_shape(size, rng)
            a = replicate_by_shifting(shape, seed=size)
            b = replicate_by_columns(shape, seed=size + 1)
            assert a.identical and b.identical
            rows.append((size, a.nodes_used, a.waste,
                         a.interactions, b.interactions))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "S7-rep: replication, shifting (A1) vs columns (A2)",
        f"{'|G|':>4} {'nodes':>6} {'waste':>6} {'A1 work':>8} {'A2 work':>8}",
        (f"{g:>4} {n:>6} {w:>6} {a:>8} {b:>8}" for g, n, w, a, b in rows),
    )
    for _g, nodes, waste, _a, _b in rows:
        assert waste == nodes - 2 * _g
