"""Experiment C1-ev: evidence for Conjecture 1 (§5.2).

Anonymous protocols terminate after a constant number of interactions with
probability bounded away from zero as n grows, and learn nothing about n.
"""

from conftest import print_table

from repro.population.leaderless import (
    early_termination_experiment,
    state_multiplicity_experiment,
)


def test_early_termination_rate_constant_in_n(benchmark):
    def sweep():
        return [
            early_termination_experiment(n, b=2, trials=40, seed=0)
            for n in (30, 60, 120, 240)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "C1-ev: anonymous window protocol — early termination",
        f"{'n':>5} {'early rate':>11} {'terminator steps':>17} {'count error':>12}",
        (
            f"{o.n:>5} {o.early_termination_rate:>11.2f} "
            f"{o.mean_interactions_of_terminator:>17.1f} "
            f"{o.mean_relative_count_error:>12.2f}"
            for o in rows
        ),
    )
    for obs in rows:
        assert obs.early_termination_rate > 0.4
        assert obs.mean_relative_count_error > 0.5
    # The rate does not vanish as n grows 8x.
    assert rows[-1].early_termination_rate > rows[0].early_termination_rate * 0.5


def test_state_multiplicities_linear(benchmark):
    def sweep():
        return [
            (n, state_multiplicity_experiment(n, k=3, seed=1)[0])
            for n in (60, 120, 240)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "C1-ev: minimum state multiplicity / n (argument parts 1-2)",
        f"{'n':>5} {'floor/n':>9}",
        (f"{n:>5} {f:>9.3f}" for n, f in rows),
    )
    for _n, floor in rows:
        assert floor > 0.05
