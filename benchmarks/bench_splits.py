"""Acceptance bar for split/surgery delta pruning (the PR 5 tentpole).

The fault/repair dynamics of §8 hammer the one path the merge-delta cache
of PR 2 left coarse: every bond deletion and node excision used to bump
``Component.version`` and re-examine the whole damaged component. With the
unified world-delta journal, splits and surgery carry their exact fallout
(departed fragments, vacated cells, the cut frontier) and the cache prunes
finely — this benchmark drives a fault-heavy repair workload and asserts
the delta path performs **>= 2x fewer candidate evaluations** than the
coarse version sweep (``split_delta=False``, the pre-PR 5 behavior), with
bit-identical seeded trajectories. Both counts are deterministic (pure
candidate accounting on one seeded trajectory), so the bar is exact, not
statistical.

Workload: a stabilized plate of *sticky* nodes plus a pool of free
spares, under a repair protocol in which spares bond to the structure but
not to each other (the §8 shape-repair picture: detached nodes re-attach
at the damage frontier) — while a :class:`~repro.faults.FaultySimulation`
keeps excising random bonded nodes and snapping bonds. Damage and repair
interleave for the whole run, and every fault lands in the world-delta
journal. The coarse sweep re-examines the whole plate per fault (its
boundary ports against every spare); the delta path re-examines only the
excised node, the cut frontier, and placements unblocked by the vacated
cells.

Emits ``BENCH_splits.json``; CI runs this as a smoke and enforces the bar
(see ``.github/workflows/ci.yml``).
"""

import json
import time
from pathlib import Path

from conftest import append_raw_history, print_table

from repro.core.protocol import Rule, RuleProtocol
from repro.core.scheduler import make_scheduler
from repro.core.trace import world_to_dict
from repro.core.world import World
from repro.faults.injection import FaultySimulation
from repro.geometry.ports import PORTS_2D, opposite
from repro.geometry.vec import Vec

PLATE_W, PLATE_H = 12, 10
FREE_NODES = 60
MAX_STEPS = 250
BREAK_PROB = 0.05
EXCISE_PROB = 0.5
SEED = 11


def sticky_repair_protocol() -> RuleProtocol:
    """Spares (``f``) bond to the structure (``s``) and adopt its state;
    spares never bond to each other — repair happens at the structure's
    frontier, as in the §8 blueprint-repair picture."""
    rules = [Rule("s", p, "f", opposite(p), 0, "s", "s", 1) for p in PORTS_2D]
    return RuleProtocol(rules, initial_state="f", name="sticky-repair")


def fault_repair_world(protocol: RuleProtocol) -> World:
    """The stabilized plate plus a pool of free spares."""
    world = World(2)
    world.add_component_from_cells(
        {Vec(x, y): "s" for x in range(PLATE_W) for y in range(PLATE_H)}
    )
    for _ in range(FREE_NODES):
        world.add_free_node("f")
    world.adopt_space(protocol.program.space)
    return world


def _run(split_delta: bool):
    protocol = sticky_repair_protocol()
    world = fault_repair_world(protocol)
    scheduler = make_scheduler("hot", incremental=True, split_delta=split_delta)
    fsim = FaultySimulation(
        world,
        protocol,
        break_prob=BREAK_PROB,
        excise_prob=EXCISE_PROB,
        scheduler=scheduler,
        seed=SEED,
    )
    start = time.perf_counter()
    fsim.run(max_steps=MAX_STEPS)
    elapsed = time.perf_counter() - start
    cache = scheduler._cache
    return {
        "events": fsim.events,
        "breakages": len(fsim.breakages),
        "excisions": len(fsim.excisions),
        "evaluations": scheduler.evaluations,
        "split_prunes": cache.split_prunes,
        "merge_prunes": cache.merge_prunes,
        "full_rebuilds": cache.full_rebuilds,
        "seconds": elapsed,
        "final_world": world_to_dict(world),
    }


def test_split_delta_speedup(benchmark):
    """>= 2x fewer candidate evaluations than the coarse version sweep on
    the fault-heavy repair workload, with identical seeded trajectories."""

    def measure():
        return {
            "coarse sweep": _run(split_delta=False),
            "split delta": _run(split_delta=True),
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    coarse = results["coarse sweep"]
    delta = results["split delta"]
    print_table(
        f"Split/surgery delta pruning: {PLATE_W}x{PLATE_H} plate + "
        f"{FREE_NODES} spares, {MAX_STEPS} steps, seed {SEED}",
        f"{'cache':>13} {'events':>7} {'faults':>7} {'evals':>10} {'secs':>8}",
        (
            f"{name:>13} {r['events']:>7d} "
            f"{r['breakages'] + r['excisions']:>7d} "
            f"{r['evaluations']:>10d} {r['seconds']:>8.3f}"
            for name, r in results.items()
        ),
    )
    # Identical seeded trajectories: the delta machinery is transparent.
    assert delta["events"] == coarse["events"]
    assert delta["breakages"] == coarse["breakages"]
    assert delta["excisions"] == coarse["excisions"]
    assert delta["final_world"] == coarse["final_world"]
    # The workload must actually be split-heavy, and the fine path used.
    assert delta["breakages"] + delta["excisions"] >= 50
    assert delta["split_prunes"] >= 50
    assert delta["full_rebuilds"] == 1
    ratio = coarse["evaluations"] / delta["evaluations"]
    out = Path(__file__).parent / "BENCH_splits.json"
    out.write_text(
        json.dumps(
            {
                "workload": (
                    f"fault-heavy repair: {PLATE_W}x{PLATE_H} sticky plate "
                    f"+ {FREE_NODES} spares, break_prob={BREAK_PROB}, "
                    f"excise_prob={EXCISE_PROB}, {MAX_STEPS} steps, "
                    f"seed {SEED}"
                ),
                "cases": {
                    name: {
                        k: v for k, v in r.items() if k != "final_world"
                    }
                    for name, r in results.items()
                },
                "speedups": {"evaluations": ratio},
            },
            indent=2,
        )
        + "\n"
    )
    append_raw_history(
        "splits",
        evaluations=delta["evaluations"],
        events=delta["events"],
        wall_time=delta["seconds"],
        evaluations_coarse=coarse["evaluations"],
        speedup_evaluations=ratio,
    )
    # The acceptance bar of the split-delta PR.
    assert ratio >= 2.0, (coarse["evaluations"], delta["evaluations"])
