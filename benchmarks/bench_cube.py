"""Experiment L2-3D: Cube-Knowing-n, the 3D extension of Lemma 2.

Each slab of the ``m x m x m`` cube runs the genuine scheduler-driven 2D
pipeline (seed/replica self-replication); stacking is the leader's
accounted walk. The bench reports per-stage interaction counts and checks
the slab cost dominates (the stacking walk is only ``O(m²)`` per slab
versus the slab pipeline's scheduler work).
"""

from conftest import print_table

from repro.constructors.cube import run_cube_known_n


def test_cube_construction(benchmark):
    def build():
        rows = []
        for m in (3, 4):
            res = run_cube_known_n(m**3, seed=1)
            slab_sched = sum(s.scheduler_events for s in res.slabs)
            rows.append(
                (m, m**3, slab_sched, res.leader_interactions,
                 res.cube_shape().is_full_box())
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print_table(
        "L2-3D: cube assembly (m x m x m on n = m^3 nodes)",
        f"{'m':>3} {'n':>5} {'scheduler':>10} {'leader':>7} {'full box':>9}",
        (
            f"{m:>3} {n:>5} {sched:>10} {lead:>7} {str(box):>9}"
            for m, n, sched, lead, box in rows
        ),
    )
    for _m, _n, sched, lead, box in rows:
        assert box
        assert sched > lead / 4  # scheduler work is substantial
