"""Experiment L2-3D: Cube-Knowing-n, the 3D extension of Lemma 2.

Each slab of the ``m x m x m`` cube runs the genuine scheduler-driven 2D
pipeline (seed/replica self-replication); stacking is the leader's
accounted walk. The bench reports per-stage interaction counts and checks
the slab cost dominates (the stacking walk is only ``O(m²)`` per slab
versus the slab pipeline's scheduler work).

Runs the registered ``cube`` scenario through the experiment layer and
emits the schema-validated ``BENCH_cube.json``.
"""

from conftest import print_table, write_bench

from repro.experiments import SweepSpec, run_sweep


def test_cube_construction(benchmark):
    def build():
        sweep = SweepSpec(scenario="cube", grid={"m": [3, 4]}, base_seed=1)
        return run_sweep(sweep)

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        (
            r.params["m"],
            r.metrics["n"],
            r.metrics["slab_scheduler_events"],
            r.metrics["leader_interactions"],
            r.metrics["full_box"],
        )
        for r in results
    ]
    print_table(
        "L2-3D: cube assembly (m x m x m on n = m^3 nodes)",
        f"{'m':>3} {'n':>5} {'scheduler':>10} {'leader':>7} {'full box':>9}",
        (
            f"{m:>3} {n:>5} {sched:>10} {lead:>7} {str(box):>9}"
            for m, n, sched, lead, box in rows
        ),
    )
    write_bench("cube", results, header={"experiment": "L2-3D"})
    for _m, _n, sched, lead, box in rows:
        assert box
        assert sched > lead / 4  # scheduler work is substantial
