"""Microbenchmarks for the packed geometry kernel (TimerCase-style).

Each case pins one inner loop of the §3 permissibility predicate —
``World.inter_alignments`` collision checking and ``World.open_slots``
scanning — and times the packed fast path against a frozen pure-``Vec``
reference (the pre-refactor implementation). The harness mirrors the
perftest ``TimerCase`` shape: ``setup(n)`` builds the workload once,
``op(i)`` is the timed unit, and results are emitted to
``BENCH_geometry.json`` next to this file.

CI runs this as a smoke (see ``.github/workflows/ci.yml``) and enforces the
acceptance bar of the packed-kernel PR: >= 2x over the reference on both
kernels. Locally the margin is typically far larger (5-20x).
"""

import json
import time
from pathlib import Path

from conftest import append_raw_history, print_table

from repro.core.protocol import Rule, RuleProtocol
from repro.core.simulator import Simulation
from repro.core.world import World
from repro.geometry.ports import PORTS_2D, opposite, port_direction
from repro.geometry.rotation import rotations_for_dimension
from repro.geometry.vec import Vec

# ----------------------------------------------------------------------
# Frozen pure-Vec reference kernels (pre-refactor behavior)
# ----------------------------------------------------------------------


def ref_open_slots(world, comp):
    slots = []
    for cell, nid in comp.cells.items():
        rec = world.nodes[nid]
        for port in world.ports:
            if cell + rec.orientation.apply(port_direction(port)) not in comp.cells:
                slots.append((nid, port))
    return slots


def ref_inter_alignments(world, nid1, port1, nid2, port2):
    rec1, rec2 = world.nodes[nid1], world.nodes[nid2]
    if rec1.component_id == rec2.component_id:
        return []
    comp1 = world.components[rec1.component_id]
    comp2 = world.components[rec2.component_id]
    d1 = rec1.orientation.apply(port_direction(port1))
    target_cell = rec1.pos + d1
    if target_cell in comp1.cells:
        return []
    d2 = rec2.orientation.apply(port_direction(port2))
    placements = []
    for rot in rotations_for_dimension(world.dimension):
        if rot.apply(d2) != -d1:
            continue
        trans = target_cell - rot.apply(rec2.pos)
        if all(
            (rot.apply(cell) + trans) not in comp1.cells for cell in comp2.cells
        ):
            placements.append((rot, trans))
    return placements


# ----------------------------------------------------------------------
# TimerCase harness
# ----------------------------------------------------------------------


class TimerCase:
    """One timed kernel: ``setup(n)`` once, then ``op(i)`` n times."""

    name = "timer-case"

    def setup(self, n: int) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def op(self, i: int) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


def _aggregated_world(n=64, events=60, seed=11):
    """A mid-aggregation world: several multi-cell rotated components."""
    rules = [Rule("g", p, "g", opposite(p), 0, "g", "g", 1) for p in PORTS_2D]
    protocol = RuleProtocol(rules, initial_state="g", name="aggregation")
    world = World.of_free_nodes(n, protocol, leaders=0)
    Simulation(world, protocol, seed=seed).run(max_events=events)
    return world


class _AlignmentCaseBase(TimerCase):
    def setup(self, n: int) -> None:
        self.world = _aggregated_world()
        comps = sorted(
            self.world.components.values(), key=lambda c: -c.size()
        )[:6]
        self.probes = []
        for ca in comps:
            for cb in comps:
                if ca.cid >= cb.cid:
                    continue
                for nid1, p1 in self.world.open_slots(ca)[:8]:
                    for nid2, p2 in self.world.open_slots(cb)[:4]:
                        self.probes.append((nid1, p1, nid2, p2))


class PackedInterAlignmentsCase(_AlignmentCaseBase):
    name = "inter_alignments.packed"

    def op(self, i: int) -> None:
        world = self.world
        for nid1, p1, nid2, p2 in self.probes:
            world.inter_alignments(nid1, p1, nid2, p2)


class ReferenceInterAlignmentsCase(_AlignmentCaseBase):
    name = "inter_alignments.reference"

    def op(self, i: int) -> None:
        world = self.world
        for nid1, p1, nid2, p2 in self.probes:
            ref_inter_alignments(world, nid1, p1, nid2, p2)


class _SlotsCaseBase(TimerCase):
    def setup(self, n: int) -> None:
        self.world = _aggregated_world()
        self.comps = list(self.world.components.values())


class PackedOpenSlotsCase(_SlotsCaseBase):
    name = "open_slots.packed"

    def op(self, i: int) -> None:
        world = self.world
        for comp in self.comps:
            world.open_slots(comp)


class ReferenceOpenSlotsCase(_SlotsCaseBase):
    name = "open_slots.reference"

    def op(self, i: int) -> None:
        world = self.world
        for comp in self.comps:
            ref_open_slots(world, comp)


def run_case(case: TimerCase, iterations: int) -> dict:
    case.setup(iterations)
    case.op(0)  # warm lazy caches out of the timed region
    start = time.perf_counter()
    for i in range(iterations):
        case.op(i)
    elapsed = time.perf_counter() - start
    return {
        "name": case.name,
        "iterations": iterations,
        "seconds": elapsed,
        "ops_per_sec": iterations / elapsed if elapsed else float("inf"),
    }


def test_packed_kernel_beats_reference(benchmark):
    iterations = 30

    def measure():
        results = [
            run_case(case, iterations)
            for case in (
                PackedInterAlignmentsCase(),
                ReferenceInterAlignmentsCase(),
                PackedOpenSlotsCase(),
                ReferenceOpenSlotsCase(),
            )
        ]
        return {r["name"]: r for r in results}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedups = {
        "inter_alignments": (
            results["inter_alignments.reference"]["seconds"]
            / results["inter_alignments.packed"]["seconds"]
        ),
        "open_slots": (
            results["open_slots.reference"]["seconds"]
            / results["open_slots.packed"]["seconds"]
        ),
    }
    print_table(
        "Packed geometry kernel vs pure-Vec reference",
        f"{'case':>28} {'iters':>6} {'secs':>9} {'ops/s':>10}",
        (
            f"{r['name']:>28} {r['iterations']:>6d} {r['seconds']:>9.4f} "
            f"{r['ops_per_sec']:>10.1f}"
            for r in results.values()
        ),
    )
    print(
        f"speedups: inter_alignments {speedups['inter_alignments']:.1f}x, "
        f"open_slots {speedups['open_slots']:.1f}x"
    )
    out = Path(__file__).parent / "BENCH_geometry.json"
    out.write_text(
        json.dumps({"cases": results, "speedups": speedups}, indent=2)
        + "\n"
    )
    append_raw_history(
        "geometry",
        wall_time=sum(r["seconds"] for r in results.values()),
        speedup_inter_alignments=speedups["inter_alignments"],
        speedup_open_slots=speedups["open_slots"],
    )
    # The acceptance bar of the packed-kernel PR.
    assert speedups["inter_alignments"] >= 2.0, speedups
    assert speedups["open_slots"] >= 2.0, speedups
