"""Experiment L1-count: Counting-on-a-Line (§6.1, Lemma 1).

Regenerates the Lemma 1 guarantees on populations up to a few hundred
nodes: termination, `r0 >= n/2`, line length floor(lg r0) + 1, debt repaid,
plus the exact-mode extension of Remark 2.
"""

from conftest import print_table

from repro.constructors.counting_line import run_counting_on_a_line


def test_lemma1_sweep(benchmark):
    def sweep():
        rows = []
        for n in (32, 64, 128, 256):
            res = run_counting_on_a_line(n, b=4, seed=n)
            rows.append(
                (n, res.r0, res.line_length, res.expected_length,
                 res.r2, res.events, res.success)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "L1-count: Counting-on-a-Line (b = 4)",
        f"{'n':>5} {'r0':>5} {'len':>4} {'lg r0 + 1':>9} {'debt':>5} {'events':>8}",
        (
            f"{n:>5} {r0:>5} {ln:>4} {el:>9} {r2:>5} {ev:>8}"
            for n, r0, ln, el, r2, ev, _s in rows
        ),
    )
    for n, r0, length, expect_len, r2, _ev, success in rows:
        assert success
        assert length == expect_len
        assert r2 == 0


def test_exact_mode_counts_n_minus_one(benchmark):
    def sweep():
        return [
            (n, run_counting_on_a_line(n, b=4, seed=n + 1, exact_factor=3).r0)
            for n in (32, 64, 128)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "L1-count (exact mode, Remark 2): r0 vs n - 1",
        f"{'n':>5} {'r0':>5}",
        (f"{n:>5} {r0:>5}" for n, r0 in rows),
    )
    for n, r0 in rows:
        assert r0 == n - 1
