"""Acceptance bars for the trace diff engine (the PR 10 tentpole).

:func:`~repro.trace.diff.diff_traces` *compares* records — it never
applies them — so diffing two identical traces must beat the pre-diff
workflow (replay both sides into worlds and compare) by a wide margin,
in bounded memory. This benchmark records the §5.2 counting-on-a-line
scenario at ``n=64`` twice and enforces:

1. **speed** — one diff of the identical pair is **>= 2x faster** than a
   dual full replay of both sides (best-of-3 each);
2. **memory** — the diff's ``tracemalloc`` peak stays under half the
   combined input bytes: the engine streams, holding only each side's
   checkpoint-interval window, never a buffered trace.

Emits ``BENCH_diff.json`` (plus a ``history.jsonl`` record); CI runs this
as a smoke and enforces both bars (see ``.github/workflows/ci.yml``).
"""

import time
import tracemalloc

from conftest import print_table, write_bench

from repro.trace.diff import diff_traces
from repro.trace.record import record_scenario
from repro.trace.replay import replay_trace

SCENARIO = "counting-line"
PARAMS = {"n": 64}
SEED = 11
CHECKPOINT_EVERY = 64
MIN_SPEEDUP = 2.0
MAX_PEAK_FRACTION = 0.5


def _best_of(fn, rounds=3):
    """Best wall time over ``rounds`` runs (and the last return value)."""
    best = float("inf")
    value = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_diff_identical_streams_bars(benchmark, tmp_path):
    """Diff of identical traces: >= 2x a dual replay, bounded memory."""
    path_a = tmp_path / "a.trace"
    path_b = tmp_path / "b.trace"

    def measure():
        result, writer = record_scenario(
            SCENARIO,
            params=PARAMS,
            seed=SEED,
            path=path_a,
            checkpoint_every=CHECKPOINT_EVERY,
        )
        record_scenario(
            SCENARIO,
            params=PARAMS,
            seed=SEED,
            path=path_b,
            checkpoint_every=CHECKPOINT_EVERY,
        )
        diff_wall, diff = _best_of(lambda: diff_traces(path_a, path_b))
        replay_wall, replays = _best_of(
            lambda: (
                replay_trace(path_a, use_checkpoints=False),
                replay_trace(path_b, use_checkpoints=False),
            )
        )
        tracemalloc.start()
        diff_traces(path_a, path_b)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return result, diff, replays, diff_wall, replay_wall, peak

    result, diff, replays, diff_wall, replay_wall, peak = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    assert diff.identical, diff.describe()
    full_a, full_b = replays
    assert full_a.digest == full_b.digest
    assert diff.events_compared == full_a.events

    stream_bytes = path_a.stat().st_size + path_b.stat().st_size
    speedup = replay_wall / max(diff_wall, 1e-9)
    peak_fraction = peak / stream_bytes
    print_table(
        f"Trace diff: {SCENARIO} n={PARAMS['n']}, "
        f"{full_a.events} events/side, checkpoint every {CHECKPOINT_EVERY}",
        f"{'run':>12} {'secs':>9}",
        (
            f"{'diff':>12} {diff_wall:>9.4f}",
            f"{'dual-replay':>12} {replay_wall:>9.4f}",
        ),
    )
    print(
        f"diff speedup: {speedup:.2f}x (bar {MIN_SPEEDUP:.1f}x); "
        f"peak {peak} bytes = {peak_fraction:.1%} of the "
        f"{stream_bytes}-byte stream pair (bar {MAX_PEAK_FRACTION:.0%})"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"diff of identical streams only {speedup:.2f}x faster than a dual "
        f"replay (bar {MIN_SPEEDUP}x)"
    )
    assert peak_fraction <= MAX_PEAK_FRACTION, (
        f"diff peak memory {peak} bytes is {peak_fraction:.1%} of the input "
        f"stream ({stream_bytes} bytes); the engine must stream, not buffer"
    )

    write_bench(
        "diff",
        [result],
        header={
            "experiment": "trace diff of identical streams vs dual replay",
            "diff_seconds": diff_wall,
            "dual_replay_seconds": replay_wall,
            "speedup_diff": speedup,
            "peak_bytes": peak,
            "stream_bytes": stream_bytes,
            "peak_fraction": peak_fraction,
            "events_compared": diff.events_compared,
            "checkpoints_compared": diff.checkpoints_compared,
            "checkpoint_every": CHECKPOINT_EVERY,
        },
    )
