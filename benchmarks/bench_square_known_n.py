"""Experiment L2-sq: Square-Knowing-n (§6.2, Lemma 2)."""

import math

from conftest import print_table

from repro.constructors.square_known_n import run_square_known_n


def test_lemma2_sweep(benchmark):
    def sweep():
        rows = []
        for n in (16, 36, 64, 100):
            res = run_square_known_n(n, seed=n)
            assert res.square_component().size() == n
            rows.append(
                (n, res.side, res.scheduler_events, res.leader_interactions)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "L2-sq: Square-Knowing-n",
        f"{'n':>4} {'side':>5} {'sched events':>13} {'leader work':>12}",
        (f"{n:>4} {s:>5} {e:>13} {w:>12}" for n, s, e, w in rows),
    )
    # Replication dominates: scheduler events grow superlinearly in n while
    # the leader's assembly walk stays O(n).
    for n, side, events, work in rows:
        assert side == math.isqrt(n)
        assert work <= 6 * n
        assert events >= n - side
