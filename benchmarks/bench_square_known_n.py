"""Experiment L2-sq: Square-Knowing-n (§6.2, Lemma 2).

Runs the registered ``square`` scenario through the experiment layer and
emits the schema-validated ``BENCH_square.json``.
"""

import math

from conftest import print_table, write_bench

from repro.experiments import ExperimentSpec, run_experiment


def test_lemma2_sweep(benchmark):
    def sweep():
        return [
            run_experiment(ExperimentSpec("square", {"n": n}, seed=n))
            for n in (16, 36, 64, 100)
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for r in results:
        assert r.metrics["square_nodes"] == r.params["n"]
        rows.append(
            (
                r.params["n"],
                r.metrics["side"],
                r.metrics["scheduler_events"],
                r.metrics["leader_interactions"],
            )
        )
    print_table(
        "L2-sq: Square-Knowing-n",
        f"{'n':>4} {'side':>5} {'sched events':>13} {'leader work':>12}",
        (f"{n:>4} {s:>5} {e:>13} {w:>12}" for n, s, e, w in rows),
    )
    write_bench("square", results, header={"experiment": "L2-sq"})
    # Replication dominates: scheduler events grow superlinearly in n while
    # the leader's assembly walk stays O(n).
    for n, side, events, work in rows:
        assert side == math.isqrt(n)
        assert work <= 6 * n
        assert events >= n - side
