"""Acceptance bar for the content-addressed trial cache (the PR 7 tentpole).

Per-trial seeds are SHA-256 of the full trial identity and every trial is
bit-deterministic, so an identical resubmitted sweep is provably identical
work — the trial store serves it from disk instead of recomputing. This
benchmark runs one sweep cold (empty store), resubmits it warm, and
asserts the resubmission is **>= 5x faster wall-clock** with bit-identical
results: a warm hit returns the stored record verbatim, provenance-checked
(schema + spec hash + content digest) on load.

The cold/warm ratio is the served-trials-per-second capacity story of the
sweep service (``repro serve``): concurrent clients resubmitting
overlapping grids cost one disk read per trial, not one simulation.

Emits ``BENCH_sweep_cache.json`` (plus a ``history.jsonl`` record); CI
runs this as a smoke and enforces the bar (see
``.github/workflows/ci.yml``).
"""

import time

from conftest import print_table, write_bench

from repro.experiments import SweepSpec, TrialStore, run_sweep

#: The resubmitted workload: a 2-point grid × 2 derived seeds of the
#: Theorem 1 counting scenario, each trial averaging `trials` executions —
#: enough simulation work that the cold run dwarfs four file reads.
SWEEP = SweepSpec(
    scenario="counting",
    grid={"n": [64, 96], "trials": [20]},
    trials=2,
    base_seed=7,
)
MIN_SPEEDUP = 5.0


def test_sweep_cache_resubmission_speedup(benchmark, tmp_path):
    """Resubmitting an identical sweep through the cache is >= 5x faster
    wall-clock, bit-identical to the uncached run, and 100% hits."""
    store = TrialStore(tmp_path / "trials")

    def measure():
        t0 = time.perf_counter()
        cold = run_sweep(SWEEP, cache=store)
        t1 = time.perf_counter()
        warm = run_sweep(SWEEP, cache=store)
        t2 = time.perf_counter()
        return cold, warm, t1 - t0, t2 - t1

    cold, warm, cold_wall, warm_wall = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    total = len(cold)
    speedup = cold_wall / warm_wall
    print_table(
        f"Trial-cache resubmission: counting grid n={SWEEP.grid['n']}, "
        f"{total} trials",
        f"{'run':>6} {'trials':>7} {'secs':>9} {'trials/s':>9}",
        (
            f"{name:>6} {total:>7d} {secs:>9.4f} {total / secs:>9.1f}"
            for name, secs in (("cold", cold_wall), ("warm", warm_wall))
        ),
    )
    print(f"resubmission speedup: {speedup:.1f}x (bar {MIN_SPEEDUP:.0f}x)")

    # Bit-identical: a cache hit serves the stored record verbatim —
    # wall_time included, so even full dict equality holds.
    assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]
    assert store.hits == total and store.rejected == 0

    write_bench(
        "sweep_cache",
        cold,
        header={
            "experiment": "trial-cache resubmission",
            "cold_seconds": cold_wall,
            "warm_seconds": warm_wall,
            "speedup_resubmission": speedup,
            "cache": store.stats(),
        },
    )
    # The acceptance bar of the sweep-service PR.
    assert speedup >= MIN_SPEEDUP, (cold_wall, warm_wall)
