"""Experiment T4-ext: the universal constructor on the extended catalogue.

Theorem 4 is universal over TM-computable connected shapes; this bench runs
the distributed construction on the extended shape catalogue (serpentine,
diamond, periodic stripes) and the Remark 4 pattern catalogue
(checkerboard, Sierpinski, gradient), reporting useful space and waste per
shape — the quantities of Definition 4.
"""

from conftest import print_table

from repro.constructors.tm_construction import (
    run_pattern_construction,
    run_shape_construction,
)
from repro.machines.shape_programs import (
    checkerboard_pattern_program,
    diamond_program,
    expected_pattern,
    expected_shape,
    gradient_pattern_program,
    serpentine_program,
    sierpinski_pattern_program,
    stripes_program,
)


def test_extended_shape_catalogue(benchmark):
    d = 9
    programs = [serpentine_program(), diamond_program(), stripes_program(3)]

    def construct_all():
        rows = []
        for prog in programs:
            res = run_shape_construction(prog, d)
            rows.append((prog.name, res.useful_space, res.waste, res.interactions))
        return rows

    rows = benchmark.pedantic(construct_all, rounds=1, iterations=1)
    print_table(
        f"T4-ext: extended shapes on the {d}x{d} square",
        f"{'shape':>12} {'useful':>7} {'waste':>6} {'interactions':>13}",
        (f"{n:>12} {u:>7} {w:>6} {i:>13}" for n, u, w, i in rows),
    )
    for (name, useful, waste, _i), prog in zip(rows, programs):
        expected = expected_shape(prog, d)
        assert useful == len(expected.cells), name
        assert waste == d * d - useful


def test_extended_pattern_catalogue(benchmark):
    d = 8
    programs = [
        checkerboard_pattern_program(),
        sierpinski_pattern_program(),
        gradient_pattern_program(4),
    ]

    def construct_all():
        rows = []
        for prog in programs:
            colors, interactions = run_pattern_construction(prog, d)
            rows.append((prog.name, colors, interactions))
        return rows

    rows = benchmark.pedantic(construct_all, rounds=1, iterations=1)
    print_table(
        f"R4-ext: extended patterns on the {d}x{d} square",
        f"{'pattern':>14} {'colors':>7} {'interactions':>13}",
        (
            f"{name:>14} {len(set(colors.values())):>7} {i:>13}"
            for name, colors, i in rows
        ),
    )
    for (name, colors, _i), prog in zip(rows, programs):
        assert colors == expected_pattern(prog, d), name
