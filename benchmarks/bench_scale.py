"""Acceptance bar for the columnar candidate backend (the PR 6 tentpole).

The hot scheduler's incremental cache historically walked the world one
node at a time: per dirty node, a Python loop over every state-mate, a
per-pair occupancy probe, a per-candidate dict insert. The columnar
backend (``repro.core.columnar``) keeps the same journals and the same
trajectory law but runs the three hot kernels — static-effectiveness
filtering, occupancy-collision pruning, transition dispatch — as batch
array operations over flat int columns, so per-event cost is a handful of
vectorized passes instead of tens of thousands of interpreter steps.

Two workloads, two bars:

* **smoke** (CI): leaderless aggregation at n = 64 — the columnar backend
  must run the identical seeded trajectory **>= 2x** faster wall-clock
  than the pure-Python fallback, with *equal* candidate-evaluation
  counts (the backends share one accounting, so evaluations can't
  differ; the wall-clock ratio is the real bar and the evaluation
  equality is the transparency check).
* **scale sweep** (opt-in, ``REPRO_BENCH_SCALE=1``): aggregation to
  n = 1024 and frontier accretion (a bonded seed plate plus inert free
  spares — candidate population Θ(frontier x n), so population scales
  past 10^4 without the Θ(n^2) all-singleton candidate blow-up) to
  n = 10^4, columnar vs fallback at every point, asserting the speedup
  grows with n and crosses **10x by n = 256** on aggregation.

Both emit the schema-validated ``BENCH_scale.json`` through the shared
``repro.experiments.io`` writer; the committed artifact is the full
sweep's output.
"""

import os
import time

import pytest
from conftest import print_table, write_bench

from repro.core.columnar import backend_name
from repro.core.protocol import Rule, RuleProtocol
from repro.core.scheduler import make_scheduler
from repro.core.simulator import Simulation
from repro.core.trace import world_to_dict
from repro.core.world import World
from repro.experiments import ExperimentResult
from repro.geometry.ports import PORTS_2D, opposite
from repro.geometry.vec import Vec

SEED = 11
PLATE_SIDE = 6  # seed plate of the accretion workload


def aggregation_protocol() -> RuleProtocol:
    """Leaderless gluing: every meeting of free ports bonds."""
    rules = [Rule("g", p, "g", opposite(p), 0, "g", "g", 1) for p in PORTS_2D]
    return RuleProtocol(rules, initial_state="g", name="aggregation")


def accretion_protocol() -> RuleProtocol:
    """Structure (``s``) captures spares (``f``); spares are mutually
    inert, so candidates live only on the structure's frontier and the
    population can scale far past the all-singleton regime."""
    rules = [Rule("s", p, "f", opposite(p), 0, "s", "s", 1) for p in PORTS_2D]
    return RuleProtocol(rules, initial_state="f", name="accretion")


def _world(workload: str, protocol: RuleProtocol, n: int) -> World:
    if workload == "aggregation":
        return World.of_free_nodes(n, protocol, leaders=0)
    world = World(2)
    world.add_component_from_cells(
        {
            Vec(x, y): "s"
            for x in range(PLATE_SIDE)
            for y in range(PLATE_SIDE)
        }
    )
    for _ in range(n):
        world.add_free_node("f")
    world.adopt_space(protocol.program.space)
    return world


def _run(workload: str, protocol, n: int, columnar: bool, max_events: int):
    world = _world(workload, protocol, n)
    scheduler = make_scheduler("hot", incremental=True, columnar=columnar)
    sim = Simulation(world, protocol, scheduler=scheduler, seed=SEED)
    start = time.perf_counter()
    res = sim.run(max_events=max_events)
    elapsed = time.perf_counter() - start
    return ExperimentResult(
        scenario="scale",
        params={
            "workload": workload,
            "n": n,
            "backend": "columnar" if columnar else "fallback",
            "max_events": max_events,
        },
        seed=SEED,
        scheduler="hot+cache",
        events=res.events,
        raw_steps=res.raw_steps,
        evaluations=scheduler.evaluations,
        stop_reason=res.reason,
        wall_time=elapsed,
        metrics={"world_digest": _digest(world)},
    )


def _digest(world: World) -> str:
    import hashlib
    import json

    payload = json.dumps(world_to_dict(world), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _pairs(points):
    """Run each (workload, n, max_events) point on both backends and
    check the backends are mutually transparent at every single point."""
    results = []
    for workload, n, max_events in points:
        protocol = (
            aggregation_protocol()
            if workload == "aggregation"
            else accretion_protocol()
        )
        col = _run(workload, protocol, n, True, max_events)
        fb = _run(workload, protocol, n, False, max_events)
        # Identical seeded trajectories and identical accounting: the
        # backend only changes *how* the candidate set is computed.
        col_cmp, fb_cmp = col.comparable(), fb.comparable()
        col_cmp["params"].pop("backend")
        fb_cmp["params"].pop("backend")
        assert col_cmp == fb_cmp, (workload, n)
        results.append((col, fb))
    return results


def _report(title, results):
    print_table(
        title,
        f"{'workload':>12} {'n':>6} {'events':>7} {'evals':>10} "
        f"{'fallback s':>11} {'columnar s':>11} {'speedup':>8}",
        (
            f"{col.params['workload']:>12} {col.params['n']:>6d} "
            f"{col.events:>7d} {col.evaluations:>10d} "
            f"{fb.wall_time:>11.3f} {col.wall_time:>11.3f} "
            f"{fb.wall_time / col.wall_time:>8.2f}"
            for col, fb in results
        ),
    )


def test_columnar_smoke(benchmark):
    """CI bar: >= 2x wall-clock over the fallback at n = 64, identical
    trajectory and evaluation counts."""
    if "numpy" not in backend_name():
        pytest.skip("columnar backend unavailable (no numpy)")
    results = benchmark.pedantic(
        _pairs, args=([("aggregation", 64, 63)],), rounds=1, iterations=1
    )
    _report(f"Columnar backend smoke (seed {SEED})", results)
    col, fb = results[0]
    write_bench(
        "scale",
        [col, fb],
        header={"experiment": "columnar-smoke", "note": "CI smoke points"},
    )
    assert col.evaluations == fb.evaluations
    assert fb.wall_time >= 2 * col.wall_time, (fb.wall_time, col.wall_time)


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_SCALE") != "1",
    reason="full scale sweep takes minutes; set REPRO_BENCH_SCALE=1",
)
def test_scale_sweep(benchmark):
    """The full sweep: aggregation to n = 1024, accretion to n = 10^4.

    The PR acceptance bar lives here: >= 10x wall-clock over the
    fallback at n >= 256 on aggregation, and the speedup keeps growing
    with n on the workload that reaches five-digit populations.
    """
    if "numpy" not in backend_name():
        pytest.skip("columnar backend unavailable (no numpy)")
    points = [
        ("aggregation", 64, 63),
        ("aggregation", 128, 127),
        ("aggregation", 256, 255),
        ("aggregation", 1024, 200),
        ("accretion", 1000, 60),
        ("accretion", 3000, 60),
        ("accretion", 10000, 60),
    ]
    results = benchmark.pedantic(_pairs, args=(points,), rounds=1, iterations=1)
    _report(f"Columnar backend scale sweep (seed {SEED})", results)
    write_bench(
        "scale",
        [r for pair in results for r in pair],
        header={"experiment": "columnar-scale", "note": "full sweep points"},
    )
    speedups = {
        (col.params["workload"], col.params["n"]): fb.wall_time / col.wall_time
        for col, fb in results
    }
    # The tentpole acceptance bar.
    assert speedups[("aggregation", 256)] >= 10.0, speedups
    # Batching pays more the bigger the population gets.
    assert speedups[("accretion", 10000)] >= speedups[("accretion", 1000)] * 0.8
    assert speedups[("accretion", 10000)] >= 8.0, speedups
