"""Experiments T2 and T3: counting with unique ids (§5.3).

(i) The simple repeated-window protocol: exact counts w.h.p. and the
``Theta(n^b)`` termination time; (ii) Protocol 3: the halter is u_max and
outputs an upper bound on n w.h.p., far faster than the simple protocol.
"""

from conftest import print_table

from repro.population.counting_uid import run_simple_uid, uid_success_rate


def test_theorem2_simple_protocol(benchmark):
    def sweep():
        rows = []
        for n in (5, 7, 9):
            exact = 0
            steps = 0
            trials = 6
            for seed in range(trials):
                res = run_simple_uid(n, b=3, seed=seed)
                exact += int(res.output == n)
                steps += res.interactions
            rows.append((n, exact / trials, steps / trials, (n - 1) ** 3))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "T2: simple UID protocol (b = 3)",
        f"{'n':>4} {'exact rate':>11} {'interactions':>13} {'(n-1)^b':>9}",
        (f"{n:>4} {e:>11.2f} {s:>13.0f} {m:>9}" for n, e, s, m in rows),
    )
    for _n, exact_rate, _s, _m in rows:
        assert exact_rate >= 0.5
    # Theta(n^b) growth: interactions grow superlinearly with n.
    assert rows[-1][2] > rows[0][2]


def test_theorem3_protocol3(benchmark):
    rows = benchmark.pedantic(
        uid_success_rate,
        args=([32, 64, 128],),
        kwargs={"b": 4, "trials": 15, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print_table(
        "T3: Protocol 3 (b = 4)",
        f"{'n':>5} {'P[halter=max]':>14} {'P[2c1>=n]':>10} {'interactions':>13}",
        (f"{n:>5} {pm:>14.2f} {pb:>10.2f} {t:>13.0f}" for n, pm, pb, t in rows),
    )
    for _n, p_max, p_bound, _t in rows:
        assert p_max >= 0.85
        assert p_bound >= 0.85
    # Protocol 3 is polynomially faster than the simple protocol: its time
    # grows like n^2 log n, not n^b.
    t32 = rows[0][3]
    t128 = rows[2][3]
    assert t128 / t32 < 64  # far below the (128/32)^4 = 256 of Theta(n^4)
