"""Experiment P45-rep: line replication throughput (Protocols 4 and 5)."""

from conftest import print_table

from repro.core.simulator import Simulation
from repro.protocols.replication import (
    extract_lines,
    line_replication_protocol,
    no_leader_line_replication_protocol,
    replication_world,
)


def test_protocol4_replication_cost(benchmark):
    def sweep():
        rows = []
        protocol = line_replication_protocol()
        for length in (4, 8, 12, 16):
            world = replication_world(length)
            sim = Simulation(world, protocol, seed=length)
            res = sim.run_to_stabilization(max_events=200_000)
            lines = sorted(extract_lines(world))
            assert lines == [("Ls", length), ("Lstart", length)]
            rows.append((length, res.events))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "P45-rep: Protocol 4 — events for one replication",
        f"{'length':>7} {'events':>7}",
        (f"{l:>7} {e:>7}" for l, e in rows),
    )
    # The chain+restore walks are linear in the line length: events scale
    # roughly linearly (each node attaches once, each walk passes once).
    per = [e / l for l, e in rows]
    assert max(per) / min(per) < 2.0


def test_protocol5_leaderless_throughput(benchmark):
    """Protocol 5 is leaderless and "more parallel" — but standalone it can
    *deadlock*: concurrent half-built replicas split the free material and
    none completes (this is exactly why Lemma 2's leader accepts replicas
    mid-replication and releases their strays). The bench measures both
    the throughput of successful runs and the observed deadlock rate."""

    def sweep():
        length = 5
        protocol = no_leader_line_replication_protocol()

        def run_regime(free_mult: int, target: int):
            successes = []
            deadlocks = 0
            for seed in range(10):
                world = replication_world(
                    length, free_nodes=free_mult * length, leader_left="e"
                )

                def enough(w):
                    return (
                        sum(
                            1
                            for _, size in extract_lines(w)
                            if size == length
                        )
                        >= target
                    )

                sim = Simulation(world, protocol, seed=seed)
                res = sim.run(max_events=200_000, until=enough)
                if res.stopped:
                    successes.append(res.events)
                else:
                    assert res.stabilized  # material-exhaustion deadlock
                    deadlocks += 1
            return successes, deadlocks

        ample = run_regime(free_mult=8, target=3)
        scarce = run_regime(free_mult=4, target=3)
        return ample, scarce

    (ample_ok, ample_dead), (scarce_ok, scarce_dead) = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    mean = sum(ample_ok) / max(1, len(ample_ok))
    print(
        "\nP45-rep: Protocol 5, 2 extra complete lines of length 5, 10 seeds"
        f"\n  ample material (8L free):  {len(ample_ok)} succeeded "
        f"(mean {mean:.0f} events), {ample_dead} deadlocked"
        f"\n  scarce material (4L free): {len(scarce_ok)} succeeded, "
        f"{scarce_dead} deadlocked on split material"
    )
    # With ample material the leaderless protocol delivers; with scarce
    # material concurrent half-built replicas strand each other — the
    # failure mode Lemma 2's leader neutralizes by accepting replicas
    # mid-replication.
    assert len(ample_ok) >= 7
    assert scarce_dead >= 5
