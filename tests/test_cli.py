"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import PATTERNS, SHAPES, build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_unknown_shape_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["construct", "blob"])

    def test_catalogues_nonempty(self):
        assert "star" in SHAPES
        assert "serpentine" in SHAPES
        assert "sierpinski" in PATTERNS


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo", "-n", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "spanning line on 6 nodes" in out
        assert "######" in out
        assert "3x3 square" in out

    def test_demo_scheduler_flag(self, capsys):
        # Every uniform scheduler builds the same structures; the seeded
        # trajectories are identical by the scheduler contract, so the
        # rendered output matches the default exactly.
        assert main(["demo", "-n", "5", "--seed", "2"]) == 0
        reference = capsys.readouterr().out
        for kind in ("enumerate", "rejection", "hot"):
            assert main(["demo", "-n", "5", "--seed", "2", "--scheduler", kind]) == 0
            assert capsys.readouterr().out == reference
        assert main(["demo", "-n", "5", "--scheduler", "round-robin"]) == 0
        assert "spanning line on 5 nodes" in capsys.readouterr().out

    def test_demo_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--scheduler", "nope"])

    def test_count(self, capsys):
        assert main(["count", "64", "--trials", "5", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "counting n = 64" in out
        assert "success rate" in out

    @pytest.mark.parametrize("shape", ["star", "cross", "serpentine"])
    def test_construct(self, capsys, shape):
        assert main(["construct", shape, "-d", "7"]) == 0
        out = capsys.readouterr().out
        assert f"constructed {shape!r}" in out
        assert "#" in out

    @pytest.mark.parametrize("pattern", ["checkerboard", "sierpinski"])
    def test_pattern(self, capsys, pattern):
        assert main(["pattern", pattern, "-d", "6"]) == 0
        out = capsys.readouterr().out
        assert f"pattern {pattern!r}" in out
        assert "0" in out and "1" in out

    def test_cube(self, capsys):
        assert main(["cube", "-m", "3", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "3x3x3 cube on 27 nodes" in out
        assert out.count("z =") == 3

    def test_replicate_shifting(self, capsys):
        assert main(["replicate", "--size", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "identical: True" in out
        assert "original:" in out and "replica:" in out

    def test_replicate_columns(self, capsys):
        assert main(
            ["replicate", "--size", "8", "--approach", "columns", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "by columns" in out
        assert "identical: True" in out

    def test_repair(self, capsys):
        assert main(["repair", "-d", "7", "--fraction", "0.25", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "repaired in" in out
        assert "damaged:" in out and "repaired:" in out


class TestInspectCommand:
    def test_inspect_square(self, capsys):
        assert main(["inspect", "square"]) == 0
        out = capsys.readouterr().out
        assert "|Q| = 6" in out
        assert "->" in out
        assert "lint: clean" in out

    def test_inspect_protocol5_lints_clean_with_seeds(self, capsys):
        assert main(["inspect", "protocol5"]) == 0
        out = capsys.readouterr().out
        assert "lint: clean" in out

    def test_inspect_rejects_unknown(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["inspect", "nonexistent"])
