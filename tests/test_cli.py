"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import PATTERNS, SHAPES, build_parser, main
from repro.experiments import scenario_names, validate_payload


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_unknown_shape_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["construct", "blob"])

    def test_catalogues_nonempty(self):
        assert "star" in SHAPES
        assert "serpentine" in SHAPES
        assert "sierpinski" in PATTERNS


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo", "-n", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "spanning line on 6 nodes" in out
        assert "######" in out
        assert "3x3 square" in out

    def test_demo_scheduler_flag(self, capsys):
        # Every uniform scheduler builds the same structures; the seeded
        # trajectories are identical by the scheduler contract, so the
        # rendered output matches the default exactly.
        assert main(["demo", "-n", "5", "--seed", "2"]) == 0
        reference = capsys.readouterr().out
        for kind in ("enumerate", "rejection", "hot"):
            assert main(["demo", "-n", "5", "--seed", "2", "--scheduler", kind]) == 0
            assert capsys.readouterr().out == reference
        assert main(["demo", "-n", "5", "--scheduler", "round-robin"]) == 0
        assert "spanning line on 5 nodes" in capsys.readouterr().out

    def test_demo_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--scheduler", "nope"])

    def test_count(self, capsys):
        assert main(["count", "64", "--trials", "5", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "counting n = 64" in out
        assert "success rate" in out

    @pytest.mark.parametrize("shape", ["star", "cross", "serpentine"])
    def test_construct(self, capsys, shape):
        assert main(["construct", shape, "-d", "7"]) == 0
        out = capsys.readouterr().out
        assert f"constructed {shape!r}" in out
        assert "#" in out

    @pytest.mark.parametrize("pattern", ["checkerboard", "sierpinski"])
    def test_pattern(self, capsys, pattern):
        assert main(["pattern", pattern, "-d", "6"]) == 0
        out = capsys.readouterr().out
        assert f"pattern {pattern!r}" in out
        assert "0" in out and "1" in out

    def test_cube(self, capsys):
        assert main(["cube", "-m", "3", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "3x3x3 cube on 27 nodes" in out
        assert out.count("z =") == 3

    def test_replicate_shifting(self, capsys):
        assert main(["replicate", "--size", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "identical: True" in out
        assert "original:" in out and "replica:" in out

    def test_replicate_columns(self, capsys):
        assert main(
            ["replicate", "--size", "8", "--approach", "columns", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "by columns" in out
        assert "identical: True" in out

    def test_repair(self, capsys):
        assert main(["repair", "-d", "7", "--fraction", "0.25", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "repaired in" in out
        assert "damaged:" in out and "repaired:" in out


class TestRegistryCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_list_md(self, capsys):
        assert main(["list", "--format", "md"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# EXPERIMENTS")
        assert "| `counting` |" in out

    def test_describe(self, capsys):
        assert main(["describe", "replicate"]) == 0
        out = capsys.readouterr().out
        assert "--approach" in out
        assert "choices ['shifting', 'columns']" in out

    def test_describe_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["describe", "frobnicate"])

    def test_run_generic(self, capsys):
        assert main(["run", "counting", "--n", "16", "--trials", "2",
                     "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "scenario 'counting'" in out
        assert "mean_estimate" in out

    def test_run_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["run", "frobnicate"])

    def test_run_json_stdout_validates(self, capsys):
        assert main(["run", "counting", "--n", "16", "--trials", "2",
                     "--seed", "1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert validate_payload(data) == []
        assert data["seed"] == 1

    def test_run_json_file(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        assert main(["run", "demo", "--n", "5", "--seed", "0",
                     "--json", str(target)]) == 0
        data = json.loads(target.read_text())
        assert validate_payload(data) == []
        assert data["renders"]["line"]

    def test_sweep_json_identical_across_workers(self, capsys, tmp_path):
        one, four = tmp_path / "w1.json", tmp_path / "w4.json"
        argv = ["sweep", "counting", "--n", "16", "--trials", "2",
                "--seeds", "4", "--base-seed", "2"]
        assert main(argv + ["--workers", "1", "--json", str(one)]) == 0
        assert main(argv + ["--workers", "4", "--json", str(four)]) == 0
        a, b = json.loads(one.read_text()), json.loads(four.read_text())
        assert validate_payload(a) == [] and validate_payload(b) == []
        strip = lambda results: [
            {k: v for k, v in r.items() if k != "wall_time"}
            for r in results
        ]
        assert strip(a["results"]) == strip(b["results"])
        assert len(a["results"]) == 4

    def test_sweep_human_output(self, capsys):
        assert main(["sweep", "counting", "--n", "16", "--trials", "1",
                     "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 trials" in out

    def test_sweep_bad_value_is_a_clean_usage_error(self, capsys):
        assert main(["sweep", "counting", "--n", "abc", "--seeds", "1"]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err and "cannot convert" in err

    def test_run_out_of_range_param_is_a_clean_usage_error(self, capsys):
        assert main(["run", "counting", "--trials", "0"]) == 2
        assert "below the minimum" in capsys.readouterr().err

    def test_validate_command(self, capsys, tmp_path):
        good = tmp_path / "good.json"
        assert main(["run", "counting", "--n", "16", "--trials", "1",
                     "--json", str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        assert main(["validate", str(good)]) == 0
        assert main(["validate", str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "ok" in out and "INVALID" in out


class TestUniformFlags:
    """Satellite: construct/pattern take --seed/--json like everyone else
    (their scenarios record determinism in the spec)."""

    def test_construct_accepts_seed_and_json(self, capsys):
        assert main(["construct", "star", "-d", "7", "--seed", "5",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert validate_payload(data) == []
        assert data["seed"] == 5  # recorded even though deterministic

    def test_pattern_accepts_seed_and_json(self, capsys):
        assert main(["pattern", "checkerboard", "-d", "6", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert validate_payload(data) == []
        assert data["metrics"]["colors"] == 2

    def test_construct_deterministic_regardless_of_seed(self, capsys):
        assert main(["construct", "cross", "-d", "7", "--seed", "1"]) == 0
        first = capsys.readouterr().out
        assert main(["construct", "cross", "-d", "7", "--seed", "2"]) == 0
        assert capsys.readouterr().out == first

    def test_legacy_aliases_emit_schema_valid_json(self, capsys):
        for argv in (
            ["demo", "-n", "5", "--seed", "1", "--json"],
            ["count", "16", "--trials", "2", "--seed", "0", "--json"],
            ["cube", "-m", "3", "--seed", "0", "--json"],
            ["replicate", "--size", "8", "--seed", "2", "--json"],
            ["repair", "-d", "7", "--fraction", "0.25", "--seed", "4", "--json"],
        ):
            assert main(argv) == 0
            assert validate_payload(json.loads(capsys.readouterr().out)) == []


class TestInspectCommand:
    def test_inspect_square(self, capsys):
        assert main(["inspect", "square"]) == 0
        out = capsys.readouterr().out
        assert "|Q| = 6" in out
        assert "->" in out
        assert "lint: clean" in out

    def test_inspect_protocol5_lints_clean_with_seeds(self, capsys):
        assert main(["inspect", "protocol5"]) == 0
        out = capsys.readouterr().out
        assert "lint: clean" in out

    def test_inspect_rejects_unknown(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["inspect", "nonexistent"])
