"""Tests for the binary-arithmetic machines (repro.machines.arithmetic)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.machines.arithmetic import (
    binary_equal_tm,
    binary_increment_tm,
    decode_tape_binary,
    divisible_by_tm,
    increment_binary_sequence,
    leader_square_root,
    successive_squares_sqrt,
)
from repro.machines.programs import encode_comparison
from repro.machines.tm import binary_digits


class TestBinaryIncrementTM:
    def test_simple_increment(self):
        machine = binary_increment_tm()
        result = machine.run(binary_digits(5))
        assert result.accepted
        assert decode_tape_binary(result) == 6

    def test_carry_chain(self):
        machine = binary_increment_tm()
        result = machine.run(binary_digits(7))  # 111 -> 1000
        assert decode_tape_binary(result) == 8

    def test_overflow_grows_tape(self):
        machine = binary_increment_tm()
        result = machine.run(["1", "1", "1", "1"])
        assert decode_tape_binary(result) == 16
        # The new MSB lives one cell left of the original input.
        assert min(result.tape) == -1

    def test_zero(self):
        machine = binary_increment_tm()
        result = machine.run(["0"])
        assert decode_tape_binary(result) == 1

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_increment_matches_arithmetic(self, value):
        machine = binary_increment_tm()
        result = machine.run(binary_digits(value))
        assert result.accepted
        assert decode_tape_binary(result) == value + 1

    def test_sequence_runner(self):
        assert increment_binary_sequence(10, 5) == [11, 12, 13, 14, 15]

    def test_sequence_through_overflow(self):
        assert increment_binary_sequence(14, 4) == [15, 16, 17, 18]


class TestBinaryEqualTM:
    @pytest.mark.parametrize(
        "a,b,expected",
        [(0, 0, True), (5, 5, True), (5, 6, False), (6, 5, False),
         (15, 15, True), (8, 0, False)],
    )
    def test_small_cases(self, a, b, expected):
        machine = binary_equal_tm()
        assert machine.accepts(encode_comparison(a, b, 5)) is expected

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_python_equality(self, a, b):
        machine = binary_equal_tm()
        assert machine.accepts(encode_comparison(a, b, 8)) is (a == b)


class TestDivisibleByTM:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 7])
    def test_small_range_against_modulo(self, k):
        machine = divisible_by_tm(k)
        for value in range(0, 64):
            assert machine.accepts(binary_digits(value)) is (value % k == 0)

    def test_rejects_bad_divisor(self):
        with pytest.raises(MachineError):
            divisible_by_tm(0)

    def test_single_pass(self):
        # The machine is a DFA in disguise: steps == digits + 1.
        machine = divisible_by_tm(3)
        result = machine.run(binary_digits(57))
        assert result.steps == len(binary_digits(57)) + 1

    @given(
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_values(self, k, value):
        machine = divisible_by_tm(k)
        assert machine.accepts(binary_digits(value)) is (value % k == 0)


class TestDecodeTapeBinary:
    def test_rejects_empty_tape(self):
        machine = binary_increment_tm()
        result = machine.run(binary_digits(1))
        result.tape.clear()
        with pytest.raises(MachineError):
            decode_tape_binary(result)

    def test_rejects_gap_in_digits(self):
        machine = binary_increment_tm()
        result = machine.run(binary_digits(2))
        result.tape[5] = "1"  # digit separated by blanks
        with pytest.raises(MachineError):
            decode_tape_binary(result)


class TestSuccessiveSquaresSqrt:
    @pytest.mark.parametrize("root", [1, 2, 3, 5, 10, 31, 100])
    def test_perfect_squares(self, root):
        trace = successive_squares_sqrt(root * root)
        assert trace.root == root
        assert trace.multiplications == root - 1

    def test_rejects_non_square(self):
        with pytest.raises(MachineError):
            successive_squares_sqrt(10)

    def test_rejects_nonpositive(self):
        with pytest.raises(MachineError):
            successive_squares_sqrt(0)

    def test_cost_linear_in_n(self):
        # §6.2: exponential in |bin(n)| but still linear in n.
        for root in (8, 16, 32, 64):
            n = root * root
            trace = successive_squares_sqrt(n)
            assert trace.bit_ops <= 4 * n
            # ... and clearly super-polynomial in the input length log n:
            assert trace.bit_ops >= root - 1

    def test_space_logarithmic(self):
        trace = successive_squares_sqrt(64 * 64)
        assert trace.space_cells <= 3 * (64 * 64).bit_length() + 2

    def test_wrapper(self):
        assert leader_square_root(49) == 7

    @given(st.integers(min_value=1, max_value=120))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_isqrt(self, root):
        assert leader_square_root(root * root) == math.isqrt(root * root)
