"""ASCII rendering and simulation-loop odds and ends."""

import pytest

from repro.core.protocol import Rule, RuleProtocol
from repro.core.simulator import Simulation
from repro.core.world import World
from repro.errors import TerminationError
from repro.geometry.ports import Port
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec
from repro.machines.shape_programs import expected_shape, star_program
from repro.viz.ascii_art import render_labels, render_shape, render_world

R, L = Port.RIGHT, Port.LEFT


def test_render_plain_shape():
    shape = Shape.from_cells([Vec(0, 0), Vec(1, 0), Vec(1, 1)])
    out = render_shape(shape)
    assert out == ".#\n##"


def test_render_labeled_shape():
    cells = [Vec(0, 0), Vec(1, 0)]
    shape = Shape.from_cells(cells, labels={cells[0]: 1, cells[1]: 0})
    assert render_shape(shape) == "10"
    assert render_shape(shape, label_chars={1: "#", 0: "."}) == "#."


def test_render_star_is_symmetric():
    art = render_shape(expected_shape(star_program(), 7))
    rows = art.splitlines()
    assert len(rows) == 7
    assert rows == [r for r in reversed(rows)]  # vertical symmetry


def test_render_labels_map():
    out = render_labels({Vec(0, 0): "a", Vec(2, 0): "b"})
    assert out == "a.b"
    assert render_labels({}) == ""


def test_render_world_blocks():
    world = World(2)
    world.add_component_from_cells({Vec(0, 0): "x", Vec(1, 0): "y"})
    world.add_free_node("q0")
    out = render_world(world, include_free=True)
    assert "component" in out and "free nodes: 1" in out


def _absorb():
    return RuleProtocol(
        [Rule("L", R, "q0", L, 0, "q1", "L", 1)],
        leader_state="L",
        hot_states=["L"],
    )


def test_simulation_budget_raises_when_required():
    protocol = _absorb()
    world = World.of_free_nodes(10, protocol, leaders=1)
    sim = Simulation(world, protocol, seed=1)
    with pytest.raises(TerminationError):
        sim.run(max_events=2, require_stop=True)


def test_simulation_until_predicate_checked_before_first_event():
    protocol = _absorb()
    world = World.of_free_nodes(3, protocol, leaders=1)
    sim = Simulation(world, protocol, seed=1)
    res = sim.run(until=lambda w: True)
    assert res.stopped and res.events == 0


def test_states_by_count_and_any_halted():
    protocol = _absorb()
    world = World.of_free_nodes(4, protocol, leaders=1)
    sim = Simulation(world, protocol, seed=1)
    counts = dict(sim.states_by_count())
    assert counts == {"q0": 3, "L": 1}
    assert not sim.any_halted()


def test_trace_hook_sees_every_event():
    protocol = _absorb()
    world = World.of_free_nodes(5, protocol, leaders=1)
    seen = []
    sim = Simulation(
        world, protocol, seed=2,
        trace=lambda i, cand, upd, w: seen.append(i),
    )
    res = sim.run_to_stabilization(max_events=100)
    assert seen == list(range(1, res.events + 1))
