"""Tests for the first-divergence diff engine (``repro.trace.diff``).

The contract under test: given two ``repro.trace/v1`` streams,
:func:`diff_traces` reports the **first** diverging event — exactly the
first, never a later or earlier one — with the right classification, and
two identical streams (even at different checkpoint cadences) diff as
identical without replaying a world. The hypothesis battery perturbs a
known-good trace at a random position (semantic event edit, single byte
flip, truncation) and checks the divergence localizes to the injected
position with the classification the perturbation implies.
"""

import copy
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import TraceError
from repro.experiments.io import known_schemas, validate_payload
from repro.trace import (
    CLASSIFICATIONS,
    DIFF_SCHEMA,
    TraceReader,
    diff_traces,
    record_scenario,
    resimulate_from_header,
    validate_diff_payload,
)
from repro.trace.encoding import payload_digest

SCENARIO = "counting-line"
PARAMS = {"n": 8}
SEED = 9


def record_records(tmp_path, name="a", seed=SEED, checkpoint_every=16):
    path = tmp_path / f"{name}.trace"
    record_scenario(
        SCENARIO,
        params=dict(PARAMS),
        seed=seed,
        path=path,
        checkpoint_every=checkpoint_every,
    )
    return path, [json.loads(l) for l in path.read_bytes().splitlines()]


def event_line_indices(records):
    """0-based line numbers of the event records, in stream order."""
    return [i for i, r in enumerate(records) if r["kind"] == "event"]


class TestIdentical:
    def test_identical_files(self, tmp_path):
        pa, ra = record_records(tmp_path, "a")
        pb, rb = record_records(tmp_path, "b")
        result = diff_traces(pa, pb)
        assert result.identical
        assert result.divergence is None
        assert result.events_compared == TraceReader.load(pa).events
        assert result.checkpoints_compared > 0

    def test_cross_cadence_identical(self, tmp_path):
        # Different checkpoint cadences encode the same trajectory; the
        # chain fields differ line-by-line but are never cross-compared.
        pa, _ = record_records(tmp_path, "a", checkpoint_every=16)
        pb, _ = record_records(tmp_path, "b", checkpoint_every=7)
        result = diff_traces(pa, pb)
        assert result.identical

    def test_accepts_bytes_readers_and_record_lists(self, tmp_path):
        pa, records = record_records(tmp_path, "a")
        raw = pa.read_bytes()
        assert diff_traces(raw, records).identical
        assert diff_traces(TraceReader.load(pa), pa).identical

    def test_live_resimulation_matches(self, tmp_path):
        pa, _ = record_records(tmp_path, "a")
        fresh = resimulate_from_header(pa)
        assert diff_traces(pa, fresh).identical

    def test_live_rejects_builder_traces(self, tmp_path):
        from repro.trace import TraceWriter, recording
        from repro.core.simulator import Simulation
        from repro.core.world import World
        from repro.protocols.line import spanning_line_protocol

        path = tmp_path / "hand.trace"
        writer = TraceWriter(path, scenario=None, seed=1)
        with recording(writer):
            protocol = spanning_line_protocol()
            world = World.of_free_nodes(4, protocol, leaders=1)
            Simulation(world, protocol, seed=1).run(max_events=1000)
        writer.finalize()
        with pytest.raises(TraceError, match="no scenario identity"):
            resimulate_from_header(path)


class TestDivergences:
    def test_event_mismatch_at_exact_index(self, tmp_path):
        _, records = record_records(tmp_path)
        lines = event_line_indices(records)
        k = 5  # 1-based event index to perturb
        perturbed = copy.deepcopy(records)
        perturbed[lines[k - 1]]["nid1"] += 1000
        result = diff_traces(records, perturbed)
        assert not result.identical
        d = result.divergence
        assert d.classification == "event-mismatch"
        assert d.event == k
        assert "nid1" in d.detail
        assert result.events_compared == k - 1

    def test_fault_mismatch(self, tmp_path):
        path = tmp_path / "f.trace"
        record_scenario(
            "faulty-line",
            params={"n": 10, "break_prob": 0.25, "max_breaks": 3},
            seed=11,
            path=path,
            checkpoint_every=4,
        )
        records = [json.loads(l) for l in path.read_bytes().splitlines()]
        di = next(i for i, r in enumerate(records) if r["kind"] == "detach")
        perturbed = copy.deepcopy(records)
        perturbed[di]["bond"][0][0] += 999
        result = diff_traces(records, perturbed)
        assert result.divergence.classification == "fault-mismatch"
        assert result.divergence.event == records[di]["index"]

    def test_truncation_is_premature_end(self, tmp_path):
        _, records = record_records(tmp_path)
        lines = event_line_indices(records)
        cut = lines[4]  # drop event 5 onwards
        result = diff_traces(records, records[:cut])
        d = result.divergence
        assert d.classification == "premature-end"
        assert d.side == "b"
        assert d.event == 4  # events side b completed before the cut

    def test_early_finalized_end_is_premature_end(self, tmp_path):
        # Both traces are individually valid; one simply stops earlier.
        from repro.hybrid.movement import (
            HybridSimulation,
            make_walker_world,
            walker_protocol,
        )
        from repro.trace import TraceWriter, recording

        def run(name, max_events):
            path = tmp_path / name
            writer = TraceWriter(path, scenario=None, seed=2, checkpoint_every=4)
            with recording(writer):
                world, _m, _p = make_walker_world()
                HybridSimulation(world, walker_protocol(), seed=2).run(
                    max_events=max_events
                )
            writer.finalize()
            return path

        short = run("short.trace", 6)
        long = run("long.trace", 12)
        result = diff_traces(short, long)
        d = result.divergence
        assert d.classification == "premature-end"
        assert d.side == "a"
        assert d.event == 7  # the first event side a is missing
        assert "finalized after 6 events" in d.detail

    def test_header_identity_mismatch(self, tmp_path):
        pa, _ = record_records(tmp_path, "a", seed=SEED)
        pb, _ = record_records(tmp_path, "b", seed=SEED + 1)
        result = diff_traces(pa, pb)
        d = result.divergence
        assert d.classification == "checkpoint-drift"
        assert d.event == 0
        assert "seed" in d.detail

    def test_checkpoint_drift_vs_corruption(self, tmp_path):
        # An internally *consistent* checkpoint whose snapshot drifted is
        # checkpoint-drift; an inconsistent one is trace corruption.
        _, records = record_records(tmp_path)
        ci = next(i for i, r in enumerate(records) if r["kind"] == "checkpoint")
        drifted = copy.deepcopy(records)
        snapshot = drifted[ci]["snapshot"]
        snapshot["nodes"][0]["pos"][0] += 7
        drifted[ci]["snapshot_digest"] = payload_digest(snapshot)
        result = diff_traces(records, drifted)
        d = result.divergence
        assert d.classification == "checkpoint-drift"
        assert d.event == records[ci]["events"]
        assert "outside the traced stream" in d.detail

        corrupt = copy.deepcopy(records)
        corrupt[ci]["snapshot_digest"] = "0" * 64
        result = diff_traces(records, corrupt)
        assert result.divergence.classification == "chain-break"

    def test_neighborhood_describes_touched_nodes(self, tmp_path):
        _, records = record_records(tmp_path)
        lines = event_line_indices(records)
        target = records[lines[6]]
        perturbed = copy.deepcopy(records)
        perturbed[lines[6]]["nid2"] = target["nid2"] + 500
        result = diff_traces(records, perturbed)
        hood = result.divergence.neighborhood
        assert hood is not None
        assert target["nid1"] in hood["touched"]
        assert target["nid2"] in hood["touched"]
        described = {n["nid"] for n in hood["nodes"]}
        assert target["nid1"] in described
        # The perturbed id names no real node: reported missing, not a crash.
        assert target["nid2"] + 500 in hood["missing"]
        assert hood["events"] <= 6  # window base is at or before the event

    def test_neighborhood_opt_out(self, tmp_path):
        _, records = record_records(tmp_path)
        lines = event_line_indices(records)
        perturbed = copy.deepcopy(records)
        perturbed[lines[0]]["nid1"] += 1
        result = diff_traces(records, perturbed, neighborhood=False)
        assert result.divergence.neighborhood is None


class TestPayload:
    def test_payload_round_trip(self, tmp_path):
        pa, records = record_records(tmp_path)
        perturbed = copy.deepcopy(records)
        perturbed[event_line_indices(records)[2]]["nid1"] += 9
        payload = diff_traces(records, perturbed).to_payload()
        assert payload["schema"] == DIFF_SCHEMA
        assert validate_diff_payload(payload) == []
        assert validate_payload(payload) == []  # registry dispatch

    def test_identical_payload_valid(self, tmp_path):
        pa, _ = record_records(tmp_path)
        payload = diff_traces(pa, pa).to_payload()
        assert payload["identical"] is True
        assert validate_diff_payload(payload) == []

    def test_payload_rejections(self):
        assert validate_diff_payload([]) != []
        bad = {
            "schema": DIFF_SCHEMA,
            "kind": "trace-diff",
            "identical": False,
            "a": {},
            "b": {},
            "events_compared": 0,
            "checkpoints_compared": 0,
            "divergence": {
                "classification": "bogus",
                "event": "five",
                "side": "c",
                "detail": 7,
            },
        }
        errors = validate_diff_payload(bad)
        assert any("classification" in e for e in errors)
        assert any("event" in e for e in errors)
        assert any("side" in e for e in errors)
        assert any("detail" in e for e in errors)

    def test_unknown_schema_names_registry(self):
        errors = validate_payload({"schema": "nope/v9"})
        assert len(errors) == 1
        assert "known schemas:" in errors[0]
        for schema_id in known_schemas():
            assert schema_id in errors[0]


class TestCli:
    def test_diff_identical_exit_zero(self, tmp_path, capsys):
        pa, _ = record_records(tmp_path, "a")
        pb, _ = record_records(tmp_path, "b")
        assert main(["diff", str(pa), str(pb)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_divergent_exit_one_and_json(self, tmp_path, capsys):
        pa, _ = record_records(tmp_path, "a", seed=SEED)
        pb, _ = record_records(tmp_path, "b", seed=SEED + 1)
        out_json = tmp_path / "diff.json"
        assert main(["diff", str(pa), str(pb), "--json", str(out_json)]) == 1
        assert "DIVERGED" in capsys.readouterr().out
        payload = json.loads(out_json.read_text())
        assert validate_diff_payload(payload) == []
        # repro validate dispatches on the diff schema id.
        assert main(["validate", str(out_json)]) == 0

    def test_diff_live(self, tmp_path, capsys):
        pa, _ = record_records(tmp_path, "a")
        assert main(["diff", str(pa), "--live"]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_usage_errors(self, tmp_path, capsys):
        pa, _ = record_records(tmp_path, "a")
        assert main(["diff", str(pa)]) == 2
        assert main(["diff", str(pa), str(pa), "--live"]) == 2


# ----------------------------------------------------------------------
# Hypothesis: the diff localizes any injected perturbation exactly
# ----------------------------------------------------------------------

_BASE = {"records": None, "raw": None}


def _base_trace(tmp_path_factory):
    if _BASE["records"] is None:
        path = tmp_path_factory.mktemp("diff-hyp") / "base.trace"
        record_scenario(
            SCENARIO,
            params=dict(PARAMS),
            seed=SEED,
            path=path,
            checkpoint_every=8,
        )
        _BASE["raw"] = path.read_bytes()
        _BASE["records"] = [
            json.loads(l) for l in _BASE["raw"].splitlines()
        ]
    return _BASE["records"], _BASE["raw"]


class TestDiffSoundness:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_semantic_perturbation_localized(self, data, tmp_path_factory):
        # Perturb exactly one event record: the diff must report an
        # event-mismatch at exactly that event index — never later
        # (missed prefix agreement) nor earlier (false positive).
        records, _ = _base_trace(tmp_path_factory)
        lines = event_line_indices(records)
        k = data.draw(st.integers(1, len(lines)), label="event index")
        field = data.draw(
            st.sampled_from(["nid1", "nid2", "new_state1"]), label="field"
        )
        perturbed = copy.deepcopy(records)
        record = perturbed[lines[k - 1]]
        if field.startswith("nid"):
            record[field] += data.draw(st.integers(1, 10_000))
        else:
            record[field] = ["__perturbed__", record.get(field)]
        result = diff_traces(records, perturbed)
        assert not result.identical
        assert result.divergence.classification == "event-mismatch"
        assert result.divergence.event == k
        assert result.events_compared == k - 1

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_single_byte_flip_localized(self, data, tmp_path_factory):
        records, raw = _base_trace(tmp_path_factory)
        lines = raw.splitlines()
        pos = data.draw(st.integers(0, len(raw) - 1), label="byte position")
        if raw[pos : pos + 1] == b"\n":
            return  # structural newline: not a one-line flip
        flip = data.draw(st.integers(1, 255), label="xor")
        flipped = raw[:pos] + bytes([raw[pos] ^ flip]) + raw[pos + 1 :]

        # Which line did we hit, and what should the flip classify as?
        line_no = raw[:pos].count(b"\n")
        flipped_line = flipped.splitlines()[line_no]
        original = records[line_no]
        try:
            parsed = json.loads(flipped_line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            parsed = None
        if parsed == original:
            return  # parse-identical flip (e.g. inside an escape): no diff
        last = line_no == len(lines) - 1
        if not isinstance(parsed, dict):
            expected = "premature-end" if last else "chain-break"
        elif line_no == 0:
            # Header: a parseable identity drift diffs at event 0; a broken
            # snapshot is corruption. A flip the identity comparison cannot
            # see (an advisory key, or a null-valued key renamed so .get()
            # still answers None on both sides) passes the header stage and
            # then breaks the hash chain — seeded over the header bytes —
            # at the first checkpoint anchor.
            snapshot = parsed.get("snapshot")
            intact = (
                parsed.get("kind") == "header"
                and parsed.get("schema") == "repro.trace/v1"
                and isinstance(snapshot, dict)
                and payload_digest(snapshot) == parsed.get("snapshot_digest")
            )
            identity_drift = any(
                k != "checkpoint_every" and parsed.get(k) != original.get(k)
                for k in sorted(set(parsed) | set(original))
            )
            expected = (
                "checkpoint-drift" if intact and identity_drift else "chain-break"
            )
        else:
            kind = parsed.get("kind")
            if kind in ("event", "move"):
                expected = "event-mismatch"
            elif kind in ("detach", "excise"):
                expected = "fault-mismatch"
            else:
                # checkpoint/end self-digests break, as do unknown kinds.
                expected = "chain-break"

        result = diff_traces(raw, flipped)
        assert not result.identical
        assert result.divergence.classification == expected, (
            f"flip at byte {pos} (line {line_no}): expected {expected}, "
            f"got {result.divergence.classification}: "
            f"{result.divergence.detail}"
        )
        if expected in ("event-mismatch", "fault-mismatch"):
            assert result.divergence.event == original["index"]

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_truncation_localized(self, data, tmp_path_factory):
        records, raw = _base_trace(tmp_path_factory)
        pos = data.draw(st.integers(1, len(raw) - 1), label="cut position")
        truncated = raw[:pos]
        complete = truncated.count(b"\n")
        # Events fully present in the truncated prefix:
        events_before = sum(
            1 for r in records[:complete] if r["kind"] == "event"
        )
        dangling = truncated.splitlines()[-1] if not truncated.endswith(b"\n") else None
        if dangling is not None:
            try:
                parsed = json.loads(dangling)
            except (json.JSONDecodeError, UnicodeDecodeError):
                parsed = None
            if parsed == records[complete]:
                # The cut landed exactly at a line's final newline; the
                # dangling "fragment" is a whole record.
                if parsed["kind"] == "event":
                    events_before += 1
                complete += 1
                dangling = None
        if complete == len(records):
            # Only the final newline was cut: the trace is still complete.
            assert diff_traces(raw, truncated).identical
            return
        result = diff_traces(raw, truncated)
        assert not result.identical
        d = result.divergence
        assert d.classification == "premature-end"
        assert d.side == "b"
        if dangling is None or json_parses_as_dict(dangling) is None:
            # Pure truncation (possibly a torn, unparseable tail).
            assert d.event == events_before
        assert d.event is not None and d.event <= events_before + 1


def json_parses_as_dict(line):
    try:
        parsed = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    return parsed if isinstance(parsed, dict) else None
