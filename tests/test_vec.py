"""Unit tests for integer grid vectors."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.vec import ORIGIN, UNIT_VECTORS, Vec

coords = st.integers(min_value=-50, max_value=50)
vecs = st.builds(Vec, coords, coords, coords)


def test_basic_arithmetic():
    a = Vec(1, 2, 3)
    b = Vec(-1, 0, 5)
    assert a + b == Vec(0, 2, 8)
    assert a - b == Vec(2, 2, -2)
    assert -a == Vec(-1, -2, -3)
    assert a * 2 == Vec(2, 4, 6)
    assert 3 * a == Vec(3, 6, 9)


def test_iteration_and_tuple():
    assert tuple(Vec(4, 5, 6)) == (4, 5, 6)
    assert Vec(4, 5).as_tuple() == (4, 5, 0)


def test_manhattan_and_unit():
    assert Vec(1, -2, 3).manhattan() == 6
    assert ORIGIN.manhattan() == 0
    for u in UNIT_VECTORS:
        assert u.is_unit()
    assert not Vec(1, 1).is_unit()
    assert not ORIGIN.is_unit()


def test_2d_predicate():
    assert Vec(3, -4).is_2d()
    assert not Vec(0, 0, 1).is_2d()


def test_ordering_is_lexicographic():
    assert Vec(0, 5, 9) < Vec(1, 0, 0)
    assert Vec(1, 1) < Vec(1, 2)
    assert sorted([Vec(2, 0), Vec(0, 2), Vec(1, 1)])[0] == Vec(0, 2)


def test_hashable_as_dict_key():
    d = {Vec(1, 2): "a", Vec(1, 2, 1): "b"}
    assert d[Vec(1, 2, 0)] == "a"


@given(vecs, vecs)
def test_addition_commutes(a, b):
    assert a + b == b + a


@given(vecs, vecs, vecs)
def test_addition_associates(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(vecs)
def test_negation_is_inverse(a):
    assert a + (-a) == ORIGIN


@given(vecs, vecs)
def test_triangle_inequality(a, b):
    assert (a + b).manhattan() <= a.manhattan() + b.manhattan()
