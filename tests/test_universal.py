"""The end-to-end universal constructor (Theorem 4)."""

import pytest

from repro.constructors.universal import run_universal
from repro.errors import SimulationError
from repro.machines.shape_programs import (
    cross_program,
    line_program,
    star_program,
)


@pytest.mark.parametrize("program", [cross_program(), star_program()],
                         ids=lambda p: p.name)
def test_universal_constructs_on_perfect_square_population(program):
    res = run_universal(program, 25, seed=2)
    assert res.count_exact
    assert res.d == 5
    assert res.matches(program)
    assert res.waste == 25 - len(res.shape.cells)


def test_universal_line_worst_case_waste():
    res = run_universal(line_program(), 16, seed=1)
    assert res.matches(line_program())
    # Theorem 4: waste (d-1) d when the shape is a line of length d.
    assert res.waste == (res.d - 1) * res.d


def test_universal_with_non_square_population_wastes_surplus():
    res = run_universal(cross_program(), 27, seed=3)
    assert res.d == 5  # floor(sqrt(27)) = 5
    assert res.waste >= 27 - 25


def test_universal_interaction_accounting():
    res = run_universal(cross_program(), 16, seed=5)
    assert res.total_interactions == (
        res.counting_events + res.square_events + res.construction_interactions
    )
    assert res.counting_events > 0 and res.square_events > 0


def test_universal_rejects_tiny_populations():
    with pytest.raises(SimulationError):
        run_universal(cross_program(), 5)


@pytest.mark.parametrize("seed", range(3))
def test_universal_repeatable_success(seed):
    res = run_universal(cross_program(), 16, seed=seed)
    assert res.matches(cross_program())


def test_universal_with_extended_catalogue():
    from repro.machines.shape_programs import diamond_program, serpentine_program

    for program in (serpentine_program(), diamond_program()):
        res = run_universal(program, 25, seed=4)
        assert res.count_exact
        assert res.matches(program), program.name


def test_universal_result_reports_stage_breakdown():
    res = run_universal(star_program(), 36, seed=6)
    assert res.d == 6
    assert res.n_estimate == 36
    # The released star is a strict subset of the square.
    assert 0 < len(res.shape.cells) < 36
