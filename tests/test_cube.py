"""Tests for the 3D cube constructor and its substrate helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constructors.cube import run_cube_known_n
from repro.errors import SimulationError
from repro.geometry.grid import integer_cbrt
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec
from repro.viz.ascii_art import render_layers


class TestIntegerCbrt:
    @pytest.mark.parametrize(
        "n,root,exact",
        [(0, 0, True), (1, 1, True), (8, 2, True), (27, 3, True),
         (26, 2, False), (28, 3, False), (1000, 10, True),
         (999, 9, False)],
    )
    def test_known_values(self, n, root, exact):
        assert integer_cbrt(n) == (root, exact)

    def test_rejects_negative(self):
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            integer_cbrt(-1)

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=100, deadline=None)
    def test_floor_property(self, n):
        root, exact = integer_cbrt(n)
        assert root**3 <= n < (root + 1) ** 3
        assert exact is (root**3 == n)


class TestIsFullBox:
    def test_cube_is_full_box(self):
        cells = [Vec(x, y, z) for x in range(2) for y in range(2) for z in range(2)]
        assert Shape.from_cells(cells).is_full_box()

    def test_2d_rectangle_is_also_a_box(self):
        cells = [Vec(x, y) for x in range(3) for y in range(2)]
        assert Shape.from_cells(cells).is_full_box()

    def test_missing_cell_is_not_a_box(self):
        cells = [Vec(x, y, z) for x in range(2) for y in range(2) for z in range(2)]
        cells.remove(Vec(1, 1, 1))
        assert not Shape.from_cells(cells).is_full_box()

    def test_missing_edge_is_not_a_box(self):
        cells = [Vec(0, 0), Vec(1, 0), Vec(0, 1), Vec(1, 1)]
        chain = [
            frozenset((Vec(0, 0), Vec(1, 0))),
            frozenset((Vec(1, 0), Vec(1, 1))),
            frozenset((Vec(1, 1), Vec(0, 1))),
        ]
        assert not Shape.from_cells(cells, chain).is_full_box()


class TestCubeKnownN:
    def test_rejects_non_cube_population(self):
        with pytest.raises(SimulationError):
            run_cube_known_n(30)

    def test_rejects_small_side(self):
        with pytest.raises(SimulationError):
            run_cube_known_n(8)  # side 2 < 3

    def test_builds_3x3x3_cube(self):
        result = run_cube_known_n(27, seed=0)
        assert result.side == 3
        assert result.n == 27
        shape = result.cube_shape()
        assert len(shape.cells) == 27
        assert shape.is_full_box()
        # Every slab ran the genuine scheduler-driven 2D pipeline.
        assert len(result.slabs) == 3
        assert all(s.side == 3 for s in result.slabs)
        assert result.scheduler_events > 0
        assert result.leader_interactions > 0
        result.world.check_invariants()

    def test_leader_marked_at_origin_corner(self):
        result = run_cube_known_n(27, seed=1)
        leaders = sorted(result.world.nodes_in_state("cb_L"))
        assert len(leaders) == 1

    def test_interaction_accounting_includes_stacking(self):
        result = run_cube_known_n(27, seed=2)
        slab_cost = sum(s.leader_interactions for s in result.slabs)
        # Stacking adds side² per slab walk plus side² per interface.
        stacking = 3 * 9 + 2 * 9
        assert result.leader_interactions == slab_cost + stacking

    def test_distinct_seeds_same_cube(self):
        a = run_cube_known_n(27, seed=3).cube_shape()
        b = run_cube_known_n(27, seed=4).cube_shape()
        assert a.normalize().cells == b.normalize().cells


class TestRenderLayers:
    def test_cube_renders_one_block_per_layer(self):
        cells = [Vec(x, y, z) for x in range(2) for y in range(2) for z in range(2)]
        out = render_layers(Shape.from_cells(cells))
        assert out.count("z =") == 2
        assert out.count("##") == 4

    def test_2d_shape_single_block(self):
        out = render_layers(Shape.from_cells([Vec(0, 0), Vec(1, 0)]))
        assert out.startswith("z = 0:")
        assert "##" in out

    def test_off_cells_rendered(self):
        cells = [Vec(0, 0, 0), Vec(1, 0, 0), Vec(0, 0, 1)]
        out = render_layers(Shape.from_cells(cells))
        assert "#." in out  # layer z=1 has an off cell
