"""The columnar candidate backend (``repro.core.columnar``).

Pins the invariants the batch kernels rest on:

* the packed ``(hi, lo)`` sort key is strictly order-isomorphic to the
  historical tuple ``candidate_sort_key`` (hypothesis, mixed 2D/3D);
* ``(key, hi, lo)`` rows round-trip to the exact ``Candidate``;
* ``rotate_cells`` / ``in_sorted`` agree with their scalar definitions;
* the backend toggle (``columnar=``, ``set_columnar_default``,
  ``REPRO_COLUMNAR``) resolves as documented, and columnar-on vs
  columnar-off runs produce bit-identical seeded trajectories;
* ``ColumnarIndex`` stays coherent with the dict world through merges.

The randomized world-mutation stress harness in
``tests/test_world_deltas.py`` drives the same assertions through
splits, surgery and moves; this module is the deterministic pinning.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import columnar
from repro.core.candidates import (
    EffectiveCandidateCache,
    candidate_sort_key,
)
from repro.core.protocol import Rule, RuleProtocol
from repro.core.scheduler import evaluate, make_scheduler
from repro.core.simulator import Simulation
from repro.core.trace import TraceRecorder
from repro.core.world import Candidate, World
from repro.geometry.packed import pack, unpack
from repro.geometry.ports import PORTS_2D, PORTS_3D, opposite
from repro.geometry.rotation import rotations_for_dimension
from repro.geometry.vec import Vec

HAVE_NUMPY = columnar.np is not None
needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy required")

ALL_ROTATIONS = tuple(
    {r.matrix: r for d in (2, 3) for r in rotations_for_dimension(d)}.values()
)


def gluing_protocol(dimension: int = 2) -> RuleProtocol:
    ports = PORTS_2D if dimension == 2 else PORTS_3D
    rules = [Rule("g", p, "g", opposite(p), 0, "g", "g", 1) for p in ports]
    return RuleProtocol(
        rules, initial_state="g", name="gluing", dimension=dimension
    )


coords = st.integers(min_value=-200, max_value=200)


@st.composite
def candidates(draw):
    nid1 = draw(st.integers(min_value=0, max_value=500))
    nid2 = draw(st.integers(min_value=0, max_value=500))
    p1 = draw(st.sampled_from(PORTS_3D))
    p2 = draw(st.sampled_from(PORTS_3D))
    bond = draw(st.integers(min_value=0, max_value=1))
    if draw(st.booleans()):
        return Candidate(min(nid1, nid2), p1, max(nid1, nid2), p2, bond)
    rot = draw(st.sampled_from(ALL_ROTATIONS))
    trans = Vec(draw(coords), draw(coords), draw(coords))
    return Candidate(nid1, p1, nid2, p2, bond, rot, trans)


class TestPackedKeys:
    @given(st.lists(candidates(), min_size=2, max_size=25))
    @settings(max_examples=200, deadline=None)
    def test_sort_key_order_isomorphism(self, cands):
        tuples = [candidate_sort_key(c) for c in cands]
        packed = [columnar.packed_sort_key(c) for c in cands]
        for i in range(len(cands)):
            for j in range(len(cands)):
                assert (tuples[i] < tuples[j]) == (packed[i] < packed[j]), (
                    cands[i],
                    cands[j],
                )

    @given(candidates())
    @settings(max_examples=200, deadline=None)
    def test_row_round_trip(self, cand):
        key = columnar.packed_key(cand)
        hi, lo = columnar.packed_sort_key(cand)
        got = columnar.candidate_from_row(key, hi, lo)
        assert got.nid1 == cand.nid1 and got.nid2 == cand.nid2
        assert got.port1 is cand.port1 and got.port2 is cand.port2
        assert got.bond == cand.bond
        if cand.rotation is None:
            assert got.rotation is None and got.translation is None
        else:
            assert got.rotation.matrix == cand.rotation.matrix
            assert got.translation == cand.translation
        assert columnar.key_nid1(key) == cand.nid1
        assert columnar.key_nid2(key) == cand.nid2
        assert columnar.key_is_inter(key) == (cand.rotation is not None)

    def test_key_rejects_out_of_range_ids(self):
        cand = Candidate(columnar.NID_LIMIT, PORTS_2D[0], 1, PORTS_2D[1], 0)
        with pytest.raises(OverflowError):
            columnar.packed_key(cand)


@needs_numpy
class TestArrayKernels:
    @given(
        st.sampled_from(ALL_ROTATIONS),
        st.lists(
            st.tuples(coords, coords, coords), min_size=1, max_size=12
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_rotate_cells_matches_rotation(self, rot, points):
        np = columnar.np
        cells = np.fromiter(
            (pack(Vec(*p)) for p in points), np.int64, count=len(points)
        )
        got = columnar.rotate_cells(rot, cells)
        want = [pack(rot.apply(Vec(*p))) for p in points]
        assert got.tolist() == want
        # unpack agreement, not just packed equality
        assert [unpack(int(c)) for c in got] == [
            rot.apply(Vec(*p)) for p in points
        ]

    @given(
        st.lists(st.integers(-50, 50), max_size=40),
        st.lists(st.integers(-50, 50), max_size=40),
    )
    @settings(max_examples=150, deadline=None)
    def test_in_sorted_matches_set_membership(self, values, member_list):
        np = columnar.np
        members = np.array(sorted(set(member_list)), dtype=np.int64)
        vals = np.array(values, dtype=np.int64)
        got = columnar.in_sorted(vals, members)
        want = [v in set(member_list) for v in values]
        assert list(got) == want


class TestBackendToggle:
    def test_resolve_and_name(self):
        assert columnar.resolve_columnar(False) is False
        assert "fallback" in columnar.backend_name(False)
        if HAVE_NUMPY:
            assert columnar.resolve_columnar(True) is True
            assert columnar.backend_name(True) == "columnar (numpy)"
        else:
            assert columnar.resolve_columnar(True) is False

    def test_process_default_override(self):
        try:
            columnar.set_columnar_default(False)
            assert columnar.columnar_default() is False
            assert columnar.resolve_columnar(None) is False
            columnar.set_columnar_default(True)
            assert columnar.columnar_default() is HAVE_NUMPY
        finally:
            columnar.set_columnar_default(None)

    def test_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR", "0")
        assert columnar.columnar_default() is False
        monkeypatch.setenv("REPRO_COLUMNAR", "1")
        assert columnar.columnar_default() is HAVE_NUMPY

    def test_cache_honors_flag(self):
        world = World(2)
        protocol = gluing_protocol()
        for _ in range(4):
            world.add_free_node("g")
        world.adopt_space(protocol.program.space)
        off = EffectiveCandidateCache(columnar=False)
        off.refresh(world, protocol, evaluate)
        assert not off._dense
        if HAVE_NUMPY:
            on = EffectiveCandidateCache(columnar=True)
            on.refresh(world, protocol, evaluate)
            assert on._dense


@needs_numpy
class TestBackendEquivalence:
    @pytest.mark.parametrize("dimension", (2, 3))
    @pytest.mark.parametrize(
        "kind,kwargs",
        (
            ("hot", {"incremental": True}),
            ("rejection", {}),
            ("round-robin", {}),
        ),
    )
    def test_identical_trajectories(self, dimension, kind, kwargs):
        protocol = gluing_protocol(dimension)
        traces = {}
        for flag in (True, False):
            world = World.of_free_nodes(16, protocol, leaders=0)
            rec = TraceRecorder()
            sim = Simulation(
                world,
                protocol,
                scheduler=make_scheduler(kind, columnar=flag, **kwargs),
                seed=7,
                trace=rec.hook,
            )
            res = sim.run(max_events=15)
            traces[flag] = (rec.to_list(), res.events, res.raw_steps)
        assert traces[True] == traces[False]

    def test_identical_effective_sets_and_counts(self):
        protocol = gluing_protocol()
        sets = {}
        for flag in (True, False):
            world = World.of_free_nodes(10, protocol, leaders=0)
            sim = Simulation(world, protocol, seed=3)
            cache = EffectiveCandidateCache(columnar=flag)
            got = list(cache.refresh(world, protocol, evaluate))
            for _ in range(5):
                sim.step()
                got.extend(cache.refresh(world, protocol, evaluate))
            sets[flag] = (got, cache.evaluations)
        assert sets[True][0] == sets[False][0]
        assert sets[True][1] == sets[False][1]


@needs_numpy
class TestColumnarIndex:
    def test_sync_through_events(self):
        protocol = gluing_protocol()
        world = World.of_free_nodes(12, protocol, leaders=0)
        sim = Simulation(world, protocol, seed=5)
        idx = columnar.get_index(world)
        idx.sync()
        idx.verify(world)
        for _ in range(11):
            sim.step()
            idx.sync()
            idx.verify(world)
        assert columnar.get_index(world) is idx

    def test_members_array_sorted(self):
        protocol = gluing_protocol()
        world = World.of_free_nodes(6, protocol, leaders=0)
        idx = columnar.get_index(world)
        idx.sync()
        sid = world.nodes[0].sid
        members = idx.members_array(sid)
        assert members.tolist() == sorted(world.by_sid[sid])
