"""World mechanics: permissibility, bonding, merging, splitting, surgery."""

import pytest

from repro.core.protocol import Rule, RuleProtocol
from repro.core.world import Candidate, World, bond_of
from repro.errors import SimulationError
from repro.geometry.ports import Port
from repro.geometry.vec import Vec

U, R, D, L = Port.UP, Port.RIGHT, Port.DOWN, Port.LEFT


def _two_free():
    w = World(2)
    a = w.add_free_node("x")
    b = w.add_free_node("y")
    return w, a, b


def test_free_nodes_are_singletons():
    w, a, b = _two_free()
    assert w.size == 2
    assert w.is_free(a) and w.is_free(b)
    assert set(w.free_node_ids()) == {a, b}
    assert w.by_state == {"x": {a}, "y": {b}}


def test_inter_alignment_unique_in_2d():
    w, a, b = _two_free()
    alignments = w.inter_alignments(a, R, b, L)
    assert len(alignments) == 1
    alignments_same_port = w.inter_alignments(a, R, b, R)
    assert len(alignments_same_port) == 1  # a 180-degree rotation aligns it


def test_bonding_merges_components():
    w, a, b = _two_free()
    (rot, trans) = w.inter_alignments(a, R, b, L)[0]
    cand = Candidate(a, R, b, L, 0, rot, trans)
    w.apply(cand, ("x2", "y2", 1))
    assert w.component_of(a) is w.component_of(b)
    assert w.bond_state(a, R, b, L) == 1
    assert w.nodes[b].pos - w.nodes[a].pos == Vec(1, 0)
    w.check_invariants()


def test_touch_without_bond_keeps_components_apart():
    w, a, b = _two_free()
    (rot, trans) = w.inter_alignments(a, R, b, L)[0]
    w.apply(Candidate(a, R, b, L, 0, rot, trans), ("x2", "y2", 0))
    assert w.component_of(a) is not w.component_of(b)
    assert w.state_of(a) == "x2" and w.state_of(b) == "y2"


def test_unbonding_splits_component():
    w, a, b = _two_free()
    (rot, trans) = w.inter_alignments(a, R, b, L)[0]
    w.apply(Candidate(a, R, b, L, 0, rot, trans), ("x", "y", 1))
    cand = w.check_intra(a, R, b, L)
    assert cand is not None and cand.bond == 1
    w.apply(cand, ("x", "y", 0))
    assert w.component_of(a) is not w.component_of(b)
    w.check_invariants()


def test_occupied_slot_blocks_alignment():
    w = World(2)
    nids = w.add_component_from_cells({Vec(0, 0): "a", Vec(1, 0): "a"})
    free = w.add_free_node("q")
    left_nid = nids[Vec(0, 0)]
    # The right port of the left node faces its neighbor: no alignment.
    assert w.inter_alignments(left_nid, R, free, L) == []
    # Its left port is open.
    assert len(w.inter_alignments(left_nid, L, free, R)) == 1


def test_collision_blocks_component_alignment():
    w = World(2)
    # An L-shaped component and a 2-node bar that would overlap it.
    w.add_component_from_cells(
        {Vec(0, 0): "a", Vec(1, 0): "a", Vec(1, 1): "a"}
    )
    w.add_component_from_cells({Vec(0, 0): "b", Vec(0, 1): "b"})
    a_ids = sorted(w.nodes_in_state("a"))
    b_ids = sorted(w.nodes_in_state("b"))
    corner = next(nid for nid in a_ids if w.nodes[nid].pos == Vec(0, 0))
    bottom_b = next(nid for nid in b_ids if w.nodes[nid].pos == Vec(0, 0))
    # Placing b's bottom to the right of a's corner at (1, 0)... occupied.
    assert w.inter_alignments(corner, R, bottom_b, L) == []
    # Placing it to the left at (-1, 0) is fine: column fits.
    assert len(w.inter_alignments(corner, L, bottom_b, R)) == 1


def test_intra_pair_requires_adjacency():
    w = World(2)
    nids = w.add_component_from_cells(
        {Vec(0, 0): "a", Vec(1, 0): "a", Vec(2, 0): "a"}
    )
    far = w.intra_candidate(nids[Vec(0, 0)], nids[Vec(2, 0)])
    assert far is None
    near = w.intra_candidate(nids[Vec(0, 0)], nids[Vec(1, 0)])
    assert near is not None and (near.port1, near.port2) == (R, L)


def test_enumerate_candidates_on_small_world():
    w, a, b = _two_free()
    cands = list(w.enumerate_candidates())
    # Two free nodes in 2D: all 4x4 port combinations are permissible.
    assert len(cands) == 16
    assert all(c.rotation is not None for c in cands)


def test_add_component_validates_connectivity():
    w = World(2)
    with pytest.raises(SimulationError):
        w.add_component_from_cells(
            {Vec(0, 0): "a", Vec(1, 0): "a"}, bonds=[]
        )


def test_free_singleton_surgery():
    w = World(2)
    nids = w.add_component_from_cells(
        {Vec(0, 0): "a", Vec(1, 0): "a", Vec(2, 0): "a"}
    )
    w.free_singleton(nids[Vec(1, 0)], "q0")
    # The middle node leaves; the two ends are now separate components.
    assert w.is_free(nids[Vec(1, 0)])
    assert w.state_of(nids[Vec(1, 0)]) == "q0"
    assert w.component_of(nids[Vec(0, 0)]) is not w.component_of(nids[Vec(2, 0)])
    w.check_invariants()


def test_transplant_line_surgery():
    w = World(2)
    square = w.add_component_from_cells({Vec(0, 0): "sq", Vec(1, 0): "sq"})
    line = w.add_component_from_cells(
        {Vec(5, 5): "i", Vec(6, 5): "i"}
    )
    into = w.nodes[square[Vec(0, 0)]].component_id
    w.transplant_line(
        [line[Vec(5, 5)], line[Vec(6, 5)]],
        [Vec(0, -1), Vec(1, -1)],
        into,
        "sq",
    )
    comp = w.components[into]
    assert comp.size() == 4
    w.check_invariants()


def test_output_shapes():
    protocol = RuleProtocol(
        [Rule("L", R, "q0", L, 0, "q1", "L", 1)],
        leader_state="L",
        output_states={"q1", "L"},
        hot_states=["L"],
    )
    w = World(2)
    w.add_component_from_cells({Vec(0, 0): "q1", Vec(1, 0): "L"})
    w.add_free_node("q0")
    shapes = w.output_shapes(protocol)
    assert len(shapes) == 1
    assert len(shapes[0].cells) == 2


def test_invariant_checker_catches_corruption():
    w = World(2)
    nids = w.add_component_from_cells({Vec(0, 0): "a", Vec(1, 0): "a"})
    comp = w.component_of(nids[Vec(0, 0)])
    comp.bonds.add(bond_of(nids[Vec(0, 0)], U, nids[Vec(1, 0)], D))
    with pytest.raises(SimulationError):
        w.check_invariants()
