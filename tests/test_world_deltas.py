"""Randomized world-mutation stress harness for the unified delta journal.

The world journals every structural mutation — merges, splits (bond
removals and surgery excisions), and hybrid leaf moves — as ordered,
tagged delta records (``World.deltas_since``), and the incremental
candidate cache consumes them with fine-grained pruning instead of coarse
per-component sweeps (``repro.core.candidates``). These tests drive random
interleaved merge / split / surgery / state-write sequences through both
the cached and brute-force effective sets and assert, after *every*
mutation:

* set equality between the cache, the brute-force hot enumeration, and
  the reference enumeration (2D and 3D, under all four schedulers);
* journal-cursor consistency: cursors are monotone, ``deltas_since``
  returns exactly the records of the gap, and each component's version
  trail is strictly increasing record by record;
* the coarse sweep (``split_delta=False``) and the fine delta path agree
  — the delta machinery is an optimization, never a semantic change;
* (with numpy) the journal-synced flat columns of the columnar backend
  (``repro.core.columnar.ColumnarIndex``) equal the dict world after
  every mutation, and the columnar and pure-Python fallback caches
  serve identical effective sets.

This is the chaos-testing layer the fault/repair dynamics of the paper
lean on: every bond deletion and node excision must keep the cache exact.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import (
    EffectiveCandidateCache,
    candidate_sort_key,
    hot_effective_candidates,
    reference_effective_candidates,
)
from repro.core.protocol import Rule, RuleProtocol
from repro.core.scheduler import evaluate, make_scheduler
from repro.core.simulator import Simulation
from repro.core.world import World
from repro.errors import ReproError
from repro.faults.injection import break_random_bond, excise_random_node
from repro.faults.repair import detach_component_part
from repro.core import columnar
from repro.geometry.ports import PORTS_2D, PORTS_3D, opposite
from repro.geometry.vec import Vec
from repro.hybrid.movement import rotate_leaf

HAVE_NUMPY = columnar.np is not None

SCHEDULER_KINDS = (
    ("enumerate", {}),
    ("rejection", {}),
    ("hot", {"incremental": True}),
    ("round-robin", {}),
)


def gluing_protocol(dimension: int = 2) -> RuleProtocol:
    ports = PORTS_2D if dimension == 2 else PORTS_3D
    rules = [Rule("g", p, "g", opposite(p), 0, "g", "g", 1) for p in ports]
    return RuleProtocol(
        rules, initial_state="g", name="gluing", dimension=dimension
    )


class JournalObserver:
    """Tracks journal cursors across mutations and checks consistency."""

    def __init__(self, world: World) -> None:
        self.world = world
        self.delta_cursor = world.delta_cursor()
        self.change_cursor = world.change_cursor()
        self.versions = {}

    def check(self) -> None:
        world = self.world
        new_delta = world.delta_cursor()
        new_change = world.change_cursor()
        assert new_delta >= self.delta_cursor
        assert new_change >= self.change_cursor
        deltas = world.deltas_since(self.delta_cursor)
        assert deltas is not None, "journal truncated under a live cursor"
        assert len(deltas) == new_delta - self.delta_cursor
        assert world.deltas_since(new_delta) == []
        for kind, record in deltas:
            assert kind in ("merge", "split", "move"), kind
            cid, version = record[0], record[1]
            prev = self.versions.get(cid)
            if prev is not None:
                assert version > prev, (kind, cid, prev, version)
            self.versions[cid] = version
            if kind == "merge":
                _kept, _v, absorbed, new_cells, moved = record
                assert absorbed != cid
                assert len(new_cells) == len(moved)
            elif kind == "split":
                _kept, _v, fragments, vacated, frontier = record
                departed = [n for _c, _fv, ms in fragments for n in ms]
                assert len(departed) == len(set(departed))
                assert len(vacated) == len(departed)
                assert not set(frontier) & set(departed)
                for fcid, fversion, members in fragments:
                    assert fcid != cid and members
                    self.versions.setdefault(fcid, fversion)
            else:  # move
                _cid, _v, dirtied, vacated, new_cells, _frontier = record
                assert dirtied and len(vacated) == len(new_cells) == 1
        changes = world.changes_since(self.change_cursor)
        assert changes is not None
        assert world.changes_since(new_change) == set()
        self.delta_cursor = new_delta
        self.change_cursor = new_change


def apply_random_mutation(world, sim, rng) -> str:
    """One randomly chosen world mutation; returns what was done."""
    r = rng.random()
    if r < 0.22:
        if break_random_bond(world, rng) is not None:
            sim.stabilized = False
            return "break"
        return "noop"
    if r < 0.38:
        nid = excise_random_node(world, rng, rng.choice(["g", "dead"]))
        if nid is not None:
            sim.stabilized = False
            return "excise"
        return "noop"
    if r < 0.48:
        comps = sorted(
            cid for cid, c in world.components.items() if c.size() >= 4
        )
        if comps:
            cid = comps[rng.randrange(len(comps))]
            try:
                detach_component_part(world, cid, 0.4, rng=rng)
            except ReproError:
                return "noop"
            sim.stabilized = False
            return "detach"
        return "noop"
    if r < 0.58:
        nids = sorted(world.nodes)
        nid = nids[rng.randrange(len(nids))]
        world.set_state(nid, rng.choice(["g", "dead"]))
        sim.stabilized = False
        return "write"
    if r < 0.64:
        world.add_free_node("g")
        sim.stabilized = False
        return "add"
    if r < 0.72 and world.dimension == 2:
        leaves = []
        for comp in world.components.values():
            degree = {}
            for bond in comp.bonds:
                for nid, _port in bond:
                    degree[nid] = degree.get(nid, 0) + 1
            leaves.extend(n for n, d in degree.items() if d == 1)
        if leaves:
            leaf = sorted(leaves)[rng.randrange(len(leaves))]
            if rotate_leaf(world, leaf, rng.random() < 0.5):
                sim.stabilized = False
                return "move"
        return "noop"
    sim.step()
    return "event"


def assert_cache_in_sync(cache, world, protocol, fallback=None):
    got = cache.refresh(world, protocol, evaluate)
    brute = hot_effective_candidates(world, protocol, evaluate)
    want, _perm = reference_effective_candidates(world, protocol, evaluate)
    keys = [candidate_sort_key(c) for c, _u in got]
    assert keys == sorted(keys)
    assert got == brute
    assert got == want
    if fallback is not None:
        # The pure-Python fallback cache walks the same journals and
        # must land on the identical canonical list.
        assert fallback.refresh(world, protocol, evaluate) == got
    if HAVE_NUMPY:
        # The flat columns, synced purely from the journals, must
        # equal the dict world cell for cell after every mutation.
        idx = columnar.get_index(world)
        idx.sync()
        idx.verify(world)


class TestRandomizedMutationStress:
    """Cache == brute force == reference after every random mutation."""

    def _assert_in_sync(self, cache, world, protocol, fallback=None):
        assert_cache_in_sync(cache, world, protocol, fallback)

    @pytest.mark.parametrize("kind,kwargs", SCHEDULER_KINDS)
    @given(
        n=st.integers(min_value=3, max_value=9),
        seed=st.integers(min_value=0, max_value=10_000),
        dimension=st.sampled_from((2, 3)),
    )
    @settings(max_examples=8, deadline=None)
    def test_interleaved_mutations(self, kind, kwargs, n, seed, dimension):
        protocol = gluing_protocol(dimension)
        world = World(dimension)
        for _ in range(n):
            world.add_free_node("g")
        rng = random.Random(seed)
        sim = Simulation(
            world,
            protocol,
            scheduler=make_scheduler(kind, **kwargs),
            seed=seed,
        )
        cache = EffectiveCandidateCache()
        fallback = EffectiveCandidateCache(columnar=False) if HAVE_NUMPY else None
        observer = JournalObserver(world)
        self._assert_in_sync(cache, world, protocol, fallback)
        for _ in range(30):
            apply_random_mutation(world, sim, rng)
            world.check_invariants()
            observer.check()
            self._assert_in_sync(cache, world, protocol, fallback)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        gap=st.integers(min_value=2, max_value=5),
        dimension=st.sampled_from((2, 3)),
    )
    @settings(max_examples=10, deadline=None)
    def test_batched_gaps_fine_equals_coarse(self, seed, gap, dimension):
        # Several mutations may land between two refreshes; the fine delta
        # path and the coarse sweep must both stay exact through chained,
        # interleaved records (merge-then-split of the same component,
        # fragments merging away within the gap, partners in flux).
        protocol = gluing_protocol(dimension)
        world = World(dimension)
        for _ in range(8):
            world.add_free_node("g")
        rng = random.Random(seed)
        sim = Simulation(world, protocol, seed=seed)
        fine = EffectiveCandidateCache(split_delta=True)
        coarse = EffectiveCandidateCache(split_delta=False)
        for _ in range(12):
            for _ in range(gap):
                apply_random_mutation(world, sim, rng)
            got_fine = fine.refresh(world, protocol, evaluate)
            got_coarse = coarse.refresh(world, protocol, evaluate)
            want, _perm = reference_effective_candidates(
                world, protocol, evaluate
            )
            assert got_fine == want
            assert got_coarse == want


class TestSnapshotRestoreMutation:
    """A restored snapshot is a first-class world for the delta machinery.

    ``world_to_dict``/``world_from_dict`` round trips (the trace
    subsystem's checkpoints) must hand back a world whose component
    versions are bumped — so any (cid, version)-keyed cache treats every
    restored component as changed — and whose journals, allocator counters,
    and columnar index stay exact under continued random mutation.
    """

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        dimension=st.sampled_from((2, 3)),
    )
    @settings(max_examples=6, deadline=None)
    def test_restored_world_mutates_exactly(self, seed, dimension):
        from repro.core.trace import world_from_dict, world_to_dict

        protocol = gluing_protocol(dimension)
        world = World(dimension)
        for _ in range(7):
            world.add_free_node("g")
        rng = random.Random(seed)
        sim = Simulation(world, protocol, seed=seed)
        for _ in range(12):
            apply_random_mutation(world, sim, rng)
        snapshot = world_to_dict(world)
        restored = world_from_dict(snapshot)
        for comp in restored.components.values():
            assert comp.version >= 1, "restored component version not bumped"
        # The round trip is exact — including the allocator counters the
        # checkpoint replay path depends on for id-stable splits.
        assert world_to_dict(restored) == snapshot
        assert restored._next_nid == world._next_nid
        assert restored._next_cid == world._next_cid

        cache = EffectiveCandidateCache()
        fallback = EffectiveCandidateCache(columnar=False) if HAVE_NUMPY else None
        observer = JournalObserver(restored)
        sim2 = Simulation(restored, protocol, seed=seed + 1)
        assert_cache_in_sync(cache, restored, protocol, fallback)
        for _ in range(15):
            apply_random_mutation(restored, sim2, rng)
            restored.check_invariants()
            observer.check()
            assert_cache_in_sync(cache, restored, protocol, fallback)


class TestDeltaRecords:
    """Deterministic pinning of the journalled record contents."""

    def _line_world(self, protocol, length=5):
        world = World(2)
        cells = {Vec(x, 0): "g" for x in range(length)}
        nids = world.add_component_from_cells(cells)
        return world, nids

    def test_split_record_partition(self):
        protocol = gluing_protocol()
        world, nids = self._line_world(protocol)
        cid = world.nodes[nids[Vec(0, 0)]].component_id
        comp = world.components[cid]
        cursor = world.delta_cursor()
        # Snap the middle bond: {0,1,2} splits from {3,4}.
        target = next(
            b
            for b in comp.bonds
            if {n for n, _p in b} == {nids[Vec(2, 0)], nids[Vec(3, 0)]}
        )
        comp.bonds.discard(target)
        world._split_if_disconnected(comp)
        ((kind, record),) = world.deltas_since(cursor)
        assert kind == "split"
        kept, version, fragments, vacated, frontier = record
        assert kept == cid and version == comp.version
        ((fcid, fversion, members),) = fragments
        assert members == (nids[Vec(3, 0)], nids[Vec(4, 0)])
        assert world.nodes[members[0]].component_id == fcid
        assert fversion == world.components[fcid].version
        # The vacated cells are the fragment's old cells; the frontier is
        # the surviving node that was adjacent to the cut.
        from repro.geometry.packed import pack

        assert vacated == frozenset((pack(Vec(3, 0)), pack(Vec(4, 0))))
        assert frontier == (nids[Vec(2, 0)],)

    def test_excision_record(self):
        protocol = gluing_protocol()
        world, nids = self._line_world(protocol, length=3)
        mid = nids[Vec(1, 0)]
        cursor = world.delta_cursor()
        world.free_singleton(mid, "g")
        deltas = world.deltas_since(cursor)
        # One record for the excision, one for the remainder splitting in
        # two — strictly ordered, version trail consistent.
        assert [kind for kind, _r in deltas] == ["split", "split"]
        (k1, r1), (k2, r2) = deltas
        assert r1[2][0][2] == (mid,)  # the freed node is its own fragment
        assert r2[0] == r1[0] and r2[1] == r1[1] + 1
        assert world.is_free(mid)

    def test_move_record_from_leaf_rotation(self):
        protocol = gluing_protocol()
        world = World(2)
        nids = world.add_component_from_cells(
            {Vec(0, 0): "g", Vec(1, 0): "g"}
        )
        leaf, pivot = nids[Vec(1, 0)], nids[Vec(0, 0)]
        cursor = world.delta_cursor()
        assert rotate_leaf(world, leaf, clockwise=True)
        ((kind, record),) = world.deltas_since(cursor)
        assert kind == "move"
        cid, version, dirtied, vacated, new_cells, frontier = record
        assert dirtied == tuple(sorted((leaf, pivot)))
        from repro.geometry.packed import pack

        assert vacated == frozenset((pack(Vec(1, 0)),))
        assert new_cells == frozenset((pack(world.nodes[leaf].pos),))
        assert pivot in frontier

    def test_transplant_journals_a_merge(self):
        protocol = gluing_protocol()
        world, nids = self._line_world(protocol, length=3)
        into_cid = world.nodes[nids[Vec(0, 0)]].component_id
        line = world.add_component_from_cells({Vec(0, 0): "x", Vec(1, 0): "x"})
        line_nids = [line[Vec(0, 0)], line[Vec(1, 0)]]
        cursor = world.delta_cursor()
        world.transplant_line(
            line_nids, [Vec(0, 1), Vec(1, 1)], into_cid, "g"
        )
        ((kind, record),) = world.deltas_since(cursor)
        assert kind == "merge"
        kept, version, absorbed, new_cells, moved = record
        assert kept == into_cid
        assert moved == tuple(line_nids)
        assert len(new_cells) == 2

    def test_journal_truncation_forces_rebuild(self):
        protocol = gluing_protocol()
        world = World(2)
        for _ in range(4):
            world.add_free_node("g")
        cache = EffectiveCandidateCache()
        cache.refresh(world, protocol, evaluate)
        rebuilds = cache.full_rebuilds
        comp = world.components[0]
        for _ in range(World.DELTA_LOG_LIMIT + 10):
            world.note_move(comp, 0, Vec(0, 0), Vec(0, 0))
        assert world.deltas_since(0) is None
        got = cache.refresh(world, protocol, evaluate)
        want, _perm = reference_effective_candidates(world, protocol, evaluate)
        assert got == want
        # The truncated change journal (note_change) or delta journal must
        # have forced a safe recovery; the cache never serves stale data.
        assert cache.full_rebuilds >= rebuilds


class TestFinePathEffectiveness:
    """The delta path must actually prune: fewer evaluations, no rebuilds."""

    def test_split_consumed_finely_with_fewer_evaluations(self):
        protocol = gluing_protocol()
        world_fine = World(2)
        world_coarse = World(2)
        cells = {Vec(x, y): "g" for x in range(6) for y in range(4)}
        for w in (world_fine, world_coarse):
            w.add_component_from_cells(cells)
            for _ in range(4):
                w.add_free_node("g")
        runs = {}
        for name, world, split_delta in (
            ("fine", world_fine, True),
            ("coarse", world_coarse, False),
        ):
            cache = EffectiveCandidateCache(split_delta=split_delta)
            cache.refresh(world, protocol, evaluate)
            base = cache.evaluations
            rng = random.Random(5)
            for _ in range(6):
                nid = excise_random_node(world, rng, "g")
                assert nid is not None
                got = cache.refresh(world, protocol, evaluate)
                want, _perm = reference_effective_candidates(
                    world, protocol, evaluate
                )
                assert got == want
            runs[name] = (cache.evaluations - base, cache)
        fine_evals, fine_cache = runs["fine"]
        coarse_evals, _ = runs["coarse"]
        assert fine_cache.split_prunes >= 6
        assert fine_cache.full_rebuilds == 1
        assert coarse_evals >= 2 * fine_evals, (coarse_evals, fine_evals)

    def test_shrinkage_never_drops_survivors(self):
        # Two separated blobs with inter candidates between them: excising
        # a node of one blob must keep every surviving entry verbatim
        # (shrinkage can create but never invalidate — the dual of the
        # merge rule) while staying equal to the reference.
        protocol = gluing_protocol()
        world = World(2)
        world.add_component_from_cells(
            {Vec(x, y): "g" for x in range(3) for y in range(2)}
        )
        world.add_free_node("g")
        cache = EffectiveCandidateCache()
        before = {
            id(c): c for c, _u in cache.refresh(world, protocol, evaluate)
        }
        big = max(world.components.values(), key=lambda c: c.size())
        corner = big.cells[Vec(2, 1)]
        world.free_singleton(corner, "g")
        got = cache.refresh(world, protocol, evaluate)
        want, _perm = reference_effective_candidates(world, protocol, evaluate)
        assert got == want
        # Entries untouched by the excision survive as the same objects
        # (not re-evaluated copies) — the no-invalidation half of the
        # duality, observable through object identity.
        surviving = [c for c, _u in got if id(c) in before]
        assert surviving
