"""Counting-on-a-Line (§6.1, Lemma 1) under the real scheduler."""

import pytest

from repro.constructors.counting_line import (
    counting_line_world,
    decode_counters,
    run_counting_on_a_line,
)
from repro.core.scheduler import EnumeratingScheduler, RejectionScheduler
from repro.core.simulator import Simulation
from repro.errors import SimulationError


@pytest.mark.parametrize("n,b", [(10, 3), (24, 4), (48, 4)])
def test_halts_and_counts_at_least_half(n, b):
    for seed in range(3):
        res = run_counting_on_a_line(n, b, seed=seed)
        assert res.halted
        assert res.success, f"r0={res.r0} < n/2 for n={n}"
        assert res.r0 <= n - 1


@pytest.mark.parametrize("n", [12, 30, 60])
def test_line_length_is_lg_r0_plus_one(n):
    res = run_counting_on_a_line(n, 4, seed=n)
    assert res.line_length == res.expected_length


def test_counters_consistent_and_debt_repaid():
    res = run_counting_on_a_line(40, 4, seed=5)
    assert res.r0 == res.r1  # the halting condition
    assert res.r2 == 0  # the debt was fully repaid before halting


def test_exact_mode_counts_everyone():
    for n in (15, 35):
        res = run_counting_on_a_line(n, 3, seed=n, exact_factor=3)
        assert res.r0 == n - 1


def test_small_population_rejected():
    with pytest.raises(SimulationError):
        counting_line_world(4, b=4)


def test_runs_under_reference_schedulers():
    """The agent protocol is scheduler-agnostic: the enumerating and the
    rejection schedulers execute it too (small n; they are slow)."""
    for scheduler in (EnumeratingScheduler(), RejectionScheduler()):
        res = run_counting_on_a_line(8, 3, seed=1, scheduler=scheduler)
        assert res.halted and res.success


def test_world_invariants_hold_throughout():
    world, protocol = counting_line_world(12, 3)
    sim = Simulation(world, protocol, seed=3, check_invariants=True)
    sim.run(
        max_events=100_000,
        until=lambda w: any(
            isinstance(s, tuple) and s[0] == "L" and s[1] == "halt"
            for s in w.states().values()
        ),
        require_stop=True,
    )
    r0, r1, r2, length = decode_counters(world)
    assert r0 == r1 and r2 == 0
    # The line is a straight horizontal chain.
    leader_comp = max(world.components.values(), key=lambda c: c.size())
    assert leader_comp.size() == length
    ys = {c.y for c in leader_comp.cells}
    assert len(ys) == 1


def test_tape_stores_r0_in_binary():
    res = run_counting_on_a_line(30, 4, seed=9)
    # decode_counters already read the binary tape; its consistency with
    # the result object is the assertion.
    assert res.r0.bit_length() == res.line_length
