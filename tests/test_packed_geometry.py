"""Parity of the packed geometry kernel against a pure-``Vec`` reference.

The packed kernel (``repro.geometry.packed`` + the rewritten ``World``
methods) must have *exactly* the support of the pre-refactor geometry: same
open slots, same adjacent pairs, same collision-free alignments, same
candidate enumeration. This module keeps a frozen pure-``Vec`` copy of the
original implementation — no packing, no memoized lookup tables, no
version-keyed caches — and drives randomized 2D and 3D worlds (free nodes
glued into rotated multi-cell components by real scheduler events, plus
random bond breakage for splits) through both, asserting equality after
every event.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import Rule, RuleProtocol
from repro.core.simulator import Simulation
from repro.core.world import Candidate, World
from repro.faults.injection import break_random_bond
from repro.geometry.packed import (
    PACKED_ORIGIN,
    pack,
    pack_delta,
    packed_rotation,
    unpack,
    unpack_delta,
)
from repro.geometry.ports import opposite, port_direction, port_from_direction, ports_for_dimension
from repro.geometry.rotation import rotations_for_dimension
from repro.geometry.vec import Vec

# ----------------------------------------------------------------------
# Frozen pure-Vec reference (the pre-refactor World geometry, verbatim in
# behavior: dataclass arithmetic and dict-of-Vec probes only).
# ----------------------------------------------------------------------


def _ref_world_direction(port, orientation):
    return orientation.apply(port_direction(port))


def _ref_positive_units(dimension):
    units = (Vec(1, 0, 0), Vec(0, 1, 0), Vec(0, 0, 1))
    return units[:dimension]


def ref_open_slots(world, comp):
    slots = []
    for cell, nid in comp.cells.items():
        rec = world.nodes[nid]
        for port in world.ports:
            if cell + _ref_world_direction(port, rec.orientation) not in comp.cells:
                slots.append((nid, port))
    return slots


def ref_adjacent_pairs(world, comp):
    pairs = []
    for cell, nid in comp.cells.items():
        for delta in _ref_positive_units(world.dimension):
            other = comp.cells.get(cell + delta)
            if other is not None:
                pairs.append((nid, other))
    return pairs


def ref_inter_alignments(world, nid1, port1, nid2, port2):
    rec1, rec2 = world.nodes[nid1], world.nodes[nid2]
    if rec1.component_id == rec2.component_id:
        return []
    comp1 = world.components[rec1.component_id]
    comp2 = world.components[rec2.component_id]
    d1 = _ref_world_direction(port1, rec1.orientation)
    target_cell = rec1.pos + d1
    if target_cell in comp1.cells:
        return []
    d2 = _ref_world_direction(port2, rec2.orientation)
    placements = []
    for rot in rotations_for_dimension(world.dimension):
        if rot.apply(d2) != -d1:  # independent of the memoized mapping
            continue
        trans = target_cell - rot.apply(rec2.pos)
        if all(
            (rot.apply(cell) + trans) not in comp1.cells for cell in comp2.cells
        ):
            placements.append((rot, trans))
    return placements


def ref_intra_candidate(world, nid1, nid2):
    rec1, rec2 = world.nodes[nid1], world.nodes[nid2]
    if rec1.component_id != rec2.component_id:
        return None
    delta = rec2.pos - rec1.pos
    if delta.manhattan() != 1:
        return None
    p1 = port_from_direction(rec1.orientation.inverse().apply(delta))
    p2 = port_from_direction(rec2.orientation.inverse().apply(-delta))
    bond = world.bond_state(nid1, p1, nid2, p2)
    return Candidate(nid1, p1, nid2, p2, bond)


def ref_enumerate_candidates(world):
    for comp in world.components.values():
        for nid1, nid2 in ref_adjacent_pairs(world, comp):
            cand = ref_intra_candidate(world, nid1, nid2)
            if cand is not None:
                yield cand
    comps = sorted(world.components.values(), key=lambda c: c.cid)
    import itertools

    for ca, cb in itertools.combinations(comps, 2):
        slots_a = ref_open_slots(world, ca)
        for nid2 in cb.node_ids():
            for nid1, p1 in slots_a:
                for p2 in world.ports:
                    for rot, trans in ref_inter_alignments(
                        world, nid1, p1, nid2, p2
                    ):
                        yield Candidate(nid1, p1, nid2, p2, 0, rot, trans)


def _cand_id(cand):
    return (
        cand.nid1,
        cand.port1.value,
        cand.nid2,
        cand.port2.value,
        cand.bond,
        None if cand.rotation is None else cand.rotation.matrix,
        None if cand.translation is None else cand.translation.as_tuple(),
    )


def _gluing_protocol(dimension):
    ports = ports_for_dimension(dimension)
    rules = [Rule("g", p, "g", opposite(p), 0, "g", "g", 1) for p in ports]
    return RuleProtocol(
        rules, initial_state="g", dimension=dimension, name="gluing"
    )


def _assert_world_matches_reference(world):
    # Per-component tables.
    slot_key = lambda s: (s[0], s[1].value)
    for comp in world.components.values():
        assert sorted(world.open_slots(comp), key=slot_key) == sorted(
            ref_open_slots(world, comp), key=slot_key
        ), comp.cid
        assert sorted(world.adjacent_pairs(comp)) == sorted(
            ref_adjacent_pairs(world, comp)
        ), comp.cid
    # Full candidate support, including every alignment's placement.
    got = sorted(_cand_id(c) for c in world.enumerate_candidates())
    want = sorted(_cand_id(c) for c in ref_enumerate_candidates(world))
    assert got == want
    # And the counting fast path agrees with the support size.
    assert world.candidate_count() == len(want)


@pytest.mark.parametrize("dimension", [2, 3])
@given(
    n=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=12, deadline=None)
def test_packed_kernel_matches_reference_through_random_runs(
    dimension, n, seed
):
    protocol = _gluing_protocol(dimension)
    world = World(dimension)
    for _ in range(n):
        world.add_free_node("g")
    rng = random.Random(seed)
    sim = Simulation(world, protocol, seed=seed)
    _assert_world_matches_reference(world)
    for _ in range(25):
        if rng.random() < 0.2:
            break_random_bond(world, rng)
            sim.stabilized = False
        stepped = sim.step()
        _assert_world_matches_reference(world)
        if stepped is None and rng.random() < 0.5:
            break


def test_packed_kernel_matches_reference_on_seeded_components():
    # Pre-assembled multi-cell components at fixed offsets: exercises the
    # inter-alignment kernel between shapes (not just gluing outcomes).
    world = World(2)
    world.add_component_from_cells(
        {Vec(0, 0): "g", Vec(1, 0): "g", Vec(1, 1): "g"}
    )
    world.add_component_from_cells({Vec(0, 0): "g", Vec(0, 1): "g"})
    world.add_free_node("g")
    _assert_world_matches_reference(world)


# ----------------------------------------------------------------------
# Packing primitives
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=-1000, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_pack_roundtrip_and_delta_arithmetic(x, y, z):
    v = Vec(x, y, z)
    assert unpack(pack(v)) == v
    assert unpack_delta(pack_delta(v)) == v
    w = Vec(-y, z, x)
    assert pack(v) + pack_delta(w) == pack(v + w)
    assert pack(v) - pack(w) == pack_delta(v - w)
    assert pack(Vec(0, 0, 0)) == PACKED_ORIGIN


def test_pack_range_guard():
    from repro.errors import GeometryError
    from repro.geometry.packed import MAX_COORD

    v = Vec(MAX_COORD, -MAX_COORD, MAX_COORD)
    assert unpack(pack(v)) == v
    for bad in (
        Vec(MAX_COORD + 1, 0, 0),
        Vec(0, -(MAX_COORD + 1), 0),
        Vec(0, 0, MAX_COORD + 1),
    ):
        with pytest.raises(GeometryError):
            pack(bad)


def test_packed_rotation_matches_rotation_apply():
    v = Vec(3, -2, 5)
    for rot in rotations_for_dimension(3):
        assert unpack(packed_rotation(rot)(pack(v))) == rot.apply(v)
