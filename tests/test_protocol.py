"""Protocol definitions: rule tables, swap consistency, hints (Definition 1)."""

import pytest

from repro.core.protocol import (
    AgentProtocol,
    InteractionView,
    Rule,
    RuleProtocol,
    rules_from_tuples,
)
from repro.errors import ProtocolError
from repro.geometry.ports import Port

U, R, D, L = Port.UP, Port.RIGHT, Port.DOWN, Port.LEFT


def _simple():
    return RuleProtocol(
        [Rule("L", R, "q0", L, 0, "q1", "L", 1)],
        leader_state="L",
    )


def test_rule_effectiveness():
    assert Rule("a", R, "b", L, 0, "a", "b", 1).is_effective()
    assert not Rule("a", R, "b", L, 0, "a", "b", 0).is_effective()


def test_ineffective_rule_rejected():
    with pytest.raises(ProtocolError):
        RuleProtocol([Rule("a", R, "b", L, 0, "a", "b", 0)])


def test_3d_port_in_2d_protocol_rejected():
    with pytest.raises(ProtocolError):
        RuleProtocol([Rule("a", Port.FRONT, "b", Port.BACK, 0, "a", "b", 1)])


def test_conflicting_rules_rejected():
    rules = [
        Rule("a", R, "b", L, 0, "x", "y", 1),
        Rule("a", R, "b", L, 0, "x", "z", 1),
    ]
    with pytest.raises(ProtocolError):
        RuleProtocol(rules)


def test_swap_inconsistency_rejected():
    rules = [
        Rule("a", R, "b", L, 0, "x", "y", 1),
        Rule("b", L, "a", R, 0, "x", "y", 1),  # should be (y, x, 1)
    ]
    with pytest.raises(ProtocolError):
        RuleProtocol(rules)


def test_swap_consistent_pair_accepted():
    rules = [
        Rule("a", R, "b", L, 0, "x", "y", 1),
        Rule("b", L, "a", R, 0, "y", "x", 1),
    ]
    RuleProtocol(rules)  # must not raise


def test_halting_state_with_rule_rejected():
    with pytest.raises(ProtocolError):
        RuleProtocol(
            [Rule("h", R, "b", L, 0, "h", "c", 1)], halting_states={"h"}
        )


def test_handle_matches_both_orders():
    p = _simple()
    fwd = p.handle(InteractionView("L", R, "q0", L, 0))
    assert fwd == ("q1", "L", 1)
    rev = p.handle(InteractionView("q0", L, "L", R, 0))
    assert rev == ("L", "q1", 1)
    assert p.handle(InteractionView("q0", R, "q0", L, 0)) is None


def test_hot_cover_covers_all_rules():
    p = _simple()
    assert p.is_hot("L") or p.is_hot("q0")


def test_explicit_hot_states_validated():
    with pytest.raises(ProtocolError):
        RuleProtocol(
            [Rule("L", R, "q0", L, 0, "q1", "L", 1)], hot_states=["q1"]
        )
    p = RuleProtocol(
        [Rule("L", R, "q0", L, 0, "q1", "L", 1)], hot_states=["L"]
    )
    assert p.is_hot("L") and not p.is_hot("q0")


def test_pair_compatibility_and_port_hints():
    p = _simple()
    assert p.pair_compatible("L", "q0")
    assert p.pair_compatible("q0", "L")
    assert not p.pair_compatible("q0", "q0")
    hints = p.port_hints("L", "q0")
    assert (R, L) in hints and (L, R) in hints
    assert p.port_hints("q1", "q1") == frozenset()


def test_protocol_size_counts_states():
    p = _simple()
    assert p.size == 3  # L, q0, q1


def test_rules_from_tuples():
    (rule,) = rules_from_tuples([((("a", R), ("b", L), 0), ("x", "y", 1))])
    assert rule.state1 == "a" and rule.new_bond == 1


def test_agent_protocol_normalizes_identity_updates():
    p = AgentProtocol(lambda view: (view.state1, view.state2, view.bond))
    assert p.handle(InteractionView("a", R, "b", L, 0)) is None


def test_agent_protocol_rejects_malformed_update():
    p = AgentProtocol(lambda view: ("a", "b", 7))
    with pytest.raises(ProtocolError):
        p.handle(InteractionView("a", R, "b", L, 0))


def test_agent_protocol_predicates():
    p = AgentProtocol(
        lambda view: None,
        hot=lambda s: s == "x",
        halted=lambda s: s == "h",
        compatible=lambda a, b: a != b,
    )
    assert p.is_hot("x") and not p.is_hot("y")
    assert p.is_halted("h") and p.is_output("h")
    assert p.pair_compatible("a", "b") and not p.pair_compatible("a", "a")
