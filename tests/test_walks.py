"""Random-walk analysis behind Theorem 1 (Figure 4, Ehrenfest, ruin)."""

import math
import random

import pytest

from repro.analysis.stats import fit_power_law, mean, ratio_to_model
from repro.analysis.walks import (
    CountingWalk,
    counting_failure_bound,
    ehrenfest_mean_recurrence,
    ehrenfest_return_probability,
    gambler_ruin_win_probability,
    simulate_ehrenfest_return,
    walk_failure_table,
)
from repro.errors import ReproError
from repro.population.counting import CountingUpperBound


def test_ruin_formula_limits():
    # Fair game: 1/b.
    assert gambler_ruin_win_probability(1.0, 4) == pytest.approx(0.25)
    # Strongly unfavorable: ~ x^{-(b-1)}.
    x = 100.0
    assert gambler_ruin_win_probability(x, 3) == pytest.approx(
        1 / x**2, rel=0.05
    )
    with pytest.raises(ReproError):
        gambler_ruin_win_probability(2.0, 0)


def test_kac_recurrence_at_empty_urn():
    """Kac: at k = -R the mean recurrence time is 2^(2R)."""
    for R in (2, 5, 10):
        assert ehrenfest_mean_recurrence(R, -R) == pytest.approx(2.0 ** (2 * R))
    with pytest.raises(ReproError):
        ehrenfest_mean_recurrence(3, 7)


def test_kac_recurrence_center_is_small():
    # Recurrence at the balanced state is tiny compared to the empty urn.
    assert ehrenfest_mean_recurrence(10, 0) < ehrenfest_mean_recurrence(10, -10)


def test_ehrenfest_dp_matches_monte_carlo():
    exact = ehrenfest_return_probability(20, 3, 40)
    approx = simulate_ehrenfest_return(20, 3, 40, trials=4000, seed=1)
    assert abs(exact - approx) < 0.03


def test_ehrenfest_return_is_rare_from_deep_start():
    """Theorem 1's reduction: starting b deep, emptying within n steps is
    unlikely — and decreases with b."""
    n = 60
    p3 = ehrenfest_return_probability(n, 3, n)
    p5 = ehrenfest_return_probability(n, 5, n)
    assert p5 < p3 < 0.1


def test_counting_walk_failure_below_bound():
    walk = CountingWalk(64, 4)
    fail, steps = walk.failure_probability(3000, seed=2)
    assert fail <= counting_failure_bound(64, 4) + 0.02
    assert steps > 0


def test_counting_walk_matches_protocol_failure():
    """The Figure 4 walk is the exact effective-subsequence law of the
    protocol: success rates must agree closely."""
    n, b, trials = 32, 3, 1500
    rng = random.Random(3)
    walk_fail, _ = CountingWalk(n, b).failure_probability(trials, seed=4)
    proto_fail = 0
    for _ in range(trials):
        res = CountingUpperBound(n, b, rng=rng).run()
        proto_fail += int(not res.success)
    proto_fail /= trials
    assert abs(walk_fail - proto_fail) < 0.03


def test_walk_failure_table_shape():
    rows = walk_failure_table([16, 32], [3, 4], trials=200, seed=0)
    assert len(rows) == 4
    for n, b, fail, bound in rows:
        assert 0 <= fail <= 1
        assert bound == counting_failure_bound(n, b)


def test_stats_helpers():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ReproError):
        mean([])
    alpha, c = fit_power_law([1, 2, 4, 8], [3, 12, 48, 192])
    assert alpha == pytest.approx(2.0, abs=0.01)
    assert c == pytest.approx(3.0, rel=0.05)
    ratios = ratio_to_model([1, 2], [2, 8], lambda x: x**2)
    assert ratios == [2.0, 2.0]
    with pytest.raises(ReproError):
        fit_power_law([1], [1])
