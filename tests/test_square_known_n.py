"""Square-Knowing-n (§6.2, Lemma 2)."""

import math

import pytest

from repro.constructors.square_known_n import run_square_known_n
from repro.errors import SimulationError


@pytest.mark.parametrize("n", [9, 16, 25, 36])
def test_constructs_the_square_and_terminates(n):
    res = run_square_known_n(n, seed=n * 2 + 1)
    d = math.isqrt(n)
    comp = res.square_component()
    assert comp.size() == n
    xs = {c.x for c in comp.cells}
    ys = {c.y for c in comp.cells}
    assert len(xs) == d and len(ys) == d
    assert res.rows_attached == d - 1
    res.world.check_invariants()


def test_node_conservation():
    res = run_square_known_n(25, seed=77)
    assert res.world.size == 25
    # Every node ended inside the square: no free nodes remain.
    assert len(res.world.free_node_ids()) == 0


def test_states_are_inert_square_states():
    res = run_square_known_n(16, seed=3)
    states = {res.world.state_of(nid) for nid in res.square_component().cells.values()}
    assert states == {"sq", "sq_L"}


def test_leader_work_scales_with_rows():
    small = run_square_known_n(9, seed=1)
    big = run_square_known_n(36, seed=1)
    assert big.leader_interactions > small.leader_interactions
    assert big.total_interactions > big.scheduler_events


@pytest.mark.parametrize("seed", range(5))
def test_many_seeds(seed):
    res = run_square_known_n(16, seed=seed)
    assert res.square_component().size() == 16


def test_rejects_non_squares_and_tiny_sides():
    with pytest.raises(SimulationError):
        run_square_known_n(10)
    with pytest.raises(SimulationError):
        run_square_known_n(4)  # side 2 < 3
