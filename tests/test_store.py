"""Tests for the content-addressed trial store (repro.experiments.store).

The ISSUE acceptance bars pinned here: a resubmitted sweep returns
bit-identical ``ExperimentResult``s from the cache, corrupted/stale/
tampered provenance stamps are rejected and recomputed (never served),
and cache hits consume zero RNG (the scenario adapter never runs).
"""

import json
import random

import pytest

from repro.errors import ReproError
from repro.experiments import (
    ExperimentSpec,
    SweepSpec,
    TrialStore,
    run_experiment,
    run_sweep,
    spec_key,
    trial_key,
)
from repro.experiments import runner as runner_module
from repro.experiments.store import TRIAL_SCHEMA, resolve_store

#: A small, fast sweep: 2 grid points x 2 derived seeds = 4 trials.
def _sweep():
    return SweepSpec(
        scenario="counting",
        grid={"n": [8, 12], "trials": [1]},
        trials=2,
        base_seed=3,
    )


@pytest.fixture
def store(tmp_path):
    return TrialStore(tmp_path / "trials")


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------


class TestTrialKey:
    def test_deterministic_and_order_free(self):
        a = trial_key("counting", {"n": 8, "b": 4}, 17, None)
        assert a == trial_key("counting", {"b": 4, "n": 8}, 17, None)
        assert len(a) == 64 and int(a, 16) >= 0

    def test_distinct_across_every_axis(self):
        keys = {
            trial_key(scn, {"n": n}, seed, sched)
            for scn in ("counting", "demo")
            for n in (8, 16)
            for seed in (0, 1, None)
            for sched in (None, "hot")
        }
        assert len(keys) == 2 * 2 * 3 * 2

    def test_spec_key_matches_components(self):
        spec = ExperimentSpec("counting", {"n": 8}, seed=5).resolved()
        assert spec_key(spec) == trial_key(
            "counting", spec.params, 5, None
        )


# ----------------------------------------------------------------------
# Round trip + provenance verification
# ----------------------------------------------------------------------


class TestStoreRoundTrip:
    def test_put_get_exact(self, store):
        spec = ExperimentSpec("counting", {"n": 8, "trials": 1}, seed=1).resolved()
        result = run_experiment(spec)
        store.put(spec, result)
        served = store.get(spec)
        assert served == result  # full equality, wall_time included
        assert store.stats() == {"hits": 1, "misses": 0, "rejected": 0}

    def test_miss_on_empty_store(self, store):
        spec = ExperimentSpec("counting", {"n": 8, "trials": 1}, seed=1).resolved()
        assert store.get(spec) is None
        assert store.stats() == {"hits": 0, "misses": 1, "rejected": 0}

    def _stored(self, store):
        spec = ExperimentSpec("counting", {"n": 8, "trials": 1}, seed=1).resolved()
        store.put(spec, run_experiment(spec))
        return spec, store.path_for(spec_key(spec))

    def test_tampered_payload_rejected(self, store):
        # Editing any non-wall_time byte of the result breaks the content
        # digest: the record is rejected, never served.
        spec, path = self._stored(store)
        record = json.loads(path.read_text())
        record["result"]["metrics"]["mean_estimate"] = 10**6
        path.write_text(json.dumps(record))
        assert store.get(spec) is None
        assert store.rejected == 1

    def test_tampered_identity_rejected(self, store):
        # Editing the identity fields breaks the recomputed spec hash.
        spec, path = self._stored(store)
        record = json.loads(path.read_text())
        record["result"]["seed"] = 999
        path.write_text(json.dumps(record))
        assert store.get(spec) is None and store.rejected == 1

    def test_stale_schema_rejected(self, store):
        spec, path = self._stored(store)
        record = json.loads(path.read_text())
        record["schema"] = "repro.experiments.trial/v0"
        path.write_text(json.dumps(record))
        assert store.get(spec) is None and store.rejected == 1

    def test_unparseable_record_rejected(self, store):
        spec, path = self._stored(store)
        path.write_text("{torn write")
        assert store.get(spec) is None and store.rejected == 1

    def test_invalid_result_schema_rejected(self, store):
        spec, path = self._stored(store)
        record = json.loads(path.read_text())
        del record["result"]["metrics"]
        path.write_text(json.dumps(record))
        assert store.get(spec) is None and store.rejected == 1

    def test_wall_time_not_covered_by_digest(self, store):
        # wall_time is the one field the determinism contract exempts;
        # the stamp deliberately leaves it out.
        spec, path = self._stored(store)
        record = json.loads(path.read_text())
        record["result"]["wall_time"] = 123.0
        path.write_text(json.dumps(record, sort_keys=True))
        served = store.get(spec)
        assert served is not None and served.wall_time == 123.0

    def test_sharded_layout(self, store):
        spec, path = self._stored(store)
        key = spec_key(spec)
        assert path == store.root / key[:2] / f"{key}.json"
        assert path.exists()


# ----------------------------------------------------------------------
# run_sweep(cache=...)
# ----------------------------------------------------------------------


class TestCachedSweep:
    def test_resubmission_bit_identical(self, store):
        cold = run_sweep(_sweep(), cache=store)
        assert store.stats() == {"hits": 0, "misses": 4, "rejected": 0}
        warm = run_sweep(_sweep(), cache=store)
        assert store.hits == 4
        # A hit serves the stored record verbatim: every field equal,
        # wall_time included (comparable() equality is implied).
        assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]

    def test_cached_equals_uncached_any_worker_count(self, store):
        plain = run_sweep(_sweep())
        cold = run_sweep(_sweep(), workers=2, cache=store)
        warm = run_sweep(_sweep(), workers=3, cache=store)
        for other in (cold, warm):
            assert [r.comparable() for r in other] == [
                r.comparable() for r in plain
            ]

    def test_tampered_trial_recomputed_never_served(self, store):
        cold = run_sweep(_sweep(), cache=store)
        victim = next(store.root.rglob("*.json"))
        record = json.loads(victim.read_text())
        record["result"]["metrics"]["mean_estimate"] = -1
        victim.write_text(json.dumps(record))
        again = run_sweep(_sweep(), cache=store)
        assert store.rejected == 1
        assert [r.comparable() for r in again] == [
            r.comparable() for r in cold
        ]
        # The recomputed trial overwrote the tampered record in place.
        fixed = run_sweep(_sweep(), cache=store)
        assert store.rejected == 1
        assert [r.comparable() for r in fixed] == [
            r.comparable() for r in cold
        ]

    def test_full_hit_consumes_zero_rng_and_never_runs_adapters(
        self, store, monkeypatch
    ):
        run_sweep(_sweep(), cache=store)

        def bomb(*args, **kwargs):  # pragma: no cover - must not fire
            raise AssertionError("cache hit touched the compute path")

        # No scenario adapter may run and no RNG may be consumed: a fully
        # cached sweep is pure verified file reads.
        monkeypatch.setattr(runner_module, "run_experiment", bomb)
        monkeypatch.setattr(random.Random, "random", bomb)
        monkeypatch.setattr(random.Random, "randrange", bomb)
        monkeypatch.setattr(random.Random, "randint", bomb)
        monkeypatch.setattr(random.Random, "shuffle", bomb)
        warm = run_sweep(_sweep(), workers=4, cache=store)
        assert len(warm) == 4 and store.hits == 4

    def test_cache_true_uses_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        results = run_sweep(_sweep(), cache=True)
        assert len(results) == 4
        assert any((tmp_path / "trials").rglob("*.json"))

    def test_resolve_store_forms(self, tmp_path, store):
        assert resolve_store(None) is None
        assert resolve_store(False) is None
        assert resolve_store(store) is store
        assert resolve_store(tmp_path / "t").root == tmp_path / "t"
        assert resolve_store(True).root.name == "trials"

    def test_record_schema_stamp(self, store):
        spec = ExperimentSpec("counting", {"n": 8, "trials": 1}, seed=1).resolved()
        path = store.put(spec, run_experiment(spec))
        record = json.loads(path.read_text())
        assert record["schema"] == TRIAL_SCHEMA
        assert record["key"] == spec_key(spec)
        assert set(record) == {"schema", "key", "digest", "result"}


# ----------------------------------------------------------------------
# Worker-pool sizing (satellite): never wider than the work
# ----------------------------------------------------------------------


class TestWorkerCap:
    @pytest.fixture
    def capture_pool(self, monkeypatch):
        seen = []

        class Recorder(runner_module.ProcessPoolExecutor):
            def __init__(self, max_workers=None, **kwargs):
                seen.append(max_workers)
                super().__init__(max_workers=max_workers, **kwargs)

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", Recorder)
        return seen

    def test_pool_capped_at_spec_count(self, capture_pool):
        run_sweep(_sweep(), workers=32)  # 4 trials
        assert capture_pool == [4]

    def test_pool_capped_at_miss_count(self, store, capture_pool):
        specs = list(_sweep().specs())
        # Pre-warm all but one trial: the pool must shrink to the misses.
        for spec in specs[:-1]:
            resolved = spec.resolved()
            store.put(resolved, run_experiment(resolved))
        run_sweep(_sweep(), workers=32, cache=store)
        assert capture_pool == []  # a single miss runs inline, no pool

    def test_two_misses_two_workers(self, store, capture_pool):
        specs = list(_sweep().specs())
        for spec in specs[:-2]:
            resolved = spec.resolved()
            store.put(resolved, run_experiment(resolved))
        run_sweep(_sweep(), workers=32, cache=store)
        assert capture_pool == [2]

    def test_single_trial_runs_inline(self, capture_pool):
        sweep = SweepSpec("counting", grid={"n": [8], "trials": [1]}, trials=1)
        run_sweep(sweep, workers=8)
        assert capture_pool == []


def test_empty_sweep_still_rejected(store):
    with pytest.raises(ReproError, match="have no values"):
        run_sweep(
            SweepSpec("counting", grid={"n": []}), cache=store
        )
