"""Tests for the expected-time models (repro.analysis.timing)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.timing import (
    counting_time_model,
    expected_epidemic_time,
    expected_leader_meet_all,
    harmonic,
    simulate_epidemic,
    simulate_leader_meet_all,
    timing_table,
)
from repro.errors import ReproError
from repro.population.counting import CountingUpperBound


class TestHarmonic:
    def test_small_values(self):
        assert harmonic(0) == 0.0
        assert harmonic(1) == 1.0
        assert harmonic(2) == pytest.approx(1.5)
        assert harmonic(4) == pytest.approx(25 / 12)

    def test_asymptotic_branch_continuous(self):
        # The exact sum and the Euler–Maclaurin branch agree at the switch.
        exact = sum(1.0 / k for k in range(1, 150 + 1))
        assert harmonic(150) == pytest.approx(exact, rel=1e-9)

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            harmonic(-1)

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_monotone_and_log_like(self, n):
        assert harmonic(n) < harmonic(n + 1)
        assert math.log(n + 1) < harmonic(n) <= 1 + math.log(n) + 1e-12


class TestClosedForms:
    def test_leader_meet_all_small_n(self):
        # n = 2: single pair; one step meets the only partner.
        assert expected_leader_meet_all(2) == pytest.approx(1.0)
        # n = 3: (3/2) * 2 * H_2 = 4.5.
        assert expected_leader_meet_all(3) == pytest.approx(4.5)

    def test_epidemic_small_n(self):
        assert expected_epidemic_time(2) == pytest.approx(1.0)
        # n = 3: 3 * (1/2 + 1/2) = 3.
        assert expected_epidemic_time(3) == pytest.approx(3.0)

    def test_epidemic_closed_form_identity(self):
        # C(n,2) * sum 1/(k(n-k)) == (n-1) H_{n-1}.
        for n in (5, 17, 64):
            assert expected_epidemic_time(n) == pytest.approx(
                (n - 1) * harmonic(n - 1), rel=1e-9
            )

    def test_growth_orders(self):
        # meet-everybody is ~ n²log n; epidemic ~ n log n: their ratio
        # grows linearly.
        r1 = expected_leader_meet_all(64) / expected_epidemic_time(64)
        r2 = expected_leader_meet_all(256) / expected_epidemic_time(256)
        assert r2 / r1 == pytest.approx(4.0, rel=0.01)

    def test_rejects_tiny_populations(self):
        with pytest.raises(ReproError):
            expected_leader_meet_all(1)
        with pytest.raises(ReproError):
            expected_epidemic_time(1)


class TestSimulatorsMatchModels:
    def test_leader_meet_all(self):
        n = 24
        measured = simulate_leader_meet_all(n, trials=300, seed=1)
        model = expected_leader_meet_all(n)
        assert abs(measured - model) / model < 0.15

    def test_epidemic(self):
        n = 48
        measured = simulate_epidemic(n, trials=300, seed=2)
        model = expected_epidemic_time(n)
        assert abs(measured - model) / model < 0.15

    def test_timing_table_rows(self):
        rows = timing_table([8, 16], trials=50, seed=0)
        assert [r[0] for r in rows] == [8, 16]
        for _n, mm, ms, em, es in rows:
            assert abs(ms - mm) / mm < 0.4
            assert abs(es - em) / em < 0.4


class TestRemark1Model:
    def test_counting_raw_time_within_model(self):
        # Remark 1: counting terminates within about two meet-everybodies.
        n, b = 48, 4
        model = counting_time_model(n)
        trials = 60
        total = 0
        for t in range(trials):
            total += CountingUpperBound(n, b, seed=1000 + t).run().raw_interactions
        measured = total / trials
        # The protocol usually finishes well before the model bound but
        # within the same n² log n regime.
        assert measured < 1.5 * model
        assert measured > model / 20

    def test_model_scales_as_n2_log_n(self):
        ratio = counting_time_model(512) / counting_time_model(128)
        expected = (512**2 * math.log(511)) / (128**2 * math.log(127))
        assert ratio == pytest.approx(expected, rel=0.02)
