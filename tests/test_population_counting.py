"""Theorem 1: the Counting-Upper-Bound protocol (§5.1)."""

import random

import pytest

from repro.analysis.stats import binomial_confidence
from repro.analysis.walks import counting_failure_bound
from repro.population.counting import (
    CountingPopulation,
    CountingUpperBound,
    LeaderState,
    estimate_quality,
    run_counting,
)
from repro.population.model import PopulationSimulator


@pytest.mark.parametrize("n", [4, 16, 64, 256])
def test_always_halts(n):
    for seed in range(5):
        res = CountingUpperBound(n, b=4, seed=seed).run()
        assert res.r0 == res.r1  # the halting condition


def test_invariants_of_the_proof():
    """r0 >= r1 and r0 + r1 = #effective interactions, as in Figure 3."""
    res = CountingUpperBound(100, b=4, seed=7).run()
    assert res.r0 >= res.r1
    assert res.effective_interactions == res.r0 + res.r1 - res.b
    assert res.raw_interactions >= res.effective_interactions


def test_whp_success():
    """With b = 5 the failure bound is 1/n^3; over 200 trials at n = 64
    we should essentially never fail."""
    rng = random.Random(0)
    trials, successes = 200, 0
    for _ in range(trials):
        res = CountingUpperBound(64, b=5, rng=rng).run()
        successes += int(res.success)
    low, _high = binomial_confidence(successes, trials)
    assert low > 1 - 10 * counting_failure_bound(64, 5) - 0.05


def test_estimate_close_to_nine_tenths():
    """Remark 2: estimates are close to (9/10) n and usually higher."""
    rows = estimate_quality([200, 500], b=4, trials=10, seed=1)
    for _n, mean_ratio, _min_ratio, success_rate in rows:
        assert mean_ratio > 0.8
        assert success_rate == 1.0


def test_head_start_capped_for_tiny_populations():
    res = CountingUpperBound(3, b=10, seed=0).run()
    assert res.b == 2  # min(b, n - 1)


def test_upper_bound_and_estimate_accessors():
    res = CountingUpperBound(64, b=4, seed=5).run()
    assert res.estimate == res.r0
    assert res.upper_bound == 2 * res.r0
    assert res.r0 <= 63  # can never count more than n - 1 others


def test_raw_scheduler_agrees_with_accelerated_in_law():
    """Cross-validation: the mean of r0 under the raw pairwise simulator
    matches the accelerated urn sampler (same process, same law)."""
    n, trials = 24, 60
    fast = [run_counting(n, b=3, seed=s).r0 for s in range(trials)]
    slow = [run_counting(n, b=3, seed=s, raw_scheduler=True).r0 for s in range(trials)]
    mean_fast = sum(fast) / trials
    mean_slow = sum(slow) / trials
    assert abs(mean_fast - mean_slow) < 2.5


def test_raw_protocol_halts_and_leader_is_first():
    sim = PopulationSimulator(CountingPopulation(b=3), 12, seed=2)
    res = sim.run(max_interactions=1_000_000, require_halt=True)
    assert res.terminated
    leader = [s for s in sim.states if isinstance(s, LeaderState)]
    assert len(leader) == 1 and leader[0].halted


def test_failure_bound_shape():
    assert counting_failure_bound(10, 2) == 1.0
    assert counting_failure_bound(10, 4) == pytest.approx(0.01)
    assert counting_failure_bound(100, 4) < counting_failure_bound(10, 4)
