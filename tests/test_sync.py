"""Tests for the two-speed synchronous-component model (repro.sync, §8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.world import World
from repro.errors import ProtocolError, SimulationError
from repro.geometry.ports import Port
from repro.geometry.vec import Vec
from repro.protocols.line import spanning_line_protocol
from repro.sync.model import (
    RoundOutcome,
    RoundView,
    SynchronousProgram,
    broadcast_program,
    distance_wave_program,
)
from repro.sync.runner import TwoSpeedSimulation, run_component_rounds


def line_world(n: int, leader_at: int = 0) -> World:
    world = World(2)
    states = {
        Vec(i, 0): ("L" if i == leader_at else "q") for i in range(n)
    }
    world.add_component_from_cells(states)
    return world


def grid_world(w: int, h: int) -> World:
    world = World(2)
    states = {
        Vec(x, y): ("L" if (x, y) == (0, 0) else "q")
        for x in range(w)
        for y in range(h)
    }
    world.add_component_from_cells(states)
    return world


def states_of(world: World):
    return list(world.states().values())


# ----------------------------------------------------------------------
# SynchronousProgram / agreement policies
# ----------------------------------------------------------------------


class TestSynchronousProgram:
    def test_rejects_unknown_agreement(self):
        with pytest.raises(ProtocolError):
            SynchronousProgram(lambda v: RoundOutcome(v.state), agreement="any")

    def test_both_policy_requires_matching_proposals(self):
        prog = SynchronousProgram(lambda v: RoundOutcome(v.state), "both")
        assert prog.decide_bond(0, 1, 1) == 1
        assert prog.decide_bond(0, 1, None) == 0
        assert prog.decide_bond(0, 1, 0) == 0
        assert prog.decide_bond(1, 0, 0) == 0
        assert prog.decide_bond(1, None, None) == 1

    def test_either_policy_single_proposal_wins(self):
        prog = SynchronousProgram(lambda v: RoundOutcome(v.state), "either")
        assert prog.decide_bond(0, 1, None) == 1
        assert prog.decide_bond(1, 0, None) == 0
        assert prog.decide_bond(0, 1, 0) == 0  # contradiction keeps current
        assert prog.decide_bond(1, None, None) == 1

    @given(
        st.sampled_from(["both", "either"]),
        st.integers(min_value=0, max_value=1),
        st.sampled_from([None, 0, 1]),
        st.sampled_from([None, 0, 1]),
    )
    @settings(max_examples=60, deadline=None)
    def test_decide_bond_always_returns_valid_value(self, policy, cur, a, b):
        prog = SynchronousProgram(lambda v: RoundOutcome(v.state), policy)
        assert prog.decide_bond(cur, a, b) in (0, 1)


# ----------------------------------------------------------------------
# run_component_rounds
# ----------------------------------------------------------------------


class TestRunComponentRounds:
    def test_broadcast_advances_one_hop_per_round(self):
        n = 6
        world = line_world(n)
        prog = broadcast_program()
        for round_idx in range(1, n):
            changed = run_component_rounds(world, prog, 1)
            assert changed == 1  # exactly the next node got informed
            informed = sum(1 for s in states_of(world) if s in ("L", "informed"))
            assert informed == 1 + round_idx
        assert run_component_rounds(world, prog, 1) == 0  # quiescent

    def test_broadcast_needs_eccentricity_rounds_on_grid(self):
        world = grid_world(4, 3)
        prog = broadcast_program()
        rounds = 0
        while run_component_rounds(world, prog, 1):
            rounds += 1
        # Manhattan eccentricity of the corner on a 4x3 grid is 3 + 2 = 5.
        assert rounds == 5
        assert all(s in ("L", "informed") for s in states_of(world))

    def test_distance_wave_computes_bfs_distances(self):
        world = grid_world(5, 4)
        prog = distance_wave_program()
        while run_component_rounds(world, prog, 1):
            pass
        for nid, rec in world.nodes.items():
            expected = rec.pos.x + rec.pos.y  # grid BFS = Manhattan here
            if expected == 0:
                assert world.state_of(nid) == "L"
            else:
                assert world.state_of(nid) == ("dist", expected)

    def test_multi_round_argument(self):
        world = line_world(8)
        prog = broadcast_program()
        changed = run_component_rounds(world, prog, 3)
        assert changed == 3

    def test_rejects_negative_rounds(self):
        world = line_world(3)
        with pytest.raises(SimulationError):
            run_component_rounds(world, broadcast_program(), -1)

    def test_free_nodes_are_unaffected(self):
        world = World(2)
        world.add_free_node("L")
        world.add_free_node("q")
        assert run_component_rounds(world, broadcast_program(), 5) == 0
        assert sorted(map(str, states_of(world))) == ["L", "q"]

    def test_bond_drop_splits_component(self):
        # A program whose informed nodes drop their right-port bond.
        def rule(view: RoundView) -> RoundOutcome:
            if view.state == "L":
                return RoundOutcome("L", {Port.RIGHT: 0})
            if Port.LEFT in view.neighbors and view.neighbors[Port.LEFT] == "L":
                return RoundOutcome(view.state, {Port.LEFT: 0})
            return RoundOutcome(view.state)

        prog = SynchronousProgram(rule, agreement="both")
        world = line_world(4)
        assert len(world.components) == 1
        changed = run_component_rounds(world, prog, 1)
        assert changed == 1
        assert len(world.components) == 2
        world.check_invariants()

    def test_both_policy_blocks_unilateral_drop(self):
        def rule(view: RoundView) -> RoundOutcome:
            if view.state == "L":
                return RoundOutcome("L", {Port.RIGHT: 0})
            return RoundOutcome(view.state)  # partner does not agree

        prog = SynchronousProgram(rule, agreement="both")
        world = line_world(3)
        assert run_component_rounds(world, prog, 1) == 0
        assert len(world.components) == 1

    def test_either_policy_allows_unilateral_drop(self):
        def rule(view: RoundView) -> RoundOutcome:
            if view.state == "L":
                return RoundOutcome("L", {Port.RIGHT: 0})
            return RoundOutcome(view.state)

        prog = SynchronousProgram(rule, agreement="either")
        world = line_world(3)
        assert run_component_rounds(world, prog, 1) == 1
        assert len(world.components) == 2
        world.check_invariants()

    def test_bond_formation_between_adjacent_unbonded_cells(self):
        # Build a 2x2 block missing one ring bond; nodes propose forming it.
        world = World(2)
        cells = {Vec(0, 0): "q", Vec(1, 0): "q", Vec(0, 1): "q", Vec(1, 1): "q"}
        bonds = [
            (Vec(0, 0), Vec(1, 0)),
            (Vec(1, 0), Vec(1, 1)),
            (Vec(1, 1), Vec(0, 1)),
        ]
        world.add_component_from_cells(cells, bonds)

        def rule(view: RoundView) -> RoundOutcome:
            proposals = {p: 1 for p in view.adjacent}
            return RoundOutcome(view.state, proposals)

        prog = SynchronousProgram(rule, agreement="both")
        changed = run_component_rounds(world, prog, 1)
        assert changed == 1
        comp = next(iter(world.components.values()))
        assert len(comp.bonds) == 4
        world.check_invariants()


# ----------------------------------------------------------------------
# TwoSpeedSimulation
# ----------------------------------------------------------------------


class TestTwoSpeedSimulation:
    def test_rejects_negative_ratio(self):
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(4, protocol, leaders=1)
        with pytest.raises(SimulationError):
            TwoSpeedSimulation(
                world, protocol, broadcast_program(), rounds_per_encounter=-1
            )

    @staticmethod
    def _growth_with_wave(n: int, ratio: float, seed: int):
        """A spanning line grows under the scheduler while an 'informed'
        wave floods the q1 body from a pinned source at the original
        leader's node. Returns the finished TwoSpeedSimulation."""
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(n, protocol, leaders=1)
        program = broadcast_program(
            source_state="S", susceptible=lambda s: s == "q1"
        )
        sim = TwoSpeedSimulation(
            world, protocol, program, rounds_per_encounter=ratio, seed=seed
        )
        # After the first encounter the original leader (node 0) becomes a
        # q1 body node; pin it as the wave source "S".
        assert sim.step()
        assert world.state_of(0) == "q1"
        world.set_state(0, "S")
        return sim

    @staticmethod
    def _informed_and_body(world: World):
        states = world.states().values()
        informed = sum(1 for s in states if s in ("S", "informed"))
        body = sum(1 for s in states if s in ("S", "informed", "q1"))
        return informed, body

    def test_line_grows_and_broadcast_completes(self):
        n = 8
        sim = self._growth_with_wave(n, ratio=1.0, seed=0)
        sim.run()
        world = sim.world
        assert sim.encounters == n - 1  # the line needs n - 1 attachments
        assert len(world.components) == 1
        informed, body = self._informed_and_body(world)
        assert body == n - 1  # all but the final leader are body nodes
        assert informed == body  # the drain phase finished the flood
        world.check_invariants()

    def test_faster_internal_clock_fewer_lagging_nodes(self):
        # With λ high the wave keeps up with the growth front; with λ low
        # it lags behind (more grown-but-uninformed nodes at some instant).
        def max_lag(ratio: float) -> int:
            sim = self._growth_with_wave(12, ratio=ratio, seed=3)
            lag_samples = []
            while sim.step():
                informed, body = self._informed_and_body(sim.world)
                lag_samples.append(body - informed)
            return max(lag_samples)

        assert max_lag(8.0) <= max_lag(0.25)

    def test_fractional_ratio_accumulates(self):
        sim = self._growth_with_wave(9, ratio=0.5, seed=1)
        sim.run()
        assert sim.encounters == 8
        # 0.5 rounds per encounter over 7 further encounters -> >= 3 rounds
        # during growth, plus the drain rounds at the end.
        assert sim.rounds >= 3

    def test_zero_ratio_still_drains_at_the_end(self):
        sim = self._growth_with_wave(6, ratio=0.0, seed=2)
        sim.run()
        assert sim.encounters == 5
        # All flooding happened in the drain phase; the whole body must
        # still end informed.
        informed, body = self._informed_and_body(sim.world)
        assert informed == body == 5
