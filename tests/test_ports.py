"""Port semantics: directions, opposites, orientation round-trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.ports import (
    PORTS_2D,
    PORTS_3D,
    Port,
    opposite,
    port_direction,
    port_facing,
    port_from_direction,
    ports_for_dimension,
    world_direction,
)
from repro.geometry.rotation import ROTATIONS_3D
from repro.geometry.vec import Vec


def test_port_sets():
    assert len(PORTS_2D) == 4
    assert len(PORTS_3D) == 6
    assert set(PORTS_2D) <= set(PORTS_3D)
    assert ports_for_dimension(2) == PORTS_2D
    with pytest.raises(GeometryError):
        ports_for_dimension(1)


def test_directions_are_distinct_units():
    dirs = [port_direction(p) for p in PORTS_3D]
    assert len(set(dirs)) == 6
    assert all(d.is_unit() for d in dirs)


def test_opposites_negate_direction():
    for p in PORTS_3D:
        assert port_direction(opposite(p)) == -port_direction(p)
        assert opposite(opposite(p)) == p


def test_perpendicular_neighbors_2d():
    # u, r, d, l in cyclic order: consecutive ports are perpendicular
    # (dot product zero) — the paper's local axes property.
    for a, b in zip(PORTS_2D, PORTS_2D[1:] + PORTS_2D[:1]):
        da, db = port_direction(a), port_direction(b)
        assert da.x * db.x + da.y * db.y + da.z * db.z == 0


def test_port_from_direction_roundtrip():
    for p in PORTS_3D:
        assert port_from_direction(port_direction(p)) == p
    with pytest.raises(GeometryError):
        port_from_direction(Vec(1, 1, 0))


@given(st.sampled_from(ROTATIONS_3D), st.sampled_from(PORTS_3D))
def test_world_direction_facing_roundtrip(rotation, port):
    d = world_direction(port, rotation)
    assert d.is_unit()
    assert port_facing(rotation, d) == port
