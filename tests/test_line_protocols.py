"""§4.1 spanning line protocols: stable construction of the line."""

import pytest

from repro.core.simulator import Simulation
from repro.core.world import World
from repro.protocols.line import simple_line_protocol, spanning_line_protocol


@pytest.mark.parametrize("n", [2, 3, 6, 10, 15])
def test_spanning_line_stabilizes_to_a_line(n):
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(n, protocol, leaders=1)
    sim = Simulation(world, protocol, seed=n * 7 + 1, check_invariants=True)
    res = sim.run_to_stabilization(max_events=100_000)
    assert res.events == n - 1  # exactly one effective interaction per node
    assert len(world.components) == 1
    shape = world.component_shape(next(iter(world.components)))
    assert len(shape.cells) == n
    assert shape.is_line()


def test_spanning_line_output_shape_is_the_line():
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(7, protocol, leaders=1)
    Simulation(world, protocol, seed=2).run_to_stabilization()
    shapes = world.output_shapes(protocol)
    assert len(shapes) == 1 and shapes[0].is_line()


@pytest.mark.parametrize("seed", range(5))
def test_spanning_line_for_many_seeds(seed):
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(8, protocol, leaders=1)
    Simulation(world, protocol, seed=seed).run_to_stabilization()
    assert world.component_shape(next(iter(world.components))).is_line()


def test_simple_variant_also_builds_a_line():
    protocol = simple_line_protocol()
    world = World.of_free_nodes(6, protocol, leaders=1)
    sim = Simulation(world, protocol, seed=4, check_invariants=True)
    sim.run_to_stabilization(max_events=100_000)
    shape = world.component_shape(next(iter(world.components)))
    assert shape.is_line() and len(shape.cells) == 6


def test_simple_variant_is_slower_in_raw_steps():
    """The simplified protocol needs r-l meetings only, so under the exact
    uniform scheduler it spends more raw steps per expansion."""
    from repro.core.scheduler import EnumeratingScheduler

    def raw_steps(factory, seed):
        protocol = factory()
        world = World.of_free_nodes(6, protocol, leaders=1)
        sim = Simulation(
            world, protocol, scheduler=EnumeratingScheduler(), seed=seed
        )
        return sim.run_to_stabilization(max_events=100_000).raw_steps

    general = sum(raw_steps(spanning_line_protocol, s) for s in range(8))
    simple = sum(raw_steps(simple_line_protocol, s) for s in range(8))
    assert simple > general


def test_protocol_sizes():
    assert spanning_line_protocol().size == 6  # 4 leader states + q0 + q1
    assert simple_line_protocol().size == 3


class Test3DSpanningLine:
    """§4.1 generalizes to the 3D model verbatim (six ports)."""

    def test_3d_line_stabilizes_straight(self):
        from repro.core.simulator import Simulation
        from repro.core.world import World
        from repro.protocols.line import spanning_line_protocol

        protocol = spanning_line_protocol(dimension=3)
        assert protocol.dimension == 3
        assert len(protocol.rules) == 36  # 6 x 6 port combinations
        for seed in range(3):
            world = World.of_free_nodes(7, protocol, leaders=1)
            result = Simulation(world, protocol, seed=seed).run_to_stabilization()
            assert result.events == 6
            shapes = world.output_shapes(protocol)
            assert len(shapes) == 1
            assert shapes[0].is_line()
            assert len(shapes[0]) == 7
            world.check_invariants()

    def test_2d_protocol_unchanged_by_default(self):
        from repro.protocols.line import spanning_line_protocol

        protocol = spanning_line_protocol()
        assert protocol.dimension == 2
        assert len(protocol.rules) == 16
        assert protocol.name == "spanning-line"
