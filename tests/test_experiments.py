"""Tests for the declarative experiment layer (repro.experiments)."""

import importlib
import inspect
import json
import pkgutil
from pathlib import Path

import pytest

import repro
from repro.core.scheduler import make_scheduler
from repro.core.simulator import Simulation, StopReason
from repro.core.world import World
from repro.errors import ReproError
from repro.experiments import (
    ExperimentResult,
    ExperimentSpec,
    Param,
    SweepSpec,
    all_scenarios,
    derive_seed,
    format_scenario_list,
    get_scenario,
    run_experiment,
    run_named,
    run_sweep,
    scenario_names,
    validate_payload,
    validate_result_dict,
    write_bench_json,
)
from repro.experiments.io import results_payload
from repro.protocols.line import spanning_line_protocol

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_scenarios_registered(self):
        names = scenario_names()
        assert "counting" in names
        assert "demo" in names
        assert "universal" in names
        assert names == tuple(sorted(names))

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ReproError, match="unknown scenario"):
            get_scenario("frobnicate")

    def test_param_defaults_and_overrides(self):
        scn = get_scenario("counting")
        params = scn.resolve({"n": "128"})
        assert params["n"] == 128  # converted to the declared type
        assert params["b"] == 4  # default filled in

    def test_unknown_param_rejected(self):
        with pytest.raises(ReproError, match="unknown params"):
            get_scenario("counting").resolve({"nope": 1})

    def test_choices_enforced(self):
        with pytest.raises(ReproError, match="not in choices"):
            get_scenario("replicate").resolve({"approach": "teleport"})

    def test_param_types_validated(self):
        with pytest.raises(ReproError, match="unknown type"):
            Param("x", "complex")

    def test_every_run_entrypoint_is_covered(self):
        """Registry completeness: each public ``run_*``/``replicate_by_*``
        module-level workload entrypoint must be reachable through a
        registered scenario's ``covers`` declaration."""
        entrypoints = set()
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.startswith("repro.experiments"):
                continue  # the runner itself (run_experiment, run_sweep)
            module = importlib.import_module(info.name)
            for name, obj in vars(module).items():
                if not inspect.isfunction(obj) or obj.__module__ != info.name:
                    continue
                if name.startswith(("run_", "replicate_by_")):
                    entrypoints.add(f"{info.name}.{name}")
        assert entrypoints, "introspection found no workload entrypoints"
        covered = {qual for scn in all_scenarios() for qual in scn.covers}
        missing = sorted(entrypoints - covered)
        assert not missing, (
            f"workload entrypoints not reachable through any registered "
            f"scenario: {missing}"
        )

    def test_covers_names_resolve(self):
        # No stale covers: every declared qualified name must import.
        for scn in all_scenarios():
            for qual in scn.covers:
                module, _, func = qual.rpartition(".")
                assert hasattr(importlib.import_module(module), func), qual


# ----------------------------------------------------------------------
# Result schema
# ----------------------------------------------------------------------


class TestExperimentResult:
    def test_json_round_trip_lossless(self):
        result = run_named("counting", n=16, trials=3, seed=7)
        again = ExperimentResult.from_json(result.to_json())
        assert again == result
        assert isinstance(again.stop_reason, StopReason)
        assert again.wall_time == result.wall_time  # floats survive exactly

    def test_round_trip_with_renders(self):
        result = run_named("demo", n=6, seed=1)
        assert "line" in result.renders and "square" in result.renders
        assert ExperimentResult.from_json(result.to_json()) == result

    def test_round_trip_null_seed_and_reason(self):
        result = run_named("shape", shape="cross", d=7)
        assert result.seed is None
        assert ExperimentResult.from_json(result.to_json()) == result

    def test_validate_rejects_corruption(self):
        data = run_named("counting", n=16, trials=1, seed=0).to_dict()
        assert validate_result_dict(data) == []
        for key, bad in [
            ("scenario", 3),
            ("seed", "zero"),
            ("seed", True),  # bool is an int subclass; must still reject
            ("events", 1.5),
            ("stop_reason", "exploded"),
            ("wall_time", -1),
            ("metrics", None),
        ]:
            corrupted = dict(data, **{key: bad})
            assert validate_result_dict(corrupted), f"{key}={bad!r} accepted"

    def test_from_dict_rejects_invalid(self):
        with pytest.raises(ReproError, match="not a valid experiment result"):
            ExperimentResult.from_dict({"schema": "nope"})

    def test_missing_fields_rejected_not_crashed(self):
        # "validates" must imply "loads": a truncated payload is reported
        # as missing fields, and from_dict raises ReproError, not KeyError.
        partial = {
            "schema": "repro.experiments.result/v1",
            "scenario": "counting",
            "params": {},
            "wall_time": 0.1,
            "metrics": {},
        }
        errors = validate_result_dict(partial)
        assert any("missing field" in e for e in errors)
        with pytest.raises(ReproError, match="missing field"):
            ExperimentResult.from_dict(partial)

    def test_param_minimum_enforced(self):
        with pytest.raises(ReproError, match="below the minimum"):
            get_scenario("counting").resolve({"trials": 0})

    def test_comparable_drops_only_wall_time(self):
        result = run_named("counting", n=16, trials=1, seed=0)
        comparable = result.comparable()
        assert "wall_time" not in comparable
        assert comparable["metrics"] == result.metrics

    def test_payload_validation(self, tmp_path):
        results = [run_named("counting", n=16, trials=1, seed=s) for s in (0, 1)]
        assert validate_payload(results_payload(results)) == []
        path = write_bench_json("counting", results, tmp_path)
        assert path.name == "BENCH_counting.json"
        assert validate_payload(json.loads(path.read_text())) == []
        assert validate_payload({"schema": "bogus"}) != []


# ----------------------------------------------------------------------
# Seed derivation and sweeps
# ----------------------------------------------------------------------


class TestSeedDerivation:
    def test_deterministic(self):
        a = derive_seed(0, "counting", {"n": 16}, 3)
        assert a == derive_seed(0, "counting", {"n": 16}, 3)

    def test_distinct_streams(self):
        seeds = {
            derive_seed(base, scn, {"n": n}, trial)
            for base in (0, 1)
            for scn in ("counting", "square")
            for n in (16, 32)
            for trial in range(4)
        }
        assert len(seeds) == 2 * 2 * 2 * 4  # no collisions across any axis

    def test_param_order_irrelevant(self):
        assert derive_seed(0, "x", {"a": 1, "b": 2}, 0) == derive_seed(
            0, "x", {"b": 2, "a": 1}, 0
        )


class TestSweep:
    def test_expansion_order_and_size(self):
        sweep = SweepSpec(
            scenario="counting",
            grid={"n": [8, 16], "trials": [1]},
            trials=2,
            base_seed=5,
        )
        specs = list(sweep.specs())
        assert len(specs) == sweep.size() == 4
        assert [s.params["n"] for s in specs] == [8, 8, 16, 16]
        assert all(s.seed is not None for s in specs)

    def test_sweep_rejects_unknown_param(self):
        with pytest.raises(ReproError, match="unknown params"):
            list(SweepSpec(scenario="counting", grid={"zap": [1]}).specs())

    def test_sweep_rejects_empty_axis(self):
        sweep = SweepSpec(scenario="counting", grid={"n": []}, trials=4)
        assert sweep.size() == 0  # size agrees with the (empty) expansion
        with pytest.raises(ReproError, match="have no values"):
            list(sweep.specs())

    def test_sixteen_trials_identical_across_worker_counts(self):
        """Acceptance bar: a 16-trial sweep produces identical per-trial
        results whether run with 1 worker or N worker processes."""
        sweep = SweepSpec(
            scenario="counting",
            grid={"n": [16, 24], "trials": [2]},
            trials=8,
            base_seed=3,
        )
        serial = run_sweep(sweep, workers=1)
        parallel = run_sweep(sweep, workers=4)
        assert len(serial) == 16
        assert [r.comparable() for r in serial] == [
            r.comparable() for r in parallel
        ]

    def test_scheduler_passthrough(self):
        sweep = SweepSpec(
            scenario="demo", grid={"n": [5]}, trials=2, scheduler="enumerate"
        )
        results = run_sweep(sweep)
        assert all(r.scheduler == "enumerate" for r in results)

    def test_scheduler_rejected_for_unschedulable_scenario(self):
        with pytest.raises(ReproError, match="does not take a scheduler"):
            run_experiment(
                ExperimentSpec("shape", {"d": 7}, scheduler="hot")
            )


# ----------------------------------------------------------------------
# Scheduler-contract integration: seeded trajectories match across
# uniform schedulers through the experiment layer too.
# ----------------------------------------------------------------------


class TestSchedulerUniformity:
    def test_demo_trajectories_identical_across_uniform_schedulers(self):
        reference = run_named("demo", n=6, seed=9, scheduler="hot")
        for kind in ("enumerate", "rejection"):
            other = run_named("demo", n=6, seed=9, scheduler=kind)
            assert other.renders == reference.renders
            assert other.events == reference.events


# ----------------------------------------------------------------------
# StopReason normalization (satellite)
# ----------------------------------------------------------------------


class TestStopReason:
    @staticmethod
    def _sim(n=6, seed=0):
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(n, protocol, leaders=1)
        return Simulation(
            world, protocol, scheduler=make_scheduler("hot"), seed=seed
        )

    def test_stabilized(self):
        res = self._sim().run()
        assert res.reason is StopReason.STABILIZED
        assert res.reason == "stabilized"  # legacy string comparisons hold
        assert bool(res)  # __bool__: ended on its own terms

    def test_predicate(self):
        res = self._sim().run(until=lambda w: True)
        assert res.reason is StopReason.PREDICATE
        assert res.stopped and bool(res)

    def test_budget(self):
        res = self._sim().run(max_events=1)
        assert res.reason is StopReason.BUDGET
        assert not res.stabilized and not res.stopped
        assert not bool(res)  # truncated runs stay falsy

    def test_experiment_results_reuse_the_enum(self):
        result = run_named("demo", n=5, seed=0)
        assert result.stop_reason is StopReason.STABILIZED
        assert json.loads(result.to_json())["stop_reason"] == "stabilized"


# ----------------------------------------------------------------------
# EXPERIMENTS.md stays in sync with the registry (satellite)
# ----------------------------------------------------------------------


class TestExperimentsIndex:
    def test_experiments_md_matches_registry(self):
        generated = format_scenario_list("md")
        on_disk = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert on_disk == generated, (
            "EXPERIMENTS.md is stale; regenerate with "
            "`PYTHONPATH=src python -m repro list --format md > EXPERIMENTS.md`"
        )

    def test_text_listing_covers_all_scenarios(self):
        text = format_scenario_list("text")
        for name in scenario_names():
            assert name in text
