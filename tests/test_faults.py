"""Tests for fault injection and self-repair (repro.faults, §8)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import Rule, RuleProtocol
from repro.core.world import World
from repro.errors import ReproError, SimulationError
from repro.faults.injection import (
    FaultySimulation,
    break_random_bond,
    random_active_bonds,
)
from repro.faults.repair import (
    damage_statistics,
    detach_part,
    repair_shape,
)
from repro.geometry.random_shapes import random_connected_shape
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec
from repro.protocols.line import spanning_line_protocol


def line_world(n: int) -> World:
    """A pre-built horizontal line of n bonded nodes plus nothing else."""
    world = World(2)
    world.add_component_from_cells({Vec(i, 0): "q1" for i in range(n)})
    return world


def gluing_protocol() -> RuleProtocol:
    """Any two facing q1 ports bond (the rigidity rules of Protocol 2)."""
    from repro.geometry.ports import PORTS_2D, opposite

    rules = [
        Rule("q1", p, "q1", opposite(p), 0, "q1", "q1", 1) for p in PORTS_2D
    ]
    return RuleProtocol(rules, initial_state="q1", name="gluing")


def square_shape(d: int) -> Shape:
    return Shape.from_cells([Vec(x, y) for x in range(d) for y in range(d)])


# ----------------------------------------------------------------------
# break_random_bond
# ----------------------------------------------------------------------


class TestBreakRandomBond:
    def test_no_bonds_returns_none(self):
        world = World(2)
        world.add_free_node("q0")
        world.add_free_node("q0")
        assert break_random_bond(world, random.Random(0)) is None

    def test_breaking_line_bond_splits_component(self):
        world = line_world(5)
        assert len(world.components) == 1
        bond = break_random_bond(world, random.Random(3))
        assert bond is not None
        assert len(world.components) == 2
        world.check_invariants()

    def test_all_bonds_eventually_break(self):
        world = line_world(6)
        rng = random.Random(1)
        for _ in range(5):
            assert break_random_bond(world, rng) is not None
        assert break_random_bond(world, rng) is None
        assert len(world.components) == 6
        world.check_invariants()

    def test_breaking_square_bond_may_keep_component_connected(self):
        # A 2x2 block has 4 bonds; removing one leaves a connected C-shape.
        world = World(2)
        world.add_component_from_cells(
            {Vec(0, 0): "a", Vec(1, 0): "b", Vec(0, 1): "c", Vec(1, 1): "d"}
        )
        break_random_bond(world, random.Random(0))
        assert len(world.components) == 1
        world.check_invariants()

    def test_random_active_bonds_lists_every_bond(self):
        world = line_world(7)
        bonds = random_active_bonds(world)
        assert len(bonds) == 6
        cids = {cid for cid, _ in bonds}
        assert cids == set(world.components)


# ----------------------------------------------------------------------
# FaultySimulation
# ----------------------------------------------------------------------


class TestFaultySimulation:
    def test_zero_probability_behaves_like_plain_simulation(self):
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(8, protocol, leaders=1)
        sim = FaultySimulation(world, protocol, break_prob=0.0, seed=0)
        res = sim.run(max_steps=10_000)
        assert res.stabilized
        assert not sim.breakages
        shapes = world.output_shapes(protocol)
        assert len(shapes) == 1 and shapes[0].is_line()
        assert len(shapes[0]) == 8

    def test_rejects_bad_probability(self):
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(4, protocol, leaders=1)
        with pytest.raises(SimulationError):
            FaultySimulation(world, protocol, break_prob=1.5)

    def test_perpetual_breakage_never_stabilizes(self):
        # §8: under a perpetual setback no construction can ever stabilize.
        # Use a protocol whose nodes keep re-gluing (q1 bonds any facing
        # q1): the fault coin keeps snapping bonds, the protocol keeps
        # re-forming them, and the execution never quiesces. The line
        # protocol would instead burn down to a dead fragment state (see
        # test_damage_is_permanent_for_the_line_protocol).
        protocol = gluing_protocol()
        world = World(2)
        for _ in range(8):
            world.add_free_node("q1")
        sim = FaultySimulation(world, protocol, break_prob=0.3, seed=2)
        res = sim.run(max_steps=2000)
        assert not res.stabilized
        assert res.reason == "budget"
        assert sim.breakages

    def test_line_protocol_burns_down_to_dead_state(self):
        # The complementary outcome: a protocol that cannot re-absorb its
        # q1 fragments eventually reaches a state faults cannot revive.
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(10, protocol, leaders=1)
        sim = FaultySimulation(world, protocol, break_prob=0.3, seed=2)
        res = sim.run(max_steps=3000)
        if res.stabilized:
            # Dead state: no bonds remain for faults to snap, and the
            # spanning line was certainly not constructed.
            assert all(not c.bonds for c in world.components.values())
            shapes = world.output_shapes(protocol)
            assert not any(len(s) == 10 and s.is_line() for s in shapes)

    def test_fault_budget_allows_restabilization(self):
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(10, protocol, leaders=1)
        sim = FaultySimulation(
            world, protocol, break_prob=0.5, seed=4, max_bonds_broken=3
        )
        res = sim.run(max_steps=50_000)
        assert res.stabilized
        assert len(sim.breakages) == 3
        world.check_invariants()

    def test_damage_is_permanent_for_the_line_protocol(self):
        # Detached q1 fragments have no effective rules: the line protocol
        # cannot self-heal, motivating the blueprint repair of repro.faults.
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(12, protocol, leaders=1)
        sim = FaultySimulation(
            world, protocol, break_prob=0.2, seed=5, max_bonds_broken=4
        )
        res = sim.run(max_steps=50_000)
        assert res.stabilized
        if sim.breakages:  # with this seed faults did land on the line
            assert sim.largest_component_size() < 12

    def test_largest_component_metric(self):
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(5, protocol, leaders=1)
        sim = FaultySimulation(world, protocol, break_prob=0.0, seed=0)
        assert sim.largest_component_size() == 1
        sim.run(max_steps=10_000)
        assert sim.largest_component_size() == 5

    def test_invariants_hold_under_heavy_breakage(self):
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(9, protocol, leaders=1)
        sim = FaultySimulation(world, protocol, break_prob=0.6, seed=7)
        for _ in range(400):
            if not sim.step():
                break
            world.check_invariants()


# ----------------------------------------------------------------------
# detach_part
# ----------------------------------------------------------------------


class TestDetachPart:
    def test_remainder_and_size(self):
        blueprint = square_shape(6)
        damaged, lost = detach_part(blueprint, 0.25, seed=0)
        assert len(lost) == 9  # 25% of 36
        assert len(damaged.cells) == 27
        assert damaged.cells.isdisjoint(lost)
        assert damaged.cells | lost == set(blueprint.cells)

    def test_lost_region_is_connected(self):
        blueprint = square_shape(7)
        _damaged, lost = detach_part(blueprint, 0.3, seed=1)
        seen = {next(iter(sorted(lost)))}
        stack = list(seen)
        while stack:
            v = stack.pop()
            for d in (Vec(0, 1), Vec(1, 0), Vec(0, -1), Vec(-1, 0)):
                w = v + d
                if w in lost and w not in seen:
                    seen.add(w)
                    stack.append(w)
        assert seen == lost

    def test_large_fraction_degrades_instead_of_failing(self):
        damaged, lost = detach_part(square_shape(2), 0.99, seed=0)
        assert len(damaged.cells) >= 1
        assert len(lost) >= 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(ReproError):
            detach_part(square_shape(3), 0.0)
        with pytest.raises(ReproError):
            detach_part(square_shape(3), 1.0)

    def test_single_cell_shape_cannot_lose_a_part(self):
        with pytest.raises(ReproError):
            detach_part(Shape.single(), 0.5, seed=0)

    def test_labels_survive_on_remainder(self):
        cells = [Vec(x, 0) for x in range(5)]
        blueprint = Shape.from_cells(cells, labels={c: c.x % 2 for c in cells})
        damaged, _lost = detach_part(blueprint, 0.2, seed=3)
        for cell, label in damaged.labels:
            assert label == cell.x % 2

    @given(st.integers(min_value=6, max_value=40), st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_random_shapes_split_cleanly(self, size, seed):
        blueprint = random_connected_shape(size, seed=seed)
        damaged, lost = detach_part(blueprint, 0.25, seed=seed)
        assert len(damaged.cells) + len(lost) == size
        # The requested size may degrade on awkward shapes, but some
        # connected part must always come off.
        assert 1 <= len(lost) <= max(1, round(0.25 * size))


# ----------------------------------------------------------------------
# repair_shape
# ----------------------------------------------------------------------


class TestRepairShape:
    def test_repairs_square_exactly(self):
        blueprint = square_shape(5)
        damaged, lost = detach_part(blueprint, 0.3, seed=2)
        res = repair_shape(damaged, blueprint, seed=3)
        assert res.repaired.cells == blueprint.cells
        assert res.repaired.edges == blueprint.edges
        assert res.nodes_attached == len(lost)

    def test_no_damage_is_a_noop(self):
        blueprint = square_shape(4)
        res = repair_shape(blueprint, blueprint, seed=0)
        assert res.interactions == 0
        assert res.nodes_attached == 0
        assert res.bonds_restored == 0

    def test_rejects_cells_outside_blueprint(self):
        blueprint = square_shape(3)
        rogue = Shape.from_cells([Vec(10, 10), Vec(11, 10)])
        with pytest.raises(ReproError):
            repair_shape(rogue, blueprint)

    def test_rejects_extra_bonds(self):
        # A damaged shape with an active edge the blueprint lacks.
        cells = [Vec(0, 0), Vec(1, 0), Vec(1, 1), Vec(0, 1)]
        ring = Shape.from_cells(cells)
        chain_edges = [
            frozenset((Vec(0, 0), Vec(1, 0))),
            frozenset((Vec(1, 0), Vec(1, 1))),
            frozenset((Vec(1, 1), Vec(0, 1))),
        ]
        blueprint = Shape.from_cells(cells, chain_edges)
        with pytest.raises(ReproError):
            repair_shape(ring, blueprint)

    def test_restores_missing_bonds_between_present_cells(self):
        cells = [Vec(0, 0), Vec(1, 0), Vec(1, 1), Vec(0, 1)]
        blueprint = Shape.from_cells(cells)  # all 4 ring edges
        chain_edges = [
            frozenset((Vec(0, 0), Vec(1, 0))),
            frozenset((Vec(1, 0), Vec(1, 1))),
            frozenset((Vec(1, 1), Vec(0, 1))),
        ]
        damaged = Shape.from_cells(cells, chain_edges)
        res = repair_shape(damaged, blueprint, seed=0)
        assert res.repaired.edges == blueprint.edges
        assert res.nodes_attached == 0
        assert res.bonds_restored == 1
        assert res.interactions == 1

    def test_repair_cost_proportional_to_damage(self):
        blueprint = square_shape(10)
        small_costs = []
        big_costs = []
        rng = random.Random(0)
        for _ in range(5):
            damaged, _ = detach_part(blueprint, 0.1, rng=rng)
            small_costs.append(repair_shape(damaged, blueprint, rng=rng).interactions)
            damaged, _ = detach_part(blueprint, 0.4, rng=rng)
            big_costs.append(repair_shape(damaged, blueprint, rng=rng).interactions)
        assert sum(big_costs) > 2 * sum(small_costs)

    def test_repair_cost_independent_of_blueprint_size(self):
        # Fixed absolute damage on growing squares: cost stays flat-ish
        # (it depends on lost cells + boundary bonds, not the area).
        rng = random.Random(1)
        costs = []
        for d in (6, 12, 18):
            blueprint = square_shape(d)
            fraction = 4 / (d * d)
            damaged, lost = detach_part(blueprint, fraction, rng=rng)
            assert len(lost) == 4
            costs.append(repair_shape(damaged, blueprint, rng=rng).interactions)
        assert max(costs) <= 3 * min(costs)

    def test_preserves_blueprint_labels(self):
        cells = [Vec(x, y) for x in range(3) for y in range(3)]
        blueprint = Shape.from_cells(
            cells, labels={c: (1 if c.x == c.y else 0) for c in cells}
        )
        damaged, _ = detach_part(blueprint, 0.3, seed=4)
        res = repair_shape(damaged, blueprint, seed=4)
        assert res.repaired.label_map == blueprint.label_map

    @given(st.integers(min_value=6, max_value=30), st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_random_damage_always_repairs(self, size, seed):
        blueprint = random_connected_shape(size, seed=seed)
        damaged, lost = detach_part(blueprint, 0.3, seed=seed + 1)
        res = repair_shape(damaged, blueprint, seed=seed + 2)
        assert res.repaired.cells == blueprint.cells
        assert res.repaired.edges == blueprint.edges
        assert res.nodes_attached == len(lost)
        # Each lost cell costs one attach interaction plus its new bonds.
        assert res.interactions == res.nodes_attached + res.bonds_restored


class TestDamageStatistics:
    def test_rows_and_monotone_cost(self):
        blueprint = square_shape(8)
        rows = damage_statistics(blueprint, [0.1, 0.3, 0.5], trials=4, seed=0)
        assert len(rows) == 3
        costs = [cost for _f, _lost, cost in rows]
        assert costs[0] < costs[-1]
        for _fraction, lost, cost in rows:
            assert cost >= lost  # at least one interaction per lost cell
