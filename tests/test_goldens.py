"""The golden-trace regression suite (``tests/goldens/`` + ``repro goldens``).

Every committed golden must replay bit-exactly under ``--verify`` (both
header-onwards and checkpoint-seek) AND diff identical against a fresh
run of the current code. A failure here means the current code's seeded
trajectory changed: regenerate with ``PYTHONPATH=src python -m repro
goldens record`` and justify the trajectory change in CHANGES.md — never
regenerate to silence a failure you cannot explain.
"""

from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import TraceError
from repro.trace import TraceReader, validate_trace_file
from repro.trace.goldens import (
    DEFAULT_GOLDEN_DIR,
    GOLDENS,
    REQUIRED_FAMILIES,
    check_golden,
    golden_specs,
    record_golden,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"


class TestSpecs:
    def test_names_unique(self):
        names = [spec.name for spec in GOLDENS]
        assert len(names) == len(set(names))

    def test_required_families_covered(self):
        families = {spec.family for spec in GOLDENS}
        assert set(REQUIRED_FAMILIES) <= families

    def test_unknown_name_rejected(self):
        with pytest.raises(TraceError, match="unknown golden"):
            golden_specs(["no-such-golden"])

    def test_default_dir_matches_layout(self):
        assert GOLDEN_DIR.name == DEFAULT_GOLDEN_DIR.name
        assert GOLDEN_DIR.is_dir()


class TestCommittedGoldens:
    @pytest.mark.parametrize(
        "spec", GOLDENS, ids=[spec.name for spec in GOLDENS]
    )
    def test_golden_reproduces(self, spec):
        report = check_golden(spec, spec.path(GOLDEN_DIR))
        assert report.ok, report.message

    @pytest.mark.parametrize(
        "spec", GOLDENS, ids=[spec.name for spec in GOLDENS]
    )
    def test_golden_file_validates(self, spec):
        assert validate_trace_file(spec.path(GOLDEN_DIR)) == []

    def test_no_orphan_trace_files(self):
        committed = {p.name for p in GOLDEN_DIR.glob("*.trace")}
        expected = {spec.filename() for spec in GOLDENS}
        assert committed == expected

    def test_fault_golden_carries_detach_records(self):
        spec = golden_specs(["faults"])[0]
        trace = TraceReader.load(spec.path(GOLDEN_DIR))
        assert any(r["kind"] == "detach" for r in trace.records)

    def test_hybrid_golden_carries_move_records(self):
        spec = golden_specs(["hybrid"])[0]
        trace = TraceReader.load(spec.path(GOLDEN_DIR))
        assert any(r["kind"] == "move" for r in trace.records)


class TestFailureModes:
    def test_missing_golden_names_record_command(self, tmp_path):
        report = check_golden(GOLDENS[0], tmp_path / "absent.trace")
        assert not report.ok
        assert "goldens record" in report.message

    def test_stale_golden_names_first_divergence_and_hint(self, tmp_path):
        # A golden recorded from a *different* seed stands in for a code
        # change that altered the trajectory: the check must fail, name
        # the first diverging event, and point at the regeneration ritual.
        spec = golden_specs(["counting"])[0]
        stale_spec = type(spec)(
            name=spec.name,
            family=spec.family,
            summary=spec.summary,
            scenario=spec.scenario,
            builder=spec.builder,
            params=spec.params,
            seed=spec.seed + 1,
            scheduler=spec.scheduler,
            run_index=spec.run_index,
            checkpoint_every=spec.checkpoint_every,
        )
        stale = tmp_path / spec.filename()
        record_golden(stale_spec, stale)
        report = check_golden(spec, stale)
        assert not report.ok
        assert "no longer reproduces" in report.message
        assert "DIVERGED" in report.message
        assert "justify the trajectory change in CHANGES.md" in report.message
        assert report.diff is not None and not report.diff.identical

    def test_regenerated_golden_passes(self, tmp_path):
        spec = golden_specs(["line"])[0]
        fresh = tmp_path / spec.filename()
        record_golden(spec, fresh)
        report = check_golden(spec, fresh)
        assert report.ok, report.message


class TestCli:
    def test_goldens_list(self, capsys):
        assert main(["goldens", "list"]) == 0
        out = capsys.readouterr().out
        for spec in GOLDENS:
            assert spec.name in out

    def test_goldens_check_committed_set(self, capsys):
        assert main(["goldens", "check", "--dir", str(GOLDEN_DIR)]) == 0
        out = capsys.readouterr().out
        assert f"{len(GOLDENS)}/{len(GOLDENS)} goldens reproduce" in out

    def test_goldens_record_and_check_cycle(self, tmp_path, capsys):
        assert (
            main(["goldens", "record", "line", "--dir", str(tmp_path)]) == 0
        )
        assert (tmp_path / "line.trace").exists()
        assert main(["goldens", "check", "line", "--dir", str(tmp_path)]) == 0

    def test_goldens_check_missing_dir_fails(self, tmp_path, capsys):
        assert (
            main(["goldens", "check", "line", "--dir", str(tmp_path / "no")])
            == 1
        )

    def test_goldens_unknown_name_exits_two(self, capsys):
        assert main(["goldens", "check", "no-such-golden"]) == 2
