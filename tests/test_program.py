"""The compiled protocol IR: interning, packed dispatch, static indexes."""

import pytest

from repro.core.program import (
    MAX_STATES,
    MemoProgram,
    StateSpace,
    compile_rules,
    pack_fire,
    pack_lhs,
    unpack_lhs,
)
from repro.core.protocol import (
    AgentProtocol,
    InteractionView,
    Rule,
    RuleProtocol,
)
from repro.core.world import World
from repro.errors import ProtocolError
from repro.geometry.ports import PORT_INDEX, PORTS_2D, Port, opposite
from repro.geometry.vec import Vec
from repro.protocols.line import spanning_line_protocol
from repro.protocols.replication import no_leader_line_replication_protocol
from repro.protocols.square2 import square2_protocol

U, R, D, L = Port.UP, Port.RIGHT, Port.DOWN, Port.LEFT


# ----------------------------------------------------------------------
# StateSpace
# ----------------------------------------------------------------------


def test_state_space_interns_densely():
    space = StateSpace()
    ids = [space.intern(s) for s in ("a", "b", "a", ("t", 1), "b")]
    assert ids == [0, 1, 0, 2, 1]
    assert space.decode(2) == ("t", 1)
    assert space.get_id("c") is None
    assert len(space) == 3 and "a" in space and "c" not in space


def test_interning_order_is_canonical_not_construction_order():
    rules = [
        Rule("b", R, "a", L, 0, "x", "y", 1),
        Rule("a", R, "b", L, 0, "y", "x", 1),
    ]
    p1 = RuleProtocol(rules, initial_state="a")
    p2 = RuleProtocol(list(reversed(rules)), initial_state="a")
    assert p1.program.space.states == p2.program.space.states


# ----------------------------------------------------------------------
# Key packing
# ----------------------------------------------------------------------


def test_pack_lhs_roundtrip():
    import random

    rng = random.Random(0)
    for _ in range(500):
        s1, s2 = rng.randrange(MAX_STATES), rng.randrange(MAX_STATES)
        p1, p2 = rng.randrange(6), rng.randrange(6)
        bond = rng.randrange(2)
        assert unpack_lhs(pack_lhs(s1, p1, s2, p2, bond)) == (s1, p1, s2, p2, bond)


def test_pack_lhs_injective_on_distinct_lhs():
    keys = set()
    for s1 in range(4):
        for s2 in range(4):
            for p1 in range(4):
                for p2 in range(4):
                    for bond in (0, 1):
                        keys.add(pack_lhs(s1, p1, s2, p2, bond))
    assert len(keys) == 4 * 4 * 4 * 4 * 2


# ----------------------------------------------------------------------
# Table build: conflicts, ineffective rules
# ----------------------------------------------------------------------


def test_conflicting_rules_error_names_both_rules():
    r1 = Rule("a", R, "b", L, 0, "x", "y", 1)
    r2 = Rule("a", R, "b", L, 0, "x", "z", 1)
    with pytest.raises(ProtocolError) as err:
        RuleProtocol([r1, r2])
    assert repr(r1) in str(err.value) and repr(r2) in str(err.value)


def test_swap_conflict_error_names_both_rules():
    r1 = Rule("a", R, "b", L, 0, "x", "y", 1)
    r2 = Rule("b", L, "a", R, 0, "x", "y", 1)  # should be (y, x, 1)
    with pytest.raises(ProtocolError) as err:
        RuleProtocol([r1, r2])
    assert repr(r1) in str(err.value) and repr(r2) in str(err.value)


def test_drop_ineffective_filters_instead_of_raising():
    rules = [
        Rule("a", R, "b", L, 0, "a", "b", 0),  # identity: dropped
        Rule("a", R, "b", L, 0, "a", "b", 1),
    ]
    with pytest.raises(ProtocolError):
        RuleProtocol(rules)
    p = RuleProtocol(rules, drop_ineffective=True)
    assert len(p.rules) == 1
    assert p.program.rule_count == 1


def test_ordered_mode_gives_presented_orientation_precedence():
    # An election between identical states, over every orientation: no
    # unordered table can hold it (the two presented orientations are
    # swaps of each other with non-mirrored results); ordered matching
    # resolves by presentation (initiator wins).
    rules = [
        Rule("c", R, "c", L, 0, "w", "l", 1),
        Rule("c", L, "c", R, 0, "w", "l", 1),
    ]
    with pytest.raises(ProtocolError):
        RuleProtocol(rules)  # ambiguous under swapping
    p = RuleProtocol(rules, match="ordered", initial_state="c")
    assert p.handle(InteractionView("c", R, "c", L, 0)) == ("w", "l", 1)
    # Presented precedence: the other orientation is also initiator-wins,
    # not the mirror of the first rule.
    assert p.handle(InteractionView("c", L, "c", R, 0)) == ("w", "l", 1)


# ----------------------------------------------------------------------
# Static indexes
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "factory",
    [spanning_line_protocol, square2_protocol, no_leader_line_replication_protocol],
)
def test_static_effectiveness_index_matches_table(factory):
    """can_fire is exactly 'some table orientation has this endpoint'."""
    protocol = factory()
    program = protocol.program
    space = program.space
    endpoints = set()
    for key in program.table.keys():
        s1, p1, s2, p2, bond = unpack_lhs(key)
        endpoints.add((s1, p1, bond))
        endpoints.add((s2, p2, bond))
    for sid in range(len(space)):
        for p in range(6):
            for bond in (0, 1):
                assert program.can_fire(sid, p, bond) == (
                    (sid, p, bond) in endpoints
                )


def test_static_pruning_is_conservative_wrt_dispatch():
    """A candidate with a statically dead endpoint never dispatches."""
    protocol = spanning_line_protocol()
    program = protocol.program
    n = len(program.space)
    for s1 in range(n):
        for s2 in range(n):
            for p1 in range(4):
                for p2 in range(4):
                    for bond in (0, 1):
                        update = program.lookup(s1, p1, s2, p2, bond)
                        if update is not None:
                            assert program.can_fire(s1, p1, bond)
                            assert program.can_fire(s2, p2, bond)
                            assert program.pair_can_fire(s1, s2)


def test_hot_bitmask_matches_protocol_hint():
    protocol = square2_protocol()
    program = protocol.program
    for sid, state in enumerate(program.space.states):
        assert program.is_hot_id(sid) == protocol.is_hot(state)


def test_oriented_hints_cover_exactly_bond0_orientations():
    protocol = spanning_line_protocol()
    program = protocol.program
    space = program.space
    lr = space.get_id("Lr")
    q0 = space.get_id("q0")
    hints = program.oriented_hints(lr, q0)
    # Lr expands only via its r port, bonding any port of the free node.
    assert hints == tuple((PORT_INDEX[R], PORT_INDEX[j]) for j in PORTS_2D)
    assert program.oriented_hints(q0, q0) == ()


# ----------------------------------------------------------------------
# MemoProgram: the handler escape hatch
# ----------------------------------------------------------------------


def test_memo_program_lowers_and_caches_handler_transitions():
    calls = []

    def handler(view):
        calls.append(view)
        if view.state1 == "L" and view.state2 == "q0":
            return ("q1", "L", 1)
        if view.state1 == "x":
            return (view.state1, view.state2, view.bond)  # identity
        return None

    protocol = AgentProtocol(handler)
    program = protocol.program
    assert isinstance(program, MemoProgram) and not program.exact
    space = program.space
    ids = [space.intern(s) for s in ("L", "q0", "x")]
    r, l = PORT_INDEX[R], PORT_INDEX[L]
    assert program.lookup(ids[0], r, ids[1], l, 0) == ("q1", "L", 1)
    assert program.lookup(ids[0], r, ids[1], l, 0) == ("q1", "L", 1)
    assert len(calls) == 1  # memoized: the handler ran once for this LHS
    # Identity updates are normalized to ineffective once, at lowering.
    assert program.lookup(ids[2], r, ids[1], l, 0) is None
    assert program.lookup(ids[2], r, ids[1], l, 0) is None
    assert len(calls) == 2
    assert program.rule_count == 1


# ----------------------------------------------------------------------
# World interning
# ----------------------------------------------------------------------


def test_world_interns_states_and_converts_at_edges():
    w = World(dimension=2)
    a = w.add_free_node("x")
    b = w.add_free_node(("t", 3))
    assert isinstance(w.nodes[a].sid, int)
    assert w.state_of(a) == "x" and w.state_of(b) == ("t", 3)
    assert w.states() == {a: "x", b: ("t", 3)}
    assert w.by_state == {"x": {a}, ("t", 3): {b}}
    assert w.nodes_in_state("x") == {a}
    assert w.nodes_in_state("unseen") == set()
    w.set_state(a, ("t", 3))
    assert w.by_state == {("t", 3): {a, b}}
    assert w.sid_of(a) == w.sid_of(b)


def test_of_free_nodes_adopts_the_program_space():
    protocol = spanning_line_protocol()
    w = World.of_free_nodes(4, protocol, leaders=1)
    assert w.space is protocol.program.space
    assert w.state_of(0) == "Lr"


def test_adopt_space_rekeys_without_changing_public_states():
    w = World(dimension=2)
    w.add_component_from_cells({Vec(0, 0): "a", Vec(1, 0): "b"})
    w.add_free_node("c")
    before_states = w.states()
    before_by_state = w.by_state
    target = StateSpace(["z", "b"])  # different ids for overlapping states
    w.adopt_space(target)
    assert w.space is target
    assert w.states() == before_states
    assert w.by_state == before_by_state
    assert w.sid_of(1) == 1  # "b" keeps the target space's id
    # Idempotent.
    w.adopt_space(target)
    assert w.states() == before_states
