"""§5.2: evidence for Conjecture 1 (anonymous counting fails)."""

from repro.population.leaderless import (
    early_termination_experiment,
    state_multiplicity_experiment,
)


def test_state_multiplicities_stay_linear():
    """Argument parts (1)-(2): every state keeps Theta(n) multiplicity."""
    floor_small, hist_small = state_multiplicity_experiment(60, k=3, seed=1)
    floor_big, hist_big = state_multiplicity_experiment(240, k=3, seed=1)
    assert floor_small > 0.05
    assert floor_big > 0.05
    assert sum(hist_big.values()) == 240


def test_early_termination_rate_does_not_vanish():
    """The anonymous window protocol has some node terminating after a
    constant number of interactions with probability bounded away from 0,
    for growing n — the conjecture's consequence."""
    small = early_termination_experiment(30, b=2, trials=30, seed=0)
    big = early_termination_experiment(120, b=2, trials=30, seed=0)
    assert small.early_termination_rate > 0.5
    assert big.early_termination_rate > 0.5


def test_anonymous_count_is_meaningless():
    obs = early_termination_experiment(100, b=2, trials=20, seed=3)
    # The terminating node's "count" bears no relation to n.
    assert obs.mean_relative_count_error > 0.5


def test_terminator_interactions_independent_of_n():
    small = early_termination_experiment(40, b=2, trials=30, seed=5)
    big = early_termination_experiment(160, b=2, trials=30, seed=5)
    # Mean interactions of the first terminator stay O(b), not Omega(n).
    assert small.mean_interactions_of_terminator < 40
    assert big.mean_interactions_of_terminator < 40
