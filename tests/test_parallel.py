"""Parallel simulation schemes (§6.4, Theorem 5)."""

import pytest

from repro.constructors.parallel import (
    _make_segments,
    _segments_match,
    run_parallel_3d,
    run_parallel_segments,
)
from repro.machines.shape_programs import (
    cross_program,
    expected_shape,
    line_program,
    star_program,
)


@pytest.mark.parametrize("d", [3, 5, 7])
def test_parallel_3d_builds_the_shape(d):
    res = run_parallel_3d(cross_program(), d)
    assert res.shape.same_up_to_translation(expected_shape(cross_program(), d))
    assert res.n == res.k * d * d


def test_parallel_3d_speedup_grows_with_d():
    small = run_parallel_3d(line_program(), 3)
    big = run_parallel_3d(line_program(), 6)
    assert big.speedup > small.speedup > 1.0


def test_parallel_3d_waste_accounting():
    d = 4
    res = run_parallel_3d(line_program(), d)
    # All memories plus the off pixels are waste.
    assert res.waste == res.n - d


def test_parallel_3d_without_world_matches():
    a = run_parallel_3d(star_program(), 5, build_world=True)
    b = run_parallel_3d(star_program(), 5, build_world=False)
    assert a.shape.same_up_to_translation(b.shape)


def test_segment_keys_are_unique():
    d = 6
    segments = _make_segments([False] * (d * d), d)
    for a in segments:
        matches = [b.index for b in segments if _segments_match(a, b, d)]
        if a.index < d:
            assert matches == [a.index + 1]
        else:
            assert matches == []


@pytest.mark.parametrize("d", [3, 5])
def test_parallel_segments_assemble_the_square(d):
    res = run_parallel_segments(star_program(), d, seed=7)
    assert res.shape.same_up_to_translation(expected_shape(star_program(), d))
    assert res.assembly_interactions >= d - 1


def test_segment_assembly_is_random_but_correct():
    shapes = set()
    for seed in range(5):
        res = run_parallel_segments(cross_program(), 4, seed=seed)
        shapes.add(tuple(sorted(res.shape.cells)))
    assert len(shapes) == 1  # different contact orders, same square


def test_parallel_beats_sequential_in_wall_clock():
    res = run_parallel_segments(line_program(), 5, seed=2)
    assert res.parallel_interactions < res.sequential_interactions


def test_parallel_3d_with_extended_catalogue():
    from repro.machines.shape_programs import diamond_program, serpentine_program

    for program in (serpentine_program(), diamond_program()):
        res = run_parallel_3d(program, 5)
        assert res.shape.same_up_to_translation(expected_shape(program, 5))


def test_segment_scheme_unique_for_many_sizes():
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(st.integers(min_value=2, max_value=20))
    @settings(max_examples=19, deadline=None)
    def check(d):
        segments = _make_segments([False] * (d * d), d)
        for a in segments:
            matches = [b.index for b in segments if _segments_match(a, b, d)]
            assert matches == ([a.index + 1] if a.index < d else [])

    check()
