"""Shape-language programs (Definition 3): connectivity, shapes, patterns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.geometry.vec import Vec
from repro.machines.shape_programs import (
    PatternProgram,
    PredicateShapeProgram,
    comb_program,
    cross_program,
    expected_pattern,
    expected_shape,
    frame_program,
    full_square_program,
    line_program,
    ring_pattern_program,
    star_program,
)

ALL_PROGRAMS = [
    full_square_program(),
    cross_program(),
    star_program(),
    frame_program(),
    comb_program(),
]


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=2, max_value=12))
def test_all_programs_give_connected_shapes(d):
    for program in ALL_PROGRAMS:
        expected_shape(program, d)  # raises when disconnected


@pytest.mark.parametrize("d", [1, 2, 3, 5, 9])
def test_line_program_is_bottom_row(d):
    shape = expected_shape(line_program(), d)
    assert shape.cells == frozenset(Vec(x, 0) for x in range(d))


def test_line_program_space_is_logarithmic():
    program = line_program()
    program.decide(0, 32)
    assert program.last_space <= program.space_bound(32)
    assert program.space_bound(32) < 32  # O(log d), not O(d^2)


def test_full_square_has_zero_waste():
    d = 5
    shape = expected_shape(full_square_program(), d)
    assert len(shape.cells) == d * d


def test_cross_and_frame_counts():
    d = 5
    assert len(expected_shape(cross_program(), d).cells) == 2 * d - 1
    assert len(expected_shape(frame_program(), d).cells) == 4 * (d - 1)


def test_star_contains_cross():
    d = 7
    star = expected_shape(star_program(), d)
    cross = expected_shape(cross_program(), d)
    assert cross.cells <= star.cells


def test_predicate_program_rejects_bad_pixels():
    program = cross_program()
    with pytest.raises(MachineError):
        program.decide(99, 3)


def test_pattern_palette_enforced():
    bad = PatternProgram(lambda x, y, d: 99, colors=(0, 1), name="bad")
    with pytest.raises(MachineError):
        bad.color(0, 3)


def test_ring_pattern_colors():
    program = ring_pattern_program(3)
    pattern = expected_pattern(program, 6)
    assert len(pattern) == 36
    assert set(pattern.values()) <= {0, 1, 2}
    # The border ring is color 0.
    assert pattern[Vec(0, 0)] == 0
    assert pattern[Vec(1, 1)] == 1
    assert pattern[Vec(2, 2)] == 2


def test_custom_predicate_program_space_default():
    program = PredicateShapeProgram(lambda x, y, d: True, name="x")
    assert program.space_bound(16) >= 4
