"""Tests for the hybrid active/passive mobility model (repro.hybrid, §8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.world import World
from repro.errors import SimulationError
from repro.geometry.vec import Vec
from repro.hybrid.movement import (
    HybridSimulation,
    MovementProtocol,
    MovementRule,
    make_walker_world,
    rotate_leaf,
    walker_protocol,
)


def dimer(state_a="a", state_b="b"):
    world = World(2)
    nids = world.add_component_from_cells(
        {Vec(0, 0): state_a, Vec(1, 0): state_b}
    )
    return world, nids[Vec(0, 0)], nids[Vec(1, 0)]


class TestRotateLeaf:
    def test_clockwise_quarter_swing(self):
        world, a, b = dimer()
        # a at (0,0) swings cw about b at (1,0): lands at (1,1).
        assert rotate_leaf(world, a, clockwise=True)
        assert world.nodes[a].pos == Vec(1, 1)
        world.check_invariants()

    def test_counterclockwise_quarter_swing(self):
        world, a, b = dimer()
        assert rotate_leaf(world, a, clockwise=False)
        assert world.nodes[a].pos == Vec(1, -1)
        world.check_invariants()

    def test_four_swings_return_home(self):
        world, a, _b = dimer()
        for _ in range(4):
            assert rotate_leaf(world, a, clockwise=True)
        assert world.nodes[a].pos == Vec(0, 0)
        world.check_invariants()

    def test_blocked_by_occupied_cell(self):
        world = World(2)
        nids = world.add_component_from_cells(
            {Vec(0, 0): "x", Vec(1, 0): "y", Vec(1, 1): "z"},
            bonds=[(Vec(0, 0), Vec(1, 0)), (Vec(1, 0), Vec(1, 1))],
        )
        a = nids[Vec(0, 0)]
        # cw target (1,1) is occupied: blocked, nothing changes.
        assert not rotate_leaf(world, a, clockwise=True)
        assert world.nodes[a].pos == Vec(0, 0)
        world.check_invariants()

    def test_non_leaf_rejected(self):
        world = World(2)
        nids = world.add_component_from_cells(
            {Vec(0, 0): "x", Vec(1, 0): "y", Vec(2, 0): "z"}
        )
        middle = nids[Vec(1, 0)]
        with pytest.raises(SimulationError):
            rotate_leaf(world, middle, clockwise=True)

    def test_free_node_rejected(self):
        world = World(2)
        nid = world.add_free_node("q0")
        with pytest.raises(SimulationError):
            rotate_leaf(world, nid, clockwise=True)

    def test_3d_world_rejected(self):
        world = World(3)
        nids = world.add_component_from_cells(
            {Vec(0, 0, 0): "x", Vec(1, 0, 0): "y"}
        )
        with pytest.raises(SimulationError):
            rotate_leaf(world, nids[Vec(0, 0, 0)], clockwise=True)

    def test_longer_tail_leaf_swings(self):
        # The leaf of a 3-line swings; the middle node stays put.
        world = World(2)
        nids = world.add_component_from_cells(
            {Vec(0, 0): "x", Vec(1, 0): "y", Vec(2, 0): "z"}
        )
        leaf = nids[Vec(2, 0)]
        assert rotate_leaf(world, leaf, clockwise=True)
        assert world.nodes[leaf].pos == Vec(1, -1)
        world.check_invariants()

    @given(st.lists(st.booleans(), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_random_swings_keep_invariants(self, turns):
        world, a, _b = dimer()
        for clockwise in turns:
            rotate_leaf(world, a, clockwise=clockwise)
            world.check_invariants()
        # The leaf is always at distance 1 from the pivot.
        assert (world.nodes[a].pos - world.nodes[_b].pos).manhattan() == 1


class TestMovementProtocol:
    def test_rejects_duplicate_pair_rules(self):
        rules = [
            MovementRule("a", "b", "a", "b", True),
            MovementRule("a", "b", "a", "b", False),
        ]
        with pytest.raises(SimulationError):
            MovementProtocol(rules)

    def test_movement_states_are_hot(self):
        protocol = walker_protocol()
        assert protocol.is_hot("M1")
        assert protocol.is_hot("P")
        assert not protocol.is_hot("inert")

    def test_rule_lookup(self):
        protocol = walker_protocol()
        assert protocol.movement_rule_for("M1", "P") is not None
        assert protocol.movement_rule_for("P", "M1") is None


class TestWalker:
    def test_walker_translates(self):
        world, mover, pivot = make_walker_world()
        sim = HybridSimulation(world, walker_protocol(), seed=0)
        start = min(world.nodes[mover].pos.x, world.nodes[pivot].pos.x)
        for _ in range(40):
            if not sim.step():
                break
        end = min(world.nodes[mover].pos.x, world.nodes[pivot].pos.x)
        # 40 interactions = 10 full cycles = +20 cells of travel.
        assert end - start == 20
        assert sim.moves == 40
        world.check_invariants()

    def test_walker_never_stabilizes(self):
        world, _m, _p = make_walker_world()
        sim = HybridSimulation(world, walker_protocol(), seed=1)
        sim.run(max_events=100)
        assert not sim.stabilized
        assert sim.events == 100

    def test_walker_stays_on_row_pair(self):
        # The cartwheel gait only ever uses rows y = 0 and y = 1.
        world, mover, pivot = make_walker_world()
        sim = HybridSimulation(world, walker_protocol(), seed=2)
        for _ in range(60):
            sim.step()
            ys = {world.nodes[mover].pos.y, world.nodes[pivot].pos.y}
            assert ys <= {0, 1}

    def test_passive_protocol_alone_cannot_move(self):
        # Ablation: without movement rules nothing is applicable and the
        # dimer's geometry is frozen (the passive model's rigidity).
        world, mover, pivot = make_walker_world()
        protocol = MovementProtocol([], name="inert")
        sim = HybridSimulation(world, protocol, seed=0)
        assert sim.run(max_events=50) == 0
        assert sim.stabilized
        assert world.nodes[mover].pos == Vec(0, 0)
        assert world.nodes[pivot].pos == Vec(1, 0)


class TestHybridWithPassiveBase:
    def test_union_of_candidate_sets(self):
        # A passive gluing rule and an active swing coexist: a free node can
        # bond to the walker's pivot while the walker keeps moving.
        from repro.core.protocol import Rule, RuleProtocol
        from repro.geometry.ports import PORTS_2D, opposite

        glue = RuleProtocol(
            [Rule("q0", p, "P", opposite(p), 0, "stuck", "P", 1) for p in PORTS_2D],
            initial_state="q0",
            name="glue-to-pivot",
        )
        protocol = MovementProtocol(
            walker_protocol().movement_rules, base=glue, initial_state="q0"
        )
        world, _mover, _pivot = make_walker_world()
        world.add_free_node("q0")
        sim = HybridSimulation(world, protocol, seed=3)
        sim.run(max_events=200)
        states = set(world.states().values())
        # The free node eventually glued on (and, being bonded to the
        # pivot, may have frozen the walker by raising its degree).
        assert "stuck" in states
        world.check_invariants()
