"""§4.2: Protocol 1 (Square) and Protocol 2 (Square2)."""

import math

import pytest

from repro.core.simulator import Simulation
from repro.core.world import World
from repro.protocols.square import square_protocol
from repro.protocols.square2 import square2_protocol


def _single_component_shape(world):
    assert len(world.components) == 1
    return world.component_shape(next(iter(world.components)))


@pytest.mark.parametrize("n", [4, 9, 16, 25])
def test_protocol1_builds_spanning_square(n):
    protocol = square_protocol()
    world = World.of_free_nodes(n, protocol, leaders=1)
    sim = Simulation(world, protocol, seed=n, check_invariants=True)
    sim.run_to_stabilization(max_events=100_000)
    shape = _single_component_shape(world)
    d = math.isqrt(n)
    xs = {c.x for c in shape.cells}
    ys = {c.y for c in shape.cells}
    assert len(shape.cells) == n and len(xs) == d and len(ys) == d


def test_protocol1_spiral_is_deterministic_in_shape():
    """The leader has exactly one growth move at a time, so the final shape
    is the same for every seed (only attachment identities differ)."""
    shapes = set()
    protocol = square_protocol()
    for seed in range(4):
        world = World.of_free_nodes(9, protocol, leaders=1)
        Simulation(world, protocol, seed=seed).run_to_stabilization()
        shapes.add(
            tuple(sorted(_single_component_shape(world).normalize().cells))
        )
    assert len(shapes) == 1


@pytest.mark.parametrize("phase", [1, 2, 3])
def test_protocol2_phases_match_figure_2(phase):
    """With n = 4 p^2 + 4 nodes Square2 stabilizes to the (2p)x(2p) square
    plus the 4 protruding next-phase marks."""
    n = 4 * phase * phase + 4
    side = 2 * phase
    protocol = square2_protocol()
    world = World.of_free_nodes(n, protocol, leaders=1)
    sim = Simulation(world, protocol, seed=n * 3 + 1, check_invariants=True)
    sim.run_to_stabilization(max_events=100_000)
    shape = _single_component_shape(world)
    cells = {(c.x, c.y) for c in shape.cells}
    assert len(cells) == n
    found_square = any(
        all((x0 + i, y0 + j) in cells for i in range(side) for j in range(side))
        for x0, _ in cells
        for _, y0 in cells
    )
    assert found_square
    # Exactly four mark cells protrude.
    assert len(cells) - side * side == 4


def test_protocol2_phase1_attachment_count():
    """Phase 1 of Figure 2: exactly 7 attachments build the 2x2 core plus
    its four turning marks."""
    protocol = square2_protocol()
    world = World.of_free_nodes(8, protocol, leaders=1)
    sim = Simulation(world, protocol, seed=12)
    res = sim.run_to_stabilization(max_events=10_000)
    # 7 attachments plus the rigidity bondings that become possible.
    assert res.events >= 7
    assert len(world.components) == 1


def test_protocol2_more_states_than_protocol1():
    # The price of the turning-mark speedup is a bigger protocol.
    assert square2_protocol().size > square_protocol().size
