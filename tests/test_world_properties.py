"""Hypothesis property tests for world dynamics under random protocols.

These complement the example-based tests in ``test_world.py`` by driving
random interaction sequences (random gluing, random breakage, random
hybrid swings) and asserting the §3 structural invariants after every
event: no overlapping cells, bonds only between facing ports at unit
distance, bond graphs connected per component.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import Rule, RuleProtocol
from repro.core.scheduler import (
    EnumeratingScheduler,
    HotScheduler,
    RejectionScheduler,
)
from repro.core.simulator import Simulation
from repro.core.world import World
from repro.faults.injection import break_random_bond
from repro.geometry.ports import PORTS_2D, opposite
from repro.geometry.random_shapes import random_connected_shape
from repro.geometry.shape import Shape


def gluing_protocol(dimension: int = 2) -> RuleProtocol:
    rules = [
        Rule("g", p, "g", opposite(p), 0, "g", "g", 1) for p in PORTS_2D
    ]
    return RuleProtocol(rules, initial_state="g", dimension=dimension,
                        name="gluing")


class TestRandomGluing:
    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_invariants_throughout_random_gluing(self, n, seed):
        protocol = gluing_protocol()
        world = World(2)
        for _ in range(n):
            world.add_free_node("g")
        sim = Simulation(world, protocol, seed=seed, check_invariants=True)
        sim.run(max_events=300)
        world.check_invariants()
        # Gluing preserves population and never unbonds: the bond count
        # per component is at least a spanning tree's.
        assert sum(c.size() for c in world.components.values()) == n
        for comp in world.components.values():
            if comp.size() > 1:
                assert len(comp.bonds) >= comp.size() - 1

    @given(
        st.integers(min_value=3, max_value=9),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_glue_then_shatter_roundtrip(self, n, seed):
        protocol = gluing_protocol()
        world = World(2)
        for _ in range(n):
            world.add_free_node("g")
        Simulation(world, protocol, seed=seed).run(max_events=300)
        rng = random.Random(seed + 1)
        while break_random_bond(world, rng) is not None:
            world.check_invariants()
        # Every node is free again and holds its state.
        assert len(world.components) == n
        assert all(world.is_free(nid) for nid in world.nodes)


class TestSchedulerAgreement:
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_hot_and_enumerating_agree_on_effective_support(self, n, seed):
        # The hot scheduler's candidate set must equal the effective subset
        # of the full enumeration, whatever the configuration.
        protocol = gluing_protocol()
        world = World(2)
        for _ in range(n):
            world.add_free_node("g")
        # Random mid-execution configuration.
        Simulation(world, protocol, seed=seed).run(max_events=seed % (n + 1))

        from repro.core.scheduler import evaluate

        full = set()
        for cand in world.enumerate_candidates():
            if evaluate(protocol, world, cand) is not None:
                full.add(
                    (cand.nid1, cand.port1, cand.nid2, cand.port2,
                     cand.rotation, cand.translation)
                )
        from repro.core.candidates import hot_effective_candidates

        hot = {
            (c.nid1, c.port1, c.nid2, c.port2, c.rotation, c.translation)
            for c, _u in hot_effective_candidates(world, protocol, evaluate)
        }

        def normalize(items):
            # An unordered interaction may be enumerated from either side
            # (with the placement expressed in either component's frame);
            # in 2D the alignment per node-port pair is unique, so the
            # unordered endpoint pair identifies the candidate.
            return {
                frozenset(((a, pa), (b, pb)))
                for a, pa, b, pb, _rot, _tr in items
            }

        assert normalize(hot) == normalize(full)

    def test_three_schedulers_same_law_on_first_event(self):
        # Chi-square-free sanity: over many seeds, each scheduler picks
        # every one of the k symmetric candidates with similar frequency.
        protocol = gluing_protocol()

        def first_pick(scheduler, seed):
            world = World(2)
            for _ in range(3):
                world.add_free_node("g")
            sim = Simulation(world, protocol, scheduler=scheduler, seed=seed)
            event = sim.step()
            assert event is not None
            return event.candidate.nid1, event.candidate.nid2

        trials = 200
        counts = {}
        for kind in ("hot", "enumerate", "rejection"):
            picks = {}
            for s in range(trials):
                scheduler = {
                    "hot": HotScheduler(),
                    "enumerate": EnumeratingScheduler(),
                    "rejection": RejectionScheduler(),
                }[kind]
                pair = tuple(sorted(first_pick(scheduler, s)))
                picks[pair] = picks.get(pair, 0) + 1
            counts[kind] = picks
        for kind, picks in counts.items():
            assert len(picks) == 3, kind  # all three node pairs occur
            assert min(picks.values()) > trials / 9, kind


class TestShapeProperties:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=-5, max_value=5),
        st.integers(min_value=-5, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_congruence_invariant_under_motion(self, size, seed, rot_idx, dx, dy):
        from repro.geometry.rotation import ROTATIONS_2D
        from repro.geometry.vec import Vec

        shape = random_connected_shape(size, seed=seed)
        moved = shape.rotate(ROTATIONS_2D[rot_idx]).translate(Vec(dx, dy))
        assert shape.congruent(moved)
        assert shape.canonical() == moved.canonical()

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_canonical_idempotent(self, size, seed):
        shape = random_connected_shape(size, seed=seed)
        canon = shape.canonical()
        assert canon.canonical() == canon

    @given(st.integers(min_value=2, max_value=14), st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_component_shape_roundtrip(self, size, seed):
        # Loading a random shape into a world and reading it back is the
        # identity up to normalization.
        shape = random_connected_shape(size, seed=seed)
        world = World(2)
        world.add_component_from_cells({c: "s" for c in shape.cells})
        cid = next(iter(world.components))
        back = world.component_shape(cid)
        assert back.normalize().cells == shape.normalize().cells


class TestOutputShapes:
    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_output_restricted_to_output_states(self, size, seed):
        # Label a random connected sub-segment as output; output_shapes
        # must return exactly its connected pieces.
        shape = random_connected_shape(size, seed=seed)
        rng = random.Random(seed)
        cells = sorted(shape.cells)
        marked = {c for c in cells if rng.random() < 0.6}
        world = World(2)
        world.add_component_from_cells(
            {c: ("out" if c in marked else "other") for c in cells}
        )
        protocol = RuleProtocol(
            [], initial_state="other", output_states={"out"}, name="mark"
        )
        shapes = world.output_shapes(protocol)
        assert sum(len(s) for s in shapes) == len(marked)
        for s in shapes:
            assert isinstance(s, Shape)  # connectivity validated on build
