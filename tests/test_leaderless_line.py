"""Tests for the leaderless spanning-line constructor (§4.1 / Remark 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import InteractionView
from repro.core.simulator import Simulation
from repro.core.world import World
from repro.geometry.ports import Port, opposite
from repro.geometry.vec import Vec
from repro.protocols.leaderless_line import (
    is_spanning_line_configuration,
    leaderless_spanning_line_protocol,
)


def run_leaderless(n: int, seed: int, max_events: int = 100_000):
    protocol = leaderless_spanning_line_protocol()
    world = World.of_free_nodes(n, protocol)  # NO leader: all start L0
    sim = Simulation(world, protocol, seed=seed)
    result = sim.run_to_stabilization(max_events=max_events)
    return world, result


class TestHandler:
    def setup_method(self):
        self.protocol = leaderless_spanning_line_protocol()

    def test_singleton_leaders_bond(self):
        view = InteractionView("L0", Port.RIGHT, "L0", Port.LEFT, 0)
        update = self.protocol.handle(view)
        assert update == ("q1", ("L", Port.RIGHT), 1)

    def test_line_leader_absorbs_free_node(self):
        view = InteractionView(("L", Port.UP), Port.UP, "q0", Port.DOWN, 0)
        update = self.protocol.handle(view)
        assert update == ("q1", ("L", Port.UP), 1)

    def test_line_leader_wrong_port_is_ineffective(self):
        view = InteractionView(("L", Port.UP), Port.LEFT, "q0", Port.DOWN, 0)
        assert self.protocol.handle(view) is None

    def test_election_between_line_leaders(self):
        view = InteractionView(
            ("L", Port.UP), Port.LEFT, ("L", Port.RIGHT), Port.DOWN, 0
        )
        update = self.protocol.handle(view)
        assert update == (("L", Port.UP), ("Dl", Port.LEFT), 0)

    def test_dismantler_releases_itself(self):
        view = InteractionView(
            ("Dl", Port.LEFT), Port.LEFT, "q1", Port.RIGHT, 1
        )
        update = self.protocol.handle(view)
        assert update == ("q0", ("Dl", Port.LEFT), 0)

    def test_spent_dismantler_absorbable_only_via_line_port(self):
        leader = ("L", Port.RIGHT)
        ok = InteractionView(leader, Port.RIGHT, ("Dl", Port.UP), Port.UP, 0)
        assert self.protocol.handle(ok) is not None
        bad = InteractionView(leader, Port.RIGHT, ("Dl", Port.UP), Port.DOWN, 0)
        assert self.protocol.handle(bad) is None

    def test_swapped_presentation_mirrors(self):
        view = InteractionView("q0", Port.DOWN, ("L", Port.UP), Port.UP, 0)
        update = self.protocol.handle(view)
        assert update == (("L", Port.UP), "q1", 1)

    def test_body_pairs_ineffective(self):
        assert self.protocol.handle(
            InteractionView("q1", Port.RIGHT, "q1", Port.LEFT, 0)
        ) is None
        assert self.protocol.handle(
            InteractionView("q0", Port.RIGHT, "q0", Port.LEFT, 0)
        ) is None

    def test_hot_cover(self):
        protocol = self.protocol
        assert protocol.is_hot("L0")
        assert protocol.is_hot(("L", Port.UP))
        assert protocol.is_hot(("Dl", Port.LEFT))
        assert not protocol.is_hot("q0")
        assert not protocol.is_hot("q1")


class TestEndToEnd:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_stabilizes_to_spanning_line(self, n):
        world, _result = run_leaderless(n, seed=0)
        assert is_spanning_line_configuration(world)
        world.check_invariants()

    @pytest.mark.parametrize("seed", range(6))
    def test_many_seeds_n10(self, seed):
        world, _result = run_leaderless(10, seed=seed)
        assert is_spanning_line_configuration(world)

    def test_single_node_population(self):
        protocol = leaderless_spanning_line_protocol()
        world = World.of_free_nodes(1, protocol)
        # One L0 node: nothing to interact with; trivially a line.
        assert is_spanning_line_configuration(world)

    def test_elections_actually_happen(self):
        # With many nodes, at least one dismantling release must occur for
        # some seed (two lines grow concurrently, then one dissolves).
        saw_dismantle = False
        for seed in range(10):
            protocol = leaderless_spanning_line_protocol()
            world = World.of_free_nodes(12, protocol)
            sim = Simulation(world, protocol, seed=seed)
            events = []

            def trace(_i, _cand, update, _world):
                events.append(update)

            sim.trace = trace
            sim.run_to_stabilization(max_events=200_000)
            if any(u[0] == "q0" or u[1] == "q0" for u in events):
                saw_dismantle = True
                break
        assert saw_dismantle

    @given(st.integers(min_value=2, max_value=9), st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_random_sizes_and_seeds(self, n, seed):
        world, _result = run_leaderless(n, seed=seed)
        assert is_spanning_line_configuration(world)


class TestConfigurationPredicate:
    def test_rejects_multiple_components(self):
        protocol = leaderless_spanning_line_protocol()
        world = World.of_free_nodes(3, protocol)
        assert not is_spanning_line_configuration(world)

    def test_rejects_bent_shape(self):
        world = World(2)
        world.add_component_from_cells(
            {Vec(0, 0): "q1", Vec(1, 0): "q1", Vec(1, 1): ("L", Port.UP)}
        )
        assert not is_spanning_line_configuration(world)

    def test_rejects_two_leaders(self):
        world = World(2)
        world.add_component_from_cells(
            {Vec(0, 0): ("L", Port.LEFT), Vec(1, 0): ("L", Port.RIGHT)}
        )
        assert not is_spanning_line_configuration(world)

    def test_accepts_proper_line(self):
        world = World(2)
        world.add_component_from_cells(
            {
                Vec(0, 0): ("L", Port.LEFT),
                Vec(1, 0): "q1",
                Vec(2, 0): "q1",
            }
        )
        assert is_spanning_line_configuration(world)
