"""Tests for the exact Markov-chain analysis (repro.analysis.markov)."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.markov import (
    AbsorbingChain,
    counting_exact_failure,
    counting_estimate_quantile,
    counting_expected_effective,
    counting_expected_estimate,
    counting_outcome_distribution,
    ehrenfest_absorption_chain,
    ehrenfest_mean_recurrence_exact,
    ehrenfest_spectral_gap,
    ehrenfest_stationary,
    ehrenfest_transition_matrix,
    failure_table_exact,
    ruin_chain,
    ruin_win_probability_exact,
)
from repro.analysis.walks import (
    CountingWalk,
    counting_failure_bound,
    ehrenfest_mean_recurrence,
    ehrenfest_return_probability,
    gambler_ruin_win_probability,
)
from repro.errors import ReproError
from repro.population.counting import CountingUpperBound


# ----------------------------------------------------------------------
# counting_outcome_distribution
# ----------------------------------------------------------------------


class TestCountingOutcomeDistribution:
    def test_mass_sums_to_one(self):
        dist = counting_outcome_distribution(50, 4)
        assert math.isclose(sum(dist.values()), 1.0, abs_tol=1e-9)

    def test_supports_are_valid_counts(self):
        n = 40
        dist = counting_outcome_distribution(n, 3)
        # r0 counts distinct q0 conversions plus the head start; it can
        # never exceed n - 1 and never undershoot the head start.
        assert all(3 <= r0 <= n - 1 for r0 in dist)

    def test_tiny_population_exact(self):
        # n = 2: one non-leader, head start min(b, 1) = 1 converts it, so
        # i = 0, j = 1. The only move is backward: halt with r0 = 1.
        dist = counting_outcome_distribution(2, 4)
        assert dist == {1: pytest.approx(1.0)}

    def test_n3_hand_computed(self):
        # n = 3, b = 1: start i = 1, j = 1 (one q0, one q1), r0 = 1.
        # Step: forward w.p. 1/2 -> (0, 2) -> drains to r0 = 2;
        #        backward w.p. 1/2 -> halt at r0 = 1.
        dist = counting_outcome_distribution(3, 1)
        assert dist[1] == pytest.approx(0.5)
        assert dist[2] == pytest.approx(0.5)

    def test_head_start_clamped_to_population(self):
        # b > n - 1 must behave as b = n - 1 (everything converted upfront).
        a = counting_outcome_distribution(5, 99)
        b = counting_outcome_distribution(5, 4)
        assert a.keys() == b.keys()
        for key in a:
            assert a[key] == pytest.approx(b[key])

    def test_rejects_bad_arguments(self):
        with pytest.raises(ReproError):
            counting_outcome_distribution(1, 3)
        with pytest.raises(ReproError):
            counting_outcome_distribution(10, 0)

    def test_failure_matches_monte_carlo_walk(self):
        # CountingWalk stops early once 2 r0 >= n, so only the *failure
        # event* is comparable between the walk and the full distribution.
        n, b = 60, 3
        exact = counting_exact_failure(n, b)
        est, _ = CountingWalk(n, b).failure_probability(30000, seed=7)
        assert abs(est - exact) < 0.005

    def test_matches_protocol_simulator(self):
        n, b = 48, 4
        exact_mean = counting_expected_estimate(n, b)
        rng = random.Random(11)
        trials = 3000
        total = 0
        for _ in range(trials):
            total += CountingUpperBound(n, b, rng=rng).run().r0
        assert abs(total / trials - exact_mean) / exact_mean < 0.02


class TestCountingExactFailure:
    def test_failure_respects_paper_bound_asymptotically(self):
        # The paper's 1/n^(b-2) is an asymptotic bound (the proof drops
        # constants in the ~1/n^(b-1) ruin step and the union bound). The
        # exact failure can exceed it at small n (a finding recorded in
        # EXPERIMENTS.md) but the normalized ratio must shrink with n —
        # i.e. the exact decay rate is at least the bound's.
        for b in (3, 4):
            ratios = [
                counting_exact_failure(n, b) / counting_failure_bound(n, b)
                for n in (32, 64, 128, 256)
            ]
            assert all(x >= y - 1e-15 for x, y in zip(ratios, ratios[1:]))
            assert ratios[-1] < 1.0

    def test_failure_decreases_with_head_start(self):
        n = 64
        failures = [counting_exact_failure(n, b) for b in (1, 2, 3, 4, 5)]
        assert all(x >= y - 1e-15 for x, y in zip(failures, failures[1:]))

    def test_failure_decreases_with_population(self):
        b = 3
        failures = [counting_exact_failure(n, b) for n in (8, 16, 32, 64, 128)]
        assert all(x >= y - 1e-15 for x, y in zip(failures, failures[1:]))

    def test_failure_matches_walk_monte_carlo(self):
        n, b = 24, 2
        exact = counting_exact_failure(n, b)
        est, _ = CountingWalk(n, b).failure_probability(20000, seed=5)
        assert abs(est - exact) < 0.01

    def test_expected_effective_consistent_with_mean_r0(self):
        n, b = 30, 3
        assert counting_expected_effective(n, b) == pytest.approx(
            2 * counting_expected_estimate(n, b) - b
        )

    def test_quantile_monotone_in_level(self):
        n, b = 50, 4
        q10 = counting_estimate_quantile(n, b, 0.1)
        q50 = counting_estimate_quantile(n, b, 0.5)
        q90 = counting_estimate_quantile(n, b, 0.9)
        assert q10 <= q50 <= q90

    def test_quantile_rejects_bad_level(self):
        with pytest.raises(ReproError):
            counting_estimate_quantile(10, 3, 0.0)
        with pytest.raises(ReproError):
            counting_estimate_quantile(10, 3, 1.5)

    def test_failure_table_exact_rows(self):
        rows = failure_table_exact([16, 32], [3, 4])
        assert len(rows) == 4
        for n, b, exact, bound in rows:
            assert 0.0 <= exact <= 1.0
            assert exact <= bound + 1e-12

    def test_remark2_exact_estimate_quality(self):
        # Remark 2: the estimate is expected close to (9/10) n. Exactly:
        # E[r0]/n grows towards 1 and exceeds 0.8 already at n = 100, b = 4.
        ratio = counting_expected_estimate(100, 4) / 100
        assert ratio > 0.8


# ----------------------------------------------------------------------
# AbsorbingChain
# ----------------------------------------------------------------------


class TestAbsorbingChain:
    def test_rejects_nonstochastic_rows(self):
        with pytest.raises(ReproError):
            AbsorbingChain(np.array([[0.5]]), np.array([[0.4]]))

    def test_rejects_negative_entries(self):
        with pytest.raises(ReproError):
            AbsorbingChain(np.array([[-0.1]]), np.array([[1.1]]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ReproError):
            AbsorbingChain(np.eye(2) * 0.5, np.array([[0.5]]))

    def test_single_state_absorption(self):
        chain = AbsorbingChain(np.array([[0.0]]), np.array([[0.3, 0.7]]))
        B = chain.absorption_probabilities()
        assert B[0, 0] == pytest.approx(0.3)
        assert B[0, 1] == pytest.approx(0.7)
        assert chain.expected_steps()[0] == pytest.approx(1.0)

    def test_geometric_expected_steps(self):
        # Stay with prob 0.75, absorb with 0.25: E[steps] = 4.
        chain = AbsorbingChain(np.array([[0.75]]), np.array([[0.25]]))
        assert chain.expected_steps()[0] == pytest.approx(4.0)

    def test_expected_visits_row_of_fundamental_matrix(self):
        chain = ruin_chain(4, 0.5)
        N_row = chain.expected_visits(0)
        # For symmetric ruin on 0..4 starting at 1, expected visits to
        # (1, 2, 3) are (3/2, 1, 1/2).
        assert N_row == pytest.approx([1.5, 1.0, 0.5])

    def test_expected_visits_bad_start(self):
        chain = ruin_chain(3, 0.5)
        with pytest.raises(ReproError):
            chain.expected_visits(7)

    @given(
        st.integers(min_value=2, max_value=7),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=40, deadline=None)
    def test_absorption_rows_sum_to_one(self, b, p):
        chain = ruin_chain(b, p)
        B = chain.absorption_probabilities()
        assert np.allclose(B.sum(axis=1), 1.0)
        assert (B >= -1e-12).all()

    @given(
        st.integers(min_value=2, max_value=7),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=40, deadline=None)
    def test_expected_steps_positive_finite(self, b, p):
        t = ruin_chain(b, p).expected_steps()
        assert (t > 0).all()
        assert np.isfinite(t).all()


class TestRuinChain:
    def test_matches_closed_form(self):
        # Theorem 1's final step: win probability from position 1 with
        # ratio x = q'/p' matches (x - 1)/(x^b - 1).
        for b in (2, 3, 5, 8):
            for p in (0.2, 0.4, 0.6):
                x = (1 - p) / p
                exact = ruin_win_probability_exact(b, p, start=1)
                formula = gambler_ruin_win_probability(x, b)
                assert exact == pytest.approx(formula, rel=1e-9)

    def test_symmetric_walk_linear_in_start(self):
        b = 6
        for start in range(1, b):
            assert ruin_win_probability_exact(b, 0.5, start) == pytest.approx(
                start / b
            )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ReproError):
            ruin_chain(1, 0.5)
        with pytest.raises(ReproError):
            ruin_chain(4, 0.0)
        with pytest.raises(ReproError):
            ruin_win_probability_exact(4, 0.5, start=0)

    def test_paper_scale_bound(self):
        # With p = (n' - b)/n' (the proof's lower bound on the forward
        # probability), losing from b-1 is ~ n^-(b-1).
        n = 200
        b = 4
        n_prime = n // 2 - 1
        p_back = b / n_prime  # chance of moving towards failure
        # In the reduced game of the proof, "winning" = reaching absorbing
        # failure; the win probability from 1 with x = p/q must be tiny.
        x = (n_prime - b) / b
        formula = gambler_ruin_win_probability(x, b)
        exact = ruin_win_probability_exact(b, p_back, start=1)
        assert exact == pytest.approx(formula, rel=1e-6)
        # The proof approximates this as ~ 1/x^(b-1); verify within 2x.
        assert exact < 2.0 / x ** (b - 1)


# ----------------------------------------------------------------------
# Ehrenfest chain
# ----------------------------------------------------------------------


class TestEhrenfest:
    def test_transition_matrix_stochastic(self):
        P = ehrenfest_transition_matrix(9)
        assert np.allclose(P.sum(axis=1), 1.0)
        assert (P >= 0).all()

    def test_stationary_is_binomial_and_invariant(self):
        balls = 12
        pi = ehrenfest_stationary(balls)
        P = ehrenfest_transition_matrix(balls)
        assert pi.sum() == pytest.approx(1.0)
        assert np.allclose(pi @ P, pi, atol=1e-12)

    def test_mean_recurrence_matches_kac_formula(self):
        balls = 10
        R = balls // 2
        for state in range(balls + 1):
            k = state - R
            via_pi = ehrenfest_mean_recurrence_exact(balls, state)
            via_kac = ehrenfest_mean_recurrence(R, k)
            assert via_pi == pytest.approx(via_kac, rel=1e-9)

    def test_empty_urn_recurrence_is_2_pow_balls(self):
        balls = 16
        assert ehrenfest_mean_recurrence_exact(balls, 0) == pytest.approx(
            2.0**balls, rel=1e-9
        )

    def test_spectral_gap_closed_form(self):
        for balls in (4, 9, 16, 25):
            assert ehrenfest_spectral_gap(balls) == pytest.approx(
                2.0 / balls, abs=1e-9
            )

    def test_absorption_chain_matches_dp_return_probability(self):
        # P[hit 0 before b] from start, versus the DP over a long horizon.
        balls, b, start = 30, 5, 3
        chain = ehrenfest_absorption_chain(balls, 0, b)
        B = chain.absorption_probabilities()
        p_hit_zero = B[start - 1, 0]
        # The unrestricted DP with a huge horizon converges to the
        # barrier-free probability of emptying; restricted to [0, b] the
        # chain must empty no more often.
        dp = ehrenfest_return_probability(balls, start, horizon=20000)
        assert p_hit_zero <= dp + 1e-9

    def test_absorption_chain_rejects_bad_barriers(self):
        with pytest.raises(ReproError):
            ehrenfest_absorption_chain(10, 5, 5)
        with pytest.raises(ReproError):
            ehrenfest_absorption_chain(10, 4, 5)  # no transient states

    def test_mean_recurrence_rejects_bad_state(self):
        with pytest.raises(ReproError):
            ehrenfest_mean_recurrence_exact(10, 11)

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_stationary_symmetric(self, balls):
        pi = ehrenfest_stationary(balls)
        assert np.allclose(pi, pi[::-1])

    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=30, deadline=None)
    def test_detailed_balance(self, balls):
        P = ehrenfest_transition_matrix(balls)
        pi = ehrenfest_stationary(balls)
        for m in range(balls):
            assert pi[m] * P[m, m + 1] == pytest.approx(
                pi[m + 1] * P[m + 1, m], rel=1e-9
            )
