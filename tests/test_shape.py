"""Shape construction, validation, transforms and congruence."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidShapeError
from repro.geometry.random_shapes import random_connected_shape
from repro.geometry.rotation import ROTATIONS_2D
from repro.geometry.shape import Shape, grid_edge
from repro.geometry.vec import Vec

shapes = st.integers(min_value=1, max_value=25).flatmap(
    lambda size: st.integers(min_value=0, max_value=2**31).map(
        lambda seed: random_connected_shape(size, seed=seed)
    )
)


def test_single_and_membership():
    s = Shape.single(Vec(3, 4))
    assert len(s) == 1 and Vec(3, 4) in s


def test_from_cells_default_edges():
    s = Shape.from_cells([Vec(0, 0), Vec(1, 0), Vec(1, 1)])
    assert len(s.edges) == 2
    assert s.edge_active(Vec(0, 0), Vec(1, 0))
    assert not s.edge_active(Vec(0, 0), Vec(1, 1))


def test_disconnected_cells_rejected():
    with pytest.raises(InvalidShapeError):
        Shape.from_cells([Vec(0, 0), Vec(2, 0)])


def test_disconnected_edges_rejected():
    # Cells adjacent but the provided edge set does not connect them.
    with pytest.raises(InvalidShapeError):
        Shape.from_cells([Vec(0, 0), Vec(1, 0)], edges=[])


def test_bad_edges_rejected():
    with pytest.raises(InvalidShapeError):
        grid_edge(Vec(0, 0), Vec(2, 0))
    with pytest.raises(InvalidShapeError):
        Shape.from_cells(
            [Vec(0, 0), Vec(1, 0)],
            edges=[frozenset((Vec(0, 0), Vec(5, 5)))],
        )


def test_empty_rejected():
    with pytest.raises(InvalidShapeError):
        Shape.from_cells([])


def test_labels_validated():
    with pytest.raises(InvalidShapeError):
        Shape.from_cells([Vec(0, 0)], labels={Vec(9, 9): 1})
    s = Shape.from_cells([Vec(0, 0)], labels={Vec(0, 0): 1})
    assert s.label_map == {Vec(0, 0): 1}


def test_degree_and_neighbors():
    s = Shape.from_cells([Vec(0, 0), Vec(1, 0), Vec(0, 1)])
    assert s.degree(Vec(0, 0)) == 2
    assert set(s.neighbors(Vec(0, 0))) == {Vec(1, 0), Vec(0, 1)}


def test_is_line():
    assert Shape.from_cells([Vec(0, 0), Vec(1, 0), Vec(2, 0)]).is_line()
    assert Shape.from_cells([Vec(0, 0), Vec(0, 1)]).is_line()
    assert not Shape.from_cells([Vec(0, 0), Vec(1, 0), Vec(1, 1)]).is_line()


def test_is_full_rectangle():
    full = Shape.from_cells([Vec(x, y) for x in range(3) for y in range(2)])
    assert full.is_full_rectangle()
    notched = Shape.from_cells(
        [Vec(x, y) for x in range(3) for y in range(2) if (x, y) != (2, 1)]
    )
    assert not notched.is_full_rectangle()


def test_on_subshape():
    cells = [Vec(x, 0) for x in range(4)]
    s = Shape.from_cells(cells, labels={c: (1 if c.x < 2 else 0) for c in cells})
    on = s.on_subshape(1)
    assert on.cells == frozenset({Vec(0, 0), Vec(1, 0)})


def test_on_subshape_disconnected_raises():
    cells = [Vec(x, 0) for x in range(3)]
    s = Shape.from_cells(cells, labels={cells[0]: 1, cells[1]: 0, cells[2]: 1})
    with pytest.raises(InvalidShapeError):
        s.on_subshape(1)


@settings(max_examples=30, deadline=None)
@given(shapes)
def test_normalize_touches_origin(shape):
    n = shape.normalize()
    assert min(c.x for c in n.cells) == 0
    assert min(c.y for c in n.cells) == 0


@settings(max_examples=30, deadline=None)
@given(shapes, st.sampled_from(ROTATIONS_2D))
def test_congruence_under_rotation_and_translation(shape, rotation):
    moved = shape.rotate(rotation).translate(Vec(7, -3))
    assert shape.congruent(moved)
    assert moved.canonical() == shape.canonical()


@settings(max_examples=30, deadline=None)
@given(shapes)
def test_translation_preserves_structure(shape):
    t = shape.translate(Vec(5, 9))
    assert len(t.cells) == len(shape.cells)
    assert len(t.edges) == len(shape.edges)
    assert t.same_up_to_translation(shape)


@settings(max_examples=20, deadline=None)
@given(shapes)
def test_random_shapes_are_connected_by_construction(shape):
    # Shape.from_cells would have raised otherwise; double-check degrees.
    assert all(shape.degree(c) >= 1 or len(shape) == 1 for c in shape.cells)
