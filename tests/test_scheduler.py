"""Scheduler correctness: support agreement, law cross-checks, stabilization."""

import random
from collections import Counter

import pytest

from repro.core.protocol import Rule, RuleProtocol
from repro.core.scheduler import (
    EnumeratingScheduler,
    HotScheduler,
    RejectionScheduler,
    RoundRobinScheduler,
    make_scheduler,
)
from repro.core.simulator import Simulation
from repro.core.world import World
from repro.errors import SchedulerError
from repro.geometry.ports import Port
from repro.protocols.line import spanning_line_protocol

R, L = Port.RIGHT, Port.LEFT


def _absorb_protocol():
    """L absorbs q0s through r-l meetings (a tiny growth protocol)."""
    return RuleProtocol(
        [Rule("L", R, "q0", L, 0, "q1", "L", 1)],
        leader_state="L",
        hot_states=["L"],
    )


def test_factory():
    assert isinstance(make_scheduler("enumerate"), EnumeratingScheduler)
    assert isinstance(make_scheduler("rejection"), RejectionScheduler)
    assert isinstance(make_scheduler("hot"), HotScheduler)
    assert isinstance(make_scheduler("round-robin"), RoundRobinScheduler)
    with pytest.raises(SchedulerError):
        make_scheduler("nope")


def test_all_schedulers_build_the_same_line():
    protocol = _absorb_protocol()
    for kind in ("enumerate", "rejection", "hot", "round-robin"):
        world = World.of_free_nodes(5, protocol, leaders=1)
        sim = Simulation(
            world, protocol, scheduler=make_scheduler(kind), seed=3,
            check_invariants=True,
        )
        res = sim.run_to_stabilization(max_events=1000)
        assert res.events == 4
        assert len(world.components) == 1
        assert world.component_shape(next(iter(world.components))).is_line()


def test_raw_step_tracking():
    protocol = _absorb_protocol()
    world = World.of_free_nodes(4, protocol, leaders=1)
    sim = Simulation(
        world, protocol, scheduler=EnumeratingScheduler(), seed=5
    )
    res = sim.run_to_stabilization(max_events=100)
    assert res.raw_steps is not None and res.raw_steps >= res.events


def test_hot_scheduler_reports_no_raw_steps():
    protocol = _absorb_protocol()
    world = World.of_free_nodes(4, protocol, leaders=1)
    sim = Simulation(world, protocol, seed=5)
    res = sim.run_to_stabilization(max_events=100)
    assert res.raw_steps is None


def test_stabilization_detected_by_all_schedulers():
    protocol = _absorb_protocol()
    for kind in ("enumerate", "rejection", "hot"):
        world = World.of_free_nodes(3, protocol, leaders=0)  # no leader
        sim = Simulation(world, protocol, scheduler=make_scheduler(kind), seed=1)
        res = sim.run(max_events=10)
        assert res.stabilized and res.events == 0


def test_single_node_world_is_stabilized_not_an_error():
    """Contract: an empty permissible set means stabilization (``None``),
    never an exception — a lone free node simply has nobody to meet."""
    protocol = _absorb_protocol()
    for kind in ("enumerate", "rejection", "hot", "round-robin"):
        world = World.of_free_nodes(1, protocol, leaders=1)
        sched = make_scheduler(kind)
        assert sched.next_event(world, protocol, random.Random(0)) is None
        res = Simulation(world, protocol, scheduler=make_scheduler(kind)).run(
            max_events=5
        )
        assert res.stabilized and res.events == 0


def test_factory_rejects_unknown_kwargs():
    with pytest.raises(TypeError):
        make_scheduler("enumerate", max_trials=3)


def test_first_event_law_agreement():
    """Enumerate and rejection draw the first effective interaction with
    the same distribution (chi-square style tolerance)."""
    protocol = _absorb_protocol()
    trials = 400

    def first_partner(scheduler_kind: str, seed: int):
        world = World.of_free_nodes(4, protocol, leaders=1)
        sched = make_scheduler(scheduler_kind)
        event = sched.next_event(world, protocol, random.Random(seed))
        assert event is not None
        cand = event.candidate
        return cand.nid2 if world.state_of(cand.nid1) == "L" else cand.nid1

    for kind in ("enumerate", "rejection", "hot"):
        counts = Counter(first_partner(kind, s) for s in range(trials))
        # Three q0 partners, each ~1/3.
        assert len(counts) == 3
        for v in counts.values():
            assert trials / 3 * 0.6 < v < trials / 3 * 1.4


def test_round_robin_is_deterministic():
    protocol = spanning_line_protocol()

    def run_once():
        world = World.of_free_nodes(6, protocol, leaders=1)
        sim = Simulation(
            world, protocol, scheduler=RoundRobinScheduler(), seed=0
        )
        sim.run_to_stabilization(max_events=1000)
        cid = next(iter(world.components))
        return tuple(sorted(world.component_shape(cid).cells))

    assert run_once() == run_once()


def test_rejection_matches_enumerate_trajectory_counts():
    protocol = spanning_line_protocol()
    events = {}
    for kind in ("enumerate", "rejection"):
        world = World.of_free_nodes(5, protocol, leaders=1)
        sim = Simulation(world, protocol, scheduler=make_scheduler(kind), seed=11)
        res = sim.run_to_stabilization(max_events=1000)
        events[kind] = res.events
    assert events["enumerate"] == events["rejection"] == 4
