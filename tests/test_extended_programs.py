"""Tests for the extended shape and pattern programs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidShapeError, MachineError
from repro.geometry.grid import zigzag_index_to_cell
from repro.machines.arithmetic import divisible_by_tm
from repro.machines.shape_programs import (
    checkerboard_pattern_program,
    diamond_program,
    expected_pattern,
    expected_shape,
    gradient_pattern_program,
    serpentine_program,
    sierpinski_pattern_program,
    stripes_program,
)
from repro.machines.tm import binary_digits


class TestSerpentineProgram:
    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_connected_for_every_d(self, d):
        shape = expected_shape(serpentine_program(), d)  # raises if not
        assert len(shape) >= d

    def test_even_rows_full(self):
        d = 7
        shape = expected_shape(serpentine_program(), d)
        for y in range(0, d, 2):
            row = [c for c in shape.cells if c.y == y]
            assert len(row) == d

    def test_odd_rows_single_connector(self):
        d = 8
        shape = expected_shape(serpentine_program(), d)
        for y in range(1, d, 2):
            row = [c for c in shape.cells if c.y == y]
            assert len(row) == 1
            assert row[0].x == (d - 1 if y % 4 == 1 else 0)

    def test_size_formula(self):
        # ceil(d/2) full rows of d cells + floor(d/2) connectors.
        for d in (3, 4, 9, 10):
            shape = expected_shape(serpentine_program(), d)
            assert len(shape) == ((d + 1) // 2) * d + d // 2


class TestDiamondProgram:
    @given(st.integers(min_value=1, max_value=21))
    @settings(max_examples=20, deadline=None)
    def test_connected_for_every_d(self, d):
        expected_shape(diamond_program(), d)

    def test_odd_d_size_formula(self):
        for d in (3, 5, 9, 13):
            c = (d - 1) // 2
            shape = expected_shape(diamond_program(), d)
            assert len(shape) == 2 * c * c + 2 * c + 1

    def test_center_always_on(self):
        for d in (3, 5, 7):
            prog = diamond_program()
            c = (d - 1) // 2
            assert any(
                zigzag_index_to_cell(i, d).as_tuple() == (c, c, 0)
                for i in range(d * d)
                if prog.decide(i, d)
            )

    def test_corners_off_for_large_d(self):
        shape = expected_shape(diamond_program(), 9)
        corner_cells = {(0, 0), (8, 0), (0, 8), (8, 8)}
        assert all(
            (c.x, c.y) not in corner_cells for c in shape.cells
        )


class TestStripesProgram:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=15),
    )
    @settings(max_examples=30, deadline=None)
    def test_connected_for_every_period(self, k, d):
        expected_shape(stripes_program(k), d)

    def test_rejects_bad_period(self):
        with pytest.raises(MachineError):
            stripes_program(0)

    def test_columns_match_divisibility_machine(self):
        # The predicate's x % k == 0 test is exactly the genuine TM's
        # language; cross-validate them.
        k, d = 3, 9
        machine = divisible_by_tm(k)
        prog = stripes_program(k)
        for i in range(d * d):
            cell = zigzag_index_to_cell(i, d)
            if cell.y == 0:
                continue
            assert prog.decide(i, d) is machine.accepts(
                binary_digits(cell.x)
            )

    def test_period_one_is_full_square(self):
        shape = expected_shape(stripes_program(1), 5)
        assert len(shape) == 25


class TestPatterns:
    def test_checkerboard_alternates(self):
        pattern = expected_pattern(checkerboard_pattern_program(), 6)
        for cell, color in pattern.items():
            assert color == (cell.x + cell.y) % 2

    def test_checkerboard_on_cells_disconnected(self):
        # The canonical Remark 4 motivation: as a *shape* this would be
        # invalid (disconnected); as a pattern it is fine.
        pattern = expected_pattern(checkerboard_pattern_program(), 4)
        on_cells = [c for c, v in pattern.items() if v == 1]
        from repro.geometry.shape import Shape

        with pytest.raises(InvalidShapeError):
            Shape.from_cells(on_cells)

    def test_sierpinski_row_counts_are_powers_of_two(self):
        # Row y of the Sierpinski pattern has 2^popcount(~y restricted)
        # on-cells within x < 2^k; for d a power of two the count of on
        # cells in row y is 2^(k - popcount(y)) ... simpler invariant:
        # cell (x, y) on iff x & y == 0, so row y has exactly
        # 2^(number of zero bits of y below log2 d) on-cells.
        d = 8
        pattern = expected_pattern(sierpinski_pattern_program(), d)
        for y in range(d):
            on = sum(1 for c, v in pattern.items() if c.y == y and v == 1)
            zero_bits = sum(1 for b in range(3) if not (y >> b) & 1)
            assert on == 2**zero_bits

    def test_gradient_bands_monotone(self):
        pattern = expected_pattern(gradient_pattern_program(4), 8)
        for cell, color in pattern.items():
            assert color == min(3, cell.x * 4 // 8)

    def test_gradient_uses_full_palette(self):
        pattern = expected_pattern(gradient_pattern_program(4), 8)
        assert set(pattern.values()) == {0, 1, 2, 3}

    def test_pattern_rejects_out_of_palette_color(self):
        from repro.machines.shape_programs import PatternProgram

        bad = PatternProgram(lambda x, y, d: 99, (0, 1), name="bad")
        with pytest.raises(MachineError):
            bad.color(0, 3)
