"""Protocols 4 and 5: line self-replication (§6.2)."""

import pytest

from repro.core.simulator import Simulation
from repro.core.world import World
from repro.protocols.replication import (
    add_line,
    extract_lines,
    line_replication_protocol,
    no_leader_line_replication_protocol,
    replication_world,
    self_replicating_lines_protocol,
)


@pytest.mark.parametrize("length", [3, 4, 6, 8])
def test_protocol4_replicates_once(length):
    protocol = line_replication_protocol()
    world = replication_world(length)
    sim = Simulation(world, protocol, seed=length * 5 + 1, check_invariants=True)
    sim.run_to_stabilization(max_events=100_000)
    lines = sorted(extract_lines(world))
    assert lines == [("Ls", length), ("Lstart", length)]


def test_protocol4_restores_internal_states():
    protocol = line_replication_protocol()
    world = replication_world(5)
    Simulation(world, protocol, seed=9).run_to_stabilization(max_events=100_000)
    for comp in world.components.values():
        if comp.size() == 1:
            continue
        cells = sorted(comp.cells)
        states = [world.state_of(comp.cells[c]) for c in cells]
        assert states[0] in ("Ls", "Lstart")
        assert states[-1] == "e"
        assert all(s == "i" for s in states[1:-1])


@pytest.mark.parametrize("seed", range(4))
def test_protocol4_many_seeds(seed):
    protocol = line_replication_protocol()
    world = replication_world(4)
    Simulation(world, protocol, seed=seed).run_to_stabilization(max_events=100_000)
    assert sorted(extract_lines(world)) == [("Ls", 4), ("Lstart", 4)]


def test_protocol5_replicates_without_leader():
    # Standalone Protocol 5 may also *deadlock* when concurrent half-built
    # replicas split the free material (see bench_line_replication.py), so
    # the test sweeps seeds: a solid fraction must replicate (the measured
    # success probability under the uniform scheduler law is ~0.4 at this
    # size), and any run that stops early must be a genuine
    # material-exhaustion deadlock (no free q0 left).
    length = 4
    successes = 0
    for seed in range(12):
        protocol = no_leader_line_replication_protocol()
        world = replication_world(
            length, free_nodes=3 * length, leader_left="e"
        )

        def has_two_complete_lines(w):
            return (
                sum(1 for _, size in extract_lines(w) if size == length) >= 2
            )

        sim = Simulation(world, protocol, seed=seed, check_invariants=True)
        res = sim.run(max_events=100_000, until=has_two_complete_lines)
        if res.stopped:
            successes += 1
        else:
            assert res.stabilized
            assert not world.by_state.get("q0")
    # Seeded and deterministic: the current trajectories give 6/12; the
    # threshold leaves margin while still catching a collapse to ~zero.
    assert successes >= 3


def test_protocol5_never_detaches_short_lines():
    """The degree-counting argument: any detached fragment that is a line
    has the full parent length (checked along the whole execution)."""
    length = 5
    protocol = no_leader_line_replication_protocol()
    world = replication_world(length, free_nodes=2 * length, leader_left="e")
    sim = Simulation(world, protocol, seed=23)
    for _ in range(5_000):
        if sim.step() is None:
            break
        for comp in world.components.values():
            if 1 < comp.size() < length:
                shape = world.component_shape(comp.cid)
                # Fragments smaller than the parent must never be free
                # lines — they are always still-bonded partial rows.
                states = {world.state_of(n) for n in comp.cells.values()}
                assert not (shape.is_line() and states <= {"i", "e"})


def test_self_replicating_lines_produce_replicas():
    protocol = self_replicating_lines_protocol()
    length = 4
    world = replication_world(length, free_nodes=6 * length)

    def two_replicas(w):
        # Each fully restored replica carries exactly one Lr left endpoint
        # (the line may already host early attachments of its next child,
        # so we count Lr endpoints rather than pure line components).
        return len(w.nodes_in_state("Lr")) >= 2

    sim = Simulation(world, protocol, seed=31)
    res = sim.run(max_events=200_000, until=two_replicas)
    assert res.stopped


def test_add_line_helper():
    world = World(2)
    nids = add_line(world, 4, "L")
    assert len(nids) == 4
    comp = world.component_of(next(iter(nids.values())))
    assert comp.size() == 4
    world.check_invariants()
