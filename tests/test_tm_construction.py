"""Distributed TM simulation on the square + release phase (§6.3)."""

import pytest

from repro.constructors.square_known_n import run_square_known_n
from repro.constructors.tm_construction import (
    DistributedTMSquare,
    run_pattern_construction,
    run_shape_construction,
)
from repro.geometry.vec import Vec
from repro.machines.shape_programs import (
    comb_program,
    cross_program,
    expected_pattern,
    expected_shape,
    frame_program,
    full_square_program,
    line_program,
    ring_pattern_program,
    star_program,
)

PROGRAMS = [
    line_program(),
    full_square_program(),
    cross_program(),
    star_program(),
    frame_program(),
    comb_program(),
]


@pytest.mark.parametrize("program", PROGRAMS, ids=lambda p: p.name)
@pytest.mark.parametrize("d", [4, 5, 6])
def test_constructs_every_program(program, d):
    # d >= 4: the comparator TM's input (two (lg d^2)-bit operands plus a
    # separator) must fit on the d^2-cell square tape; for d = 3 it does
    # not — an artifact of constants, not of the asymptotic claim.
    res = run_shape_construction(program, d)
    assert res.shape.same_up_to_translation(expected_shape(program, d))
    assert res.waste == d * d - len(res.shape.cells)
    assert res.interactions > 0


def test_line_program_has_worst_case_waste():
    d = 6
    res = run_shape_construction(line_program(), d)
    assert res.waste == (d - 1) * d  # Theorem 4's worst case


def test_release_frees_off_nodes():
    res = run_shape_construction(cross_program(), 5)
    world = res.world
    # 25 - 9 off nodes float as isolated components.
    singles = [c for c in world.components.values() if c.size() == 1]
    assert len(singles) == res.waste
    world.check_invariants()


def test_tm_head_moves_counted():
    d = 4
    res_tm = run_shape_construction(line_program(), d)
    res_pred = run_shape_construction(full_square_program(), d)
    # The TM-backed program does genuine head walks: far more interactions.
    assert res_tm.interactions > res_pred.interactions


def test_runs_on_square_built_by_square_known_n():
    square = run_square_known_n(25, seed=4)
    tape = DistributedTMSquare(square.world, square._square_cid, 5)
    res = run_shape_construction(cross_program(), 5, square=tape)
    assert res.shape.same_up_to_translation(expected_shape(cross_program(), 5))
    square.world.check_invariants()


def test_pattern_construction_matches_expected():
    program = ring_pattern_program(3)
    colors, interactions = run_pattern_construction(program, 6)
    assert colors == {
        cell + Vec(0, 0): value
        for cell, value in expected_pattern(program, 6).items()
    }
    assert interactions > 0


def test_pattern_keeps_square_bonded():
    sq = DistributedTMSquare.fresh(4)
    run_pattern_construction(ring_pattern_program(2), 4, square=sq)
    # No release for patterns: the square is still one component.
    assert len(sq.world.components) == 1


def test_fresh_square_tape_order_is_zigzag():
    sq = DistributedTMSquare.fresh(3)
    cells = [sq.world.nodes[nid].pos for nid in sq.tape_nids]
    assert cells[0] == Vec(0, 0)
    assert cells[2] == Vec(2, 0)
    assert cells[3] == Vec(2, 1)
    assert cells[5] == Vec(0, 1)
    assert cells[8] == Vec(2, 2)
