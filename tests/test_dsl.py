"""The rule DSL: expansions equal the hand-written tables, dispatch is
bit-identical compiled or not.

The legacy builders below are the seed's hand-written nested loops,
copied verbatim — the DSL-expanded protocol modules must reproduce their
rule tables rule for rule (Protocols 1, 2, 4 and 5 plus the §4.1
spanning line), and the leaderless-line ordered table must agree with
the original handler on every interaction of its state/port universe.
"""

import pytest

from repro.core.protocol import InteractionView, Rule, RuleProtocol
from repro.core.scheduler import make_scheduler
from repro.core.simulator import Simulation
from repro.core.trace import TraceRecorder, world_to_dict
from repro.core.world import World
from repro.errors import ProtocolError
from repro.geometry.ports import PORTS_2D, Port, opposite, ports_for_dimension
from repro.protocols import dsl
from repro.protocols.dsl import (
    I,
    J,
    bonded,
    expand,
    fmt,
    lift,
    opp,
    pfn,
    unbonded,
    when,
)
from repro.protocols.leaderless_line import (
    _handler,
    leaderless_spanning_line_protocol,
)
from repro.protocols.line import leader_state, spanning_line_protocol
from repro.protocols.replication import (
    line_replication_protocol,
    no_leader_line_replication_protocol,
    self_replicating_lines_protocol,
)
from repro.protocols.square import square_protocol
from repro.protocols.square2 import square2_protocol

U, R, D, L = Port.UP, Port.RIGHT, Port.DOWN, Port.LEFT


def table(rules):
    """A rule list as a comparable set of LHS/RHS tuples."""
    return {(r.lhs, r.rhs) for r in rules}


# ----------------------------------------------------------------------
# Legacy hand-written builders (the seed's loops, verbatim)
# ----------------------------------------------------------------------


def legacy_spanning_line_rules(dimension=2):
    ports = ports_for_dimension(dimension)
    rules = []
    for i in ports:
        for j in ports:
            rules.append(
                Rule(leader_state(i), i, "q0", j, 0,
                     "q1", leader_state(opposite(j)), 1)
            )
    return rules


def legacy_square_rules():
    return [
        Rule("Lu", U, "q0", D, 0, "q1", "Lr", 1),
        Rule("Lr", R, "q0", L, 0, "q1", "Ld", 1),
        Rule("Ld", D, "q0", U, 0, "q1", "Ll", 1),
        Rule("Ll", L, "q0", R, 0, "q1", "Lu", 1),
        Rule("Lu", U, "q1", D, 0, "Ll", "q1", 1),
        Rule("Lr", R, "q1", L, 0, "Lu", "q1", 1),
        Rule("Ld", D, "q1", U, 0, "Lr", "q1", 1),
        Rule("Ll", L, "q1", R, 0, "Ld", "q1", 1),
    ]


def legacy_square2_rules():
    rules = [
        Rule("L2d", D, "q0", U, 0, "L1u", "q1", 1),
        Rule("L2l", L, "q0", R, 0, "L1r", "q1", 1),
        Rule("L2u", U, "q0", D, 0, "L1d", "q1", 1),
        Rule("L2r", R, "q0", L, 0, "Lend", "q1", 1),
        Rule("L1u", U, "q0", D, 0, "q1", "L2l", 1),
        Rule("L1r", R, "q0", L, 0, "q1", "L2u", 1),
        Rule("L1d", D, "q0", U, 0, "q1", "L2r", 1),
        Rule("Lend", D, "q0", U, 0, "q1", "Ll", 1),
        Rule("Ll", L, "q0", R, 0, "q1", "Ll", 1),
        Rule("Lu", U, "q0", D, 0, "q1", "Lu", 1),
        Rule("Lr", R, "q0", L, 0, "q1", "Lr", 1),
        Rule("Ld", D, "q0", U, 0, "q1", "Ld", 1),
        Rule("Ll", L, "q1", R, 0, "q1", "L3l", 1),
        Rule("Lu", U, "q1", D, 0, "q1", "L3u", 1),
        Rule("Lr", R, "q1", L, 0, "q1", "L3r", 1),
        Rule("Ld", D, "q1", U, 0, "q1", "L3d", 1),
        Rule("L3l", L, "q0", R, 0, "q1", "L4d", 1),
        Rule("L3u", U, "q0", D, 0, "q1", "L4l", 1),
        Rule("L3r", R, "q0", L, 0, "q1", "L4u", 1),
        Rule("L3d", D, "q0", U, 0, "q1", "L4r", 1),
        Rule("L4d", D, "q0", U, 0, "Lu", "q1", 1),
        Rule("L4l", L, "q0", R, 0, "Lr", "q1", 1),
        Rule("L4u", U, "q0", D, 0, "Ld", "q1", 1),
        Rule("L4r", R, "q0", L, 0, "Lend", "q1", 1),
        Rule("Lu", R, "q1", L, 0, "Lu", "q1", 1),
        Rule("Lr", D, "q1", U, 0, "Lr", "q1", 1),
        Rule("Ld", L, "q1", R, 0, "Ld", "q1", 1),
        Rule("Ll", U, "q1", D, 0, "Ll", "q1", 1),
    ]
    for i in PORTS_2D:
        rules.append(Rule("q1", i, "q1", opposite(i), 0, "q1", "q1", 1))
    return rules


def legacy_variant_rules(parent_left, parent_restored, child_left):
    blocked = f"{parent_left}'"
    cts, ct1, ct2 = (f"T{child_left}", f"T'{child_left}", f"T''{child_left}")
    pts, pt1, pt2 = (
        f"P{parent_restored}", f"P'{parent_restored}", f"P''{parent_restored}"
    )
    rules = [
        Rule(parent_left, D, "q0", U, 0, blocked, "L1s", 1),
        Rule("L7s", U, blocked, D, 1, cts, pts, 0),
    ]
    for walker, final in ((cts, child_left), (pts, parent_restored)):
        w1 = ct1 if walker == cts else pt1
        w2 = ct2 if walker == cts else pt2
        rules.extend(
            [
                Rule(walker, R, "i'", L, 1, "f'", w1, 1),
                Rule(w1, R, "i'", L, 1, "i'", w1, 1),
                Rule(w1, R, "e'", L, 1, w2, "e", 1),
                Rule("i'", R, w2, L, 1, w2, "i", 1),
                Rule("f'", R, w2, L, 1, final, "i", 1),
            ]
        )
    return rules


def legacy_shared_rules():
    return [
        Rule("i", D, "q0", U, 0, "i'", "i'", 1),
        Rule("e", D, "q0", U, 0, "e'", "e'", 1),
        Rule("i'", R, "i'", L, 0, "i'", "i'", 1),
        Rule("i'", R, "e'", L, 0, "i'", "e'", 1),
        Rule("L1s", R, "i'", L, 0, "e'", "L2s", 1),
        Rule("L2s", R, "i'", L, 0, "i'", "L2s", 1),
        Rule("L2s", R, "i'", L, 1, "i'", "L2s", 1),
        Rule("L2s", R, "e'", L, 0, "i'", "L3s", 1),
        Rule("L2s", R, "e'", L, 1, "i'", "L3s", 1),
        Rule("L3s", U, "e'", D, 1, "L4s", "e'", 0),
        Rule("i'", R, "L4s", L, 1, "L5s", "e'", 1),
        Rule("L5s", U, "i'", D, 1, "L6s", "i'", 0),
        Rule("i'", R, "L6s", L, 1, "L5s", "i'", 1),
        Rule("e'", R, "L6s", L, 1, "L7s", "i'", 1),
    ]


def legacy_protocol5_rules():
    rules = [
        Rule("i", D, "q0", U, 0, "ip", "i1", 1),
        Rule("e", D, "q0", U, 0, "ep", "e1", 1),
        Rule("i1", R, "e1", L, 0, "i2", "e2", 1),
        Rule("i2", R, "e1", L, 0, "i3", "e2", 1),
        Rule("e1", R, "i1", L, 0, "e2", "i2", 1),
        Rule("e1", R, "i2", L, 0, "e2", "i3", 1),
        Rule("i3", U, "ip", D, 1, "i", "i", 0),
        Rule("e2", U, "ep", D, 1, "e", "e", 0),
    ]
    for j in (1, 2):
        for k in (1, 2):
            rules.append(
                Rule(f"i{j}", R, f"i{k}", L, 0, f"i{j + 1}", f"i{k + 1}", 1)
            )
    return rules


# ----------------------------------------------------------------------
# DSL expansions == the hand-written tables
# ----------------------------------------------------------------------


@pytest.mark.parametrize("dimension", [2, 3])
def test_spanning_line_expansion_matches_legacy(dimension):
    assert table(spanning_line_protocol(dimension).rules) == table(
        legacy_spanning_line_rules(dimension)
    )


def test_protocol1_square_expansion_matches_legacy():
    assert table(square_protocol().rules) == table(legacy_square_rules())


def test_protocol2_square2_expansion_matches_legacy():
    assert table(square2_protocol().rules) == table(legacy_square2_rules())


def test_protocol4_expansions_match_legacy():
    assert table(line_replication_protocol().rules) == table(
        legacy_shared_rules() + legacy_variant_rules("L", "Lstart", "Ls")
    )
    assert table(self_replicating_lines_protocol().rules) == table(
        legacy_shared_rules()
        + legacy_variant_rules("L", "Lstart", "Ls")
        + legacy_variant_rules("Ls", "Ls", "Lr")
        + legacy_variant_rules("Lr", "Lr", "Lr")
    )


def test_protocol5_expansion_matches_legacy():
    assert table(no_leader_line_replication_protocol().rules) == table(
        legacy_protocol5_rules()
    )


# ----------------------------------------------------------------------
# Leaderless line: ordered table == handler, over the full universe
# ----------------------------------------------------------------------


def test_leaderless_table_agrees_with_handler_everywhere():
    protocol = leaderless_spanning_line_protocol()
    states = ["q0", "q1", "L0"]
    states += [("L", p) for p in PORTS_2D] + [("Dl", p) for p in PORTS_2D]
    for s1 in states:
        for s2 in states:
            for p1 in PORTS_2D:
                for p2 in PORTS_2D:
                    for bond in (0, 1):
                        view = InteractionView(s1, p1, s2, p2, bond)
                        assert protocol.handle(view) == _handler(view), view


# ----------------------------------------------------------------------
# Compiled vs. boundary dispatch: bit-identical seeded trajectories
# ----------------------------------------------------------------------


def _traced_run(protocol, n, leaders, kind, seed, max_events=400):
    world = World.of_free_nodes(n, protocol, leaders=leaders)
    rec = TraceRecorder()
    sim = Simulation(
        world, protocol, scheduler=make_scheduler(kind), seed=seed,
        trace=rec.hook,
    )
    res = sim.run(max_events=max_events)
    return rec.to_list(), world_to_dict(world), res.events, res.raw_steps


@pytest.mark.parametrize("kind", ["hot", "enumerate", "rejection", "round-robin"])
def test_compiled_and_uncompiled_dispatch_are_bit_identical(kind):
    compiled = _traced_run(spanning_line_protocol(), 9, 1, kind, seed=5)
    plain = spanning_line_protocol()
    plain.compiled = False  # force boundary InteractionView dispatch
    assert plain.program is None
    uncompiled = _traced_run(plain, 9, 1, kind, seed=5)
    assert compiled == uncompiled


@pytest.mark.parametrize("kind", ["hot", "enumerate", "rejection", "round-robin"])
def test_leaderless_table_and_handler_trajectories_identical(kind):
    from repro.protocols.leaderless_line import (
        leaderless_spanning_line_handler_protocol,
    )

    a = _traced_run(leaderless_spanning_line_protocol(), 7, 0, kind, seed=21)
    b = _traced_run(
        leaderless_spanning_line_handler_protocol(), 7, 0, kind, seed=21
    )
    assert a == b


# ----------------------------------------------------------------------
# DSL mechanics
# ----------------------------------------------------------------------


def test_wildcard_and_derived_terms():
    spec = when(fmt("A{}", I), I, "b", J, unbonded) >> (
        "c", fmt("B{}", opp(J)), bonded
    )
    rules = expand([spec])
    assert len(rules) == 16
    assert Rule("Au", U, "b", L, 0, "c", "Br", 1) in rules


def test_where_guard_restricts_assignments():
    spec = (
        when(fmt("A{}", I), I, "b", J, unbonded) >> ("c", "d", bonded)
    ).where(lambda b: b["j"] == opposite(b["i"]))
    rules = expand([spec])
    assert len(rules) == 4
    assert all(r.port2 == opposite(r.port1) for r in rules)


def test_identity_expansions_are_dropped():
    # For i == j the expansion is an identity transition: dropped at
    # expansion time, never listed, never re-checked at dispatch.
    spec = when("a", I, "a", J, unbonded) >> ("a", "a", unbonded)
    assert expand([spec]) == ()


def test_symmetric_closure_emits_both_orientations():
    spec = (when("a", R, "b", L, unbonded) >> ("x", "y", bonded)).symmetric()
    rules = expand([spec])
    assert table(rules) == {
        ((("a", R), ("b", L), 0), ("x", "y", 1)),
        ((("b", L), ("a", R), 0), ("y", "x", 1)),
    }


def test_pfn_composes_with_opp():
    cw = {U: R, R: D, D: L, L: U}
    spec = when("a", pfn(cw.get, I), "b", opp(pfn(cw.get, I)), unbonded) >> (
        "x", "y", bonded
    )
    rules = expand([spec])
    assert Rule("a", R, "b", L, 0, "x", "y", 1) in rules  # i = u: cw -> r
    assert len(rules) == 4


def test_dsl_rejects_malformed_specs():
    with pytest.raises(ProtocolError):
        when(I, R, "b", L, unbonded)  # port term in a state position
    with pytest.raises(ProtocolError):
        when("a", R, "b", L, 2)  # bad bond
    with pytest.raises(ProtocolError):
        when("a", R, "b", L, unbonded) >> ("x", "y")  # malformed RHS
    with pytest.raises(ProtocolError):
        expand([when("a", R, "b", L, unbonded)])  # missing >> rhs


def test_dsl_protocol_builder():
    p = dsl.protocol(
        [when("L", R, "q0", L, unbonded) >> ("q1", "L", bonded)],
        name="tiny",
        leader_state="L",
        hot_states=("L",),
    )
    assert isinstance(p, RuleProtocol)
    assert p.handle(InteractionView("L", R, "q0", L, 0)) == ("q1", "L", 1)


def test_conflicting_expansions_rejected_with_both_rules_named():
    specs = [
        when("a", I, "b", opp(I), unbonded) >> ("x", "y", bonded),
        when("a", U, "b", D, unbonded) >> ("x", "z", bonded),
    ]
    with pytest.raises(ProtocolError) as err:
        dsl.protocol(specs)
    assert "vs" in str(err.value)
