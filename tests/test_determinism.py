"""Seeded runs must be reproducible across interpreter processes.

Set/dict iteration order depends on hash randomization (strings) and enum
identity hashes (vary with allocation addresses); any leak of that order
into RNG-indexed choices makes "seeded" runs non-reproducible — a bug this
library hit and fixed (see ``bond_sort_key`` and the hot-cover sort). These
tests pin the fix by running the same seeded executions in subprocesses
with different ``PYTHONHASHSEED`` values and comparing full traces.
"""

import json
import os
import subprocess
import sys

import pytest

_SCRIPT = r"""
import json
from repro.core.simulator import Simulation
from repro.core.trace import TraceRecorder, world_to_dict
from repro.core.world import World

def run_line():
    from repro.protocols.line import spanning_line_protocol
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(9, protocol, leaders=1)
    rec = TraceRecorder()
    Simulation(world, protocol, seed=5, trace=rec.hook).run_to_stabilization()
    return rec.to_list(), world_to_dict(world)

def run_protocol5():
    from repro.protocols.replication import (
        no_leader_line_replication_protocol, replication_world)
    protocol = no_leader_line_replication_protocol()
    world = replication_world(4, free_nodes=8, leader_left="e")
    rec = TraceRecorder()
    Simulation(world, protocol, seed=11, trace=rec.hook).run(max_events=500)
    return rec.to_list(), world_to_dict(world)

def run_faulty():
    from repro.faults.injection import FaultySimulation
    from repro.protocols.line import spanning_line_protocol
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(8, protocol, leaders=1)
    sim = FaultySimulation(world, protocol, break_prob=0.4, seed=3,
                           max_bonds_broken=5)
    sim.run(max_steps=2000)
    return [str(b.bond and sorted((n, p.value) for n, p in b.bond))
            for b in sim.breakages], world_to_dict(world)

def run_hybrid():
    from repro.hybrid.movement import HybridSimulation, make_walker_world, walker_protocol
    world, _m, _p = make_walker_world()
    sim = HybridSimulation(world, walker_protocol(), seed=7)
    for _ in range(30):
        sim.step()
    return [], world_to_dict(world)

out = {}
for name, fn in (("line", run_line), ("p5", run_protocol5),
                 ("faulty", run_faulty), ("hybrid", run_hybrid)):
    trace, snapshot = fn()
    out[name] = {"trace": trace, "snapshot": snapshot}
print(json.dumps(out, sort_keys=True, default=str))
"""


def _run_with_hash_seed(seed: str) -> dict:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


@pytest.mark.parametrize("other", ["1", "31337"])
def test_trajectories_identical_across_hash_seeds(other):
    base = _run_with_hash_seed("0")
    alt = _run_with_hash_seed(other)
    for name in base:
        assert base[name] == alt[name], f"{name} diverged under PYTHONHASHSEED"
