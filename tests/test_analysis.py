"""Static-analysis layer tests: protocol analyzer, determinism linter.

Golden analyzer reports pin the paper protocols: every state reachable,
zero dead rules, and ``stabilizes: proven`` exactly where the paper
proves it (the purely bond-forming §4 constructors) versus ``unknown``
where rules break bonds (the §7 replication family, the leaderless
dismantling phase). A hypothesis test checks the closure is a true
over-approximation: no state observed on a random seeded run is ever
reported unreachable.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lint import LintFinding, lint_paths, lint_source
from repro.analysis.protocol import (
    analyze_program,
    analyze_protocol,
)
from repro.analysis.report import (
    ANALYSIS_SCHEMA,
    analysis_payload,
    analyze_scenario,
    validate_analysis_payload,
)
from repro.cli import main
from repro.core.program import compile_rules
from repro.core.protocol import Rule
from repro.core.scheduler import make_scheduler
from repro.core.simulator import Simulation
from repro.core.world import World
from repro.experiments.io import validate_history_record, validate_payload
from repro.experiments.registry import get_scenario, protocol_specs
from repro.geometry.ports import Port
from repro.protocols.leaderless_line import leaderless_spanning_line_protocol
from repro.protocols.line import spanning_line_protocol
from repro.protocols.replication import (
    line_replication_protocol,
    no_leader_line_replication_protocol,
    self_replicating_lines_protocol,
)
from repro.protocols.square import square_protocol
from repro.protocols.square2 import square2_protocol

U, D = Port.UP, Port.DOWN


# ----------------------------------------------------------------------
# Golden reports for the paper protocols
# ----------------------------------------------------------------------


class TestPaperProtocolGoldens:
    """The §4/§7 protocols analyze clean, with the paper's verdicts."""

    @pytest.mark.parametrize(
        "factory, extra, stabilizes",
        [
            (spanning_line_protocol, (), "proven"),
            (square_protocol, (), "proven"),
            (square2_protocol, (), "proven"),
            (line_replication_protocol, ("i", "e"), "unknown"),
            (self_replicating_lines_protocol, ("i", "e"), "unknown"),
            (no_leader_line_replication_protocol, ("i", "e"), "unknown"),
            (leaderless_spanning_line_protocol, (), "unknown"),
        ],
    )
    def test_golden(self, factory, extra, stabilizes):
        report = analyze_protocol(factory(), extra_initial=extra)
        assert report.exact
        assert report.clean, (
            report.dead_rules,
            report.unreachable_states,
            report.hot_violations,
        )
        assert report.unreachable_states == []
        assert report.dead_rules == []
        assert len(report.reachable_states) == report.states
        assert report.stabilizes == stabilizes

    def test_bond_forming_constructors_prove_monotone_bonding(self):
        for factory in (spanning_line_protocol, square_protocol, square2_protocol):
            report = analyze_protocol(factory())
            assert "bond" in report.stabilization_reason

    def test_replication_unknown_names_the_breaking_rule(self):
        report = analyze_protocol(
            line_replication_protocol(), extra_initial=("i", "e")
        )
        assert "breaks a bond" in report.stabilization_reason

    def test_unordered_tables_have_no_shadows(self):
        for factory in (spanning_line_protocol, square_protocol):
            assert analyze_protocol(factory()).shadows == []

    def test_leaderless_ordered_table_reports_shadows(self):
        report = analyze_protocol(leaderless_spanning_line_protocol())
        assert report.shadows
        kinds = {s["kind"] for s in report.shadows}
        assert kinds <= {"ordered", "self-swap"}
        # The leader-election family overlaps on reachable LHSs, so the
        # orientation choice genuinely matters and must be surfaced.
        assert any(s["matters"] for s in report.shadows)

    def test_replication_needs_structure_seeds(self):
        # Without the pre-built parent line the i/e-driven rules are
        # correctly reported dead — the extra_initial declaration is what
        # makes the scenario-level report clean.
        bare = analyze_protocol(line_replication_protocol())
        assert bare.unreachable_states or bare.dead_rules


# ----------------------------------------------------------------------
# Analyzer semantics on synthetic tables
# ----------------------------------------------------------------------


def _compile(rules, **kwargs):
    kwargs.setdefault("initial_state", "a")
    return compile_rules(rules, **kwargs)


class TestAnalyzerSemantics:
    def test_dead_rule_and_unreachable_state(self):
        program = _compile(
            [
                Rule("a", U, "a", D, 0, "a", "b", 1),
                Rule("z", U, "a", D, 0, "z", "c", 1),
            ]
        )
        report = analyze_program(program, initial_states=("a",))
        assert any("'z'" in s for s in report.unreachable_states)
        assert len(report.dead_rules) == 1
        assert "'z'" in report.dead_rules[0]
        assert not report.clean

    def test_dead_rules_deduplicate_mirror_orientations(self):
        # One dead rule compiles to two packed orientations; the report
        # must count it once.
        program = _compile(
            [
                Rule("a", U, "a", D, 0, "a", "b", 1),
                Rule("z", U, "y", D, 0, "z", "c", 1),
            ]
        )
        report = analyze_program(program, initial_states=("a",))
        assert len(report.dead_rules) == 1

    def test_bonded_lhs_needs_a_reachable_bond(self):
        # a,b 0->1 makes {a,b} bonded, enabling the bonded rewrite; the
        # bonded rule over {a,c} never fires (no a-c bond ever forms).
        program = _compile(
            [
                Rule("a", U, "b", D, 0, "a", "b", 1),
                Rule("a", U, "b", D, 1, "a", "q", 1),
                Rule("a", U, "c", D, 1, "a", "r", 1),
            ],
            output_states=("c",),
        )
        report = analyze_program(program, initial_states=("a", "b", "c"))
        assert len(report.dead_rules) == 1
        assert "'r'" in report.dead_rules[0]
        assert any("'r'" in s for s in report.unreachable_states)

    def test_third_party_rewrite_keeps_bonds_alive(self):
        # a-b bond forms; b rewrites to b2 via a free meeting with c; the
        # bonded rule over {a,b2} must then be live.
        program = _compile(
            [
                Rule("a", U, "b", D, 0, "a", "b", 1),
                Rule("b", U, "c", D, 0, "b2", "c", 0),
                Rule("a", U, "b2", D, 1, "done", "b2", 1),
            ],
            output_states=("c",),
        )
        report = analyze_program(program, initial_states=("a", "b", "c"))
        assert report.dead_rules == []
        assert any("'done'" in s for s in report.reachable_states)

    def test_bond_breaking_voids_the_witness(self):
        program = _compile(
            [
                Rule("a", U, "a", D, 0, "a", "b", 1),
                Rule("a", U, "b", D, 1, "a", "b", 0),
            ]
        )
        report = analyze_program(program, initial_states=("a",))
        assert report.stabilizes == "unknown"
        assert "breaks a bond" in report.stabilization_reason

    def test_state_drift_cycle_voids_the_witness(self):
        program = _compile(
            [
                Rule("a", U, "b", D, 0, "b", "a", 0),
            ],
            output_states=("b",),
        )
        report = analyze_program(program, initial_states=("a", "b"))
        assert report.stabilizes == "unknown"
        assert "cycle" in report.stabilization_reason

    def test_acyclic_drift_still_proves(self):
        program = _compile(
            [
                Rule("a", U, "b", D, 0, "a2", "b", 0),
                Rule("a2", U, "b", D, 0, "a2", "b", 1),
            ],
            output_states=("b",),
        )
        report = analyze_program(program, initial_states=("a", "b"))
        assert report.stabilizes == "proven"

    def test_hot_violation_flagged(self):
        program = _compile(
            [Rule("a", U, "a", D, 0, "b", "b", 1)],
            hot_states=("b",),
        )
        report = analyze_program(program, initial_states=("a",))
        assert len(report.hot_violations) == 1
        assert not report.clean

    def test_no_hot_declaration_is_a_note_not_a_violation(self):
        program = _compile([Rule("a", U, "a", D, 0, "b", "b", 1)])
        report = analyze_program(program, initial_states=("a",))
        assert not report.hot_declared
        assert report.hot_violations == []
        assert any("hot" in note for note in report.notes)

    def test_inexact_program_gets_diagnostic_not_crash(self):
        from repro.constructors.counting_line import counting_line_protocol

        report = analyze_protocol(counting_line_protocol())
        assert not report.exact
        assert "not closed-world" in report.diagnostic
        assert report.stabilizes == "unknown"


# ----------------------------------------------------------------------
# Over-approximation: no false "unreachable" on real seeded runs
# ----------------------------------------------------------------------


class TestReachabilityAgreesWithRuns:
    @given(
        factory_index=st.integers(min_value=0, max_value=1),
        n=st.integers(min_value=4, max_value=16),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_observed_states_are_reported_reachable(
        self, factory_index, n, seed
    ):
        factory = (spanning_line_protocol, square_protocol)[factory_index]
        protocol = factory()
        reachable = set(analyze_protocol(protocol).reachable_states)
        world = World.of_free_nodes(n, protocol, leaders=1)
        sim = Simulation(
            world, protocol, scheduler=make_scheduler("hot"), seed=seed
        )
        observed = set(world.states().values())
        for _ in range(400):
            if sim.step() is None:
                break
            observed.update(world.states().values())
        missing = {repr(s) for s in observed} - reachable
        assert not missing, f"states observed but reported unreachable: {missing}"


# ----------------------------------------------------------------------
# Determinism linter
# ----------------------------------------------------------------------


class TestLinter:
    def test_src_tree_is_clean(self):
        assert lint_paths() == []

    def _rules(self, source, path="repro/core/candidates.py"):
        return [f.rule for f in lint_source(source, path)]

    def test_unseeded_random_flagged(self):
        assert self._rules("import random\nx = random.random()\n") == [
            "unseeded-random"
        ]
        assert self._rules(
            "from random import choice\nx = choice([1, 2])\n"
        ) == ["unseeded-random"]

    def test_seeded_rng_instance_is_fine(self):
        assert self._rules(
            "import random\nrng = random.Random(7)\nx = rng.random()\n"
        ) == []

    def test_wallclock_flagged_and_pragma_suppresses(self):
        assert self._rules("import time\nt = time.time()\n") == ["wallclock"]
        assert self._rules(
            "from datetime import datetime\nd = datetime.now()\n"
        ) == ["wallclock"]
        assert self._rules(
            "import time\nt = time.time()  # lint: allow-wallclock\n"
        ) == []

    def test_set_iteration_flagged_only_in_sensitive_modules(self):
        source = "s = {1, 2, 3}\nout = [x for x in s]\n"
        assert self._rules(source) == ["unsorted-set-iteration"]
        assert self._rules(source, path="repro/viz/ascii_art.py") == []

    def test_sorted_set_iteration_is_fine(self):
        assert self._rules(
            "s = set(range(3))\nout = [x for x in sorted(s)]\n"
        ) == []

    def test_list_over_set_flagged(self):
        assert self._rules("out = list({1, 2})\n") == [
            "unsorted-set-iteration"
        ]

    def test_dict_iteration_not_flagged(self):
        # Dicts iterate in insertion order (guaranteed since 3.7): only
        # sets are an ordering hazard.
        assert self._rules("d = {1: 2}\nout = [k for k in d]\n") == []

    def test_hash_flagged(self):
        assert self._rules("key = hash('x')\n", "repro/viz/x.py") == [
            "hash-order"
        ]
        assert self._rules(
            "key = hash('x')  # lint: allow-hash\n", "repro/viz/x.py"
        ) == []

    def test_findings_carry_position(self):
        (finding,) = lint_source(
            "import time\nt = time.time()\n", "repro/core/scheduler.py"
        )
        assert isinstance(finding, LintFinding)
        assert finding.line == 2
        assert "scheduler.py:2" in finding.format()


# ----------------------------------------------------------------------
# Report schema + CLI surfaces
# ----------------------------------------------------------------------


class TestReportSchema:
    def _payload(self):
        scn = get_scenario("demo")
        return analysis_payload({scn.name: analyze_scenario(scn)})

    def test_payload_validates(self):
        payload = self._payload()
        assert payload["schema"] == ANALYSIS_SCHEMA
        assert validate_analysis_payload(payload) == []
        # repro validate dispatches on the schema field.
        assert validate_payload(payload) == []

    def test_schema_id_matches_dispatch_copy(self):
        # experiments.io duplicates the schema string so dispatch does not
        # import the analysis layer; this pin keeps the copies from drifting.
        from repro.experiments.io import ANALYSIS_SCHEMA_ID

        assert ANALYSIS_SCHEMA_ID == ANALYSIS_SCHEMA

    def test_payload_round_trips_json(self):
        payload = self._payload()
        assert validate_analysis_payload(json.loads(json.dumps(payload))) == []

    def test_validator_catches_corruption(self):
        payload = self._payload()
        payload["scenarios"][0]["protocols"][0].pop("stabilizes")
        assert validate_analysis_payload(payload)

    def test_history_record_validator(self):
        from repro.experiments.io import history_record

        record = history_record("bench", [], extra={"evaluations": 10})
        assert validate_history_record(record) == []
        bad = dict(record)
        bad["trials"] = "three"
        assert validate_history_record(bad)
        assert validate_payload(record) == []


class TestCli:
    def test_analyze_scenario(self, capsys):
        assert main(["analyze", "demo"]) == 0
        out = capsys.readouterr().out
        assert "stabilizes: proven" in out

    def test_analyze_all_json_validates(self, capsys, tmp_path):
        target = tmp_path / "analysis.json"
        assert main(["analyze", "--all", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert validate_analysis_payload(payload) == []
        assert main(["validate", str(target)]) == 0

    def test_analyze_handler_scenario_diagnostic(self, capsys):
        # Satellite bugfix: handler-backed scenarios report the
        # not-closed-world diagnostic, exit zero without --strict and
        # nonzero with it.
        assert main(["analyze", "counting-line"]) == 0
        out = capsys.readouterr().out
        assert "not closed-world, cannot analyze statically" in out
        assert main(["analyze", "counting-line", "--strict"]) == 1

    def test_analyze_without_target_errors(self, capsys):
        assert main(["analyze"]) == 2

    def test_analyze_scenario_without_protocols_errors(self, capsys):
        assert main(["analyze", "replicate"]) == 2

    def test_lint_clean_tree(self, capsys):
        assert main(["lint"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_lint_flags_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(bad)]) == 1
        assert "wallclock" in capsys.readouterr().out

    def test_describe_carries_analysis_line(self, capsys):
        assert main(["describe", "square"]) == 0
        out = capsys.readouterr().out
        assert "analysis:" in out
        assert "stabilizes: unknown" in out

    def test_describe_demo_analysis_proven(self, capsys):
        assert main(["describe", "demo"]) == 0
        assert "stabilizes: proven" in capsys.readouterr().out


class TestScenarioDeclarations:
    def test_square_scenario_declares_structure_seeds(self):
        (spec,) = protocol_specs(get_scenario("square"))
        assert spec.extra_initial == ("i", "e")
        (report,) = analyze_scenario(get_scenario("square"))
        assert report.clean

    def test_bare_factories_normalize(self):
        specs = protocol_specs(get_scenario("demo"))
        assert [s.extra_initial for s in specs] == [(), ()]
