"""Bounding rectangles R_G and enclosing squares S_G (§3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.random_shapes import random_connected_shape
from repro.geometry.rect import (
    bounding_rect,
    enclosing_square,
    enclosing_squares,
    max_dim,
    min_dim,
    rect_dimensions,
    waste,
)
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec

shapes = st.integers(min_value=1, max_value=20).flatmap(
    lambda size: st.integers(min_value=0, max_value=2**31).map(
        lambda seed: random_connected_shape(size, seed=seed)
    )
)


def _line(d):
    return Shape.from_cells([Vec(x, 0) for x in range(d)])


def test_dimensions_of_line():
    s = _line(5)
    assert rect_dimensions(s) == (5, 1)
    assert max_dim(s) == 5
    assert min_dim(s) == 1


def test_bounding_rect_of_l_shape():
    s = Shape.from_cells([Vec(0, 0), Vec(1, 0), Vec(1, 1)])
    rect = bounding_rect(s)
    assert len(rect.cells) == 4
    assert rect.label_map[Vec(0, 1)] == 0
    assert rect.label_map[Vec(0, 0)] == 1
    assert rect.is_full_rectangle()


def test_line_extends_to_d_squares():
    # The paper's example: a horizontal line of length d extends to a
    # d x d square in d distinct ways, all of size d^2.
    d = 4
    squares = enclosing_squares(_line(d))
    assert len(squares) == d
    assert all(len(sq.cells) == d * d for sq in squares)
    for sq in squares:
        ons = [c for c, v in sq.labels if v == 1]
        assert len(ons) == d


@settings(max_examples=25, deadline=None)
@given(shapes)
def test_rect_contains_shape_and_is_minimal(shape):
    rect = bounding_rect(shape)
    assert shape.cells <= rect.cells
    w, h = rect_dimensions(shape)
    assert len(rect.cells) == w * h
    on = {c for c, v in rect.labels if v == 1}
    assert on == set(shape.cells)


@settings(max_examples=25, deadline=None)
@given(shapes)
def test_enclosing_square_size(shape):
    sq = enclosing_square(shape)
    side = max_dim(shape)
    assert len(sq.cells) == side * side
    assert shape.cells <= sq.cells


def test_waste_definition():
    s = _line(3)
    assert waste(3, s) == 6  # (d-1) d for a line, Theorem 4's worst case
