"""Tests for protocol introspection (core.inspect) and traces (core.trace)."""

import json

import pytest

from repro.core.inspect import (
    assert_well_formed,
    format_protocol,
    format_rule,
    lint_protocol,
    reachable_states,
    state_graph,
)
from repro.core.protocol import Rule, RuleProtocol
from repro.core.simulator import Simulation
from repro.core.trace import (
    TraceRecorder,
    record_run,
    replay,
    world_from_dict,
    world_to_dict,
)
from repro.core.world import World
from repro.errors import ProtocolError, SimulationError
from repro.geometry.ports import Port
from repro.geometry.vec import Vec
from repro.protocols.line import simple_line_protocol, spanning_line_protocol
from repro.protocols.replication import (
    line_replication_protocol,
    no_leader_line_replication_protocol,
    self_replicating_lines_protocol,
)
from repro.protocols.square import square_protocol
from repro.protocols.square2 import square2_protocol


# ----------------------------------------------------------------------
# core.inspect
# ----------------------------------------------------------------------


class TestFormatting:
    def test_format_rule_matches_paper_notation(self):
        rule = Rule("Lu", Port.UP, "q0", Port.DOWN, 0, "q1", "Lr", 1)
        assert format_rule(rule) == "(Lu, u), (q0, d), 0 -> (q1, Lr, 1)"

    def test_format_protocol_header(self):
        text = format_protocol(square_protocol())
        assert text.startswith("Protocol ")
        assert "|Q| = 6" in text
        assert "8 effective rules" in text
        assert text.count("->") == 8


class TestReachability:
    def test_line_protocol_all_states_reachable(self):
        protocol = spanning_line_protocol()
        reached = reachable_states(protocol)
        assert protocol.states == reached

    def test_isolated_rule_states_unreachable(self):
        rules = [
            Rule("L", Port.RIGHT, "q0", Port.LEFT, 0, "q1", "L", 1),
            # ghost never arises from {q0, L}:
            Rule("ghost", Port.RIGHT, "q0", Port.LEFT, 0, "q1", "ghost", 1),
        ]
        protocol = RuleProtocol(rules, initial_state="q0", leader_state="L")
        reached = reachable_states(protocol)
        assert "ghost" not in reached

    def test_state_graph_of_protocol1_has_leader_cycle(self):
        graph = state_graph(square_protocol())
        # The leader cycles Lu -> Lr -> Ld -> Ll -> Lu through the corner
        # rules; follow one full lap.
        assert "Lr" in graph["Lu"] or "Ll" in graph["Lu"]


class TestLint:
    @pytest.mark.parametrize(
        "factory",
        [
            spanning_line_protocol,
            simple_line_protocol,
            square_protocol,
            square2_protocol,
        ],
        ids=lambda f: f.__name__,
    )
    def test_paper_tables_are_well_formed(self, factory):
        assert_well_formed(factory())

    @pytest.mark.parametrize(
        "factory",
        [line_replication_protocol, self_replicating_lines_protocol],
        ids=lambda f: f.__name__,
    )
    def test_replication_tables_well_formed_given_seeded_line(self, factory):
        # Protocols 4/5 operate on a pre-built parent line: seed the
        # reachability closure with its internal/endpoint states.
        assert_well_formed(factory(), extra_initial=("i", "e"))

    def test_protocol5_clean_given_seeded_line(self):
        # Protocol 5 has no leader; its lines are seeded externally. Bare
        # lint flags the parent-line states; seeding them cleans it up.
        protocol = no_leader_line_replication_protocol()
        bare = lint_protocol(protocol)
        assert set(bare.unreachable_states) >= {"e", "i"}
        seeded = lint_protocol(protocol, extra_initial=("i", "e"))
        assert seeded.clean

    def test_dead_rule_detected(self):
        rules = [
            Rule("L", Port.RIGHT, "q0", Port.LEFT, 0, "q1", "L", 1),
            Rule("never", Port.RIGHT, "also-never", Port.LEFT, 0, "x", "y", 1),
        ]
        protocol = RuleProtocol(rules, initial_state="q0", leader_state="L")
        report = lint_protocol(protocol)
        assert len(report.dead_rules) == 1
        assert not report.clean
        with pytest.raises(ProtocolError):
            assert_well_formed(protocol)

    def test_monotone_bonding_note(self):
        report = lint_protocol(spanning_line_protocol())
        assert any("monotone" in note for note in report.notes)
        assert report.bond_forming_rules == 16
        assert report.bond_breaking_rules == 0


# ----------------------------------------------------------------------
# core.trace
# ----------------------------------------------------------------------


def fresh_line_world(n: int):
    protocol = spanning_line_protocol()
    return World.of_free_nodes(n, protocol, leaders=1), protocol


class TestTraceRecordReplay:
    def test_trace_length_equals_events(self):
        world, protocol = fresh_line_world(7)
        recorder = record_run(world, protocol, seed=3)
        assert len(recorder.events) == 6  # n - 1 effective interactions

    def test_replay_reproduces_final_configuration(self):
        world, protocol = fresh_line_world(8)
        recorder = record_run(world, protocol, seed=5)
        original = world_to_dict(world)

        fresh, _ = fresh_line_world(8)
        replay(fresh, recorder.to_list(), check_invariants=True)
        assert world_to_dict(fresh) == original

    def test_trace_is_json_serializable(self):
        world, protocol = fresh_line_world(5)
        recorder = record_run(world, protocol, seed=1)
        text = json.dumps(recorder.to_list())
        events = json.loads(text)
        fresh, _ = fresh_line_world(5)
        replay(fresh, events)
        assert len(fresh.components) == 1

    def test_replay_detects_divergence(self):
        world, protocol = fresh_line_world(6)
        recorder = record_run(world, protocol, seed=2)
        events = recorder.to_list()
        # Corrupt the trace: replay the first event twice — the second
        # application sees a bond that already exists.
        with pytest.raises(SimulationError):
            fresh, _ = fresh_line_world(6)
            replay(fresh, [events[0], events[0]])

    def test_replay_rejects_unknown_nodes(self):
        world, protocol = fresh_line_world(4)
        recorder = record_run(world, protocol, seed=0)
        events = recorder.to_list()
        events[0]["nid1"] = 999
        with pytest.raises(SimulationError):
            fresh, _ = fresh_line_world(4)
            replay(fresh, events)

    def test_tuple_states_round_trip(self):
        recorder = TraceRecorder()
        from repro.core.world import Candidate

        cand = Candidate(0, Port.RIGHT, 1, Port.LEFT, 0)
        recorder.record(1, cand, (("L", Port.UP), ("dist", 3), 1))
        obj = json.loads(json.dumps(recorder.to_list()))[0]
        from repro.core.trace import _state_from_repr

        assert _state_from_repr(obj["new_state1"])[0] == "L"
        assert _state_from_repr(obj["new_state2"]) == ("dist", 3)


class TestWorldSnapshots:
    def test_snapshot_round_trip_free_nodes(self):
        world = World(2)
        world.add_free_node("a")
        world.add_free_node("b")
        data = world_to_dict(world)
        back = world_from_dict(data)
        assert back.states() == world.states()
        assert len(back.components) == 2

    def test_snapshot_round_trip_after_run(self):
        world, protocol = fresh_line_world(9)
        Simulation(world, protocol, seed=7).run_to_stabilization()
        data = world_to_dict(world)
        back = world_from_dict(data)
        back.check_invariants()
        assert world_to_dict(back) == data
        # The restored world keeps simulating correctly.
        more = Simulation(back, protocol, seed=8).run_to_stabilization()
        assert more.events == 0  # it was already stable

    def test_snapshot_json_round_trip(self):
        world, protocol = fresh_line_world(6)
        Simulation(world, protocol, seed=4).run_to_stabilization()
        text = json.dumps(world_to_dict(world))
        back = world_from_dict(json.loads(text))
        assert back.component_shape(
            next(iter(back.components))
        ).is_line()

    def test_snapshot_rejects_overlapping_nodes(self):
        world = World(2)
        world.add_free_node("a")
        data = world_to_dict(world)
        data["nodes"].append(dict(data["nodes"][0], nid=99))
        with pytest.raises(SimulationError):
            world_from_dict(data)

    def test_snapshot_preserves_orientations(self):
        # Build a world where a merge rotated a component, then round-trip.
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(5, protocol, leaders=1)
        Simulation(world, protocol, seed=11).run_to_stabilization()
        data = world_to_dict(world)
        back = world_from_dict(data)
        for nid, rec in world.nodes.items():
            assert back.nodes[nid].orientation == rec.orientation
            assert back.nodes[nid].pos == rec.pos
