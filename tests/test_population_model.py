"""Tests for the population-protocol substrate primitives (§5.1's scheduler)."""

import math
import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TerminationError
from repro.population.model import (
    PairwiseProtocol,
    PopulationSimulator,
    geometric_skip,
)


class Noop(PairwiseProtocol):
    def initial_states(self, n, rng):
        return ["s"] * n

    def interact(self, a, b, rng):
        return a, b


class HaltAfter(PairwiseProtocol):
    """Each state counts its interactions; halts at a threshold."""

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold

    def initial_states(self, n, rng):
        return [0] * n

    def interact(self, a, b, rng):
        return a + 1, b + 1

    def halted(self, state):
        return state >= self.threshold


class TestPopulationSimulator:
    def test_rejects_tiny_population(self):
        with pytest.raises(TerminationError):
            PopulationSimulator(Noop(), 1)

    def test_rejects_wrong_initial_length(self):
        class Broken(Noop):
            def initial_states(self, n, rng):
                return ["s"] * (n - 1)

        with pytest.raises(TerminationError):
            PopulationSimulator(Broken(), 5)

    def test_pair_selection_is_uniform(self):
        # Chi-square-free check: all C(4,2) = 6 unordered pairs occur with
        # similar frequency over many steps.
        sim = PopulationSimulator(Noop(), 4, seed=0)
        counts = Counter()
        steps = 6000
        for _ in range(steps):
            i, j = sim.step()
            counts[frozenset((i, j))] += 1
        assert len(counts) == 6
        expected = steps / 6
        for pair, count in counts.items():
            assert abs(count - expected) < 0.2 * expected, pair

    def test_never_selects_a_node_with_itself(self):
        sim = PopulationSimulator(Noop(), 3, seed=1)
        for _ in range(2000):
            i, j = sim.step()
            assert i != j

    def test_halt_detection_returns_halter(self):
        sim = PopulationSimulator(HaltAfter(3), 5, seed=2)
        res = sim.run(require_halt=True)
        assert res.terminated
        assert sim.states[res.halted_index] >= 3

    def test_initially_halted_configuration_detected_without_steps(self):
        # Regression: a node halted in the *initial* configuration must be
        # detected before the first step (detection used to depend on the
        # scheduler happening to select the halted node).
        sim = PopulationSimulator(HaltAfter(0), 5, seed=6)
        res = sim.run(require_halt=True)
        assert res.terminated
        assert res.interactions == 0
        assert sim.interactions == 0

    def test_initially_true_predicate_detected_without_steps(self):
        sim = PopulationSimulator(HaltAfter(10**9), 5, seed=7)
        res = sim.run(until=lambda states: True)
        assert not res.terminated
        assert res.interactions == 0

    def test_until_predicate(self):
        sim = PopulationSimulator(HaltAfter(10**9), 5, seed=3)
        res = sim.run(until=lambda states: sum(states) >= 20)
        assert not res.terminated
        assert sum(sim.states) >= 20

    def test_budget_raises_with_require_halt(self):
        sim = PopulationSimulator(Noop(), 4, seed=4)
        with pytest.raises(TerminationError):
            sim.run(max_interactions=50, require_halt=True)

    def test_budget_returns_without_require_halt(self):
        sim = PopulationSimulator(Noop(), 4, seed=5)
        res = sim.run(max_interactions=50)
        assert res.interactions == 50
        assert not res.terminated


class TestGeometricSkip:
    def test_certain_success_is_one_step(self):
        rng = random.Random(0)
        assert geometric_skip(rng, 1.0) == 1

    def test_rejects_zero_probability(self):
        with pytest.raises(TerminationError):
            geometric_skip(random.Random(0), 0.0)

    @pytest.mark.parametrize("p", [0.5, 0.1, 0.02])
    def test_mean_matches_1_over_p(self, p):
        rng = random.Random(7)
        trials = 20000
        total = sum(geometric_skip(rng, p) for _ in range(trials))
        mean = total / trials
        assert abs(mean - 1.0 / p) < 0.05 / p

    @pytest.mark.parametrize("p", [0.3, 0.05])
    def test_tail_matches_geometric_law(self, p):
        # P[X > k] = (1-p)^k; check at k = 1/p.
        rng = random.Random(9)
        k = int(1 / p)
        trials = 20000
        exceed = sum(geometric_skip(rng, p) > k for _ in range(trials))
        expected = (1 - p) ** k
        assert abs(exceed / trials - expected) < 0.02

    @given(st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_support_is_positive_integers(self, p):
        rng = random.Random(11)
        value = geometric_skip(rng, p)
        assert isinstance(value, int)
        assert value >= 1

    def test_extreme_uniform_draw_does_not_overflow(self):
        # The inverse-CDF clamps u away from 0; even the tiniest draw maps
        # to a finite skip.
        class TinyRandom(random.Random):
            def random(self):
                return 0.0

        value = geometric_skip(TinyRandom(), 0.5)
        assert value >= 1 and math.isfinite(value)
