"""Zig-zag indexing (Figure 7(b)) and grid helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.grid import (
    integer_sqrt,
    iter_box,
    line_cells,
    rectangle_cells,
    square_cells,
    zigzag_cell_to_index,
    zigzag_index_to_cell,
    zigzag_order,
)
from repro.geometry.vec import Vec


def test_zigzag_matches_figure_7b():
    # Bottom row left-to-right, then one up, then right-to-left, ...
    d = 3
    expected = [
        Vec(0, 0), Vec(1, 0), Vec(2, 0),
        Vec(2, 1), Vec(1, 1), Vec(0, 1),
        Vec(0, 2), Vec(1, 2), Vec(2, 2),
    ]
    assert [zigzag_index_to_cell(i, d) for i in range(9)] == expected


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=899))
def test_zigzag_bijection(width, index):
    cell = zigzag_index_to_cell(index, width)
    assert zigzag_cell_to_index(cell, width) == index


def test_zigzag_order_covers_grid():
    cells = zigzag_order(4, 3)
    assert len(cells) == 12
    assert len(set(cells)) == 12
    assert all(0 <= c.x < 4 and 0 <= c.y < 3 for c in cells)
    # Consecutive pixels are always grid-adjacent (the tape is walkable).
    for a, b in zip(cells, cells[1:]):
        assert (a - b).manhattan() == 1


def test_zigzag_errors():
    with pytest.raises(GeometryError):
        zigzag_index_to_cell(0, 0)
    with pytest.raises(GeometryError):
        zigzag_index_to_cell(-1, 3)
    with pytest.raises(GeometryError):
        zigzag_cell_to_index(Vec(5, 0), 3)
    with pytest.raises(GeometryError):
        zigzag_cell_to_index(Vec(0, 0, 1), 3)


def test_cell_families():
    assert line_cells(3) == [Vec(0, 0), Vec(1, 0), Vec(2, 0)]
    assert line_cells(2, direction=Vec(0, 1)) == [Vec(0, 0), Vec(0, 1)]
    assert len(rectangle_cells(3, 2)) == 6
    assert len(square_cells(4)) == 16
    assert len(list(iter_box(2, 2, 2))) == 8
    with pytest.raises(GeometryError):
        line_cells(0)
    with pytest.raises(GeometryError):
        line_cells(3, direction=Vec(1, 1))
    with pytest.raises(GeometryError):
        rectangle_cells(0, 3)


@given(st.integers(min_value=0, max_value=10_000))
def test_integer_sqrt(n):
    root, exact = integer_sqrt(n)
    assert root * root <= n < (root + 1) * (root + 1)
    assert exact == (root * root == n)


def test_integer_sqrt_negative():
    with pytest.raises(GeometryError):
        integer_sqrt(-1)
