"""§7: squaring (Proposition 1) and the two replication approaches."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.random_shapes import random_connected_shape
from repro.geometry.rect import bounding_rect
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec
from repro.replication.columns import replicate_by_columns
from repro.replication.shifting import replicate_by_shifting
from repro.replication.squaring import find_deficiencies, run_squaring

shapes = st.integers(min_value=1, max_value=18).flatmap(
    lambda size: st.integers(min_value=0, max_value=2**31).map(
        lambda seed: random_connected_shape(size, seed=seed)
    )
)


def test_proposition_1_rectangles_have_no_deficiencies():
    rect = Shape.from_cells([Vec(x, y) for x in range(3) for y in range(2)])
    assert find_deficiencies(set(rect.cells), set(rect.edges)) == []


def test_proposition_1_non_rectangles_have_deficiencies():
    l_shape = Shape.from_cells([Vec(0, 0), Vec(1, 0), Vec(1, 1)])
    defs = find_deficiencies(set(l_shape.cells), set(l_shape.edges))
    assert any(d.kind == "node" and d.cell == Vec(0, 1) for d in defs)


def test_missing_edge_detected():
    cells = [Vec(0, 0), Vec(1, 0), Vec(1, 1), Vec(0, 1)]
    ring = Shape.from_cells(
        cells,
        edges=[
            frozenset((Vec(0, 0), Vec(1, 0))),
            frozenset((Vec(1, 0), Vec(1, 1))),
            frozenset((Vec(1, 1), Vec(0, 1))),
        ],
    )
    defs = find_deficiencies(set(ring.cells), set(ring.edges))
    assert any(d.kind == "edge" for d in defs)


@settings(max_examples=25, deadline=None)
@given(shapes)
def test_squaring_completes_to_bounding_rect(shape):
    result = run_squaring(shape, seed=0)
    assert result.rectangle.is_full_rectangle()
    expected = bounding_rect(shape)
    assert result.rectangle.normalize().cells == expected.normalize().cells
    # On-labels preserved exactly.
    on = {c for c, v in result.rectangle.normalize().labels if v == 1}
    assert on == set(shape.normalize().cells)


def test_squaring_counts_fillers():
    l_shape = Shape.from_cells([Vec(0, 0), Vec(1, 0), Vec(1, 1)])
    result = run_squaring(l_shape, seed=1)
    assert result.fillers_used == 1
    assert result.interactions > 0


@settings(max_examples=15, deadline=None)
@given(shapes)
def test_shifting_replicates_exactly(shape):
    res = replicate_by_shifting(shape, seed=1)
    assert res.identical
    assert res.original.same_up_to_translation(shape.normalize())


@settings(max_examples=15, deadline=None)
@given(shapes)
def test_columns_replicate_exactly(shape):
    res = replicate_by_columns(shape, seed=2)
    assert res.identical
    assert res.original.same_up_to_translation(shape.normalize())


def test_waste_is_twice_the_rect_slack():
    shape = Shape.from_cells([Vec(0, 0), Vec(1, 0), Vec(2, 0), Vec(2, 1)])
    rect_size = 6  # 3 x 2
    for replicate in (replicate_by_shifting, replicate_by_columns):
        res = replicate(shape, seed=3)
        assert res.nodes_used == 2 * rect_size
        assert res.waste == 2 * (rect_size - 4)


def test_both_approaches_agree():
    rng = random.Random(9)
    for _ in range(5):
        shape = random_connected_shape(12, rng)
        a = replicate_by_shifting(shape, seed=4)
        b = replicate_by_columns(shape, seed=5)
        assert a.replica.same_up_to_translation(b.replica)
        assert a.waste == b.waste
