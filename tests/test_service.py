"""Tests for the sweep service (repro.experiments.service).

Drives a real daemon — asyncio server on an ephemeral localhost port,
blocking NDJSON client, process-pool fan-out, journalled queue — through
the submit/status/watch/fetch round trip, and pins the tentpole
behaviors: a resubmitted sweep is served 100% from the trial store, and
queued jobs survive a service restart via the journal.
"""

import json

import pytest

from repro.errors import ReproError
from repro.experiments import SweepSpec, TrialStore, run_sweep, validate_payload
from repro.experiments.result import ExperimentResult
from repro.experiments.service import (
    JOB_SCHEMA,
    QUEUE_JOURNAL,
    ServiceClient,
    SweepService,
    serve_in_thread,
    sweep_from_dict,
    sweep_to_dict,
)

#: 2 grid points x 2 derived seeds = 4 fast trials.
SWEEP = SweepSpec(
    scenario="counting",
    grid={"n": [8, 12], "trials": [1]},
    trials=2,
    base_seed=3,
)


@pytest.fixture
def running(tmp_path):
    """A live service on an ephemeral port + a connected client."""
    store = TrialStore(tmp_path / "trials")
    service, thread = serve_in_thread(tmp_path / "state", workers=2, store=store)
    client = ServiceClient(state_dir=tmp_path / "state", timeout=120.0)
    yield service, client, store
    try:
        client.shutdown()
    except ReproError:
        pass  # already shut down by the test
    thread.join(timeout=30)


class TestWireBasics:
    def test_ping(self, running):
        _service, client, _store = running
        final = client.ping()
        assert final["ok"] and final["jobs"] == 0

    def test_port_file_written(self, running, tmp_path):
        service, client, _store = running
        port = int((tmp_path / "state" / "port").read_text().strip())
        assert port == service.bound_port == client.port

    def test_missing_port_file_is_usage_error(self, tmp_path):
        client = ServiceClient(state_dir=tmp_path / "nowhere")
        with pytest.raises(ReproError, match="not running"):
            client.ping()

    def test_unknown_command_rejected(self, running):
        _service, client, _store = running
        with pytest.raises(ReproError, match="unknown cmd"):
            client._final({"cmd": "frobnicate"})

    def test_bad_sweep_rejected_at_submit(self, running):
        _service, client, _store = running
        with pytest.raises(ReproError, match="unknown scenario"):
            client.submit({"scenario": "frobnicate"})
        with pytest.raises(ReproError, match="unknown params"):
            client.submit(
                {"scenario": "counting", "grid": {"zap": [1]}}
            )

    def test_sweep_dict_round_trip(self):
        assert sweep_from_dict(sweep_to_dict(SWEEP)) == SWEEP


class TestSubmitAndCache:
    def test_resubmission_served_entirely_from_cache(self, running):
        _service, client, _store = running
        first = client.submit(SWEEP, wait=True)
        assert first["status"] == "done"
        assert first["total"] == 4 and first["misses"] == 4 and first["hits"] == 0
        second = client.submit(SWEEP, wait=True)
        assert second["status"] == "done"
        assert second["hits"] == second["total"] == 4 and second["misses"] == 0

    def test_fetch_matches_in_process_run(self, running):
        _service, client, _store = running
        final = client.submit(SWEEP, wait=True)
        payload = client.fetch(final["id"])
        assert validate_payload(payload) == []
        served = [ExperimentResult.from_dict(d) for d in payload["results"]]
        local = run_sweep(SWEEP)
        assert [r.comparable() for r in served] == [
            r.comparable() for r in local
        ]

    def test_progress_events_stream_and_mark_cache_hits(self, running):
        _service, client, _store = running
        cold_events, warm_events = [], []
        client.submit(SWEEP, wait=True, on_event=cold_events.append)
        client.submit(SWEEP, wait=True, on_event=warm_events.append)
        cold_trials = [e for e in cold_events if e.get("event") == "trial"]
        warm_trials = [e for e in warm_events if e.get("event") == "trial"]
        assert len(cold_trials) == len(warm_trials) == 4
        assert not any(e["cached"] for e in cold_trials)
        assert all(e["cached"] for e in warm_trials)
        # Trial events carry the derived seed of the trial they report.
        seeds = {s.resolved().seed for s in SWEEP.specs()}
        assert {e["seed"] for e in warm_trials} == seeds

    def test_submit_without_wait_then_watch(self, running):
        _service, client, _store = running
        final = client.submit(SWEEP)
        assert final["ok"] and final["total"] == 4
        done = client.watch(final["id"])
        assert done["status"] == "done" and done["completed"] == 4

    def test_status_lists_jobs_fifo(self, running):
        _service, client, _store = running
        a = client.submit(SWEEP, wait=True)
        b = client.submit(SWEEP, wait=True)
        listing = client.status()
        assert [j["id"] for j in listing["jobs"]] == [a["id"], b["id"]]
        one = client.status(a["id"])
        assert one["job"]["id"] == a["id"] and one["job"]["status"] == "done"

    def test_fetch_unknown_and_unfinished_jobs_fail_cleanly(self, running):
        _service, client, _store = running
        with pytest.raises(ReproError, match="unknown job"):
            client.fetch("job-9999-deadbeef")
        with pytest.raises(ReproError, match="unknown job"):
            client.watch("job-9999-deadbeef")


class TestPersistence:
    def test_journal_records_schema(self, running, tmp_path):
        _service, client, _store = running
        client.submit(SWEEP, wait=True)
        lines = [
            json.loads(line)
            for line in (tmp_path / "state" / QUEUE_JOURNAL)
            .read_text()
            .splitlines()
        ]
        kinds = [r["kind"] for r in lines]
        assert kinds == ["job", "done"]
        assert lines[0]["schema"] == JOB_SCHEMA
        assert sweep_from_dict(lines[0]["sweep"]) == SWEEP
        assert lines[1]["status"] == "done" and lines[1]["hits"] == 0

    def test_done_jobs_survive_restart(self, tmp_path):
        store = TrialStore(tmp_path / "trials")
        service, thread = serve_in_thread(
            tmp_path / "state", workers=1, store=store
        )
        client = ServiceClient(state_dir=tmp_path / "state", timeout=120.0)
        final = client.submit(SWEEP, wait=True)
        client.shutdown()
        thread.join(timeout=30)

        _service2, thread2 = serve_in_thread(
            tmp_path / "state", workers=1, store=store
        )
        client2 = ServiceClient(state_dir=tmp_path / "state", timeout=120.0)
        try:
            listing = client2.status()
            assert [j["status"] for j in listing["jobs"]] == ["done"]
            payload = client2.fetch(final["id"])
            assert validate_payload(payload) == []
        finally:
            client2.shutdown()
            thread2.join(timeout=30)

    def test_unfinished_job_requeued_on_restart_and_mostly_cached(
        self, tmp_path
    ):
        """A job journalled but never finished (crash mid-run) re-enters
        the FIFO queue on restart — and trials already in the store are
        not recomputed."""
        store = TrialStore(tmp_path / "trials")
        state = tmp_path / "state"
        state.mkdir()
        # Pre-warm half the trials, then forge a journal with a submitted
        # job that has no matching "done" record.
        specs = [s.resolved() for s in SWEEP.specs()]
        from repro.experiments.runner import run_experiment

        for spec in specs[:2]:
            store.put(spec, run_experiment(spec))
        journal = {
            "kind": "job",
            "schema": JOB_SCHEMA,
            "id": "job-0007-cafecafe",
            "sweep": sweep_to_dict(SWEEP),
            "workers": 1,
        }
        (state / QUEUE_JOURNAL).write_text(json.dumps(journal) + "\n")

        _service, thread = serve_in_thread(state, workers=1, store=store)
        client = ServiceClient(state_dir=state, timeout=120.0)
        try:
            done = client.watch("job-0007-cafecafe")
            assert done["status"] == "done"
            assert done["hits"] == 2 and done["misses"] == 2
            payload = client.fetch("job-0007-cafecafe")
            assert validate_payload(payload) == []
            # New ids keep counting up past the recovered sequence.
            nxt = client.submit(SWEEP)
            assert nxt["id"].startswith("job-0008-")
        finally:
            client.shutdown()
            thread.join(timeout=30)

    def test_torn_journal_tail_ignored(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        (state / QUEUE_JOURNAL).write_text('{"kind": "job", "schema": "')
        service = SweepService(state_dir=state)
        assert service._recover() == []
