"""Turing machine substrate and the hand-written machines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.machines.programs import (
    always_accept_tm,
    binary_less_than_tm,
    encode_comparison,
    parity_tm,
)
from repro.machines.tm import RIGHT, TuringMachine, binary_digits


def test_binary_digits():
    assert binary_digits(0) == ["0"]
    assert binary_digits(5) == ["1", "0", "1"]
    assert binary_digits(5, width=5) == ["0", "0", "1", "0", "1"]
    with pytest.raises(MachineError):
        binary_digits(8, width=3)
    with pytest.raises(MachineError):
        binary_digits(-1)


def test_comparator_exhaustive():
    tm = binary_less_than_tm()
    for a in range(20):
        for b in range(20):
            assert tm.accepts(encode_comparison(a, b, 5)) == (a < b), (a, b)


def test_comparator_metering():
    tm = binary_less_than_tm()
    res = tm.run(encode_comparison(3, 9, 4))
    assert res.accepted and res.steps > 0 and res.space >= 9


def test_space_bound_enforced():
    tm = binary_less_than_tm()
    with pytest.raises(MachineError):
        tm.run(encode_comparison(3, 9, 6), max_space=5)


def test_step_bound_enforced():
    looper = TuringMachine(
        {("s", "_"): ("s", "_", RIGHT)}, start="s", accept="a", reject="r"
    )
    with pytest.raises(MachineError):
        looper.run([], max_steps=100)


def test_missing_transition_rejects():
    tm = TuringMachine({}, start="s", accept="a", reject="r")
    assert not tm.accepts(["0"])


def test_halting_states_cannot_transition():
    with pytest.raises(MachineError):
        TuringMachine(
            {("a", "0"): ("a", "0", RIGHT)}, start="s", accept="a", reject="r"
        )


def test_bad_move_rejected():
    with pytest.raises(MachineError):
        TuringMachine(
            {("s", "0"): ("s", "0", 5)}, start="s", accept="a", reject="r"
        )


def test_always_accept_and_parity():
    assert always_accept_tm().accepts(["0", "1"])
    assert parity_tm().accepts(["1", "0"])
    assert not parity_tm().accepts(["0", "1"])


def test_states_property():
    tm = parity_tm()
    assert {"s", "back", "accept", "reject"} <= tm.states


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 500), st.integers(0, 500))
def test_comparator_property(a, b):
    tm = binary_less_than_tm()
    assert tm.accepts(encode_comparison(a, b, 10)) == (a < b)
