"""Rotation group properties (C4 in 2D, the 24 cube rotations in 3D)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.rotation import (
    ROTATIONS_2D,
    ROTATIONS_3D,
    identity_rotation,
    rotations_for_dimension,
    rotations_mapping,
)
from repro.geometry.vec import UNIT_VECTORS, Vec

coords = st.integers(min_value=-20, max_value=20)
vecs = st.builds(Vec, coords, coords, coords)
rot2 = st.sampled_from(ROTATIONS_2D)
rot3 = st.sampled_from(ROTATIONS_3D)


def test_group_sizes():
    assert len(ROTATIONS_2D) == 4
    assert len(ROTATIONS_3D) == 24


def test_identity_in_both_groups():
    assert identity_rotation in ROTATIONS_2D
    assert identity_rotation in ROTATIONS_3D


def test_2d_rotations_fix_z_axis():
    for r in ROTATIONS_2D:
        assert r.is_2d()


def test_dimension_lookup():
    assert rotations_for_dimension(2) == ROTATIONS_2D
    assert rotations_for_dimension(3) == ROTATIONS_3D
    with pytest.raises(GeometryError):
        rotations_for_dimension(4)


@given(rot3, rot3)
def test_closure_under_composition(a, b):
    assert a.compose(b) in ROTATIONS_3D


@given(rot3)
def test_inverse_in_group_and_cancels(r):
    inv = r.inverse()
    assert inv in ROTATIONS_3D
    assert r.compose(inv) == identity_rotation
    assert inv.compose(r) == identity_rotation


@given(rot3, vecs)
def test_rotation_preserves_norm(r, v):
    assert r.apply(v).manhattan() >= 0
    # Orthogonal integer matrices preserve the Euclidean norm exactly.
    a = r.apply(v)
    assert a.x**2 + a.y**2 + a.z**2 == v.x**2 + v.y**2 + v.z**2


@given(rot3, rot3, vecs)
def test_composition_applies_in_order(a, b, v):
    assert a.compose(b).apply(v) == a.apply(b.apply(v))


def test_unit_vector_stabilizers():
    # In 2D exactly one rotation maps any unit direction to any other
    # in-plane direction; in 3D exactly four (the C4 stabilizer of an axis).
    planar = [u for u in UNIT_VECTORS if u.z == 0]
    for src in planar:
        for dst in planar:
            assert len(rotations_mapping(src, dst, 2)) == 1
    for src in UNIT_VECTORS:
        for dst in UNIT_VECTORS:
            assert len(rotations_mapping(src, dst, 3)) == 4


def test_2d_cannot_map_out_of_plane():
    assert rotations_mapping(Vec(1, 0, 0), Vec(0, 0, 1), 2) == ()
