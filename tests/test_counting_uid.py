"""Theorems 2 and 3: counting with unique ids (§5.3)."""

import random

import pytest

from repro.population.counting_uid import (
    SimpleUIDCounting,
    UIDCounting,
    UIDNodeState,
    run_simple_uid,
    run_uid_counting,
)
from repro.population.model import PopulationSimulator


def test_simple_protocol_counts_exactly_whp():
    """Theorem 2: when a node terminates, w.h.p. |A_u| = n.

    The guarantee needs ``n^b`` to dominate the meet-everybody time, so b
    must be at least 3 (with b = 2 termination races the coupon collector
    and the count is frequently short — see the bench).
    """
    hits = 0
    for seed in range(10):
        res = run_simple_uid(6, b=3, seed=seed)
        hits += int(res.output == 6)
    assert hits >= 8


def test_simple_protocol_windows():
    from repro.population.counting_uid import SimpleUIDState

    s = SimpleUIDState(uid=0)
    for other in (1, 2):
        s.observe(other, b=2)
    assert s.first_window == [1, 2] and not s.halted
    s.observe(1, b=2)
    s.observe(3, b=2)
    assert not s.halted and s.current_window == []  # mismatch cleared
    s.observe(1, b=2)
    s.observe(2, b=2)
    assert s.halted
    assert s.count == 4  # ids 1, 2, 3 plus itself


def test_simple_protocol_larger_b_takes_longer():
    t2 = run_simple_uid(5, b=2, seed=3).interactions
    t3 = run_simple_uid(5, b=3, seed=3).interactions
    # Theta(n^b): one more exponent should dominate (allow slack for noise).
    assert t3 > t2


@pytest.mark.parametrize("n", [8, 32, 96])
def test_protocol3_halter_is_max_and_bound_holds(n):
    ok_max = 0
    ok_bound = 0
    trials = 8
    for seed in range(trials):
        res = run_uid_counting(n, b=4, seed=seed)
        ok_max += int(res.halter_is_max)
        ok_bound += int(res.output_is_upper_bound)
    assert ok_max >= trials - 1
    assert ok_bound >= trials - 1


def test_protocol3_deactivation_semantics():
    proto = UIDCounting(b=2)
    u = UIDNodeState(uid=10)
    v = UIDNodeState(uid=3)
    proto._ordered(u, v)
    assert not v.active  # smaller id deactivated on contact
    assert v.belongs == 10 and v.marked == 1 and u.count1 == 1
    # A medium node that meets v later sees the bigger owner and stops.
    w = UIDNodeState(uid=7)
    proto._ordered(w, v)
    assert not w.active and w.count1 == 0


def test_protocol3_second_marking_requires_head_start():
    proto = UIDCounting(b=3)
    u = UIDNodeState(uid=10)
    v = UIDNodeState(uid=1)
    proto._ordered(u, v)
    assert v.marked == 1
    proto._ordered(u, v)  # count1 = 1 < b: second marking deferred
    assert v.marked == 1 and u.count2 == 0


def test_protocol3_halts_via_simulator():
    sim = PopulationSimulator(UIDCounting(b=3), 20, seed=5)
    res = sim.run(max_interactions=10_000_000, require_halt=True)
    assert res.terminated


def test_uid_assignment_is_permutation():
    states = SimpleUIDCounting(b=2).initial_states(10, random.Random(0))
    assert sorted(s.uid for s in states) == list(range(10))
