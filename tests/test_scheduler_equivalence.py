"""Scheduler law-equivalence: seeded trajectories must be *identical*.

The scheduler contract (``repro.core.scheduler``) makes every uniform
scheduler consume the same RNG draws over the same canonically ordered
effective list, so seeded runs of ``enumerate``, ``rejection``, ``hot``
(cached), and ``hot`` (brute-force) must produce byte-identical event
trajectories and final configurations — not merely agree in law. These
tests pin that across the paper's line, square, and replication protocols,
and drive the incremental cache against the reference enumeration through
merges, splits, fault injection, and synchronous rounds.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import (
    EffectiveCandidateCache,
    candidate_sort_key,
    hot_effective_candidates,
    reference_effective_candidates,
)
from repro.core.protocol import Rule, RuleProtocol
from repro.core.scheduler import evaluate, make_scheduler
from repro.core.simulator import Simulation
from repro.core.trace import TraceRecorder, world_to_dict
from repro.core.world import World
from repro.faults.injection import FaultySimulation, break_random_bond
from repro.geometry.ports import PORTS_2D, opposite, ports_for_dimension
from repro.protocols.line import spanning_line_protocol
from repro.protocols.replication import (
    no_leader_line_replication_protocol,
    replication_world,
)
from repro.protocols.square import square_protocol

KINDS = (
    ("enumerate", {}),
    ("rejection", {}),
    ("hot", {"incremental": True}),
    ("hot", {"incremental": False}),
)


def gluing_protocol() -> RuleProtocol:
    rules = [Rule("g", p, "g", opposite(p), 0, "g", "g", 1) for p in PORTS_2D]
    return RuleProtocol(rules, initial_state="g", name="gluing")


def _trajectory(make_world, protocol, kind, kwargs, seed, max_events):
    world = make_world()
    rec = TraceRecorder()
    sim = Simulation(
        world,
        protocol,
        scheduler=make_scheduler(kind, **kwargs),
        seed=seed,
        trace=rec.hook,
        check_invariants=True,
    )
    sim.run(max_events=max_events)
    return rec.to_list(), world_to_dict(world)


SCENARIOS = {
    "line": (
        spanning_line_protocol,
        lambda protocol: World.of_free_nodes(9, protocol, leaders=1),
        200,
    ),
    "square": (
        square_protocol,
        lambda protocol: World.of_free_nodes(9, protocol, leaders=1),
        200,
    ),
    "replication": (
        no_leader_line_replication_protocol,
        lambda protocol: replication_world(4, free_nodes=8, leader_left="e"),
        120,
    ),
    "gluing": (
        gluing_protocol,
        lambda protocol: World.of_free_nodes(8, protocol, leaders=0),
        200,
    ),
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_seeded_trajectories_identical_across_schedulers(name):
    make_protocol, make_world, max_events = SCENARIOS[name]
    protocol = make_protocol()
    for seed in (0, 7, 123):
        runs = [
            _trajectory(
                lambda: make_world(protocol), protocol, kind, kwargs, seed,
                max_events,
            )
            for kind, kwargs in KINDS
        ]
        reference = runs[0]
        for (kind, kwargs), run in zip(KINDS[1:], runs[1:]):
            assert run[0] == reference[0], (name, seed, kind, kwargs)
            assert run[1] == reference[1], (name, seed, kind, kwargs)


@pytest.mark.parametrize("dimension", (2, 3))
def test_seeded_trajectories_identical_under_faults(dimension):
    """The two-RNG-draws-per-event contract, pinned on split-heavy runs.

    ``FaultySimulation`` interleaves fault coins (bond breakage and node
    excision) with protocol events *on the same RNG stream*: any scheduler
    consuming a different number of draws per event would desynchronize
    every subsequent fault, so identical fault logs + final configurations
    across all uniform schedulers pin the contract on trajectories
    dominated by splits and surgery — not just growth-only ones.
    """
    ports = PORTS_2D if dimension == 2 else ports_for_dimension(3)
    rules = [Rule("g", p, "g", opposite(p), 0, "g", "g", 1) for p in ports]
    protocol = RuleProtocol(
        rules, initial_state="g", name="gluing", dimension=dimension
    )
    uniform_kinds = list(KINDS)  # round-robin consumes no randomness
    for seed in (0, 11):
        runs = []
        for kind, kwargs in uniform_kinds:
            world = World.of_free_nodes(10, protocol, leaders=0)
            fsim = FaultySimulation(
                world,
                protocol,
                break_prob=0.25,
                excise_prob=0.15,
                scheduler=make_scheduler(kind, **kwargs),
                seed=seed,
            )
            fsim.run(max_steps=150)
            runs.append(
                (
                    fsim.events,
                    [
                        (
                            b.at_event,
                            tuple(
                                sorted((n, p.value) for n, p in b.bond)
                            ),
                        )
                        for b in fsim.breakages
                    ],
                    [(e.at_event, e.nid) for e in fsim.excisions],
                    world_to_dict(world),
                )
            )
        reference = runs[0]
        # The workload must actually be split-heavy to pin anything.
        assert reference[1] and reference[2], "no faults fired"
        for (kind, kwargs), run in zip(uniform_kinds[1:], runs[1:]):
            assert run == reference, (dimension, seed, kind, kwargs)


def test_raw_step_counters_still_tracked():
    protocol = spanning_line_protocol()
    for kind in ("enumerate", "rejection"):
        world = World.of_free_nodes(6, protocol, leaders=1)
        sim = Simulation(world, protocol, scheduler=make_scheduler(kind), seed=2)
        res = sim.run_to_stabilization(max_events=1000)
        assert res.raw_steps is not None and res.raw_steps >= res.events


def test_rejection_fallback_counts_the_wait_once():
    """With max_trials=1 the rejection sampler falls back to the geometric
    tail almost every event; raw steps must still be plausibly sized (the
    old code double-counted the observed wait on fallback)."""
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(6, protocol, leaders=1)
    sim = Simulation(
        world, protocol, scheduler=make_scheduler("rejection", max_trials=1),
        seed=3,
    )
    res = sim.run_to_stabilization(max_events=1000)
    assert res.raw_steps is not None and res.raw_steps >= res.events
    # Compare against the exact reference on the same seed: same trajectory,
    # and the raw counters agree in magnitude (same law, different draws).
    world2 = World.of_free_nodes(6, protocol, leaders=1)
    sim2 = Simulation(
        world2, protocol, scheduler=make_scheduler("enumerate"), seed=3
    )
    res2 = sim2.run_to_stabilization(max_events=1000)
    assert res.events == res2.events
    assert res.raw_steps < 100 * res2.raw_steps


class TestIncrementalCacheEqualsReference:
    """The cache must equal the effective subset of the reference
    enumeration after *every* kind of world mutation."""

    def _assert_in_sync(self, cache, world, protocol):
        got = cache.refresh(world, protocol, evaluate)
        want, _perm = reference_effective_candidates(world, protocol, evaluate)
        assert [candidate_sort_key(c) for c, _u in got] == [
            candidate_sort_key(c) for c, _u in want
        ]
        assert got == want

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_through_gluing_and_breakage(self, n, seed):
        protocol = gluing_protocol()
        world = World(2)
        for _ in range(n):
            world.add_free_node("g")
        rng = random.Random(seed)
        cache = EffectiveCandidateCache()
        sim = Simulation(world, protocol, seed=seed)
        for _ in range(60):
            if rng.random() < 0.25:
                break_random_bond(world, rng)
                sim.stabilized = False
            self._assert_in_sync(cache, world, protocol)
            if sim.step() is None and rng.random() < 0.5:
                break

    @given(
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_through_batched_merges(self, n, seed, gap):
        # Multiple merges may land between two refreshes (a lagging
        # consumer); merge-delta pruning must stay exact even when *both*
        # endpoint components of a cached entry merged in the same gap.
        protocol = gluing_protocol()
        world = World(2)
        for _ in range(n):
            world.add_free_node("g")
        cache = EffectiveCandidateCache()
        sim = Simulation(world, protocol, seed=seed)
        self._assert_in_sync(cache, world, protocol)
        for _ in range(20):
            stepped = None
            for _ in range(gap):
                stepped = sim.step()
            self._assert_in_sync(cache, world, protocol)
            if stepped is None:
                break

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_through_replication_walks(self, seed):
        protocol = no_leader_line_replication_protocol()
        world = replication_world(3, free_nodes=5, leader_left="e")
        cache = EffectiveCandidateCache()
        sim = Simulation(world, protocol, seed=seed)
        for _ in range(40):
            self._assert_in_sync(cache, world, protocol)
            if sim.step() is None:
                break

    def test_through_synchronous_rounds(self):
        # Sync-round state writes and bond flips must invalidate the cache
        # through the journal even though no scheduler event happened.
        from repro.sync.model import SynchronousProgram, RoundOutcome
        from repro.sync.runner import run_component_rounds

        def flood(view):
            if view.state == "hot" or "hot" in view.neighbors.values():
                return RoundOutcome("hot")
            return RoundOutcome(view.state)

        protocol = gluing_protocol()
        world = World(2)
        from repro.geometry.vec import Vec

        world.add_component_from_cells(
            {Vec(0, 0): "hot", Vec(1, 0): "g", Vec(2, 0): "g"}
        )
        world.add_free_node("g")
        cache = EffectiveCandidateCache()
        self._assert_in_sync(cache, world, protocol)
        run_component_rounds(world, SynchronousProgram(flood), rounds=2)
        self._assert_in_sync(cache, world, protocol)

    def test_through_external_population_growth(self):
        protocol = gluing_protocol()
        world = World(2)
        world.add_free_node("g")
        cache = EffectiveCandidateCache()
        self._assert_in_sync(cache, world, protocol)
        world.add_free_node("g")  # node added *after* the cache was built
        self._assert_in_sync(cache, world, protocol)

    def test_journal_truncation_forces_rebuild(self):
        protocol = gluing_protocol()
        world = World(2)
        for _ in range(4):
            world.add_free_node("g")
        cache = EffectiveCandidateCache()
        self._assert_in_sync(cache, world, protocol)
        rebuilds = cache.full_rebuilds
        # Overflow the journal without the cache looking.
        for _ in range(World.CHANGE_LOG_LIMIT + 10):
            world.note_change(0)
        self._assert_in_sync(cache, world, protocol)
        assert cache.full_rebuilds == rebuilds + 1


class TestRoundRobinDeterminism:
    def test_sort_key_orders_alignments(self):
        # Two 3D inter-component candidates may differ only in the
        # placement rotation; the canonical order must separate them.
        world = World(3)
        world.add_free_node("g")
        world.add_free_node("g")
        from repro.geometry.ports import Port

        cands = world.inter_candidates(0, Port.RIGHT, 1, Port.LEFT)
        assert len(cands) == 4  # the C4 stabilizer of the bond axis
        keys = [candidate_sort_key(c) for c in cands]
        assert len(set(keys)) == 4
        prefix = {k[:5] for k in keys}
        assert len(prefix) == 1  # they differ *only* past the placement

    def test_seeded_round_robin_reproducible(self):
        protocol = spanning_line_protocol(dimension=3)

        def run_once():
            world = World.of_free_nodes(6, protocol, leaders=1)
            rec = TraceRecorder()
            sim = Simulation(
                world,
                protocol,
                scheduler=make_scheduler("round-robin"),
                seed=0,
                trace=rec.hook,
            )
            sim.run_to_stabilization(max_events=2000)
            return rec.to_list(), world_to_dict(world)

        assert run_once() == run_once()

    def test_round_robin_incremental_matches_brute(self):
        protocol = spanning_line_protocol()

        def run_once(incremental):
            world = World.of_free_nodes(7, protocol, leaders=1)
            rec = TraceRecorder()
            sim = Simulation(
                world,
                protocol,
                scheduler=make_scheduler("round-robin", incremental=incremental),
                seed=0,
                trace=rec.hook,
            )
            sim.run_to_stabilization(max_events=2000)
            return rec.to_list(), world_to_dict(world)

        assert run_once(True) == run_once(False)


def test_hot_enumeration_is_canonical_and_sorted():
    protocol = gluing_protocol()
    world = World(2)
    for _ in range(5):
        world.add_free_node("g")
    Simulation(world, protocol, seed=4).run(max_events=2)
    entries = hot_effective_candidates(world, protocol, evaluate)
    keys = [candidate_sort_key(c) for c, _u in entries]
    assert keys == sorted(keys)
    assert len(set(keys)) == len(keys)
    for cand, _update in entries:
        if cand.intra:
            assert cand.nid1 < cand.nid2
        else:
            cid1 = world.nodes[cand.nid1].component_id
            cid2 = world.nodes[cand.nid2].component_id
            assert cid1 < cid2
