"""Tests for the streaming trace subsystem (``repro.trace``).

The contract under test: a recorded ``repro.trace/v1`` file replays into
**any** intermediate world bit-exactly — across all four schedulers, both
candidate backends, and under injected faults — and a tampered or
truncated trace is *rejected* with :class:`TraceError`, never replayed
into a wrong world. Trace bytes themselves are deterministic: identical
(initial world, seed, scheduler) produce byte-identical files, columnar
or fallback backend alike.

Also covers the in-memory compatibility layer's sharpened divergence
diagnostics (``repro.core.trace.replay`` now validates node states, not
just bond state) and the sweep service's ``trace`` streaming mode.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import columnar
from repro.core.scheduler import make_scheduler
from repro.core.simulator import Simulation
from repro.core.trace import TraceRecorder, world_from_dict, world_to_dict
from repro.core.world import World
from repro.errors import SimulationError, TraceError
from repro.faults.injection import FaultySimulation
from repro.protocols.line import spanning_line_protocol
from repro.trace import (
    TraceReader,
    TraceWriter,
    record_scenario,
    recording,
    replay_trace,
    validate_trace_bytes,
    world_digest,
)

HAVE_NUMPY = columnar.np is not None

SCHEDULERS = ("hot", "enumerate", "rejection", "round-robin")


def record_line_run(path, n, seed, scheduler="hot", checkpoint_every=8):
    """Record one spanning-line run; returns (final world, writer)."""
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(n, protocol, leaders=1)
    writer = TraceWriter(
        path,
        scenario="line",
        seed=seed,
        scheduler=scheduler,
        checkpoint_every=checkpoint_every,
    )
    with recording(writer):
        sim = Simulation(
            world, protocol, scheduler=make_scheduler(scheduler), seed=seed
        )
        sim.run(max_events=100_000)
    writer.finalize()
    return world, writer


class TestRoundTrip:
    """record -> replay reproduces the final world hash bit-exactly."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @given(
        n=st.integers(min_value=4, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=6, deadline=None)
    def test_final_world_bit_exact(self, scheduler, n, seed, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("trace")
        world, writer = record_line_run(
            tmp / "run.trace", n, seed, scheduler=scheduler
        )
        res = replay_trace(writer.path, verify=True)
        assert res.digest == world_digest(world)
        assert world_to_dict(res.world) == world_to_dict(world)

    @given(
        n=st.integers(min_value=6, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
        frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=8, deadline=None)
    def test_intermediate_worlds_bit_exact(
        self, n, seed, frac, tmp_path_factory
    ):
        # Any --to-event target must equal a live run paused at that many
        # events — with and without checkpoint seek.
        tmp = tmp_path_factory.mktemp("trace")
        _world, writer = record_line_run(tmp / "run.trace", n, seed)
        trace = TraceReader.load(writer.path)
        target = round(frac * trace.events)
        seeked = replay_trace(trace, to_event=target, verify=True)
        full = replay_trace(trace, to_event=target, use_checkpoints=False)
        assert seeked.digest == full.digest
        assert seeked.events == full.events == target

        protocol = spanning_line_protocol()
        live_world = World.of_free_nodes(n, protocol, leaders=1)
        sim = Simulation(
            live_world, protocol, scheduler=make_scheduler("hot"), seed=seed
        )
        while sim.events < target:
            assert sim.step() is not None
        assert seeked.digest == world_digest(live_world)

    def test_checkpoint_seek_applies_fewer_records(self, tmp_path):
        _world, writer = record_line_run(
            tmp_path / "run.trace", 24, 7, checkpoint_every=4
        )
        trace = TraceReader.load(writer.path)
        assert trace.checkpoints(), "run too short to exercise seek"
        target = trace.events - 1
        seeked = replay_trace(trace, to_event=target)
        full = replay_trace(trace, to_event=target, use_checkpoints=False)
        assert seeked.digest == full.digest
        assert seeked.start_events > 0
        assert seeked.records_applied < full.records_applied

    def test_trace_bytes_deterministic(self, tmp_path):
        record_line_run(tmp_path / "a.trace", 10, 42)
        record_line_run(tmp_path / "b.trace", 10, 42)
        assert (tmp_path / "a.trace").read_bytes() == (
            tmp_path / "b.trace"
        ).read_bytes()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="only one backend available")
    def test_trace_bytes_identical_across_backends(self, tmp_path):
        # The determinism contract extends to the artifact: columnar and
        # pure-Python fallback backends must write byte-identical traces.
        record_line_run(tmp_path / "columnar.trace", 10, 5)
        try:
            columnar.set_columnar_default(False)
            record_line_run(tmp_path / "fallback.trace", 10, 5)
        finally:
            columnar.set_columnar_default(None)
        assert (tmp_path / "columnar.trace").read_bytes() == (
            tmp_path / "fallback.trace"
        ).read_bytes()

    def test_out_of_range_target_rejected(self, tmp_path):
        _world, writer = record_line_run(tmp_path / "run.trace", 6, 1)
        trace = TraceReader.load(writer.path)
        with pytest.raises(TraceError, match="outside the recorded range"):
            replay_trace(trace, to_event=trace.events + 1)


class TestFaultRoundTrip:
    """Out-of-band detach/excise records replay bit-exactly."""

    def build(self, seed, n=12):
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(n, protocol, leaders=1)
        fsim = FaultySimulation(
            world,
            protocol,
            break_prob=0.2,
            excise_prob=0.05,
            seed=seed,
            max_bonds_broken=5,
            max_excisions=2,
        )
        return world, fsim

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None)
    def test_faulty_run_replays_bit_exact(self, seed, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("trace")
        writer = TraceWriter(tmp / "f.trace", checkpoint_every=4)
        with recording(writer):
            world, fsim = self.build(seed)
            fsim.run(max_steps=5_000)
        writer.finalize()
        trace = TraceReader.load(writer.path)
        kinds = {r["kind"] for r in trace.records}
        if fsim.breakages:
            assert "detach" in kinds
        if fsim.excisions:
            assert "excise" in kinds

        res = replay_trace(trace, verify=True)
        assert res.digest == world_digest(world)

        # Mid-trace target == a live run paused at that many events
        # (same-step faults included; see repro.trace.replay docstring).
        target = trace.events // 2
        paused = replay_trace(trace, to_event=target, verify=True)
        live_world, live = self.build(seed)
        while live.events < target:
            assert live.step()
        assert paused.digest == world_digest(live_world)

    def test_untraced_trajectory_unchanged_by_recording(self, tmp_path):
        # Recording only observes: the traced run's final world equals an
        # untraced run of the same seed bit for bit.
        writer = TraceWriter(tmp_path / "f.trace")
        with recording(writer):
            traced_world, traced = self.build(123)
            traced.run(max_steps=5_000)
        writer.finalize()
        bare_world, bare = self.build(123)
        bare.run(max_steps=5_000)
        assert world_to_dict(bare_world) == world_to_dict(traced_world)


class TestTamperRejection:
    """A flipped byte is rejected with TraceError — never a wrong world."""

    @given(
        pos_frac=st.floats(min_value=0.0, max_value=1.0),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=20, deadline=None)
    def test_single_byte_flip_rejected(
        self, pos_frac, flip, tmp_path_factory
    ):
        tmp = tmp_path_factory.mktemp("trace")
        _world, writer = record_line_run(tmp / "run.trace", 8, 3)
        raw = bytearray(writer.path.read_bytes())
        pos = min(int(pos_frac * len(raw)), len(raw) - 1)
        raw[pos] ^= flip
        tampered = tmp / "tampered.trace"
        tampered.write_bytes(bytes(raw))
        assert validate_trace_bytes(bytes(raw)), "tampering went undetected"
        with pytest.raises(TraceError):
            replay_trace(tampered, verify=True)

    def test_truncated_trace_rejected(self, tmp_path):
        _world, writer = record_line_run(tmp_path / "run.trace", 8, 3)
        lines = writer.path.read_bytes().splitlines(keepends=True)
        truncated = b"".join(lines[:-1])  # drop the end anchor
        errors = validate_trace_bytes(truncated)
        assert any("end" in e for e in errors)

    def test_record_reordering_rejected(self, tmp_path):
        _world, writer = record_line_run(tmp_path / "run.trace", 8, 3)
        lines = writer.path.read_bytes().splitlines(keepends=True)
        assert len(lines) > 4
        lines[1], lines[2] = lines[2], lines[1]
        assert validate_trace_bytes(b"".join(lines))


class TestWriterAndReader:
    def test_stream_only_mode_touches_no_disk(self, tmp_path):
        records = []
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(6, protocol, leaders=1)
        writer = TraceWriter(None, sink=records.append, checkpoint_every=2)
        with recording(writer):
            Simulation(world, protocol, seed=1).run(max_events=1_000)
        assert writer.finalize() is None
        assert not list(tmp_path.iterdir())
        assert records[0]["kind"] == "header"
        assert records[-1]["kind"] == "end"
        # The streamed records reassemble into a loadable trace.
        trace = TraceReader.from_records(records)
        res = replay_trace(trace, verify=True)
        assert res.digest == records[-1]["world_digest"]

    def test_recording_nothing_raises(self, tmp_path):
        writer = TraceWriter(tmp_path / "empty.trace")
        with recording(writer):
            pass
        with pytest.raises(TraceError, match="captured no simulation"):
            writer.finalize()
        assert not (tmp_path / "empty.trace").exists()

    def test_pure_pipeline_scenario_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="captured no simulation"):
            record_scenario("repair", path=tmp_path / "repair.trace")

    def test_run_index_selects_simulation(self, tmp_path):
        # demo builds two Simulations (line then square); run_index picks.
        _r0, w0 = record_scenario(
            "demo", params={"n": 6}, seed=2, path=tmp_path / "r0.trace"
        )
        _r1, w1 = record_scenario(
            "demo",
            params={"n": 6},
            seed=2,
            path=tmp_path / "r1.trace",
            run_index=1,
        )
        h0 = TraceReader.load(w0.path).header
        h1 = TraceReader.load(w1.path).header
        assert h0["run"] == 0 and h1["run"] == 1
        assert h0["snapshot"] != h1["snapshot"]
        for path in (w0.path, w1.path):
            replay_trace(path, verify=True)

    def test_atomic_finalize_discipline(self, tmp_path):
        # Until finalize, nothing exists at the target path; an abort
        # leaves no tempfile behind either.
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(5, protocol, leaders=1)
        path = tmp_path / "run.trace"
        writer = TraceWriter(path)
        with recording(writer):
            Simulation(world, protocol, seed=0).run(max_events=1_000)
            assert not path.exists()
        writer.abort()
        assert list(tmp_path.iterdir()) == []

    def test_validate_trace_bytes_accepts_good_trace(self, tmp_path):
        _world, writer = record_line_run(tmp_path / "run.trace", 8, 9)
        assert validate_trace_bytes(writer.path.read_bytes()) == []


class TestCompatLayerDiagnostics:
    """Satellite: core replay validates node states with detail."""

    def _record(self, n=6, seed=4):
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(n, protocol, leaders=1)
        recorder = TraceRecorder()
        sim = Simulation(world, protocol, seed=seed, trace=recorder.hook)
        sim.run(max_events=1_000)
        return protocol, recorder.to_list()

    def test_state_divergence_reported_with_detail(self):
        from repro.core.trace import replay

        protocol, events = self._record()
        # Find a node an event updates and a *later* event touches again:
        # mutating its state between the two must fail at the later event,
        # naming the node and both states — the diagnostic for a world
        # that changed outside the replayed interaction stream.
        touched = {}
        later = nid = None
        for j, ev in enumerate(events):
            for cand in (ev["nid1"], ev["nid2"]):
                if cand in touched:
                    later, nid = j, cand
                    break
            if later is not None:
                break
            touched[ev["nid1"]] = j
            touched[ev["nid2"]] = j
        assert later is not None, "no node touched twice; enlarge the run"

        fresh = World.of_free_nodes(6, protocol, leaders=1)

        def stream():
            for j, ev in enumerate(events):
                if j == later:
                    fresh.set_state(nid, "rogue-state")
                yield ev

        with pytest.raises(SimulationError) as exc:
            replay(fresh, stream())
        msg = str(exc.value)
        assert f"replay event {events[later]['index']}" in msg
        assert f"node {nid} state diverged" in msg
        assert "rogue-state" in msg  # expected-vs-actual detail

    def test_bond_divergence_reports_expected_vs_actual(self):
        from repro.core.trace import replay

        protocol, events = self._record()
        bad = json.loads(json.dumps(events))
        bad[0]["bond"] = 1 - bad[0]["bond"]
        fresh = World.of_free_nodes(6, protocol, leaders=1)
        with pytest.raises(SimulationError, match="bond state diverged"):
            replay(fresh, bad)

    def test_clean_replay_still_passes(self):
        from repro.core.trace import replay

        protocol, events = self._record()
        fresh = World.of_free_nodes(6, protocol, leaders=1)
        replay(fresh, events, check_invariants=True)


class TestSnapshotRestore:
    def test_world_from_dict_bumps_versions(self):
        protocol = spanning_line_protocol()
        world = World.of_free_nodes(6, protocol, leaders=1)
        Simulation(world, protocol, seed=0).run(max_events=1_000)
        snapshot = world_to_dict(world)
        restored = world_from_dict(snapshot)
        # Restored components are rebuilt wholesale: their versions must
        # not alias the version a freshly-built component would carry.
        for comp in restored.components.values():
            assert comp.version >= 1
        assert world_to_dict(restored) == snapshot
        assert world_digest(restored) == world_digest(world)


class TestServiceTraceStream:
    """The sweep service's trace mode streams writer-identical records."""

    def test_streamed_records_match_local_recording(self, tmp_path):
        from repro.experiments.service import ServiceClient, serve_in_thread
        from repro.experiments.spec import SweepSpec
        from repro.errors import ReproError
        from repro.trace.encoding import encode_line

        _service, thread = serve_in_thread(
            tmp_path / "state", workers=1, store=tmp_path / "trials"
        )
        client = ServiceClient(state_dir=tmp_path / "state", timeout=120.0)
        sweep = SweepSpec(
            scenario="faulty-line",
            grid={"n": [10], "break_prob": [0.15]},
            trials=1,
            base_seed=5,
        )
        try:
            records = []
            final = client.submit(
                sweep,
                wait=True,
                trace=True,
                on_event=lambda ev: records.append(ev["record"])
                if ev.get("event") == "trace"
                else None,
            )
            assert final["status"] == "done" and final["misses"] == 1
            assert records[0]["kind"] == "header"
            assert records[-1]["kind"] == "end"

            streamed = b"".join(encode_line(r) for r in records)
            spec = [s.resolved() for s in sweep.specs()][0]
            _res, writer = record_scenario(
                spec.scenario,
                params=spec.params,
                seed=spec.seed,
                scheduler=spec.scheduler,
                path=tmp_path / "local.trace",
            )
            assert streamed == writer.path.read_bytes()

            # Resubmission is fully cached: nothing runs, nothing streams.
            rerun = []
            final2 = client.submit(
                sweep, wait=True, trace=True, on_event=rerun.append
            )
            assert final2["hits"] == 1
            assert not [e for e in rerun if e.get("event") == "trace"]
        finally:
            try:
                client.shutdown()
            except ReproError:
                pass
            thread.join(timeout=30)


class TestReaderEdgeCases:
    """Adversarial inputs: the reader rejects, never misreads."""

    def _record(self, tmp_path, checkpoint_every=8):
        path = tmp_path / "edge.trace"
        record_line_run(path, n=6, seed=4, checkpoint_every=checkpoint_every)
        return path

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_bytes(b"")
        assert validate_trace_bytes(b"") == ["empty trace (no header line)"]
        with pytest.raises(TraceError, match="empty trace"):
            TraceReader.load(path)
        with pytest.raises(TraceError, match="empty trace"):
            replay_trace(path)

    def test_header_only_is_unfinalized(self, tmp_path):
        path = self._record(tmp_path)
        header_line = path.read_bytes().splitlines(keepends=True)[0]
        lone = tmp_path / "header-only.trace"
        lone.write_bytes(header_line)
        errors = validate_trace_bytes(header_line)
        assert errors and "unfinalized" in errors[0]
        with pytest.raises(TraceError, match="unfinalized"):
            replay_trace(lone)

    def test_truncation_on_checkpoint_still_unfinalized(self, tmp_path):
        # Ending *exactly* on a checkpoint line is still a torn trace: a
        # checkpoint is a seek anchor, not an end anchor.
        path = self._record(tmp_path, checkpoint_every=2)
        lines = path.read_bytes().splitlines(keepends=True)
        last_cp = max(
            i
            for i, line in enumerate(lines)
            if json.loads(line)["kind"] == "checkpoint"
        )
        torn = b"".join(lines[: last_cp + 1])
        errors = validate_trace_bytes(torn)
        assert errors and "unfinalized" in errors[0]

    def test_final_event_on_checkpoint_boundary_seeks_to_zero_applies(
        self, tmp_path
    ):
        # A finalized trace whose last event lands exactly on a checkpoint:
        # seek-replay starts at that anchor and applies zero records.
        probe = self._record(tmp_path)
        events = TraceReader.load(probe).events
        path = tmp_path / "boundary.trace"
        record_line_run(path, n=6, seed=4, checkpoint_every=events)
        res = replay_trace(path, verify=True, use_checkpoints=True)
        assert res.start_events == events
        assert res.records_applied == 0
        full = replay_trace(path, verify=True, use_checkpoints=False)
        assert full.digest == res.digest

    def test_duplicate_end_record_rejected(self, tmp_path):
        path = self._record(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        doubled = b"".join(lines) + lines[-1]
        errors = validate_trace_bytes(doubled)
        assert errors == [f"line {len(lines)}: record after the end anchor"]

    def test_replay_to_event_zero_is_initial_world(self, tmp_path):
        path = self._record(tmp_path)
        res = replay_trace(path, to_event=0, verify=True)
        assert res.events == 0
        assert res.records_applied == 0
        header = TraceReader.load(path).header
        assert res.digest == header["snapshot_digest"]
