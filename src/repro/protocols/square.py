"""Protocol 1 *Square* (§4.2): stabilizing ``sqrt(n) x sqrt(n)`` square.

Transcribed verbatim from the paper. A unique leader starts in ``Lu``; it
first constructs a 2x2 square and then grows the square perimetrically in
the clockwise direction: whenever the leader tries to move through its
current heading and bumps into an already-attached ``q1``, it activates the
bond with it and turns; when the cell ahead is free, a fresh ``q0`` attaches
there and leadership transfers onto it.
"""

from __future__ import annotations

from repro.core.protocol import Rule, RuleProtocol
from repro.geometry.ports import Port

U, R, D, L = Port.UP, Port.RIGHT, Port.DOWN, Port.LEFT


def square_protocol() -> RuleProtocol:
    """Protocol 1 of the paper (6 states, 8 effective rules)."""
    rules = [
        # Growth: attach a free q0 ahead, move leadership onto it, rotate
        # heading clockwise (u -> r -> d -> l -> u).
        Rule("Lu", U, "q0", D, 0, "q1", "Lr", 1),
        Rule("Lr", R, "q0", L, 0, "q1", "Ld", 1),
        Rule("Ld", D, "q0", U, 0, "q1", "Ll", 1),
        Rule("Ll", L, "q0", R, 0, "q1", "Lu", 1),
        # Turning: the cell ahead is occupied by a q1 of the square; bond to
        # it and turn counter-clockwise (u -> l -> d -> r -> u) to keep
        # walking around the perimeter.
        Rule("Lu", U, "q1", D, 0, "Ll", "q1", 1),
        Rule("Lr", R, "q1", L, 0, "Lu", "q1", 1),
        Rule("Ld", D, "q1", U, 0, "Lr", "q1", 1),
        Rule("Ll", L, "q1", R, 0, "Ld", "q1", 1),
    ]
    return RuleProtocol(
        rules,
        initial_state="q0",
        leader_state="Lu",
        output_states={"q1", "Lu", "Lr", "Ld", "Ll"},
        hot_states=("Lu", "Lr", "Ld", "Ll"),
        name="square-protocol-1",
    )
