"""Protocol 1 *Square* (§4.2): stabilizing ``sqrt(n) x sqrt(n)`` square.

Transcribed verbatim from the paper. A unique leader starts in ``Lu``; it
first constructs a 2x2 square and then grows the square perimetrically in
the clockwise direction: whenever the leader tries to move through its
current heading and bumps into an already-attached ``q1``, it activates the
bond with it and turns; when the cell ahead is free, a fresh ``q0`` attaches
there and leadership transfers onto it.
"""

from __future__ import annotations

from repro.core.protocol import RuleProtocol
from repro.geometry.ports import Port
from repro.protocols.dsl import I, bonded, expand, fmt, opp, pfn, unbonded, when

U, R, D, L = Port.UP, Port.RIGHT, Port.DOWN, Port.LEFT

#: The clockwise quarter-turn of a 2D heading (u -> r -> d -> l -> u).
_CW = {U: R, R: D, D: L, L: U}


def turn_cw(port: Port) -> Port:
    return _CW[port]


def turn_ccw(port: Port) -> Port:
    return _CW[_CW[_CW[port]]]


def square_protocol() -> RuleProtocol:
    """Protocol 1 of the paper (6 states, 8 effective rules)."""
    specs = (
        # Growth: attach a free q0 ahead, move leadership onto it, rotate
        # heading clockwise (u -> r -> d -> l -> u).
        when(fmt("L{}", I), I, "q0", opp(I), unbonded)
        >> ("q1", fmt("L{}", pfn(turn_cw, I)), bonded),
        # Turning: the cell ahead is occupied by a q1 of the square; bond to
        # it and turn counter-clockwise (u -> l -> d -> r -> u) to keep
        # walking around the perimeter.
        when(fmt("L{}", I), I, "q1", opp(I), unbonded)
        >> (fmt("L{}", pfn(turn_ccw, I)), "q1", bonded),
    )
    return RuleProtocol(
        expand(specs),
        initial_state="q0",
        leader_state="Lu",
        output_states={"q1", "Lu", "Lr", "Ld", "Ll"},
        hot_states=("Lu", "Lr", "Ld", "Ll"),
        name="square-protocol-1",
    )
