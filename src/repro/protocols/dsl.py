"""A declarative rule DSL: port variables, wildcards, symmetric closure.

The paper writes transition families like

    (L_i, i), (q_0, j), 0  ->  (q_1, L_jbar, 1)    for all i, j in P

and each protocol module used to lower them by hand with nested Python
loops over the port set. This module makes the family itself the source
code: a *rule spec* is written once with **port variables**, and
:func:`expand` enumerates every assignment of the variables over the
model's port set, resolving derived ports (``opp``, ``pfn``) and derived
states (``fmt``, ``st``/``lift``) per assignment. Ineffective expansions
are dropped (identity transitions are never listed), duplicate identical
expansions are deduplicated, and conflicting expansions are rejected by
the :class:`~repro.core.protocol.RuleProtocol` compiler, which names both
offending rules.

Worked example — the §4.1 general spanning line protocol, whose leader
``L_i`` absorbs a free ``q0`` node through any port pair and re-emerges on
the new node heading through the port *opposite* the bonded one (which is
what keeps the line straight)::

    from repro.protocols.dsl import I, J, bonded, lift, opp, unbonded, when
    from repro.protocols.line import leader_state   # port -> f"L{port.value}"

    leader = lift(leader_state)
    SPECS = [
        when(leader(I), I, "q0", J, unbonded) >> ("q1", leader(opp(J)), bonded),
    ]
    rules = expand(SPECS, dimension=2)   # 16 rules: 4 choices of i x 4 of j
    # expand(SPECS, dimension=3) gives the 36-rule 3D variant verbatim.

Here ``I`` and ``J`` are port variables; using ``J`` only on the right
node makes it a *wildcard* (any port of the free node matches);
``leader(opp(J))`` is a derived state computed from the assignment. The
protocol modules of this package (``line``, ``square``, ``square2``,
``replication``, ``leaderless_line``) are all written in this DSL; the
property tests pin their expansions against the paper's hand-written
tables rule for rule.

Concrete rules are specs without variables::

    when("L2d", D, "q0", U, unbonded) >> ("L1u", "q1", bonded)

and the symmetric rigidity family of Protocol 2 is one line::

    when("q1", I, "q1", opp(I), unbonded) >> ("q1", "q1", bonded)

Specs with *identical* states on both sides and an asymmetric result
(leader-vs-leader elections) cannot live in an unordered table; build the
protocol with ``match="ordered"`` (see :func:`protocol`) and the
as-presented orientation — the initiator — takes precedence, exactly the
ordered-pair convention of population protocols.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Dict, Hashable, Iterable, List, Sequence, Tuple, Union

from repro.core.protocol import Rule, RuleProtocol, State
from repro.errors import ProtocolError
from repro.geometry.ports import Port, opposite, ports_for_dimension

#: Bond-state constants, so specs read like the paper's tables.
unbonded = 0
bonded = 1

#: A variable assignment: port-variable name -> concrete port.
Binding = Dict[str, Port]


# ----------------------------------------------------------------------
# Port terms
# ----------------------------------------------------------------------


class PortTerm:
    """A port-valued expression resolved per variable assignment."""

    def resolve(self, binding: Binding) -> Port:
        raise NotImplementedError

    def variables(self) -> Tuple[str, ...]:
        return ()


class PortVar(PortTerm):
    """A variable ranging over the model's port set."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def resolve(self, binding: Binding) -> Port:
        return binding[self.name]

    def variables(self) -> Tuple[str, ...]:
        return (self.name,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PortVar({self.name!r})"


class _PortFn(PortTerm):
    """A port-to-port function applied to a port term (e.g. ``opp``)."""

    __slots__ = ("fn", "inner")

    def __init__(self, fn: Callable[[Port], Port], inner: "PortLike") -> None:
        self.fn = fn
        self.inner = as_port_term(inner)

    def resolve(self, binding: Binding) -> Port:
        return self.fn(self.inner.resolve(binding))

    def variables(self) -> Tuple[str, ...]:
        return self.inner.variables()


class _PortConst(PortTerm):
    __slots__ = ("port",)

    def __init__(self, port: Port) -> None:
        self.port = port

    def resolve(self, binding: Binding) -> Port:
        return self.port


PortLike = Union[Port, PortTerm]


def as_port_term(value: PortLike) -> PortTerm:
    if isinstance(value, PortTerm):
        return value
    if isinstance(value, Port):
        return _PortConst(value)
    raise ProtocolError(f"not a port or port term: {value!r}")


def var(name: str) -> PortVar:
    """A fresh port variable (single lowercase letters read best)."""
    return PortVar(name)


def port_vars(*names: str) -> Tuple[PortVar, ...]:
    """Declare several port variables at once."""
    return tuple(PortVar(n) for n in names)


def opp(term: PortLike) -> PortTerm:
    """The opposite port (the paper's ``i-bar``)."""
    return _PortFn(opposite, term)


def pfn(fn: Callable[[Port], Port], term: PortLike) -> PortTerm:
    """An arbitrary port-to-port derivation (e.g. a clockwise turn)."""
    return _PortFn(fn, term)


#: Convenience variables — enough for every family in the paper.
I, J, K = port_vars("i", "j", "k")


# ----------------------------------------------------------------------
# State terms
# ----------------------------------------------------------------------


class StateTerm:
    """A state-valued expression resolved per variable assignment."""

    def resolve(self, binding: Binding) -> State:
        raise NotImplementedError

    def variables(self) -> Tuple[str, ...]:
        return ()


class _StateConst(StateTerm):
    __slots__ = ("state",)

    def __init__(self, state: State) -> None:
        self.state = state

    def resolve(self, binding: Binding) -> State:
        return self.state


class _StateFmt(StateTerm):
    """``fmt("L{}", I)``: port values formatted into a string template."""

    __slots__ = ("template", "terms")

    def __init__(self, template: str, terms: Tuple[PortTerm, ...]) -> None:
        self.template = template
        self.terms = terms

    def resolve(self, binding: Binding) -> State:
        return self.template.format(
            *(t.resolve(binding).value for t in self.terms)
        )

    def variables(self) -> Tuple[str, ...]:
        return sum((t.variables() for t in self.terms), ())


class _StateCall(StateTerm):
    """``st(fn, t1, ...)``: an arbitrary function of resolved ports."""

    __slots__ = ("fn", "terms")

    def __init__(self, fn: Callable[..., State], terms: Tuple[PortTerm, ...]) -> None:
        self.fn = fn
        self.terms = terms

    def resolve(self, binding: Binding) -> State:
        return self.fn(*(t.resolve(binding) for t in self.terms))

    def variables(self) -> Tuple[str, ...]:
        return sum((t.variables() for t in self.terms), ())


StateLike = Union[State, StateTerm]


def as_state_term(value: StateLike) -> StateTerm:
    if isinstance(value, StateTerm):
        return value
    if isinstance(value, PortTerm):
        raise ProtocolError(
            f"port term {value!r} used in a state position; wrap it with "
            "fmt()/st() to derive a state from it"
        )
    return _StateConst(value)


def fmt(template: str, *terms: PortLike) -> StateTerm:
    """A state named by formatting port letters into ``template``."""
    return _StateFmt(template, tuple(as_port_term(t) for t in terms))


def st(fn: Callable[..., State], *terms: PortLike) -> StateTerm:
    """A state computed by ``fn`` from the resolved ports."""
    return _StateCall(fn, tuple(as_port_term(t) for t in terms))


def lift(fn: Callable[..., State]) -> Callable[..., StateTerm]:
    """Lift a state-building function over port terms:
    ``leader = lift(leader_state); leader(opp(J))``."""

    def lifted(*terms: PortLike) -> StateTerm:
        return st(fn, *terms)

    return lifted


# ----------------------------------------------------------------------
# Rule specs
# ----------------------------------------------------------------------


class RuleSpec:
    """One transition family: a LHS pattern and its RHS."""

    __slots__ = (
        "state1", "port1", "state2", "port2", "bond",
        "new_state1", "new_state2", "new_bond", "guard", "closure",
    )

    def __init__(
        self,
        state1: StateTerm, port1: PortTerm,
        state2: StateTerm, port2: PortTerm,
        bond: int,
        new_state1: StateTerm, new_state2: StateTerm, new_bond: int,
        guard: Callable[[Binding], bool] = None,
        closure: bool = False,
    ) -> None:
        self.state1, self.port1 = state1, port1
        self.state2, self.port2 = state2, port2
        self.bond = bond
        self.new_state1, self.new_state2 = new_state1, new_state2
        self.new_bond = new_bond
        self.guard = guard
        self.closure = closure

    # -- modifiers -----------------------------------------------------

    def where(self, guard: Callable[[Binding], bool]) -> "RuleSpec":
        """Restrict the expansion to assignments satisfying ``guard``
        (which receives the ``{variable name: Port}`` binding)."""
        return RuleSpec(
            self.state1, self.port1, self.state2, self.port2, self.bond,
            self.new_state1, self.new_state2, self.new_bond,
            guard, self.closure,
        )

    def symmetric(self) -> "RuleSpec":
        """Also emit the swapped orientation of every expansion (the
        symmetric closure). Redundant for unordered protocols — their
        tables match both orientations anyway — but it makes the closure
        explicit in the table and is meaningful under ordered matching."""
        return RuleSpec(
            self.state1, self.port1, self.state2, self.port2, self.bond,
            self.new_state1, self.new_state2, self.new_bond,
            self.guard, True,
        )

    # -- expansion -----------------------------------------------------

    def variables(self) -> Tuple[str, ...]:
        """Variable names in first-appearance order (expansion order)."""
        seen: List[str] = []
        for term in (
            self.state1, self.port1, self.state2, self.port2,
            self.new_state1, self.new_state2,
        ):
            for name in term.variables():
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def expand(self, ports: Sequence[Port]) -> List[Rule]:
        names = self.variables()
        rules: List[Rule] = []
        for assignment in product(ports, repeat=len(names)):
            binding = dict(zip(names, assignment))
            if self.guard is not None and not self.guard(binding):
                continue
            rule = Rule(
                self.state1.resolve(binding), self.port1.resolve(binding),
                self.state2.resolve(binding), self.port2.resolve(binding),
                self.bond,
                self.new_state1.resolve(binding),
                self.new_state2.resolve(binding),
                self.new_bond,
            )
            if rule.is_effective():  # identity expansions are dropped here
                rules.append(rule)
            if self.closure:
                swapped = Rule(
                    rule.state2, rule.port2, rule.state1, rule.port1,
                    rule.bond, rule.new_state2, rule.new_state1,
                    rule.new_bond,
                )
                if swapped.is_effective():
                    rules.append(swapped)
        return rules


class _Lhs:
    """The ``when(...)`` half, awaiting ``>> (rhs)``."""

    __slots__ = ("state1", "port1", "state2", "port2", "bond")

    def __init__(
        self,
        state1: StateLike, port1: PortLike,
        state2: StateLike, port2: PortLike,
        bond: int,
    ) -> None:
        self.state1 = as_state_term(state1)
        self.port1 = as_port_term(port1)
        self.state2 = as_state_term(state2)
        self.port2 = as_port_term(port2)
        if bond not in (unbonded, bonded):
            raise ProtocolError(f"bond must be 0/1: {bond!r}")
        self.bond = bond

    def __rshift__(self, rhs: Tuple[StateLike, StateLike, int]) -> RuleSpec:
        if not isinstance(rhs, tuple) or len(rhs) != 3:
            raise ProtocolError(
                f"rule RHS must be (state1', state2', bond'): {rhs!r}"
            )
        new_state1, new_state2, new_bond = rhs
        if new_bond not in (unbonded, bonded):
            raise ProtocolError(f"new bond must be 0/1: {new_bond!r}")
        return RuleSpec(
            self.state1, self.port1, self.state2, self.port2, self.bond,
            as_state_term(new_state1), as_state_term(new_state2), new_bond,
        )


def when(
    state1: StateLike, port1: PortLike,
    state2: StateLike, port2: PortLike,
    bond: int = unbonded,
) -> _Lhs:
    """Start a rule spec: ``when(a, p1, b, p2, c) >> (a2, b2, c2)``
    mirrors the paper's ``(a, p1), (b, p2), c -> (a', b', c')``."""
    return _Lhs(state1, port1, state2, port2, bond)


def expand(
    specs: Iterable[RuleSpec], dimension: int = 2
) -> Tuple[Rule, ...]:
    """Expand rule specs over the port set of the given dimension.

    Identical duplicate expansions (different assignments producing the
    same rule) are deduplicated; conflicting expansions are left for the
    protocol compiler to reject with both rules named.
    """
    ports = ports_for_dimension(dimension)
    out: List[Rule] = []
    seen = set()
    for spec in specs:
        if not isinstance(spec, RuleSpec):
            raise ProtocolError(
                f"expected a RuleSpec (a `when(...) >> (...)`): {spec!r}"
            )
        for rule in spec.expand(ports):
            if rule not in seen:
                seen.add(rule)
                out.append(rule)
    return tuple(out)


def protocol(
    specs: Iterable[RuleSpec],
    *,
    dimension: int = 2,
    name: str = "dsl-protocol",
    **kwargs,
) -> RuleProtocol:
    """Expand specs and build the compiled :class:`RuleProtocol` directly.

    Keyword arguments (``initial_state``, ``leader_state``,
    ``hot_states``, ``output_states``, ``halting_states``,
    ``match="ordered"``, ...) pass through to the protocol constructor.
    """
    return RuleProtocol(
        expand(specs, dimension=dimension),
        dimension=dimension,
        name=name,
        **kwargs,
    )
