"""The leaderless spanning line (§4.1's closing remark, Remark 5).

The paper notes that *"the unique leader assumption is in all the above
cases not necessary"* and that leaderless constructions arise by pairwise
elimination (Remark 5's reinitialization technique, as in [MS14]). This
module realizes the technique for the spanning line:

* every node starts as a *singleton leader* ``L0``;
* a leader absorbs free material (``q0``, singleton leaders, released
  dismantler remnants) exactly like §4.1's leader, staying at the growing
  end of a straight line;
* when two *line* leaders meet, one loses the election and becomes a
  *dismantler* that walks its own line, releasing its nodes back into the
  solution as free ``q0`` material one interaction at a time;
* eventually one leader survives and absorbs everything: the population
  stabilizes as a single spanning line. Termination is necessarily
  sacrificed (Remark 5) — the construction is stabilizing.

The leader-vs-leader election between *identical* states has no
unordered-consistent rule table — which historically forced this protocol
to be an :class:`~repro.core.protocol.AgentProtocol` handler. It is now a
compiled **ordered** rule table (``match="ordered"``): the as-presented
orientation takes precedence, which is exactly the ordered (initiator,
responder) interaction convention of population protocols [AAD+06], and
exactly what the handler implemented by trying the pair as given before
swapping. The handler is kept below as the executable reference —
``tests/test_leaderless_line.py`` pins the compiled table against it over
the full state/port universe — and remains available through
:func:`leaderless_spanning_line_handler_protocol` for dispatch ablations.

State glossary: ``L0`` singleton leader; ``("L", i)`` line leader expanding
via its local port ``i`` (its line hangs off the opposite port);
``("Dl", k)`` dismantler whose remaining line hangs off its ``k`` port;
``q1`` line body; ``q0`` free material.
"""

from __future__ import annotations

from typing import Optional

from repro.core.protocol import AgentProtocol, InteractionView, RuleProtocol, State, Update
from repro.geometry.ports import PORTS_2D, Port, opposite
from repro.protocols.dsl import (
    I,
    J,
    K,
    bonded,
    expand,
    lift,
    opp,
    port_vars,
    unbonded,
    when,
)


def _is_line_leader(state: State) -> bool:
    return isinstance(state, tuple) and len(state) == 2 and state[0] == "L"


def _is_dismantler(state: State) -> bool:
    return isinstance(state, tuple) and len(state) == 2 and state[0] == "Dl"


# ----------------------------------------------------------------------
# The protocol as a declarative ordered rule table
# ----------------------------------------------------------------------

#: DSL state builders for the structured states.
line_leader = lift(lambda p: ("L", p))
dismantler = lift(lambda p: ("Dl", p))

#: Extra port variables for the four-variable election family.
A, B = port_vars("a", "b")

#: The full protocol as rule specs. Ordered semantics: ``state1`` is the
#: initiator (the canonical first endpoint of the scheduler's pair).
LEADERLESS_LINE_SPECS = (
    # --- Absorption over an inactive edge. A singleton leader offers any
    # port; a line leader only its expansion port i (anything else would
    # bend the line). Absorbable material: free q0, another singleton
    # leader, or a spent dismantler offering the port its (empty) line
    # side points to — any other dismantler port could drag a remaining
    # line into an L-bend. The absorbed node becomes the new growing end,
    # expanding via the port opposite its bonded one.
    when("L0", I, "q0", J, unbonded) >> ("q1", line_leader(opp(J)), bonded),
    when("L0", I, "L0", J, unbonded) >> ("q1", line_leader(opp(J)), bonded),
    when("L0", I, dismantler(J), J, unbonded)
    >> ("q1", line_leader(opp(J)), bonded),
    when(line_leader(I), I, "q0", J, unbonded)
    >> ("q1", line_leader(opp(J)), bonded),
    when(line_leader(I), I, "L0", J, unbonded)
    >> ("q1", line_leader(opp(J)), bonded),
    when(line_leader(I), I, dismantler(J), J, unbonded)
    >> ("q1", line_leader(opp(J)), bonded),
    # --- Election between two *line* leaders (any ports): the initiator
    # wins, the responder starts dismantling its line — which hangs off
    # the port opposite to its expansion port. Identical states with an
    # asymmetric result: expressible only under ordered matching.
    when(line_leader(I), A, line_leader(K), B, unbonded)
    >> (line_leader(I), dismantler(opp(K)), unbonded),
    # --- Dismantling over an active edge: the dismantler frees itself as
    # q0; its q1 neighbor takes over. A body node's two bonds always sit
    # on mutually opposite local ports, so the remainder hangs off the
    # port opposite the one just cut.
    when(dismantler(K), K, "q1", B, bonded)
    >> ("q0", dismantler(opp(B)), unbonded),
)


def leaderless_spanning_line_protocol() -> RuleProtocol:
    """The leaderless spanning-line constructor (all nodes start ``L0``).

    Stabilizes (does not terminate — Remark 5's price) with all ``n``
    nodes on one straight line: one surviving leader at an end, ``q1``
    body nodes elsewhere. Compiled from :data:`LEADERLESS_LINE_SPECS`
    with ordered (initiator-first) matching.
    """
    leaders = tuple(("L", p) for p in PORTS_2D)
    dismantlers = tuple(("Dl", p) for p in PORTS_2D)
    return RuleProtocol(
        expand(LEADERLESS_LINE_SPECS),
        initial_state="L0",
        hot_states=("L0", *leaders, *dismantlers),
        output_states={"q1", *leaders},
        match="ordered",
        name="leaderless-spanning-line",
    )


# ----------------------------------------------------------------------
# The original handler, kept as the executable reference semantics
# ----------------------------------------------------------------------


def _oriented(
    s1: State, p1: Port, s2: State, p2: Port, bond: int
) -> Optional[Update]:
    """The ordered transition function; the handler tries both orders."""
    # --- absorption over an inactive edge -------------------------------
    if bond == 0:
        leaderish = s1 == "L0" or (_is_line_leader(s1) and p1 == s1[1])
        if leaderish:
            # Free material: q0, a singleton leader, or a spent dismantler
            # offering the port its (empty) line side points to — for a
            # dismantler any other port could drag a remaining line into
            # an L-bend, so only its k port is absorbable (it is free
            # exactly when the dismantler is a spent singleton).
            if s2 == "q0" or s2 == "L0":
                return ("q1", ("L", opposite(p2)), 1)
            if _is_dismantler(s2) and p2 == s2[1]:
                return ("q1", ("L", opposite(p2)), 1)
        # Election between two *line* leaders: the initiator wins, the
        # responder starts dismantling its line (which hangs off the port
        # opposite to its expansion port).
        if _is_line_leader(s1) and _is_line_leader(s2):
            return (s1, ("Dl", opposite(s2[1])), 0)
        return None
    # --- dismantling over an active edge --------------------------------
    if _is_dismantler(s1) and p1 == s1[1] and s2 == "q1":
        # The dismantler frees itself as q0; its neighbor takes over. The
        # neighbor's port labels are its own (absorption bonds arbitrary
        # port pairs), but a body node's two bonds always sit on mutually
        # opposite local ports — so its remaining line hangs off
        # ``opposite(p2)``.
        return ("q0", ("Dl", opposite(p2)), 0)
    return None


def _handler(view: InteractionView) -> Optional[Update]:
    update = _oriented(
        view.state1, view.port1, view.state2, view.port2, view.bond
    )
    if update is not None:
        return update
    update = _oriented(
        view.state2, view.port2, view.state1, view.port1, view.bond
    )
    if update is not None:
        return (update[1], update[0], update[2])
    return None


def _hot(state: State) -> bool:
    return state == "L0" or _is_line_leader(state) or _is_dismantler(state)


def _output(state: State) -> bool:
    return state == "q1" or _is_line_leader(state)


def leaderless_spanning_line_handler_protocol() -> AgentProtocol:
    """The pre-DSL handler form of the same protocol.

    Kept as the reference oracle: its ``delta`` must agree with the
    compiled ordered table on every interaction (pinned by test), and it
    exercises the lazily-lowered :class:`~repro.core.program.MemoProgram`
    dispatch path on a protocol with structured (tuple) states.
    """
    return AgentProtocol(
        _handler,
        initial_state="L0",
        hot=_hot,
        output=_output,
        name="leaderless-spanning-line-handler",
    )


def is_spanning_line_configuration(world) -> bool:
    """True iff the world is a single straight line of all ``n`` nodes
    with exactly one surviving leader at an end."""
    if len(world.components) != 1:
        return False
    comp = next(iter(world.components.values()))
    if comp.size() != world.size:
        return False
    shape = world.component_shape(comp.cid)
    if not shape.is_line():
        return False
    leaders = [
        nid
        for nid in world.nodes
        if _is_line_leader(world.state_of(nid)) or world.state_of(nid) == "L0"
    ]
    return len(leaders) == 1


#: Port list re-exported for tests that sweep election orientations.
ALL_PORTS = PORTS_2D
