"""The leaderless spanning line (§4.1's closing remark, Remark 5).

The paper notes that *"the unique leader assumption is in all the above
cases not necessary"* and that leaderless constructions arise by pairwise
elimination (Remark 5's reinitialization technique, as in [MS14]). This
module realizes the technique for the spanning line:

* every node starts as a *singleton leader* ``L0``;
* a leader absorbs free material (``q0``, singleton leaders, released
  dismantler remnants) exactly like §4.1's leader, staying at the growing
  end of a straight line;
* when two *line* leaders meet, one loses the election and becomes a
  *dismantler* that walks its own line, releasing its nodes back into the
  solution as free ``q0`` material one interaction at a time;
* eventually one leader survives and absorbs everything: the population
  stabilizes as a single spanning line. Termination is necessarily
  sacrificed (Remark 5) — the construction is stabilizing.

The protocol is expressed as an :class:`~repro.core.protocol.AgentProtocol`
because the leader-vs-leader election between *identical* states has no
unordered-consistent rule table: the tie is broken by the presentation
order of the pair, exactly the ordered (initiator, responder) interaction
convention of population protocols [AAD+06].

State glossary: ``L0`` singleton leader; ``("L", i)`` line leader expanding
via its local port ``i`` (its line hangs off the opposite port);
``("Dl", k)`` dismantler whose remaining line hangs off its ``k`` port;
``q1`` line body; ``q0`` free material.
"""

from __future__ import annotations

from typing import Optional

from repro.core.protocol import AgentProtocol, InteractionView, State, Update
from repro.geometry.ports import PORTS_2D, Port, opposite


def _is_line_leader(state: State) -> bool:
    return isinstance(state, tuple) and len(state) == 2 and state[0] == "L"


def _is_dismantler(state: State) -> bool:
    return isinstance(state, tuple) and len(state) == 2 and state[0] == "Dl"


def _oriented(
    s1: State, p1: Port, s2: State, p2: Port, bond: int
) -> Optional[Update]:
    """The ordered transition function; the handler tries both orders."""
    # --- absorption over an inactive edge -------------------------------
    if bond == 0:
        leaderish = s1 == "L0" or (_is_line_leader(s1) and p1 == s1[1])
        if leaderish:
            # Free material: q0, a singleton leader, or a spent dismantler
            # offering the port its (empty) line side points to — for a
            # dismantler any other port could drag a remaining line into
            # an L-bend, so only its k port is absorbable (it is free
            # exactly when the dismantler is a spent singleton).
            if s2 == "q0" or s2 == "L0":
                return ("q1", ("L", opposite(p2)), 1)
            if _is_dismantler(s2) and p2 == s2[1]:
                return ("q1", ("L", opposite(p2)), 1)
        # Election between two *line* leaders: the initiator wins, the
        # responder starts dismantling its line (which hangs off the port
        # opposite to its expansion port).
        if _is_line_leader(s1) and _is_line_leader(s2):
            return (s1, ("Dl", opposite(s2[1])), 0)
        return None
    # --- dismantling over an active edge --------------------------------
    if _is_dismantler(s1) and p1 == s1[1] and s2 == "q1":
        # The dismantler frees itself as q0; its neighbor takes over. The
        # neighbor's port labels are its own (absorption bonds arbitrary
        # port pairs), but a body node's two bonds always sit on mutually
        # opposite local ports — so its remaining line hangs off
        # ``opposite(p2)``.
        return ("q0", ("Dl", opposite(p2)), 0)
    return None


def _handler(view: InteractionView) -> Optional[Update]:
    update = _oriented(
        view.state1, view.port1, view.state2, view.port2, view.bond
    )
    if update is not None:
        return update
    update = _oriented(
        view.state2, view.port2, view.state1, view.port1, view.bond
    )
    if update is not None:
        return (update[1], update[0], update[2])
    return None


def _hot(state: State) -> bool:
    return state == "L0" or _is_line_leader(state) or _is_dismantler(state)


def _output(state: State) -> bool:
    return state == "q1" or _is_line_leader(state)


def leaderless_spanning_line_protocol() -> AgentProtocol:
    """The leaderless spanning-line constructor (all nodes start ``L0``).

    Stabilizes (does not terminate — Remark 5's price) with all ``n``
    nodes on one straight line: one surviving leader at an end, ``q1``
    body nodes elsewhere.
    """
    return AgentProtocol(
        _handler,
        initial_state="L0",
        hot=_hot,
        output=_output,
        name="leaderless-spanning-line",
    )


def is_spanning_line_configuration(world) -> bool:
    """True iff the world is a single straight line of all ``n`` nodes
    with exactly one surviving leader at an end."""
    if len(world.components) != 1:
        return False
    comp = next(iter(world.components.values()))
    if comp.size() != world.size:
        return False
    shape = world.component_shape(comp.cid)
    if not shape.is_line():
        return False
    leaders = [
        nid
        for nid in world.nodes
        if _is_line_leader(world.state_of(nid)) or world.state_of(nid) == "L0"
    ]
    return len(leaders) == 1


#: Port list re-exported for tests that sweep election orientations.
ALL_PORTS = PORTS_2D
