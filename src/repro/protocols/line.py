"""Spanning line protocols (§4.1 Global Line).

The general protocol: a unique leader in state ``L_r`` (``L_i`` = "waiting
to expand via my local port i") absorbs free ``q0`` nodes one by one:

    (L_i, i), (q0, j), 0 -> (q1, L_jbar, 1)   for all i, j in {u, r, d, l}

The leader bonds its expansion port ``i`` to any port ``j`` of a free node,
moves onto the new node, and continues via the port opposite to ``j`` —
which keeps the line straight. The simplified variant only expands through
matching ``r``/``l`` ports and is slower (fewer effective encounters), a
difference measured by ``benchmarks/bench_line.py``.
"""

from __future__ import annotations

from repro.core.protocol import Rule, RuleProtocol
from repro.geometry.ports import PORTS_2D, opposite, ports_for_dimension


def leader_state(port) -> str:
    """The leader state ``L_i`` waiting to expand via local port ``i``."""
    return f"L{port.value}"


LEADER_STATES = tuple(leader_state(p) for p in PORTS_2D)


def spanning_line_protocol(dimension: int = 2) -> RuleProtocol:
    """The general spanning-line protocol of §4.1.

    Initial configuration: one leader in ``Lr``, all other nodes ``q0``.
    Stabilizes with all nodes on one straight line (stably constructs the
    spanning line; it is a stabilizing, not terminating, protocol).

    The protocol generalizes to the 3D model verbatim (``dimension=3``,
    six ports): straightness only needs the new leader to expand via the
    port *opposite* its bond port — colinear through the node by
    definition — so the 3D rotational freedom (a node may attach twisted
    about the bond axis) cannot bend the line.
    """
    ports = ports_for_dimension(dimension)
    rules = []
    for i in ports:
        for j in ports:
            rules.append(
                Rule(
                    state1=leader_state(i),
                    port1=i,
                    state2="q0",
                    port2=j,
                    bond=0,
                    new_state1="q1",
                    new_state2=leader_state(opposite(j)),
                    new_bond=1,
                )
            )
    leader_states = tuple(leader_state(p) for p in ports)
    return RuleProtocol(
        rules,
        initial_state="q0",
        leader_state="Lr",
        output_states={"q1", *leader_states},
        hot_states=leader_states,
        dimension=dimension,
        name=f"spanning-line-{dimension}d" if dimension == 3 else "spanning-line",
    )


def simple_line_protocol() -> RuleProtocol:
    """The simplified (slower) variant: ``(L, r), (q0, l), 0 -> (q1, L, 1)``.

    An effective interaction now requires the leader's ``r`` port to meet
    precisely the ``l`` port of a free node, so expansions are rarer under
    the uniform scheduler but the protocol has only 3 states.
    """
    from repro.geometry.ports import Port

    rules = [
        Rule(
            state1="L",
            port1=Port.RIGHT,
            state2="q0",
            port2=Port.LEFT,
            bond=0,
            new_state1="q1",
            new_state2="L",
            new_bond=1,
        )
    ]
    return RuleProtocol(
        rules,
        initial_state="q0",
        leader_state="L",
        output_states={"q1", "L"},
        hot_states=("L",),
        name="simple-line",
    )
