"""Spanning line protocols (§4.1 Global Line).

The general protocol: a unique leader in state ``L_r`` (``L_i`` = "waiting
to expand via my local port i") absorbs free ``q0`` nodes one by one:

    (L_i, i), (q0, j), 0 -> (q1, L_jbar, 1)   for all i, j in {u, r, d, l}

The leader bonds its expansion port ``i`` to any port ``j`` of a free node,
moves onto the new node, and continues via the port opposite to ``j`` —
which keeps the line straight. The simplified variant only expands through
matching ``r``/``l`` ports and is slower (fewer effective encounters), a
difference measured by ``benchmarks/bench_line.py``.
"""

from __future__ import annotations

from repro.core.protocol import RuleProtocol
from repro.geometry.ports import PORTS_2D, Port, ports_for_dimension
from repro.protocols.dsl import I, J, bonded, expand, lift, opp, unbonded, when


def leader_state(port) -> str:
    """The leader state ``L_i`` waiting to expand via local port ``i``."""
    return f"L{port.value}"


LEADER_STATES = tuple(leader_state(p) for p in PORTS_2D)

#: The leader-state builder as a DSL state term constructor.
leader = lift(leader_state)

#: The one-line §4.1 transition family:
#: ``(L_i, i), (q0, j), 0 -> (q1, L_jbar, 1)`` for all ports i, j.
SPANNING_LINE_SPECS = (
    when(leader(I), I, "q0", J, unbonded) >> ("q1", leader(opp(J)), bonded),
)


def spanning_line_protocol(dimension: int = 2) -> RuleProtocol:
    """The general spanning-line protocol of §4.1.

    Initial configuration: one leader in ``Lr``, all other nodes ``q0``.
    Stabilizes with all nodes on one straight line (stably constructs the
    spanning line; it is a stabilizing, not terminating, protocol).

    The protocol generalizes to the 3D model verbatim (``dimension=3``,
    six ports): straightness only needs the new leader to expand via the
    port *opposite* its bond port — colinear through the node by
    definition — so the 3D rotational freedom (a node may attach twisted
    about the bond axis) cannot bend the line.
    """
    ports = ports_for_dimension(dimension)
    leader_states = tuple(leader_state(p) for p in ports)
    return RuleProtocol(
        expand(SPANNING_LINE_SPECS, dimension=dimension),
        initial_state="q0",
        leader_state="Lr",
        output_states={"q1", *leader_states},
        hot_states=leader_states,
        dimension=dimension,
        name=f"spanning-line-{dimension}d" if dimension == 3 else "spanning-line",
    )


def simple_line_protocol() -> RuleProtocol:
    """The simplified (slower) variant: ``(L, r), (q0, l), 0 -> (q1, L, 1)``.

    An effective interaction now requires the leader's ``r`` port to meet
    precisely the ``l`` port of a free node, so expansions are rarer under
    the uniform scheduler but the protocol has only 3 states.
    """
    specs = (
        when("L", Port.RIGHT, "q0", Port.LEFT, unbonded) >> ("q1", "L", bonded),
    )
    return RuleProtocol(
        expand(specs),
        initial_state="q0",
        leader_state="L",
        output_states={"q1", "L"},
        hot_states=("L",),
        name="simple-line",
    )
