"""Scenario adapters for the §4 basic constructors (``repro.protocols``).

Registered into ``repro.experiments.registry``; see that module for the
adapter contract. The ``demo`` scenario is the CLI quickstart: a spanning
line and a ``√n × √n`` square grown under a uniform scheduler, with the
stabilized worlds rendered as ASCII.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.scheduler import make_scheduler
from repro.core.simulator import Simulation, StopReason
from repro.core.world import World
from repro.experiments.registry import Param, ScenarioOutcome, scenario
from repro.protocols.line import spanning_line_protocol
from repro.protocols.square import square_protocol
from repro.viz.ascii_art import render_world


@scenario(
    name="demo",
    summary="quickstart: spanning line + square to stabilization (§4)",
    params=(
        Param("n", "int", 10, help="population size for the line stage"),
    ),
    tags=("basic", "stabilizing"),
    schedulable=True,
    covers=(),
    protocols=(spanning_line_protocol, square_protocol),
)
def _run_demo(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    kind = scheduler or "hot"
    n = params["n"]
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(n, protocol, leaders=1)
    line_sim = Simulation(
        world, protocol, scheduler=make_scheduler(kind), seed=seed
    )
    line_res = line_sim.run_to_stabilization()
    line_render = render_world(world, state_char=lambda s: "#")

    side = max(3, int(n**0.5))
    n_sq = side * side
    protocol = square_protocol()
    world = World.of_free_nodes(n_sq, protocol, leaders=1)
    square_sim = Simulation(
        world, protocol, scheduler=make_scheduler(kind), seed=seed
    )
    square_res = square_sim.run_to_stabilization()
    square_render = render_world(world, state_char=lambda s: "#")

    evaluations = None
    if line_sim.evaluations is not None and square_sim.evaluations is not None:
        evaluations = line_sim.evaluations + square_sim.evaluations
    return ScenarioOutcome(
        metrics={
            "n": n,
            "line_events": line_res.events,
            "side": side,
            "square_n": n_sq,
            "square_events": square_res.events,
        },
        events=line_res.events + square_res.events,
        evaluations=evaluations,
        stop_reason=StopReason.STABILIZED,
        renders={"line": line_render, "square": square_render},
    )
