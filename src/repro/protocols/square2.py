"""Protocol 2 *Square2* (§4.2): square construction with turning marks.

Transcribed from the paper's table. The unique leader begins in ``L2d``.
Phase 1 builds a 2x2 core while dropping *turning marks* (``q1`` nodes
attached just outside the corners); in each subsequent phase the leader
walks the new perimeter and turns only when it meets the mark left by the
previous phase, introducing the new corner plus a fresh mark for the next
phase (Figure 2). Nodes of the new perimeter may remain unbonded to their
internal neighbors for a while; the rigidity rules
``(q1, i), (q1, ibar), 0 -> (q1, q1, 1)`` eventually bond them.

Note on the paper's table: the state set is printed as ``{L_i, L2_i, L3_i,
L4_i, Lend, q0, q1}`` while the rules also use ``L1_i``; ``L1_i`` and
``L_i`` must be distinct states (otherwise two rules share a left-hand side
with different results), so Q here contains both.
"""

from __future__ import annotations

from repro.core.protocol import RuleProtocol
from repro.geometry.ports import Port
from repro.protocols.dsl import (
    I,
    bonded,
    expand,
    fmt,
    opp,
    pfn,
    unbonded,
    when,
)
from repro.protocols.square import turn_ccw, turn_cw

U, R, D, L = Port.UP, Port.RIGHT, Port.DOWN, Port.LEFT


def square2_protocol() -> RuleProtocol:
    """Protocol 2 of the paper (turning-mark square constructor)."""
    walk = fmt("L{}", I)          # the walking leader L_i, heading i
    specs = (
        # --- Phase 1: build the 2x2 core, dropping the four first marks.
        # The phase-1 chain is irregular (it spirals once and ends in
        # Lend), so its rules are concrete specs.
        when("L2d", D, "q0", U, unbonded) >> ("L1u", "q1", bonded),
        when("L2l", L, "q0", R, unbonded) >> ("L1r", "q1", bonded),
        when("L2u", U, "q0", D, unbonded) >> ("L1d", "q1", bonded),
        when("L2r", R, "q0", L, unbonded) >> ("Lend", "q1", bonded),
        when("L1u", U, "q0", D, unbonded) >> ("q1", "L2l", bonded),
        when("L1r", R, "q0", L, unbonded) >> ("q1", "L2u", bonded),
        when("L1d", D, "q0", U, unbonded) >> ("q1", "L2r", bonded),
        # NOTE: the paper's table also lists (L1r, u), (q0, d), 0 ->
        # (q1, L2l, 1). From the unique reachable L1r configuration of
        # phase 1 both that rule and (L1r, r), (q0, l) above are enabled,
        # and taking the u-port rule derails the leader into an unbounded
        # staircase instead of the 2x2 core of Figure 2. We treat it as an
        # erratum and omit it; with the remaining 29 rules the execution
        # reproduces Figure 2's phases exactly (see tests/test_square2.py).
        # --- Phase transition: from Lend start walking the next perimeter.
        when("Lend", D, "q0", U, unbonded) >> ("q1", "Ll", bonded),
        # --- Straight perimeter walk: extend through free nodes...
        when(walk, I, "q0", opp(I), unbonded) >> ("q1", walk, bonded),
        # ... until the turning mark (a q1) of the previous phase is met;
        # leadership jumps onto the mark in state L3.
        when(walk, I, "q1", opp(I), unbonded)
        >> ("q1", fmt("L3{}", I), bonded),
        # --- At a mark: attach the new corner (L4 continues past it,
        # heading turned counter-clockwise)...
        when(fmt("L3{}", I), I, "q0", opp(I), unbonded)
        >> ("q1", fmt("L4{}", pfn(turn_ccw, I)), bonded),
        # ... and drop the next phase's mark adjacent to the corner,
        # turning again (the L4r corner of the lap ends the phase).
        when("L4d", D, "q0", U, unbonded) >> ("Lu", "q1", bonded),
        when("L4l", L, "q0", R, unbonded) >> ("Lr", "q1", bonded),
        when("L4u", U, "q0", D, unbonded) >> ("Ld", "q1", bonded),
        when("L4r", R, "q0", L, unbonded) >> ("Lend", "q1", bonded),
        # --- Side bonding of the leader while walking the perimeter (its
        # clockwise-hand side faces the already-built square).
        when(walk, pfn(turn_cw, I), "q1", opp(pfn(turn_cw, I)), unbonded)
        >> (walk, "q1", bonded),
        # --- Rigidity: adjacent attached q1 nodes eventually bond.
        when("q1", I, "q1", opp(I), unbonded) >> ("q1", "q1", bonded),
    )
    rules = expand(specs)
    leaderish = [
        s
        for s in (
            "L2d", "L2l", "L2u", "L2r",
            "L1u", "L1r", "L1d",
            "Lend", "Ll", "Lu", "Lr", "Ld",
            "L3l", "L3u", "L3r", "L3d",
            "L4d", "L4l", "L4u", "L4r",
        )
    ]
    return RuleProtocol(
        rules,
        initial_state="q0",
        leader_state="L2d",
        output_states={"q1", *leaderish},
        hot_states=(*leaderish, "q1"),
        name="square-protocol-2",
    )
