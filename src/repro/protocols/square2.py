"""Protocol 2 *Square2* (§4.2): square construction with turning marks.

Transcribed from the paper's table. The unique leader begins in ``L2d``.
Phase 1 builds a 2x2 core while dropping *turning marks* (``q1`` nodes
attached just outside the corners); in each subsequent phase the leader
walks the new perimeter and turns only when it meets the mark left by the
previous phase, introducing the new corner plus a fresh mark for the next
phase (Figure 2). Nodes of the new perimeter may remain unbonded to their
internal neighbors for a while; the rigidity rules
``(q1, i), (q1, ibar), 0 -> (q1, q1, 1)`` eventually bond them.

Note on the paper's table: the state set is printed as ``{L_i, L2_i, L3_i,
L4_i, Lend, q0, q1}`` while the rules also use ``L1_i``; ``L1_i`` and
``L_i`` must be distinct states (otherwise two rules share a left-hand side
with different results), so Q here contains both.
"""

from __future__ import annotations

from repro.core.protocol import Rule, RuleProtocol
from repro.geometry.ports import PORTS_2D, Port, opposite

U, R, D, L = Port.UP, Port.RIGHT, Port.DOWN, Port.LEFT


def square2_protocol() -> RuleProtocol:
    """Protocol 2 of the paper (turning-mark square constructor)."""
    rules = [
        # --- Phase 1: build the 2x2 core, dropping the four first marks.
        Rule("L2d", D, "q0", U, 0, "L1u", "q1", 1),
        Rule("L2l", L, "q0", R, 0, "L1r", "q1", 1),
        Rule("L2u", U, "q0", D, 0, "L1d", "q1", 1),
        Rule("L2r", R, "q0", L, 0, "Lend", "q1", 1),
        Rule("L1u", U, "q0", D, 0, "q1", "L2l", 1),
        Rule("L1r", R, "q0", L, 0, "q1", "L2u", 1),
        Rule("L1d", D, "q0", U, 0, "q1", "L2r", 1),
        # NOTE: the paper's table also lists (L1r, u), (q0, d), 0 ->
        # (q1, L2l, 1). From the unique reachable L1r configuration of
        # phase 1 both that rule and (L1r, r), (q0, l) above are enabled,
        # and taking the u-port rule derails the leader into an unbounded
        # staircase instead of the 2x2 core of Figure 2. We treat it as an
        # erratum and omit it; with the remaining 29 rules the execution
        # reproduces Figure 2's phases exactly (see tests/test_square2.py).
        # --- Phase transition: from Lend start walking the next perimeter.
        Rule("Lend", D, "q0", U, 0, "q1", "Ll", 1),
        # --- Straight perimeter walk: extend through free nodes...
        Rule("Ll", L, "q0", R, 0, "q1", "Ll", 1),
        Rule("Lu", U, "q0", D, 0, "q1", "Lu", 1),
        Rule("Lr", R, "q0", L, 0, "q1", "Lr", 1),
        Rule("Ld", D, "q0", U, 0, "q1", "Ld", 1),
        # ... until the turning mark (a q1) of the previous phase is met;
        # leadership jumps onto the mark in state L3.
        Rule("Ll", L, "q1", R, 0, "q1", "L3l", 1),
        Rule("Lu", U, "q1", D, 0, "q1", "L3u", 1),
        Rule("Lr", R, "q1", L, 0, "q1", "L3r", 1),
        Rule("Ld", D, "q1", U, 0, "q1", "L3d", 1),
        # --- At a mark: attach the new corner (L4 continues past it)...
        Rule("L3l", L, "q0", R, 0, "q1", "L4d", 1),
        Rule("L3u", U, "q0", D, 0, "q1", "L4l", 1),
        Rule("L3r", R, "q0", L, 0, "q1", "L4u", 1),
        Rule("L3d", D, "q0", U, 0, "q1", "L4r", 1),
        # ... and drop the next phase's mark adjacent to the corner, turning.
        Rule("L4d", D, "q0", U, 0, "Lu", "q1", 1),
        Rule("L4l", L, "q0", R, 0, "Lr", "q1", 1),
        Rule("L4u", U, "q0", D, 0, "Ld", "q1", 1),
        Rule("L4r", R, "q0", L, 0, "Lend", "q1", 1),
        # --- Side bonding of the leader while walking the perimeter.
        Rule("Lu", R, "q1", L, 0, "Lu", "q1", 1),
        Rule("Lr", D, "q1", U, 0, "Lr", "q1", 1),
        Rule("Ld", L, "q1", R, 0, "Ld", "q1", 1),
        Rule("Ll", U, "q1", D, 0, "Ll", "q1", 1),
    ]
    # Rigidity rules: adjacent attached q1 nodes eventually bond.
    for i in PORTS_2D:
        rules.append(Rule("q1", i, "q1", opposite(i), 0, "q1", "q1", 1))
    leaderish = [
        s
        for s in (
            "L2d", "L2l", "L2u", "L2r",
            "L1u", "L1r", "L1d",
            "Lend", "Ll", "Lu", "Lr", "Ld",
            "L3l", "L3u", "L3r", "L3d",
            "L4d", "L4l", "L4u", "L4r",
        )
    ]
    return RuleProtocol(
        rules,
        initial_state="q0",
        leader_state="L2d",
        output_states={"q1", *leaderish},
        hot_states=(*leaderish, "q1"),
        name="square-protocol-2",
    )
