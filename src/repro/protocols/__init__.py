"""The paper's explicit rule-table protocols (§4 and Protocols 4/5).

Every protocol in this package is a :class:`~repro.core.protocol.RuleProtocol`
written in the declarative rule DSL (:mod:`repro.protocols.dsl`) — port
variables, wildcards, derived states — and compiled to the packed IR of
:mod:`repro.core.program`; the DSL expansions are pinned rule for rule
against the paper's hand-written tables by ``tests/test_dsl.py``:

* :func:`~repro.protocols.line.spanning_line_protocol` and
  :func:`~repro.protocols.line.simple_line_protocol` — §4.1.
* :func:`~repro.protocols.square.square_protocol` — Protocol 1 (§4.2).
* :func:`~repro.protocols.square2.square2_protocol` — Protocol 2 (§4.2).
* :func:`~repro.protocols.replication.line_replication_protocol` — Protocol 4.
* :func:`~repro.protocols.replication.no_leader_line_replication_protocol`
  — Protocol 5.
* :func:`~repro.protocols.replication.self_replicating_lines_protocol` —
  the three-variant composition (original -> seed -> replicas) used by
  Square-Knowing-n (§6.2).
* :func:`~repro.protocols.leaderless_line.leaderless_spanning_line_protocol`
  — the leaderless spanning line (§4.1's closing remark / Remark 5), an
  *ordered* rule table (election ties resolve initiator-first, the
  ordered-pair convention; unordered tables cannot express them).
"""

from repro.protocols.line import simple_line_protocol, spanning_line_protocol
from repro.protocols.square import square_protocol
from repro.protocols.square2 import square2_protocol
from repro.protocols.leaderless_line import (
    is_spanning_line_configuration,
    leaderless_spanning_line_protocol,
)
from repro.protocols.replication import (
    line_replication_protocol,
    no_leader_line_replication_protocol,
    self_replicating_lines_protocol,
)

__all__ = [
    "spanning_line_protocol",
    "simple_line_protocol",
    "square_protocol",
    "square2_protocol",
    "line_replication_protocol",
    "no_leader_line_replication_protocol",
    "self_replicating_lines_protocol",
    "leaderless_spanning_line_protocol",
    "is_spanning_line_configuration",
]
