"""Line self-replication: Protocol 4 and Protocol 5 of the paper (§6.2).

A line ``L, i, i, ..., i, e`` (leader left endpoint, internal ``i`` nodes,
right endpoint ``e``) attracts free ``q0`` nodes to the ports below it; the
attached nodes bond horizontally into a *replica* row, which is then
detached, restored to ``C, i, ..., i, e`` (``C`` the child's left-endpoint
state) and released into the solution. Protocol 4 drives detachment and
restoration with a leader walk; Protocol 5 needs no leader and detaches
per-node by degree counting.

Two *documented deviations* from the verbatim tables (both are benign
races the tables leave open; see DESIGN.md):

1. **Protocol 4 restore placeholder.** The paper's restore walk temporarily
   sets the walked line's left endpoint to ``e'``
   (``(x^t, r), (i', l), 1 -> (e', x^t', 1)``). A free line whose left
   endpoint is ``e'`` can be docked by the rule ``(i', r), (e', l), 0`` of a
   *different* component's half-built replica, merging the two and
   deadlocking both. We use a fresh placeholder state ``f'`` instead of
   ``e'`` for the endpoint under restoration; ``f'`` has no bond-0 rules, so
   the dock is impossible, and it is converted to the final endpoint state
   by the last restore step exactly as ``e'`` would have been.

2. **Protocol 5 parent-side states.** The paper reuses ``i1``/``e1`` for
   both the parent node and the freshly attached replica node
   (``(i, d), (q0, u), 0 -> (i1, i1, 1)``). A parent endpoint in ``e1``
   exposes its outward port to the dock rule ``(e1, r), (i1, l), 0`` of a
   foreign half-built replica, again merging two components into a non-line.
   We give parent-side nodes the distinct states ``ip``/``ep`` ("parent
   busy"), which appear in no bond-0 rule; the detach rules restore them to
   ``i``/``e``.

Both deviations only remove unintended cross-component interactions; all
single-component executions are unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.protocol import Rule, RuleProtocol
from repro.core.world import World
from repro.geometry.ports import Port
from repro.geometry.vec import Vec

U, R, D, L = Port.UP, Port.RIGHT, Port.DOWN, Port.LEFT

#: Shared worker states of Protocol 4 (replica row assembly + walks).
CHAIN = tuple(f"L{j}s" for j in range(1, 8))


def _variant_rules(
    parent_left: str, parent_restored: str, child_left: str
) -> List[Rule]:
    """Protocol 4 rules for one parent type.

    ``parent_left`` is the state of the parent line's left endpoint that
    triggers replication; after one replication the parent's left endpoint
    becomes ``parent_restored`` and the released child's becomes
    ``child_left``. The paper gives the table for ``(L, Lstart, Ls)`` and
    notes the seed/replica variants are "almost identical" — this generator
    produces them.
    """
    blocked = f"{parent_left}'"
    # Child restore walker states (tagged by the child type they produce).
    cts, ct1, ct2 = (f"T{child_left}", f"T'{child_left}", f"T''{child_left}")
    # Parent restore walker states (tagged by the parent's restored type).
    pts, pt1, pt2 = (f"P{parent_restored}", f"P'{parent_restored}", f"P''{parent_restored}")
    rules = [
        # Replication starts: the chain seed attaches below the left end.
        Rule(parent_left, D, "q0", U, 0, blocked, "L1s", 1),
        # Chain completion: detach the replica from the blocked parent and
        # start both restore walks.
        Rule("L7s", U, blocked, D, 1, cts, pts, 0),
    ]
    for walker, final in ((cts, child_left), (pts, parent_restored)):
        w1 = ct1 if walker == cts else pt1
        w2 = ct2 if walker == cts else pt2
        rules.extend(
            [
                # Left endpoint parked as the f' placeholder (deviation 1),
                # walker moves right over the still-primed nodes.
                Rule(walker, R, "i'", L, 1, "f'", w1, 1),
                Rule(w1, R, "i'", L, 1, "i'", w1, 1),
                # Right endpoint restored to e; walker turns around.
                Rule(w1, R, "e'", L, 1, w2, "e", 1),
                # Left walk converts i' -> i strictly behind the walker, so
                # early attachments below freshly restored nodes (which
                # re-prime them) can never block the walk.
                Rule("i'", R, w2, L, 1, w2, "i", 1),
                # Back at the placeholder: restore the final endpoint state.
                Rule("f'", R, w2, L, 1, final, "i", 1),
            ]
        )
    return rules


def _shared_rules() -> List[Rule]:
    """Protocol 4 rules independent of the parent type."""
    return [
        # Free q0 nodes attach below internal/endpoint nodes of a line.
        Rule("i", D, "q0", U, 0, "i'", "i'", 1),
        Rule("e", D, "q0", U, 0, "e'", "e'", 1),
        # Replica row bonds horizontally.
        Rule("i'", R, "i'", L, 0, "i'", "i'", 1),
        Rule("i'", R, "e'", L, 0, "i'", "e'", 1),
        # Chain walk: L1s hands off to L2s which walks right bonding as it
        # goes, until the replica's right endpoint becomes L3s.
        Rule("L1s", R, "i'", L, 0, "e'", "L2s", 1),
        Rule("L2s", R, "i'", L, 0, "i'", "L2s", 1),
        Rule("L2s", R, "i'", L, 1, "i'", "L2s", 1),
        Rule("L2s", R, "e'", L, 0, "i'", "L3s", 1),
        Rule("L2s", R, "e'", L, 1, "i'", "L3s", 1),
        # Detach walk: cut the vertical bonds right-to-left.
        Rule("L3s", U, "e'", D, 1, "L4s", "e'", 0),
        Rule("i'", R, "L4s", L, 1, "L5s", "e'", 1),
        Rule("L5s", U, "i'", D, 1, "L6s", "i'", 0),
        Rule("i'", R, "L6s", L, 1, "L5s", "i'", 1),
        Rule("e'", R, "L6s", L, 1, "L7s", "i'", 1),
    ]


def line_replication_protocol() -> RuleProtocol:
    """Protocol 4 verbatim (single-shot): an ``L``-line replicates once.

    The original line ``L, i, ..., i, e`` produces a seed child
    ``Ls, i, ..., i, e`` and restores itself to ``Lstart, i, ..., i, e``
    (Figure 5). Lines must have length >= 3 (the paper's chain needs an
    internal node).
    """
    rules = _shared_rules() + _variant_rules("L", "Lstart", "Ls")
    return RuleProtocol(
        rules,
        initial_state="q0",
        leader_state="L",
        output_states={"L", "Lstart", "Ls", "i", "e"},
        name="line-replication-protocol-4",
    )


def self_replicating_lines_protocol() -> RuleProtocol:
    """The full §6.2 replication system: original -> seed -> replicas.

    The original ``L`` line replicates once into the seed ``Ls``; the seed
    keeps producing ``Lr`` replicas; ``Lr`` replicas are themselves totally
    self-replicating (their children also begin in ``Lr``), exactly as
    described for Square-Knowing-n.
    """
    rules = (
        _shared_rules()
        + _variant_rules("L", "Lstart", "Ls")
        + _variant_rules("Ls", "Ls", "Lr")
        + _variant_rules("Lr", "Lr", "Lr")
    )
    return RuleProtocol(
        rules,
        initial_state="q0",
        leader_state="L",
        output_states={"L", "Lstart", "Ls", "Lr", "i", "e"},
        name="self-replicating-lines",
    )


def no_leader_line_replication_protocol() -> RuleProtocol:
    """Protocol 5: leaderless line replication by degree counting.

    A line ``e, i, ..., i, e`` attracts free nodes below; replica nodes
    count their active connections in their state index and detach from the
    parent only when fully connected (degree 3 internally, 2 at the
    endpoints), which guarantees the replica detaches only at full length.
    Parent-side nodes use ``ip``/``ep`` while busy (deviation 2 above).
    """
    rules = [
        # Attachment below the parent (parent-side goes busy).
        Rule("i", D, "q0", U, 0, "ip", "i1", 1),
        Rule("e", D, "q0", U, 0, "ep", "e1", 1),
        # Replica-row bonding with degree counting.
        Rule("i1", R, "e1", L, 0, "i2", "e2", 1),
        Rule("i2", R, "e1", L, 0, "i3", "e2", 1),
        Rule("e1", R, "i1", L, 0, "e2", "i2", 1),
        Rule("e1", R, "i2", L, 0, "e2", "i3", 1),
        # Detachment: only fully connected replica nodes let go.
        Rule("i3", U, "ip", D, 1, "i", "i", 0),
        Rule("e2", U, "ep", D, 1, "e", "e", 0),
    ]
    for j in (1, 2):
        for k in (1, 2):
            rules.append(Rule(f"i{j}", R, f"i{k}", L, 0, f"i{j + 1}", f"i{k + 1}", 1))
    return RuleProtocol(
        rules,
        initial_state="q0",
        output_states={"i", "e"},
        name="no-leader-line-replication-protocol-5",
    )


# ----------------------------------------------------------------------
# World helpers for replication experiments
# ----------------------------------------------------------------------


def add_line(
    world: World,
    length: int,
    left_state: str,
    internal_state: str = "i",
    right_state: str = "e",
    origin: Vec = Vec(0, 0),
) -> Dict[Vec, int]:
    """Add a horizontal bonded line component to a world."""
    states: Dict[Vec, object] = {}
    for k in range(length):
        cell = origin + Vec(k, 0)
        if k == 0:
            states[cell] = left_state
        elif k == length - 1:
            states[cell] = right_state
        else:
            states[cell] = internal_state
    return world.add_component_from_cells(states)


def replication_world(
    length: int,
    free_nodes: Optional[int] = None,
    leader_left: str = "L",
    right_state: str = "e",
) -> World:
    """A world with one parent line plus free ``q0`` nodes.

    ``free_nodes`` defaults to exactly one replica's worth (``length``).
    """
    world = World(dimension=2)
    add_line(world, length, leader_left, right_state=right_state)
    count = length if free_nodes is None else free_nodes
    for _ in range(count):
        world.add_free_node("q0")
    return world


def extract_lines(world: World) -> List[Tuple[str, int]]:
    """Summarize the line components of a world as (left-state, length).

    Only components that are straight horizontal-or-vertical lines are
    reported; singletons are skipped.
    """
    lines: List[Tuple[str, int]] = []
    for comp in world.components.values():
        if comp.size() < 2:
            continue
        shape = world.component_shape(comp.cid)
        if not shape.is_line():
            continue
        cells = sorted(comp.cells)
        first = comp.cells[cells[0]]
        lines.append((str(world.state_of(first)), comp.size()))
    return lines
