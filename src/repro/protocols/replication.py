"""Line self-replication: Protocol 4 and Protocol 5 of the paper (§6.2).

A line ``L, i, i, ..., i, e`` (leader left endpoint, internal ``i`` nodes,
right endpoint ``e``) attracts free ``q0`` nodes to the ports below it; the
attached nodes bond horizontally into a *replica* row, which is then
detached, restored to ``C, i, ..., i, e`` (``C`` the child's left-endpoint
state) and released into the solution. Protocol 4 drives detachment and
restoration with a leader walk; Protocol 5 needs no leader and detaches
per-node by degree counting.

Two *documented deviations* from the verbatim tables (both are benign
races the tables leave open; see DESIGN.md):

1. **Protocol 4 restore placeholder.** The paper's restore walk temporarily
   sets the walked line's left endpoint to ``e'``
   (``(x^t, r), (i', l), 1 -> (e', x^t', 1)``). A free line whose left
   endpoint is ``e'`` can be docked by the rule ``(i', r), (e', l), 0`` of a
   *different* component's half-built replica, merging the two and
   deadlocking both. We use a fresh placeholder state ``f'`` instead of
   ``e'`` for the endpoint under restoration; ``f'`` has no bond-0 rules, so
   the dock is impossible, and it is converted to the final endpoint state
   by the last restore step exactly as ``e'`` would have been.

2. **Protocol 5 parent-side states.** The paper reuses ``i1``/``e1`` for
   both the parent node and the freshly attached replica node
   (``(i, d), (q0, u), 0 -> (i1, i1, 1)``). A parent endpoint in ``e1``
   exposes its outward port to the dock rule ``(e1, r), (i1, l), 0`` of a
   foreign half-built replica, again merging two components into a non-line.
   We give parent-side nodes the distinct states ``ip``/``ep`` ("parent
   busy"), which appear in no bond-0 rule; the detach rules restore them to
   ``i``/``e``.

Both deviations only remove unintended cross-component interactions; all
single-component executions are unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.protocol import RuleProtocol
from repro.core.world import World
from repro.geometry.ports import Port
from repro.geometry.vec import Vec
from repro.protocols.dsl import RuleSpec, bonded, expand, unbonded, when

U, R, D, L = Port.UP, Port.RIGHT, Port.DOWN, Port.LEFT

#: Shared worker states of Protocol 4 (replica row assembly + walks).
CHAIN = tuple(f"L{j}s" for j in range(1, 8))


def _variant_specs(
    parent_left: str, parent_restored: str, child_left: str
) -> List[RuleSpec]:
    """Protocol 4 rules for one parent type.

    ``parent_left`` is the state of the parent line's left endpoint that
    triggers replication; after one replication the parent's left endpoint
    becomes ``parent_restored`` and the released child's becomes
    ``child_left``. The paper gives the table for ``(L, Lstart, Ls)`` and
    notes the seed/replica variants are "almost identical" — this generator
    produces them.
    """
    blocked = f"{parent_left}'"
    # Child restore walker states (tagged by the child type they produce).
    cts, ct1, ct2 = (f"T{child_left}", f"T'{child_left}", f"T''{child_left}")
    # Parent restore walker states (tagged by the parent's restored type).
    pts, pt1, pt2 = (f"P{parent_restored}", f"P'{parent_restored}", f"P''{parent_restored}")
    specs = [
        # Replication starts: the chain seed attaches below the left end.
        when(parent_left, D, "q0", U, unbonded) >> (blocked, "L1s", bonded),
        # Chain completion: detach the replica from the blocked parent and
        # start both restore walks.
        when("L7s", U, blocked, D, bonded) >> (cts, pts, unbonded),
    ]
    for walker, final in ((cts, child_left), (pts, parent_restored)):
        w1 = ct1 if walker == cts else pt1
        w2 = ct2 if walker == cts else pt2
        specs.extend(
            [
                # Left endpoint parked as the f' placeholder (deviation 1),
                # walker moves right over the still-primed nodes.
                when(walker, R, "i'", L, bonded) >> ("f'", w1, bonded),
                when(w1, R, "i'", L, bonded) >> ("i'", w1, bonded),
                # Right endpoint restored to e; walker turns around.
                when(w1, R, "e'", L, bonded) >> (w2, "e", bonded),
                # Left walk converts i' -> i strictly behind the walker, so
                # early attachments below freshly restored nodes (which
                # re-prime them) can never block the walk.
                when("i'", R, w2, L, bonded) >> (w2, "i", bonded),
                # Back at the placeholder: restore the final endpoint state.
                when("f'", R, w2, L, bonded) >> (final, "i", bonded),
            ]
        )
    return specs


def _shared_specs() -> List[RuleSpec]:
    """Protocol 4 rules independent of the parent type."""
    return [
        # Free q0 nodes attach below internal/endpoint nodes of a line.
        when("i", D, "q0", U, unbonded) >> ("i'", "i'", bonded),
        when("e", D, "q0", U, unbonded) >> ("e'", "e'", bonded),
        # Replica row bonds horizontally.
        when("i'", R, "i'", L, unbonded) >> ("i'", "i'", bonded),
        when("i'", R, "e'", L, unbonded) >> ("i'", "e'", bonded),
        # Chain walk: L1s hands off to L2s which walks right bonding as it
        # goes, until the replica's right endpoint becomes L3s.
        when("L1s", R, "i'", L, unbonded) >> ("e'", "L2s", bonded),
        when("L2s", R, "i'", L, unbonded) >> ("i'", "L2s", bonded),
        when("L2s", R, "i'", L, bonded) >> ("i'", "L2s", bonded),
        when("L2s", R, "e'", L, unbonded) >> ("i'", "L3s", bonded),
        when("L2s", R, "e'", L, bonded) >> ("i'", "L3s", bonded),
        # Detach walk: cut the vertical bonds right-to-left.
        when("L3s", U, "e'", D, bonded) >> ("L4s", "e'", unbonded),
        when("i'", R, "L4s", L, bonded) >> ("L5s", "e'", bonded),
        when("L5s", U, "i'", D, bonded) >> ("L6s", "i'", unbonded),
        when("i'", R, "L6s", L, bonded) >> ("L5s", "i'", bonded),
        when("e'", R, "L6s", L, bonded) >> ("L7s", "i'", bonded),
    ]


def line_replication_protocol() -> RuleProtocol:
    """Protocol 4 verbatim (single-shot): an ``L``-line replicates once.

    The original line ``L, i, ..., i, e`` produces a seed child
    ``Ls, i, ..., i, e`` and restores itself to ``Lstart, i, ..., i, e``
    (Figure 5). Lines must have length >= 3 (the paper's chain needs an
    internal node).
    """
    rules = expand(_shared_specs() + _variant_specs("L", "Lstart", "Ls"))
    return RuleProtocol(
        rules,
        initial_state="q0",
        leader_state="L",
        output_states={"L", "Lstart", "Ls", "i", "e"},
        name="line-replication-protocol-4",
    )


def self_replicating_lines_protocol() -> RuleProtocol:
    """The full §6.2 replication system: original -> seed -> replicas.

    The original ``L`` line replicates once into the seed ``Ls``; the seed
    keeps producing ``Lr`` replicas; ``Lr`` replicas are themselves totally
    self-replicating (their children also begin in ``Lr``), exactly as
    described for Square-Knowing-n.
    """
    rules = expand(
        _shared_specs()
        + _variant_specs("L", "Lstart", "Ls")
        + _variant_specs("Ls", "Ls", "Lr")
        + _variant_specs("Lr", "Lr", "Lr")
    )
    return RuleProtocol(
        rules,
        initial_state="q0",
        leader_state="L",
        output_states={"L", "Lstart", "Ls", "Lr", "i", "e"},
        name="self-replicating-lines",
    )


def no_leader_line_replication_protocol() -> RuleProtocol:
    """Protocol 5: leaderless line replication by degree counting.

    A line ``e, i, ..., i, e`` attracts free nodes below; replica nodes
    count their active connections in their state index and detach from the
    parent only when fully connected (degree 3 internally, 2 at the
    endpoints), which guarantees the replica detaches only at full length.
    Parent-side nodes use ``ip``/``ep`` while busy (deviation 2 above).
    """
    specs = [
        # Attachment below the parent (parent-side goes busy).
        when("i", D, "q0", U, unbonded) >> ("ip", "i1", bonded),
        when("e", D, "q0", U, unbonded) >> ("ep", "e1", bonded),
        # Replica-row bonding with degree counting.
        when("i1", R, "e1", L, unbonded) >> ("i2", "e2", bonded),
        when("i2", R, "e1", L, unbonded) >> ("i3", "e2", bonded),
        when("e1", R, "i1", L, unbonded) >> ("e2", "i2", bonded),
        when("e1", R, "i2", L, unbonded) >> ("e2", "i3", bonded),
        # Detachment: only fully connected replica nodes let go.
        when("i3", U, "ip", D, bonded) >> ("i", "i", unbonded),
        when("e2", U, "ep", D, bonded) >> ("e", "e", unbonded),
    ]
    for j in (1, 2):
        for k in (1, 2):
            specs.append(
                when(f"i{j}", R, f"i{k}", L, unbonded)
                >> (f"i{j + 1}", f"i{k + 1}", bonded)
            )
    return RuleProtocol(
        expand(specs),
        initial_state="q0",
        output_states={"i", "e"},
        name="no-leader-line-replication-protocol-5",
    )


# ----------------------------------------------------------------------
# World helpers for replication experiments
# ----------------------------------------------------------------------


def add_line(
    world: World,
    length: int,
    left_state: str,
    internal_state: str = "i",
    right_state: str = "e",
    origin: Vec = Vec(0, 0),
) -> Dict[Vec, int]:
    """Add a horizontal bonded line component to a world."""
    states: Dict[Vec, object] = {}
    for k in range(length):
        cell = origin + Vec(k, 0)
        if k == 0:
            states[cell] = left_state
        elif k == length - 1:
            states[cell] = right_state
        else:
            states[cell] = internal_state
    return world.add_component_from_cells(states)


def replication_world(
    length: int,
    free_nodes: Optional[int] = None,
    leader_left: str = "L",
    right_state: str = "e",
) -> World:
    """A world with one parent line plus free ``q0`` nodes.

    ``free_nodes`` defaults to exactly one replica's worth (``length``).
    """
    world = World(dimension=2)
    add_line(world, length, leader_left, right_state=right_state)
    count = length if free_nodes is None else free_nodes
    for _ in range(count):
        world.add_free_node("q0")
    return world


def extract_lines(world: World) -> List[Tuple[str, int]]:
    """Summarize the line components of a world as (left-state, length).

    Only components that are straight horizontal-or-vertical lines are
    reported; singletons are skipped.
    """
    lines: List[Tuple[str, int]] = []
    for comp in world.components.values():
        if comp.size() < 2:
            continue
        shape = world.component_shape(comp.cid)
        if not shape.is_line():
            continue
        cells = sorted(comp.cells)
        first = comp.cells[cells[0]]
        lines.append((str(world.state_of(first)), comp.size()))
    return lines
