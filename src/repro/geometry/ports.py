"""Ports of a node: the bounded set of connection points of §3.

In the 2D model each node has four ports ``u, r, d, l`` (the paper's
``py, px, p-y, p-x``); the 3D model adds ``f`` (+z, the paper's ``pz``) and
``b`` (-z). Neighboring ports are perpendicular, forming the node's local
axes; the direction of a port in the world frame is the node's orientation
applied to the port's local direction.
"""

from __future__ import annotations

import enum
from typing import Tuple

from repro.errors import GeometryError
from repro.geometry.rotation import Rotation
from repro.geometry.vec import Vec


class Port(enum.Enum):
    """A local port of a node, named by its local axis direction."""

    UP = "u"        # +y, the paper's p_y
    RIGHT = "r"     # +x, the paper's p_x
    DOWN = "d"      # -y, the paper's p_-y
    LEFT = "l"      # -x, the paper's p_-x
    FRONT = "f"     # +z, the paper's p_z (3D only)
    BACK = "b"      # -z, the paper's p_-z (3D only)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Port.{self.name}"


#: Ports of the 2D model, in the paper's u, r, d, l order.
PORTS_2D: Tuple[Port, ...] = (Port.UP, Port.RIGHT, Port.DOWN, Port.LEFT)

#: Ports of the 3D model.
PORTS_3D: Tuple[Port, ...] = (
    Port.UP,
    Port.RIGHT,
    Port.DOWN,
    Port.LEFT,
    Port.FRONT,
    Port.BACK,
)

_DIRECTIONS = {
    Port.UP: Vec(0, 1, 0),
    Port.RIGHT: Vec(1, 0, 0),
    Port.DOWN: Vec(0, -1, 0),
    Port.LEFT: Vec(-1, 0, 0),
    Port.FRONT: Vec(0, 0, 1),
    Port.BACK: Vec(0, 0, -1),
}

_OPPOSITES = {
    Port.UP: Port.DOWN,
    Port.DOWN: Port.UP,
    Port.RIGHT: Port.LEFT,
    Port.LEFT: Port.RIGHT,
    Port.FRONT: Port.BACK,
    Port.BACK: Port.FRONT,
}

_BY_DIRECTION = {v: p for p, v in _DIRECTIONS.items()}


def ports_for_dimension(dimension: int) -> Tuple[Port, ...]:
    """Return the port set of the model with the given dimension."""
    if dimension == 2:
        return PORTS_2D
    if dimension == 3:
        return PORTS_3D
    raise GeometryError(f"unsupported dimension: {dimension!r}")


def port_direction(port: Port) -> Vec:
    """The local unit direction of a port."""
    return _DIRECTIONS[port]


def opposite(port: Port) -> Port:
    """The port on the opposite local axis (the paper's ``j-bar``)."""
    return _OPPOSITES[port]


def port_from_direction(direction: Vec) -> Port:
    """The port whose local direction equals ``direction``.

    Raises :class:`GeometryError` if ``direction`` is not a unit vector.
    """
    try:
        return _BY_DIRECTION[direction]
    except KeyError:
        raise GeometryError(f"not a unit direction: {direction!r}") from None


def world_direction(port: Port, orientation: Rotation) -> Vec:
    """The world-frame direction of ``port`` on a node with ``orientation``."""
    return orientation.apply(_DIRECTIONS[port])


def port_facing(orientation: Rotation, world_dir: Vec) -> Port:
    """The port of a node with ``orientation`` that points along ``world_dir``.

    Inverse of :func:`world_direction` in its first argument.
    """
    return port_from_direction(orientation.inverse().apply(world_dir))
