"""Ports of a node: the bounded set of connection points of §3.

In the 2D model each node has four ports ``u, r, d, l`` (the paper's
``py, px, p-y, p-x``); the 3D model adds ``f`` (+z, the paper's ``pz``) and
``b`` (-z). Neighboring ports are perpendicular, forming the node's local
axes; the direction of a port in the world frame is the node's orientation
applied to the port's local direction.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

from repro.errors import GeometryError
from repro.geometry.rotation import Matrix, Rotation
from repro.geometry.vec import UNIT_VECTORS, Vec


class Port(enum.Enum):
    """A local port of a node, named by its local axis direction."""

    UP = "u"        # +y, the paper's p_y
    RIGHT = "r"     # +x, the paper's p_x
    DOWN = "d"      # -y, the paper's p_-y
    LEFT = "l"      # -x, the paper's p_-x
    FRONT = "f"     # +z, the paper's p_z (3D only)
    BACK = "b"      # -z, the paper's p_-z (3D only)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Port.{self.name}"


#: Ports of the 2D model, in the paper's u, r, d, l order.
PORTS_2D: Tuple[Port, ...] = (Port.UP, Port.RIGHT, Port.DOWN, Port.LEFT)

#: Ports of the 3D model.
PORTS_3D: Tuple[Port, ...] = (
    Port.UP,
    Port.RIGHT,
    Port.DOWN,
    Port.LEFT,
    Port.FRONT,
    Port.BACK,
)

#: Local port directions, referencing the interned unit-vector instances so
#: boundary-API callers share one ``Vec`` per direction instead of
#: re-allocating equal copies.
_DIRECTIONS = {
    Port.UP: UNIT_VECTORS[0],
    Port.RIGHT: UNIT_VECTORS[1],
    Port.DOWN: UNIT_VECTORS[2],
    Port.LEFT: UNIT_VECTORS[3],
    Port.FRONT: UNIT_VECTORS[4],
    Port.BACK: UNIT_VECTORS[5],
}

#: Index of each port in ``PORTS_3D`` order (``PORTS_2D`` is a prefix), the
#: shared indexing convention of the packed-geometry delta tables.
PORT_INDEX = {port: i for i, port in enumerate(PORTS_3D)}

_OPPOSITES = {
    Port.UP: Port.DOWN,
    Port.DOWN: Port.UP,
    Port.RIGHT: Port.LEFT,
    Port.LEFT: Port.RIGHT,
    Port.FRONT: Port.BACK,
    Port.BACK: Port.FRONT,
}

_BY_DIRECTION = {v: p for p, v in _DIRECTIONS.items()}


def ports_for_dimension(dimension: int) -> Tuple[Port, ...]:
    """Return the port set of the model with the given dimension."""
    if dimension == 2:
        return PORTS_2D
    if dimension == 3:
        return PORTS_3D
    raise GeometryError(f"unsupported dimension: {dimension!r}")


def port_direction(port: Port) -> Vec:
    """The local unit direction of a port."""
    return _DIRECTIONS[port]


def opposite(port: Port) -> Port:
    """The port on the opposite local axis (the paper's ``j-bar``)."""
    return _OPPOSITES[port]


def port_from_direction(direction: Vec) -> Port:
    """The port whose local direction equals ``direction``.

    Raises :class:`GeometryError` if ``direction`` is not a unit vector.
    """
    try:
        return _BY_DIRECTION[direction]
    except KeyError:
        raise GeometryError(f"not a unit direction: {direction!r}") from None


_WORLD_DIRS: Dict[Matrix, Tuple[Vec, ...]] = {}


def _world_dirs(orientation: Rotation) -> Tuple[Vec, ...]:
    dirs = _WORLD_DIRS.get(orientation.matrix)
    if dirs is None:
        dirs = tuple(orientation.apply(_DIRECTIONS[p]) for p in PORTS_3D)
        _WORLD_DIRS[orientation.matrix] = dirs
    return dirs


def world_direction(port: Port, orientation: Rotation) -> Vec:
    """The world-frame direction of ``port`` on a node with ``orientation``.

    Memoized per orientation (the rotation group has at most 24 elements),
    returning interned ``Vec`` instances rather than rotating afresh.
    """
    return _world_dirs(orientation)[PORT_INDEX[port]]


_FACING: Dict[Tuple[Matrix, Vec], Port] = {}


def port_facing(orientation: Rotation, world_dir: Vec) -> Port:
    """The port of a node with ``orientation`` that points along ``world_dir``.

    Inverse of :func:`world_direction` in its first argument. Memoized over
    the (orientation, unit direction) pairs — at most 24 x 6 entries.
    """
    key = (orientation.matrix, world_dir)
    port = _FACING.get(key)
    if port is None:
        port = port_from_direction(orientation.inverse().apply(world_dir))
        _FACING[key] = port
    return port
