"""Immutable integer vectors on the 2D/3D unit grid.

A single :class:`Vec` type serves both the 2D and the 3D model; 2D vectors
simply keep ``z == 0``. All arithmetic is exact integer arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, order=True, slots=True)
class Vec:
    """An immutable integer vector / grid cell.

    Supports addition, subtraction, negation, integer scaling, Manhattan
    norm, and iteration (so ``tuple(v)`` works). Instances are hashable and
    totally ordered (lexicographically), which makes them usable as dict
    keys and sortable for canonical forms. ``__slots__`` (via the dataclass)
    keeps the per-instance footprint to the three coordinate fields — the
    interaction engine allocates vectors only at API boundaries, but those
    boundaries still see millions of instances per run.
    """

    x: int
    y: int
    z: int = 0

    def __add__(self, other: "Vec") -> "Vec":
        return Vec(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec") -> "Vec":
        return Vec(self.x - other.x, self.y - other.y, self.z - other.z)

    def __neg__(self) -> "Vec":
        return Vec(-self.x, -self.y, -self.z)

    def __mul__(self, k: int) -> "Vec":
        return Vec(self.x * k, self.y * k, self.z * k)

    __rmul__ = __mul__

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y
        yield self.z

    def manhattan(self) -> int:
        """Return the Manhattan (L1) norm."""
        return abs(self.x) + abs(self.y) + abs(self.z)

    def is_unit(self) -> bool:
        """True iff this is one of the axis-aligned unit vectors."""
        return self.manhattan() == 1

    def is_2d(self) -> bool:
        """True iff the vector lies in the z = 0 plane."""
        return self.z == 0

    def as_tuple(self) -> Tuple[int, int, int]:
        """Return the plain tuple ``(x, y, z)``."""
        return (self.x, self.y, self.z)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.z == 0:
            return f"Vec({self.x}, {self.y})"
        return f"Vec({self.x}, {self.y}, {self.z})"


ORIGIN = Vec(0, 0, 0)

#: The six axis-aligned unit vectors (2D uses the first four). These are the
#: interned instances: the port-direction tables of ``repro.geometry.ports``
#: resolve to these exact objects instead of allocating fresh ones.
UNIT_VECTORS = (
    Vec(0, 1, 0),   # +y (up)
    Vec(1, 0, 0),   # +x (right)
    Vec(0, -1, 0),  # -y (down)
    Vec(-1, 0, 0),  # -x (left)
    Vec(0, 0, 1),   # +z (front)
    Vec(0, 0, -1),  # -z (back)
)
