"""Packed-integer geometry kernel: the fast path under the §3 permissibility
predicate.

Every candidate evaluation funnels through collision checks, open-slot scans
and adjacency probes over component cell sets. Doing that arithmetic on
:class:`~repro.geometry.vec.Vec` dataclasses allocates an object per cell per
rotation and hashes three-field tuples on every membership probe. This module
packs a grid cell into a single small int — bit fields for x, y, z, each
offset so the packed value is non-negative::

    packed(v) = (v.x + OFFSET) << 32 | (v.y + OFFSET) << 16 | (v.z + OFFSET)

With that encoding, translation is plain integer addition of a *packed
delta* (a signed field-wise difference of two packed cells), membership is a
single small-int hash, and each rotation of the grid group becomes a
precompiled closure over its nine matrix entries. The public geometry API
(:class:`Vec`, :class:`Rotation`, :class:`Shape`) is untouched — callers
convert at the boundary with :func:`pack` / :func:`unpack` and keep packed
ints strictly internal to hot loops.

:class:`ComponentGeometry` is the per-component view built on top: a packed
occupancy ``frozenset`` plus lazily-computed open-slot, adjacent-pair and
rotated-cell tables. ``World`` snapshots one per component, keyed by
``Component.version``, so the tables are computed at most once per geometry
change (see ``World.geometry``).

Coordinates are bounded by :data:`MAX_COORD` (±32766 at the default
``BITS``): :func:`pack` rejects cells outside it, and the ``World`` merge
path bounds placements *before* committing them, so an overgrown component
raises :class:`~repro.errors.GeometryError` instead of silently wrapping a
bit field. Raise :data:`BITS` if a workload ever legitimately exceeds it.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Tuple

from repro.errors import GeometryError
from repro.geometry.ports import PORT_INDEX, PORTS_3D, port_direction
from repro.geometry.rotation import (
    Matrix,
    Rotation,
    rotations_mapping,
)
from repro.geometry.vec import Vec

#: Bits per coordinate field. 16 bits keeps a packed cell under two CPython
#: int digits while allowing coordinates in (-32768, 32768) — far beyond any
#: component these population sizes can build.
BITS = 16
SHIFT_X = 2 * BITS
SHIFT_Y = BITS
MASK = (1 << BITS) - 1
OFFSET = 1 << (BITS - 1)

#: ``pack(ORIGIN)``: add to a packed delta to reuse :func:`unpack` on it.
PACKED_ORIGIN = (OFFSET << SHIFT_X) | (OFFSET << SHIFT_Y) | OFFSET

#: Largest coordinate magnitude a stored cell may have. One unit of slack is
#: kept on both sides of the field so a ±1 adjacency probe on a stored cell
#: can never carry into the neighboring bit field.
MAX_COORD = OFFSET - 2


def pack(v: Vec) -> int:
    """Pack a grid cell into a single int. Raises when out of field range."""
    x, y, z = v.x, v.y, v.z
    if not (
        -MAX_COORD <= x <= MAX_COORD
        and -MAX_COORD <= y <= MAX_COORD
        and -MAX_COORD <= z <= MAX_COORD
    ):
        raise GeometryError(
            f"cell {v!r} outside packed range ±{MAX_COORD}; raise packed.BITS"
        )
    return ((x + OFFSET) << SHIFT_X) | ((y + OFFSET) << SHIFT_Y) | (z + OFFSET)


def unpack(p: int) -> Vec:
    """Inverse of :func:`pack`."""
    return Vec(
        ((p >> SHIFT_X) & MASK) - OFFSET,
        ((p >> SHIFT_Y) & MASK) - OFFSET,
        (p & MASK) - OFFSET,
    )


def pack_delta(v: Vec) -> int:
    """Pack a displacement. ``pack(a) + pack_delta(b - a) == pack(b)``.

    The result is a plain (possibly negative) int; field-wise borrows cancel
    exactly when it is added to a packed cell whose translate stays in range.
    """
    return (v.x << SHIFT_X) + (v.y << SHIFT_Y) + v.z


def unpack_delta(t: int) -> Vec:
    """Inverse of :func:`pack_delta` (valid for in-range displacements)."""
    return unpack(t + PACKED_ORIGIN)


# ----------------------------------------------------------------------
# Rotations on packed cells
# ----------------------------------------------------------------------

PackedRotation = Callable[[int], int]


def _compile_rotation(m: Matrix) -> PackedRotation:
    m00, m01, m02 = m[0]
    m10, m11, m12 = m[1]
    m20, m21, m22 = m[2]

    def apply(p: int) -> int:
        x = ((p >> SHIFT_X) & MASK) - OFFSET
        y = ((p >> SHIFT_Y) & MASK) - OFFSET
        z = (p & MASK) - OFFSET
        return (
            ((m00 * x + m01 * y + m02 * z + OFFSET) << SHIFT_X)
            | ((m10 * x + m11 * y + m12 * z + OFFSET) << SHIFT_Y)
            | (m20 * x + m21 * y + m22 * z + OFFSET)
        )

    return apply


_PACKED_ROTATIONS: Dict[Matrix, PackedRotation] = {}


def packed_rotation(rotation: Rotation) -> PackedRotation:
    """The packed-cell application closure of a rotation (memoized)."""
    fn = _PACKED_ROTATIONS.get(rotation.matrix)
    if fn is None:
        fn = _compile_rotation(rotation.matrix)
        _PACKED_ROTATIONS[rotation.matrix] = fn
    return fn


_PACKED_MAPPINGS: Dict[Tuple[int, int, int], Tuple[Rotation, ...]] = {}


def packed_rotations_mapping(
    src_delta: int, dst_delta: int, dimension: int
) -> Tuple[Rotation, ...]:
    """All rotations taking packed delta ``src_delta`` to ``dst_delta``.

    The packed twin of :func:`repro.geometry.rotation.rotations_mapping`,
    memoized on the packed pair (36 unit-direction pairs per dimension, so
    the table is tiny and the hot path is a single dict hit).
    """
    key = (src_delta, dst_delta, dimension)
    hit = _PACKED_MAPPINGS.get(key)
    if hit is None:
        hit = rotations_mapping(
            unpack_delta(src_delta), unpack_delta(dst_delta), dimension
        )
        _PACKED_MAPPINGS[key] = hit
    return hit


# ----------------------------------------------------------------------
# Port-direction delta tables
# ----------------------------------------------------------------------

_PORT_DELTAS: Dict[Matrix, Tuple[int, ...]] = {}


def orientation_port_deltas(orientation: Rotation) -> Tuple[int, ...]:
    """Packed world-frame port deltas of a node orientation.

    Indexed by :data:`~repro.geometry.ports.PORT_INDEX` (``PORTS_3D``
    order; the 2D port tuple is a prefix of it). The table holds one entry
    per element of the rotation group, so every ``rec.pos + world_direction``
    in the interaction engine collapses to one dict hit and one int add.
    """
    deltas = _PORT_DELTAS.get(orientation.matrix)
    if deltas is None:
        deltas = tuple(
            pack_delta(orientation.apply(port_direction(port)))
            for port in PORTS_3D
        )
        _PORT_DELTAS[orientation.matrix] = deltas
    return deltas


#: Positive-axis packed unit deltas (+x, +y, +z): one probe per grid edge.
POSITIVE_DELTAS = (
    pack_delta(Vec(1, 0, 0)),
    pack_delta(Vec(0, 1, 0)),
    pack_delta(Vec(0, 0, 1)),
)


# ----------------------------------------------------------------------
# Per-component packed view
# ----------------------------------------------------------------------


class ComponentGeometry:
    """Packed snapshot of one component's geometry at a fixed version.

    Built once per ``Component.version`` by ``World.geometry``; the open-slot,
    adjacent-pair and per-rotation rotated-cell tables are computed lazily on
    first use and shared by every candidate probe until the next geometry
    change invalidates the snapshot.
    """

    __slots__ = (
        "version",
        "cells",
        "pos_of",
        "occ",
        "radius",
        "_nodes",
        "_ports",
        "_dimension",
        "_slots",
        "_pairs",
        "_rotated",
        "_rotated_occ",
        "_occ_array",
        "_rotated_arrays",
    )

    def __init__(self, comp, nodes: Dict, ports: Tuple, dimension: int) -> None:
        self.version: int = comp.version
        cells: Dict[int, int] = {}
        pos_of: Dict[int, int] = {}
        radius = 0
        for cell, nid in comp.cells.items():
            p = pack(cell)
            cells[p] = nid
            pos_of[nid] = p
            m = max(abs(cell.x), abs(cell.y), abs(cell.z))
            if m > radius:
                radius = m
        #: packed cell -> node id
        self.cells = cells
        #: node id -> packed cell
        self.pos_of = pos_of
        #: packed occupancy set (collision probes)
        self.occ = frozenset(cells)
        #: Chebyshev radius of the cell set: rotations preserve it, so a
        #: placement with translation t keeps every landing coordinate
        #: within ``|t_i| + radius`` — the bound the merge path checks
        #: against the packed field range before committing.
        self.radius = radius
        self._nodes = nodes
        self._ports = ports
        self._dimension = dimension
        self._slots: Tuple[Tuple[int, object], ...] = None  # type: ignore[assignment]
        self._pairs: Tuple[Tuple[int, int], ...] = None  # type: ignore[assignment]
        self._rotated: Dict[Matrix, Tuple[int, ...]] = {}
        self._rotated_occ: Dict[Matrix, FrozenSet[int]] = {}
        self._occ_array = None
        self._rotated_arrays: Dict[Matrix, object] = {}

    def slots(self) -> Tuple[Tuple[int, object], ...]:
        """Node-ports whose adjacent cell is unoccupied (lazy, cached)."""
        if self._slots is None:
            out: List[Tuple[int, object]] = []
            cells = self.cells
            nodes = self._nodes
            ports = self._ports
            for p, nid in cells.items():
                deltas = orientation_port_deltas(nodes[nid].orientation)
                for i, port in enumerate(ports):
                    if (p + deltas[i]) not in cells:
                        out.append((nid, port))
            self._slots = tuple(out)
        return self._slots

    def pairs(self) -> Tuple[Tuple[int, int], ...]:
        """Unordered grid-adjacent node pairs (lazy, cached)."""
        if self._pairs is None:
            out: List[Tuple[int, int]] = []
            cells = self.cells
            deltas = POSITIVE_DELTAS[: self._dimension]
            for p, nid in cells.items():
                for d in deltas:
                    other = cells.get(p + d)
                    if other is not None:
                        out.append((nid, other))
            self._pairs = tuple(out)
        return self._pairs

    def rotated(self, rotation: Rotation) -> Tuple[int, ...]:
        """The packed cells under ``rotation``, aligned with ``cells`` order.

        Cached per rotation: a component is collision-probed against many
        partners between geometry changes, and the rotated cell tuple is
        identical across all of them.
        """
        key = rotation.matrix
        t = self._rotated.get(key)
        if t is None:
            apply = packed_rotation(rotation)
            t = tuple(apply(p) for p in self.cells)
            self._rotated[key] = t
        return t

    def rotated_occ(self, rotation: Rotation) -> FrozenSet[int]:
        """The rotated cells as a set — one membership probe decides a
        whole group of fixed-offset placements (cached per rotation)."""
        key = rotation.matrix
        s = self._rotated_occ.get(key)
        if s is None:
            s = frozenset(self.rotated(rotation))
            self._rotated_occ[key] = s
        return s

    def occ_array(self):
        """The occupancy as a sorted int64 numpy array (columnar backend
        only; cached). ``None`` when numpy is unavailable."""
        a = self._occ_array
        if a is None:
            import numpy as _np

            a = _np.fromiter(self.occ, dtype=_np.int64, count=len(self.occ))
            a.sort()
            self._occ_array = a
        return a

    def rotated_array(self, rotation: Rotation):
        """The rotated cells as an int64 numpy array, aligned with
        :meth:`rotated` (columnar backend only; cached per rotation)."""
        key = rotation.matrix
        a = self._rotated_arrays.get(key)
        if a is None:
            import numpy as _np

            a = _np.array(self.rotated(rotation), dtype=_np.int64)
            self._rotated_arrays[key] = a
        return a


def pack_cells(cells: Iterable[Vec]) -> Dict[int, Vec]:
    """Pack an iterable of cells into a ``packed -> Vec`` mapping."""
    return {pack(c): c for c in cells}
