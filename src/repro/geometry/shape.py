"""Shapes: connected subnetworks of the unit grid (§3, Definition of shapes).

A :class:`Shape` is an immutable set of grid cells together with a set of
active grid edges between adjacent cells, such that the edges connect the
cells into a single component. Shapes support translation, rotation,
normalization and congruence tests, and optional ``{0,1}`` (or arbitrary)
labels per cell, which is how the paper represents labeled squares ``S_d``
and rectangles ``R_G``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Tuple,
)

from repro.errors import InvalidShapeError
from repro.geometry.packed import POSITIVE_DELTAS, pack_cells
from repro.geometry.rotation import Rotation, rotations_for_dimension
from repro.geometry.vec import UNIT_VECTORS, Vec

#: A grid edge: an unordered pair of adjacent cells.
GridEdge = FrozenSet[Vec]


def grid_edge(a: Vec, b: Vec) -> GridEdge:
    """Build a grid edge, validating unit distance."""
    if (a - b).manhattan() != 1:
        raise InvalidShapeError(f"cells are not adjacent: {a!r}, {b!r}")
    return frozenset((a, b))


def _adjacent_pairs(cells: AbstractSet[Vec]) -> Iterator[GridEdge]:
    # Packed-int adjacency probe: one small-int hash per (cell, +axis) pair
    # instead of allocating a Vec and comparing coordinate tuples per probe.
    packed = pack_cells(cells)
    for p, c in packed.items():
        for d in POSITIVE_DELTAS:
            other = packed.get(p + d)
            if other is not None:
                yield frozenset((c, other))


def _is_connected(cells: AbstractSet[Vec], edges: AbstractSet[GridEdge]) -> bool:
    if not cells:
        return True
    adjacency: Dict[Vec, list] = {c: [] for c in cells}
    for e in edges:
        a, b = tuple(e)
        adjacency[a].append(b)
        adjacency[b].append(a)
    start = next(iter(cells))
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for w in adjacency[v]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == len(cells)


@dataclass(frozen=True)
class Shape:
    """An immutable connected grid shape with optional per-cell labels.

    Parameters
    ----------
    cells:
        The occupied grid cells.
    edges:
        The active edges; must connect ``cells`` into one component. When
        omitted, all grid edges between adjacent cells are active (the
        "rigid" default).
    labels:
        Optional mapping from cell to an arbitrary hashable label (the
        paper's on/off bits or pattern colors).
    """

    cells: FrozenSet[Vec]
    edges: FrozenSet[GridEdge]
    labels: Tuple[Tuple[Vec, object], ...] = field(default=())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def from_cells(
        cells: Iterable[Vec],
        edges: Optional[Iterable[GridEdge]] = None,
        labels: Optional[Mapping[Vec, object]] = None,
    ) -> "Shape":
        """Build and validate a shape.

        When ``edges`` is omitted, every grid edge between adjacent cells is
        activated. Raises :class:`InvalidShapeError` when the result is not
        a single connected shape or an edge is invalid.
        """
        cell_set = frozenset(cells)
        if not cell_set:
            raise InvalidShapeError("a shape must contain at least one cell")
        if edges is None:
            edge_set = frozenset(_adjacent_pairs(cell_set))
        else:
            edge_set = frozenset(edges)
            for e in edge_set:
                if len(e) != 2:
                    raise InvalidShapeError(f"malformed edge: {e!r}")
                a, b = tuple(e)
                if (a - b).manhattan() != 1:
                    raise InvalidShapeError(f"edge not at unit distance: {e!r}")
                if a not in cell_set or b not in cell_set:
                    raise InvalidShapeError(f"edge endpoint outside shape: {e!r}")
        if not _is_connected(cell_set, edge_set):
            raise InvalidShapeError("cells/edges do not form a connected shape")
        label_items: Tuple[Tuple[Vec, object], ...] = ()
        if labels:
            for c in labels:
                if c not in cell_set:
                    raise InvalidShapeError(f"label on cell outside shape: {c!r}")
            label_items = tuple(sorted(labels.items(), key=lambda kv: kv[0]))
        return Shape(cell_set, edge_set, label_items)

    @staticmethod
    def single(cell: Vec = Vec(0, 0)) -> "Shape":
        """The one-node shape at ``cell``."""
        return Shape.from_cells([cell])

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, cell: Vec) -> bool:
        return cell in self.cells

    @property
    def label_map(self) -> Dict[Vec, object]:
        """The labels as a plain dict (possibly empty)."""
        return dict(self.labels)

    def is_2d(self) -> bool:
        """True iff every cell lies in the z = 0 plane."""
        return all(c.z == 0 for c in self.cells)

    def neighbors(self, cell: Vec) -> Tuple[Vec, ...]:
        """Cells of the shape grid-adjacent to ``cell``."""
        return tuple(cell + d for d in UNIT_VECTORS if cell + d in self.cells)

    def edge_active(self, a: Vec, b: Vec) -> bool:
        """True iff the grid edge between ``a`` and ``b`` is active."""
        return frozenset((a, b)) in self.edges

    def degree(self, cell: Vec) -> int:
        """Number of active edges incident to ``cell``."""
        return sum(1 for e in self.edges if cell in e)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def translate(self, delta: Vec) -> "Shape":
        """Return the shape translated by ``delta``."""
        mapping = {c: c + delta for c in self.cells}
        return self._mapped(mapping)

    def rotate(self, rotation: Rotation) -> "Shape":
        """Return the shape rotated about the origin."""
        mapping = {c: rotation.apply(c) for c in self.cells}
        return self._mapped(mapping)

    def _mapped(self, mapping: Dict[Vec, Vec]) -> "Shape":
        cells = frozenset(mapping.values())
        edges = frozenset(
            frozenset((mapping[a], mapping[b])) for e in self.edges for a, b in [tuple(e)]
        )
        labels = tuple(sorted(((mapping[c], v) for c, v in self.labels), key=lambda kv: kv[0]))
        return Shape(cells, edges, labels)

    def normalize(self) -> "Shape":
        """Translate so the minimum corner of the bounding box is the origin."""
        min_x = min(c.x for c in self.cells)
        min_y = min(c.y for c in self.cells)
        min_z = min(c.z for c in self.cells)
        return self.translate(Vec(-min_x, -min_y, -min_z))

    def canonical(self, dimension: int = 2) -> "Shape":
        """A canonical representative of the congruence class of the shape.

        Minimizes (over the rotation group and translations) the sorted cell
        tuple; two shapes are congruent iff their canonical forms are equal.
        Labels participate in the canonical ordering.
        """
        best: Optional[Shape] = None
        best_key = None
        for rot in rotations_for_dimension(dimension):
            cand = self.rotate(rot).normalize()
            key = (tuple(sorted(cand.cells)), tuple(sorted(map(tuple, cand.edges), key=sorted)), cand.labels)
            if best_key is None or key < best_key:
                best_key = key
                best = cand
        assert best is not None
        return best

    def congruent(self, other: "Shape", dimension: int = 2) -> bool:
        """True iff the shapes are equal up to rotation and translation."""
        return self.canonical(dimension) == other.canonical(dimension)

    def same_up_to_translation(self, other: "Shape") -> bool:
        """True iff the shapes are equal up to translation only."""
        return self.normalize() == other.normalize()

    # ------------------------------------------------------------------
    # Shape-theoretic predicates used by the paper
    # ------------------------------------------------------------------

    def is_full_rectangle(self) -> bool:
        """True iff cells fill the bounding box and all edges are active.

        This is the predicate the replication leader tests when deciding the
        squaring phase is complete (§7.1).
        """
        if not self.is_2d():
            return False
        xs = [c.x for c in self.cells]
        ys = [c.y for c in self.cells]
        width = max(xs) - min(xs) + 1
        height = max(ys) - min(ys) + 1
        if len(self.cells) != width * height:
            return False
        return len(self.edges) == len(frozenset(_adjacent_pairs(self.cells)))

    def is_full_box(self) -> bool:
        """True iff cells fill the 3D bounding box and all edges are active.

        The 3D analogue of :meth:`is_full_rectangle`, used by the cube
        constructor to validate its output.
        """
        xs = [c.x for c in self.cells]
        ys = [c.y for c in self.cells]
        zs = [c.z for c in self.cells]
        volume = (
            (max(xs) - min(xs) + 1)
            * (max(ys) - min(ys) + 1)
            * (max(zs) - min(zs) + 1)
        )
        if len(self.cells) != volume:
            return False
        return len(self.edges) == len(frozenset(_adjacent_pairs(self.cells)))

    def is_line(self) -> bool:
        """True iff the shape is a straight line (spanning-line output, §4.1)."""
        xs = {c.x for c in self.cells}
        ys = {c.y for c in self.cells}
        zs = {c.z for c in self.cells}
        fixed = sum(1 for s in (xs, ys, zs) if len(s) == 1)
        if fixed < 2:
            return False
        lo = min(self.cells)
        hi = max(self.cells)
        return (hi - lo).manhattan() == len(self.cells) - 1

    def on_subshape(self, on_label: object = 1) -> "Shape":
        """The shape induced by cells labeled ``on_label`` (the paper's G_d).

        Raises :class:`InvalidShapeError` when the on-cells are not
        connected, mirroring the paper's connectivity requirement on
        computed shapes.
        """
        on_cells = {c for c, v in self.labels if v == on_label}
        edges = {e for e in self.edges if all(c in on_cells for c in e)}
        return Shape.from_cells(on_cells, edges)
