"""Bounding rectangles ``R_G`` and enclosing squares ``S_G`` of §3.

Every 2D shape ``G`` has a unique minimum enclosing rectangle ``R_G``; it is
represented as a {0,1}-labeled shape where cells of ``G`` carry label 1 and
filler cells label 0, with all grid edges active. ``R_G`` extends to
``max_dim x max_dim`` squares ``S_G`` in ``max_dim - min_dim + 1`` ways;
all of them are enumerated.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import GeometryError
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec


def bounding_box(shape: Shape) -> Tuple[Vec, Vec]:
    """Return ``(min_corner, max_corner)`` of the shape's bounding box."""
    xs = [c.x for c in shape.cells]
    ys = [c.y for c in shape.cells]
    zs = [c.z for c in shape.cells]
    return Vec(min(xs), min(ys), min(zs)), Vec(max(xs), max(ys), max(zs))


def rect_dimensions(shape: Shape) -> Tuple[int, int]:
    """``(h_G, v_G)``: horizontal and vertical extent of the shape (§3)."""
    lo, hi = bounding_box(shape)
    return hi.x - lo.x + 1, hi.y - lo.y + 1


def max_dim(shape: Shape) -> int:
    """``max_dim_G = max(h_G, v_G)``."""
    return max(rect_dimensions(shape))


def min_dim(shape: Shape) -> int:
    """``min_dim_G = min(h_G, v_G)``."""
    return min(rect_dimensions(shape))


def bounding_rect(shape: Shape) -> Shape:
    """The labeled minimum rectangle ``R_G`` enclosing a 2D shape.

    Cells of ``G`` are labeled 1, filler cells 0; all grid edges are active
    (the paper: "It is like filling G with additional nodes and edges to
    make it a rectangle").
    """
    if not shape.is_2d():
        raise GeometryError("bounding_rect is defined for 2D shapes")
    lo, hi = bounding_box(shape)
    cells = [
        Vec(x, y)
        for y in range(lo.y, hi.y + 1)
        for x in range(lo.x, hi.x + 1)
    ]
    labels = {c: (1 if c in shape.cells else 0) for c in cells}
    return Shape.from_cells(cells, labels=labels)


def enclosing_squares(shape: Shape) -> List[Shape]:
    """All ``max_dim x max_dim`` labeled squares ``S_G`` enclosing the shape.

    ``R_G`` is extended by ``max_dim - min_dim`` rows or columns; the extra
    rows/columns can be placed in ``max_dim - min_dim + 1`` distinct ways
    relative to ``G`` (the paper's example: a horizontal line of length d
    extends to a square in d ways). All squares have size ``|S_G|``.
    """
    rect = bounding_rect(shape)
    lo, hi = bounding_box(rect)
    width = hi.x - lo.x + 1
    height = hi.y - lo.y + 1
    side = max(width, height)
    slack = side - min(width, height)
    squares: List[Shape] = []
    for shift in range(slack + 1):
        if width >= height:
            origin = Vec(lo.x, lo.y - shift)
        else:
            origin = Vec(lo.x - shift, lo.y)
        cells = [
            Vec(x, y)
            for y in range(origin.y, origin.y + side)
            for x in range(origin.x, origin.x + side)
        ]
        labels = {c: (1 if c in shape.cells else 0) for c in cells}
        squares.append(Shape.from_cells(cells, labels=labels))
    return squares


def enclosing_square(shape: Shape) -> Shape:
    """A canonical choice among :func:`enclosing_squares` (the first one)."""
    return enclosing_squares(shape)[0]


def waste(square_side: int, shape: Shape) -> int:
    """Nodes of a ``square_side``-square not belonging to the shape.

    This is the paper's *waste* of a construction on ``square_side ** 2``
    processes (Definition 4 / Theorem 4).
    """
    return square_side * square_side - len(shape.cells)
