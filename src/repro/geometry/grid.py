"""Grid helpers: zig-zag pixel indexing and standard cell families.

The zig-zag order is the one of Figure 7(b): pixels of a ``d x d`` square
are indexed starting from the bottom-left corner, moving right along the
bottom row, then one step up, then left, one step up, then right again, and
so on. Both directions of the bijection are provided, plus convenience
constructors for the cell sets used throughout the paper (lines, rectangles,
squares).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.errors import GeometryError
from repro.geometry.vec import Vec


def zigzag_index_to_cell(index: int, width: int, origin: Vec = Vec(0, 0)) -> Vec:
    """The cell of pixel ``index`` in a grid of the given ``width``.

    Row ``index // width`` (counted bottom-up from ``origin``); even rows run
    left-to-right, odd rows right-to-left, exactly as in Figure 7(b).
    """
    if width <= 0:
        raise GeometryError(f"width must be positive: {width!r}")
    if index < 0:
        raise GeometryError(f"negative pixel index: {index!r}")
    row, offset = divmod(index, width)
    col = offset if row % 2 == 0 else width - 1 - offset
    return origin + Vec(col, row)


def zigzag_cell_to_index(cell: Vec, width: int, origin: Vec = Vec(0, 0)) -> int:
    """Inverse of :func:`zigzag_index_to_cell`."""
    rel = cell - origin
    if rel.z != 0:
        raise GeometryError(f"zig-zag indexing is 2D; got {cell!r}")
    if not (0 <= rel.x < width) or rel.y < 0:
        raise GeometryError(f"cell outside grid of width {width}: {cell!r}")
    col = rel.x if rel.y % 2 == 0 else width - 1 - rel.x
    return rel.y * width + col


def zigzag_order(width: int, height: int, origin: Vec = Vec(0, 0)) -> List[Vec]:
    """All cells of a ``width x height`` grid in zig-zag pixel order."""
    return [
        zigzag_index_to_cell(i, width, origin) for i in range(width * height)
    ]


def line_cells(length: int, origin: Vec = Vec(0, 0), direction: Vec = Vec(1, 0)) -> List[Vec]:
    """Cells of a straight line of the given length."""
    if length <= 0:
        raise GeometryError(f"length must be positive: {length!r}")
    if not direction.is_unit():
        raise GeometryError(f"direction must be a unit vector: {direction!r}")
    return [origin + direction * i for i in range(length)]


def rectangle_cells(width: int, height: int, origin: Vec = Vec(0, 0)) -> List[Vec]:
    """Cells of a ``width x height`` axis-aligned rectangle."""
    if width <= 0 or height <= 0:
        raise GeometryError(f"rectangle dims must be positive: {width}x{height}")
    return [origin + Vec(x, y) for y in range(height) for x in range(width)]


def square_cells(side: int, origin: Vec = Vec(0, 0)) -> List[Vec]:
    """Cells of a ``side x side`` axis-aligned square."""
    return rectangle_cells(side, side, origin)


def iter_box(width: int, height: int, depth: int = 1, origin: Vec = Vec(0, 0)) -> Iterator[Vec]:
    """Iterate the cells of a 3D box (used by the §6.4 slab constructor)."""
    if width <= 0 or height <= 0 or depth <= 0:
        raise GeometryError(f"box dims must be positive: {width}x{height}x{depth}")
    for z in range(depth):
        for y in range(height):
            for x in range(width):
                yield origin + Vec(x, y, z)


def integer_cbrt(n: int) -> Tuple[int, bool]:
    """Return ``(floor(cbrt(n)), exact)`` with ``exact`` iff n is a cube.

    The 3D analogue of :func:`integer_sqrt`, used by the cube constructor
    (the leader computes it by successive cubes, exactly like §6.2's
    successive squares).
    """
    if n < 0:
        raise GeometryError(f"negative operand: {n!r}")
    if n == 0:
        return 0, True
    x = round(n ** (1.0 / 3.0))
    # Float cube roots can be off by one either way; settle exactly.
    while x**3 > n:
        x -= 1
    while (x + 1) ** 3 <= n:
        x += 1
    return x, x**3 == n


def integer_sqrt(n: int) -> Tuple[int, bool]:
    """Return ``(isqrt(n), exact)`` with ``exact`` true iff n is a square.

    This mirrors the leader's successive-multiplication computation of
    ``sqrt(n)`` in §6.2 (we use Newton's method; the result is identical).
    """
    if n < 0:
        raise GeometryError(f"negative operand: {n!r}")
    if n == 0:
        return 0, True
    x = n
    y = (x + 1) // 2
    while y < x:
        x = y
        y = (x + n // x) // 2
    return x, x * x == n
