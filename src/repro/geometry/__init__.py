"""Integer grid geometry: vectors, rotations, ports, shapes, zig-zag order.

This package is the geometric substrate of the model in §3 of the paper:
nodes occupy cells of the 2D (or 3D) unit grid, connect through ports that
are perpendicular to neighboring ports, and connected components are rigid
shapes (connected subgraphs of the grid).
"""

from repro.geometry.vec import Vec, ORIGIN
from repro.geometry.rotation import (
    Rotation,
    ROTATIONS_2D,
    ROTATIONS_3D,
    identity_rotation,
)
from repro.geometry.ports import (
    Port,
    PORTS_2D,
    PORTS_3D,
    opposite,
    port_direction,
    port_from_direction,
)
from repro.geometry.packed import (
    ComponentGeometry,
    pack,
    pack_delta,
    packed_rotation,
    packed_rotations_mapping,
    unpack,
    unpack_delta,
)
from repro.geometry.shape import Shape, GridEdge
from repro.geometry.grid import (
    zigzag_index_to_cell,
    zigzag_cell_to_index,
    zigzag_order,
    square_cells,
    rectangle_cells,
    line_cells,
)
from repro.geometry.rect import (
    bounding_rect,
    rect_dimensions,
    max_dim,
    min_dim,
    enclosing_squares,
    enclosing_square,
)

__all__ = [
    "Vec",
    "ORIGIN",
    "Rotation",
    "ROTATIONS_2D",
    "ROTATIONS_3D",
    "identity_rotation",
    "Port",
    "PORTS_2D",
    "PORTS_3D",
    "opposite",
    "port_direction",
    "port_from_direction",
    "Shape",
    "GridEdge",
    "ComponentGeometry",
    "pack",
    "pack_delta",
    "packed_rotation",
    "packed_rotations_mapping",
    "unpack",
    "unpack_delta",
    "zigzag_index_to_cell",
    "zigzag_cell_to_index",
    "zigzag_order",
    "square_cells",
    "rectangle_cells",
    "line_cells",
    "bounding_rect",
    "rect_dimensions",
    "max_dim",
    "min_dim",
    "enclosing_squares",
    "enclosing_square",
]
