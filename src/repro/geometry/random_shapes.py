"""Random connected shapes for tests and replication benchmarks."""

from __future__ import annotations

import random
from typing import List, Optional

from repro.geometry.shape import Shape
from repro.geometry.vec import Vec

_DIRS = (Vec(0, 1), Vec(1, 0), Vec(0, -1), Vec(-1, 0))


def random_connected_shape(
    size: int, rng: Optional[random.Random] = None, seed: Optional[int] = None
) -> Shape:
    """A uniform-ish random connected polyomino of ``size`` cells.

    Grown by repeatedly attaching a random free neighbor of the current
    cell set (the standard Eden growth model); always connected.
    """
    if rng is None:
        rng = random.Random(seed)
    cells = {Vec(0, 0)}
    frontier: List[Vec] = [Vec(0, 0) + d for d in _DIRS]
    while len(cells) < size:
        idx = rng.randrange(len(frontier))
        cell = frontier.pop(idx)
        if cell in cells:
            continue
        cells.add(cell)
        for d in _DIRS:
            nxt = cell + d
            if nxt not in cells:
                frontier.append(nxt)
    return Shape.from_cells(cells).normalize()
