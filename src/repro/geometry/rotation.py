"""Finite rotation groups of the grid: C4 in 2D, the 24 proper rotations in 3D.

Every node floating in the solution may be arbitrarily rotated (§3: "the
coordinates are only for local purposes and do not necessarily represent the
actual orientation of a node in the system"). A node's orientation is an
element of the rotation group of the grid; the world-frame direction of a
port is the rotation applied to the port's local direction.

Rotations are represented as 3x3 integer matrices (tuples of tuples), which
makes composition and application exact and hashable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import GeometryError
from repro.geometry.vec import Vec

Matrix = Tuple[Tuple[int, int, int], Tuple[int, int, int], Tuple[int, int, int]]

_IDENTITY: Matrix = ((1, 0, 0), (0, 1, 0), (0, 0, 1))


def _mat_mul(a: Matrix, b: Matrix) -> Matrix:
    return tuple(
        tuple(sum(a[i][k] * b[k][j] for k in range(3)) for j in range(3))
        for i in range(3)
    )  # type: ignore[return-value]


def _mat_apply(m: Matrix, v: Vec) -> Vec:
    return Vec(
        m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
        m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
        m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
    )


def _mat_transpose(m: Matrix) -> Matrix:
    return tuple(tuple(m[j][i] for j in range(3)) for i in range(3))  # type: ignore[return-value]


@dataclass(frozen=True, slots=True)
class Rotation:
    """A proper rotation of the grid (orthogonal integer matrix, det +1).

    Instances are immutable and hashable. ``compose`` corresponds to applying
    ``other`` first and then ``self`` (matrix product ``self @ other``).
    """

    matrix: Matrix

    def apply(self, v: Vec) -> Vec:
        """Rotate the vector ``v``."""
        return _mat_apply(self.matrix, v)

    def compose(self, other: "Rotation") -> "Rotation":
        """Return the rotation equivalent to ``other`` followed by ``self``."""
        return Rotation(_mat_mul(self.matrix, other.matrix))

    def inverse(self) -> "Rotation":
        """Return the inverse rotation (transpose, as the matrix is orthogonal)."""
        return Rotation(_mat_transpose(self.matrix))

    def is_2d(self) -> bool:
        """True iff the rotation fixes the z axis (a rotation about z)."""
        return self.apply(Vec(0, 0, 1)) == Vec(0, 0, 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Rotation({self.matrix})"


identity_rotation = Rotation(_IDENTITY)

# 90-degree counter-clockwise rotation about the z axis: (x, y) -> (-y, x).
_ROT_Z: Matrix = ((0, -1, 0), (1, 0, 0), (0, 0, 1))
# 90-degree rotation about the x axis: (y, z) -> (-z, y).
_ROT_X: Matrix = ((1, 0, 0), (0, 0, -1), (0, 1, 0))
# 90-degree rotation about the y axis: (z, x) -> (-x, z).
_ROT_Y: Matrix = ((0, 0, 1), (0, 1, 0), (-1, 0, 0))


def _generate_group(generators: Tuple[Matrix, ...]) -> Tuple[Rotation, ...]:
    """Closure of the generators under matrix multiplication (BFS)."""
    seen: Dict[Matrix, None] = {_IDENTITY: None}
    frontier = [_IDENTITY]
    while frontier:
        m = frontier.pop()
        for g in generators:
            nm = _mat_mul(g, m)
            if nm not in seen:
                seen[nm] = None
                frontier.append(nm)
    return tuple(Rotation(m) for m in sorted(seen))


#: The cyclic group C4 of rotations about the z axis, used by the 2D model.
ROTATIONS_2D: Tuple[Rotation, ...] = tuple(
    sorted(_generate_group((_ROT_Z,)), key=lambda r: r.matrix)
)

#: The 24 proper rotations of the cube, used by the 3D model.
ROTATIONS_3D: Tuple[Rotation, ...] = _generate_group((_ROT_Z, _ROT_X, _ROT_Y))


def rotations_for_dimension(dimension: int) -> Tuple[Rotation, ...]:
    """Return the rotation group of the model with the given dimension."""
    if dimension == 2:
        return ROTATIONS_2D
    if dimension == 3:
        return ROTATIONS_3D
    raise GeometryError(f"unsupported dimension: {dimension!r}")


_MAPPING_CACHE: Dict[Tuple[Vec, Vec, int], Tuple[Rotation, ...]] = {}


def rotations_mapping(
    source: Vec, target: Vec, dimension: int
) -> Tuple[Rotation, ...]:
    """All rotations of the model's group taking ``source`` to ``target``.

    For unit vectors this has exactly 1 element in 2D and 4 in 3D (the
    stabilizer of an axis is C4). Used by the interaction engine to align a
    port of one component with a port of another — a hot call, so results
    are memoized per ``(source, target, dimension)`` (the engine only ever
    asks about unit-vector pairs, keeping the table at 36 entries per
    dimension; arbitrary vectors are admitted and cached the same way).
    """
    key = (source, target, dimension)
    hit = _MAPPING_CACHE.get(key)
    if hit is None:
        hit = tuple(
            r for r in rotations_for_dimension(dimension) if r.apply(source) == target
        )
        _MAPPING_CACHE[key] = hit
    return hit
