"""Shape self-replication (§7): squaring, shifting, column replication."""

from repro.replication.squaring import (
    Deficiency,
    SquaringResult,
    find_deficiencies,
    run_squaring,
)
from repro.replication.shifting import ReplicationResult, replicate_by_shifting
from repro.replication.columns import replicate_by_columns

__all__ = [
    "Deficiency",
    "SquaringResult",
    "find_deficiencies",
    "run_squaring",
    "ReplicationResult",
    "replicate_by_shifting",
    "replicate_by_columns",
]
