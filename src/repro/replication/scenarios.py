"""Scenario adapters for §7 self-replication (``repro.replication``).

Registered into ``repro.experiments.registry``; see that module for the
adapter contract. Both scenarios grow a random connected polyomino from
the trial seed, exactly like the historical ``repro replicate`` command.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional

from repro.core.simulator import StopReason
from repro.experiments.registry import Param, ScenarioOutcome, scenario
from repro.geometry.random_shapes import random_connected_shape
from repro.replication.columns import replicate_by_columns
from repro.replication.shifting import replicate_by_shifting
from repro.replication.squaring import run_squaring
from repro.viz.ascii_art import render_shape


@scenario(
    name="squaring",
    summary="Proposition 1: complete a shape to its enclosing rectangle",
    params=(Param("size", "int", 12, help="cells in the random shape"),),
    tags=("replication", "squaring"),
    covers=("repro.replication.squaring.run_squaring",),
)
def _run_squaring_scenario(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    rng = random.Random(seed)
    shape = random_connected_shape(params["size"], rng)
    result = run_squaring(shape, rng=rng)
    rect_cells = len(result.rectangle.cells)
    return ScenarioOutcome(
        metrics={
            "size": params["size"],
            "rect_cells": rect_cells,
            "fillers_used": result.fillers_used,
            "interactions": result.interactions,
        },
        events=result.interactions,
        stop_reason=StopReason.PREDICATE,
        renders={"rectangle": render_shape(result.rectangle)},
    )


@scenario(
    name="replicate",
    summary="§7 self-replication of a random connected shape",
    params=(
        Param("size", "int", 12, help="cells in the shape"),
        Param(
            "approach",
            "str",
            "shifting",
            choices=("shifting", "columns"),
            help="A1 squaring+shifting or A2 column replication",
        ),
    ),
    tags=("replication",),
    covers=(
        "repro.replication.shifting.replicate_by_shifting",
        "repro.replication.columns.replicate_by_columns",
    ),
)
def _run_replicate(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    shape = random_connected_shape(params["size"], seed=seed)
    replicate = (
        replicate_by_shifting
        if params["approach"] == "shifting"
        else replicate_by_columns
    )
    result = replicate(shape, seed=seed)
    return ScenarioOutcome(
        metrics={
            "size": params["size"],
            "approach": params["approach"],
            "interactions": result.interactions,
            "nodes_used": result.nodes_used,
            "waste": result.waste,
            "identical": result.identical,
        },
        events=result.interactions,
        stop_reason=StopReason.PREDICATE,
        renders={
            "original": render_shape(result.original),
            "replica": render_shape(result.replica),
        },
    )
