"""Replication Approach 2 (§7.2): column-by-column replication with keys.

After squaring, every column gets a unique matching key (column ``i``
matches only column ``i - 1``, as in §6.4.2's segments). The rightmost
column is replicated by attaching free nodes to its right, copying each
cell's on/off label and the key; then first the replica column and then
the original column are released into the solution. Replica columns use a
distinct key *kind* so original and replica columns never mix. Once all
columns float free, the two rectangles self-assemble by key matching; a
final de-squaring releases the label-0 dummies of both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec
from repro.replication.shifting import ReplicationResult
from repro.replication.squaring import run_squaring


@dataclass
class _Column:
    index: int
    kind: str  # "orig" | "copy"
    labels: Tuple[int, ...]

    @property
    def key_black(self) -> int:
        return self.index

    @property
    def key_gray(self) -> int:
        return self.index + 1


def _assemble(columns: List[_Column], rng: random.Random) -> Tuple[List[_Column], int]:
    """Random key-matching assembly; returns (ordered columns, contacts)."""
    clusters: List[List[_Column]] = [[c] for c in columns]
    contacts = 0
    guard = 0
    while len(clusters) > 1:
        guard += 1
        if guard > 10_000_000:  # pragma: no cover - safety net
            raise SimulationError("assembly did not converge")
        i, j = rng.sample(range(len(clusters)), 2)
        contacts += 1
        a, b = clusters[i], clusters[j]
        if a[0].kind != b[0].kind:
            continue  # different kinds never bond
        if a[-1].key_gray == b[0].key_black:
            merged = a + b
        elif b[-1].key_gray == a[0].key_black:
            merged = b + a
        else:
            continue
        clusters = [c for idx, c in enumerate(clusters) if idx not in (i, j)]
        clusters.append(merged)
    return clusters[0], contacts


def replicate_by_columns(
    shape: Shape,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> ReplicationResult:
    """Replicate a connected 2D shape via column replication (§7.2)."""
    if rng is None:
        rng = random.Random(seed)
    shape = shape.normalize()
    squaring = run_squaring(shape, rng=rng)
    rect = squaring.rectangle.normalize()
    labels = rect.label_map
    width = max(c.x for c in rect.cells) + 1
    height = max(c.y for c in rect.cells) + 1
    interactions = squaring.interactions

    originals: List[_Column] = []
    copies: List[_Column] = []
    # Replicate the rightmost column, release replica then original, repeat.
    for x in range(width - 1, -1, -1):
        column = tuple(labels[Vec(x, y)] for y in range(height))
        interactions += height  # attach free nodes for the copy
        interactions += height  # copy labels and the key marks
        interactions += 2       # release replica column, release original
        originals.append(_Column(x, "orig", column))
        copies.append(_Column(x, "copy", column))

    ordered_orig, contacts1 = _assemble(originals, rng)
    ordered_copy, contacts2 = _assemble(copies, rng)
    interactions += contacts1 + contacts2
    for ordered in (ordered_orig, ordered_copy):
        if [c.index for c in ordered] != list(range(width)):
            raise SimulationError("columns assembled out of order")

    def rebuild(ordered: List[_Column]) -> Shape:
        cells = [
            Vec(x, y)
            for x, col in enumerate(ordered)
            for y, v in enumerate(col.labels)
            if v == 1
        ]
        return Shape.from_cells(cells).normalize()

    dummies = sum(1 for v in labels.values() if v == 0)
    interactions += 2 * dummies  # de-squaring both rectangles
    rect_size = width * height
    return ReplicationResult(
        original=rebuild(ordered_orig),
        replica=rebuild(ordered_copy),
        interactions=interactions,
        nodes_used=2 * rect_size,
        waste=2 * (rect_size - len(shape.cells)),
    )
