"""Replication Approach 1 (§7.1): squaring + column shifting.

After the squaring phase encloses the shape in ``R_G``, the leader copies
the column configuration (the on/off label of every cell) column by column
to the right: round ``r`` shifts the replica one column rightward,
appending a fresh column of free nodes when the replica's rightmost column
leaves the original rectangle. After ``w`` rounds (``w`` the rectangle
width) the replica rectangle stands immediately right of the original; the
leader deactivates the seam, both rectangles de-square (release their
label-0 dummies), and two identical shapes float in the solution.

Interactions are charged one per cell copied, one per node attached or
released, and one per seam bond cut — the cost profile of the leader's
walks in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.geometry.rect import bounding_rect
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec
from repro.replication.squaring import run_squaring


@dataclass
class ReplicationResult:
    """Outcome of a shape replication."""

    original: Shape
    replica: Shape
    interactions: int
    nodes_used: int
    waste: int

    @property
    def identical(self) -> bool:
        return self.original.same_up_to_translation(self.replica)


def replicate_by_shifting(
    shape: Shape,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> ReplicationResult:
    """Replicate a connected 2D shape via squaring + shifting.

    Requires (and consumes) ``2 |V(R_G)|`` nodes in total; the waste is
    ``2 (|V(R_G)| - |V(G)|)`` released dummies, exactly the paper's
    accounting.
    """
    if rng is None:
        rng = random.Random(seed)
    shape = shape.normalize()
    squaring = run_squaring(shape, rng=rng)
    rect = squaring.rectangle.normalize()
    labels: Dict[Vec, object] = rect.label_map
    width = max(c.x for c in rect.cells) + 1
    height = max(c.y for c in rect.cells) + 1
    interactions = squaring.interactions

    # The replica's label plane, built column by column. Round r copies
    # column w-1-r of the replica frontier rightward; we account one
    # interaction per cell copied and one per fresh node attached.
    replica: Dict[Vec, object] = {}
    for r in range(width):
        src_x = width - 1 - r
        # Appending the fresh rightmost replica column.
        for y in range(height):
            interactions += 1  # attach a free node
        # Shift every already-copied column one step right (copy walk).
        interactions += len(replica)
        replica = {Vec(c.x + 1, c.y): v for c, v in replica.items()}
        for y in range(height):
            replica[Vec(width, y)] = labels[Vec(src_x, y)]
        # The dict keeps replica cells at x >= width throughout.
    # After width rounds the replica occupies x in [width, 2 width).
    replica_cells = {Vec(width + x, y): labels[Vec(x, y)] for x in range(width) for y in range(height)}
    if replica != replica_cells:
        raise SimulationError("shifting produced a misaligned replica")

    # Seam release: cut the bonds between column width-1 and column width.
    interactions += height
    # De-squaring both rectangles: release every label-0 dummy.
    dummies = sum(1 for v in labels.values() if v == 0)
    interactions += 2 * dummies

    original_shape = rect.on_subshape(1)
    replica_shape = Shape.from_cells(
        [c for c, v in replica_cells.items() if v == 1]
    )
    rect_size = width * height
    return ReplicationResult(
        original=original_shape.normalize(),
        replica=replica_shape.normalize(),
        interactions=interactions,
        nodes_used=2 * rect_size,
        waste=2 * (rect_size - len(shape.cells)),
    )
