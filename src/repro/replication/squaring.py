"""The squaring phase (§7.1, Proposition 1, Figure 10).

A connected *on*-labeled shape ``G`` is completed to its minimum enclosing
rectangle ``R_G`` by purely local detections: whenever two present adjacent
nodes miss their edge, activate it; whenever one of the four Figure 10
"detection shapes" is present (an L of three nodes around an empty corner
cell), a free node is attached at the empty cell. Proposition 1 states a
non-rectangle always exhibits at least one such deficiency — which this
implementation both relies on (progress) and exposes for testing
(:func:`find_deficiencies`).

Filler nodes are labeled ``off`` (the paper's label-0 nodes); the leader's
rectangle-detection walk at the end is charged one interaction per
perimeter cell.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.geometry.rect import bounding_rect
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec

_DIRS = (Vec(0, 1), Vec(1, 0), Vec(0, -1), Vec(-1, 0))


@dataclass(frozen=True)
class Deficiency:
    """A locally detectable reason the shape is not yet a rectangle.

    ``kind`` is ``"edge"`` (two adjacent present cells, inactive edge) or
    ``"node"`` (an empty cell with an L of three present cells around it,
    one of the four detection shapes of Figure 10(a)).
    """

    kind: str
    cell: Vec
    other: Optional[Vec] = None


def find_deficiencies(cells: Set[Vec], edges: Set[frozenset]) -> List[Deficiency]:
    """All deficiencies of the current (cells, active-edges) configuration."""
    found: List[Deficiency] = []
    for c in cells:
        for d in _DIRS:
            o = c + d
            if o in cells and frozenset((c, o)) not in edges:
                if (c.x, c.y, c.z) < (o.x, o.y, o.z):
                    found.append(Deficiency("edge", c, o))
    # Figure 10(a): an empty corner cell with two perpendicular present
    # neighbors whose mutual diagonal neighbor is also present.
    for c in cells:
        for dx, dy in ((1, 1), (1, -1), (-1, 1), (-1, -1)):
            corner = c + Vec(dx, dy)
            if corner in cells:
                continue
            a = c + Vec(dx, 0)
            b = c + Vec(0, dy)
            if a in cells and b in cells:
                found.append(Deficiency("node", corner))
    # Deduplicate node deficiencies detected from several Ls.
    seen = set()
    unique: List[Deficiency] = []
    for df in found:
        key = (df.kind, df.cell, df.other)
        if key not in seen:
            seen.add(key)
            unique.append(df)
    return unique


@dataclass
class SquaringResult:
    """Outcome of the squaring phase."""

    rectangle: Shape
    interactions: int
    fillers_used: int


def run_squaring(
    shape: Shape,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> SquaringResult:
    """Complete ``shape`` to its minimum enclosing rectangle ``R_G``.

    Deficiencies are resolved one interaction at a time in random order
    (any fair resolution order converges, per Proposition 1's progress
    argument); the result is the {0,1}-labeled rectangle with ``shape``'s
    cells labeled 1.
    """
    if rng is None:
        rng = random.Random(seed)
    cells: Set[Vec] = set(shape.cells)
    edges: Set[frozenset] = set(shape.edges)
    original = set(shape.cells)
    interactions = 0
    fillers = 0
    while True:
        deficiencies = find_deficiencies(cells, edges)
        if not deficiencies:
            break
        df = deficiencies[rng.randrange(len(deficiencies))]
        interactions += 1
        if df.kind == "edge":
            assert df.other is not None
            edges.add(frozenset((df.cell, df.other)))
        else:
            cells.add(df.cell)
            fillers += 1
            for d in _DIRS:
                o = df.cell + d
                if o in cells:
                    edges.add(frozenset((df.cell, o)))
                    interactions += 1
    result = Shape.from_cells(
        cells, edges, labels={c: (1 if c in original else 0) for c in cells}
    )
    if not result.is_full_rectangle():
        raise SimulationError(
            "squaring stopped with deficiencies exhausted but no rectangle — "
            "this contradicts Proposition 1"
        )
    expected = bounding_rect(shape)
    if result.normalize().cells != expected.normalize().cells:
        raise SimulationError("squaring produced a rectangle other than R_G")
    # The leader's final rectangle-detection walk around the perimeter.
    xs = [c.x for c in cells]
    ys = [c.y for c in cells]
    perimeter = 2 * (max(xs) - min(xs) + 1) + 2 * (max(ys) - min(ys) + 1)
    interactions += perimeter
    return SquaringResult(result, interactions, fillers)
