"""Bit-exact replay: rebuild any intermediate world from a trace.

:class:`TraceCursor` folds one record at a time into a world rebuilt from
the header (or any checkpoint) snapshot — the incremental consumer behind
both offline replay and the live ASCII view. :func:`replay_trace` is the
offline engine: it seeks to the nearest checkpoint at or before the target
event, replays the remaining records, and (with ``verify``) recomputes the
world digest against every checkpoint anchor it passes plus the end
record's final digest — so "bit-exact" is a checked claim, not an
assumption.

``--to-event N`` semantics: apply records up to but excluding the first
*event* record with index > N. Fault records carry the event count they
struck after, so a world paused at N includes the detach/excise faults
that fired in step N — exactly the state a live run shows after its N-th
:meth:`~repro.core.simulator.Simulation.step`. Quiescent fault steps (a
``FaultySimulation`` injecting damage while no protocol event is
permissible) do not advance the event count, so at the final event count
``--to-event`` includes every trailing fault — i.e. the completed run's
world.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.trace import world_from_dict
from repro.core.world import World
from repro.errors import TraceError
from repro.trace.encoding import (
    bond_from_record,
    candidate_from_record,
    move_from_record,
    state_from_record,
    update_from_record,
    world_digest,
)
from repro.trace.reader import TraceReader


@dataclass
class ReplayResult:
    """What :func:`replay_trace` reconstructed, and how."""

    world: World
    events: int  #: effective interactions represented in ``world``
    start_events: int  #: the seek anchor's event count (0 = from header)
    records_applied: int  #: event/detach/excise records applied after seek
    checkpoints_verified: int  #: digest anchors recomputed and matched
    digest: str  #: the reconstructed world's digest
    verified: bool  #: True iff a final digest claim was checked and matched


class TraceCursor:
    """Incremental world reconstruction from a stream of trace records.

    Feed records in stream order; the cursor rebuilds the world from the
    header snapshot and applies each event/detach/excise. ``resync=True``
    (the live view's mode) reloads the world from any checkpoint whose
    digest does not match the cursor's world — tolerant of runs that
    mutate the world outside the traced interaction stream (constructor
    surgery between steps). Offline replay uses the strict default, where
    such a mismatch is a hard error.
    """

    def __init__(self, resync: bool = False) -> None:
        self.world: Optional[World] = None
        self.events = 0
        self.applied = 0
        self.resync = resync
        self.resyncs = 0
        self.end: Optional[Dict[str, Any]] = None

    @classmethod
    def from_snapshot(cls, record: Dict[str, Any], events: int = 0) -> "TraceCursor":
        """Start mid-stream from a checkpoint (or header) record."""
        cursor = cls()
        cursor.world = world_from_dict(record["snapshot"])
        cursor.events = events
        return cursor

    def feed(self, record: Dict[str, Any]) -> None:
        """Apply one record in stream order."""
        kind = record.get("kind")
        if kind == "header":
            self.world = world_from_dict(record["snapshot"])
            self.events = 0
            return
        if self.world is None:
            raise TraceError(f"{kind} record before any snapshot")
        if kind == "event":
            self._apply_event(record)
        elif kind == "move":
            self._apply_move(record)
        elif kind == "detach":
            # Out-of-band faults reuse the world's journaled split paths,
            # exactly as live injection does (repro.faults.injection).
            from repro.faults.injection import break_bond

            break_bond(self.world, bond_from_record(record))
            self.applied += 1
        elif kind == "excise":
            self.world.free_singleton(record["nid"], state_from_record(record))
            self.applied += 1
        elif kind == "checkpoint":
            self._on_checkpoint(record)
        elif kind == "end":
            self.end = record
        else:
            raise TraceError(f"unknown record kind {kind!r}")

    def verify_against(self, record: Dict[str, Any], what: str) -> None:
        """Assert the cursor's world matches a digest-bearing record."""
        assert self.world is not None
        expected = record.get("snapshot_digest") or record.get("world_digest")
        actual = world_digest(self.world)
        if actual != expected:
            raise TraceError(
                f"replay diverged at {what} (events={self.events}): world "
                f"digest {actual[:12]}… != recorded {str(expected)[:12]}… — "
                "the run mutated the world outside the traced interaction "
                "stream, or the trace is inconsistent"
            )

    # ------------------------------------------------------------------

    def _apply_event(self, record: Dict[str, Any]) -> None:
        assert self.world is not None
        cand = candidate_from_record(record)
        if cand.nid1 not in self.world.nodes or cand.nid2 not in self.world.nodes:
            raise TraceError(
                f"replay event {record['index']}: unknown node ids "
                f"({cand.nid1}, {cand.nid2})"
            )
        actual_bond = self.world.bond_state(
            cand.nid1, cand.port1, cand.nid2, cand.port2
        )
        if cand.bond != actual_bond:
            raise TraceError(
                f"replay event {record['index']}: bond state diverged "
                f"(trace expects {cand.bond}, world has {actual_bond})"
            )
        self.world.apply(cand, update_from_record(record))
        self.events = record["index"]
        self.applied += 1

    def _apply_move(self, record: Dict[str, Any]) -> None:
        # Imported here: the hybrid layer sits above the core trace stack,
        # and only traces that actually contain moves pay the import.
        from repro.hybrid.movement import rotate_leaf

        assert self.world is not None
        leaf, pivot, clockwise, leaf_state, pivot_state = move_from_record(
            record
        )
        if leaf not in self.world.nodes or pivot not in self.world.nodes:
            raise TraceError(
                f"replay move {record['index']}: unknown node ids "
                f"({leaf}, {pivot})"
            )
        if not rotate_leaf(self.world, leaf, clockwise):
            raise TraceError(
                f"replay move {record['index']}: swing target occupied "
                "(the trace diverged from the world being rebuilt)"
            )
        self.world.set_state(leaf, leaf_state)
        self.world.set_state(pivot, pivot_state)
        self.events = record["index"]
        self.applied += 1

    def _on_checkpoint(self, record: Dict[str, Any]) -> None:
        assert self.world is not None
        if not self.resync:
            return
        if world_digest(self.world) != record.get("snapshot_digest"):
            self.world = world_from_dict(record["snapshot"])
            self.events = int(record.get("events", self.events))
            self.resyncs += 1


def replay_trace(
    trace: Union[TraceReader, str, Path],
    to_event: Optional[int] = None,
    verify: bool = False,
    use_checkpoints: bool = True,
) -> ReplayResult:
    """Reconstruct the world at ``to_event`` (default: the end of the run).

    Seeks to the latest checkpoint at or before the target, then applies
    the remaining records. With ``verify``, the seek snapshot and every
    checkpoint passed are recomputed against their recorded digests, and —
    when the target is the end of the trace — so is the final world
    digest; any mismatch raises :class:`TraceError`.
    """
    if not isinstance(trace, TraceReader):
        trace = TraceReader.load(trace)
    target = trace.events if to_event is None else to_event
    if target < 0 or target > trace.events:
        raise TraceError(
            f"--to-event {target} is outside the recorded range "
            f"[0, {trace.events}]"
        )

    # Seek: the latest checkpoint at or before the target event. A
    # checkpoint written between event N and its same-step faults still
    # works — the fault records follow it in the stream and get applied.
    start_pos = 0
    start_events = 0
    cursor = TraceCursor()
    anchor: Dict[str, Any] = trace.header
    if use_checkpoints:
        for pos, rec in trace.checkpoints():
            if rec["events"] <= target:
                start_pos = pos + 1
                start_events = int(rec["events"])
                anchor = rec
            else:
                break
    cursor.world = world_from_dict(anchor["snapshot"])
    cursor.events = start_events
    if verify:
        # Round-trip check on the seek anchor itself: the restored world
        # must reproduce the snapshot digest (world_from_dict fidelity).
        if world_digest(cursor.world) != anchor["snapshot_digest"]:
            raise TraceError(
                "restored snapshot does not reproduce its recorded digest "
                "(world_from_dict round-trip failure)"
            )

    checkpoints_verified = 0
    reached_end = False
    for record in trace.records[start_pos:]:
        kind = record.get("kind")
        if kind in ("event", "move") and record["index"] > target:
            break
        if kind == "checkpoint":
            if verify:
                cursor.verify_against(record, "checkpoint")
                checkpoints_verified += 1
            continue
        if kind == "end":
            if verify:
                cursor.verify_against(record, "end record")
            reached_end = True
            cursor.end = record
            break
        cursor.feed(record)

    del reached_end  # every digest claim encountered was checked above
    assert cursor.world is not None
    return ReplayResult(
        world=cursor.world,
        events=cursor.events,
        start_events=start_events,
        records_applied=cursor.applied,
        checkpoints_verified=checkpoints_verified,
        digest=world_digest(cursor.world),
        verified=verify,
    )
