"""First-divergence trace diffing: the ``repro.trace.diff/v1`` engine.

Given two ``repro.trace/v1`` streams, walk both sides record-by-record in
lockstep and report the **first diverging event** — never a later one, and
with enough decoded context to act on: the event index, both raw records,
the world neighborhood around the touched nodes (rebuilt checkpoint-seek
style from each side's last snapshot plus the records since), and one of
five classifications:

* ``event-mismatch`` — the applied interactions differ (this is the
  bisection signal: the first event where two runs of "the same" seeded
  trajectory part ways);
* ``fault-mismatch`` — an out-of-band detach/excise record differs;
* ``checkpoint-drift`` — the record streams agree but a snapshot does not
  (header snapshots, same-event-count checkpoints, or the final world
  digest) — a run mutated the world outside the traced interaction stream;
* ``chain-break`` — one side is internally inconsistent (tampered bytes,
  broken hash chain, digest mismatch) before any cross-side divergence;
* ``premature-end`` — one side stops (truncation, a torn final line, or a
  finalized end anchor) while the other continues.

The engine *compares* records — it never applies them — so diffing two
identical traces costs a stream pass, not a dual world replay; checkpoint
anchors are aligned by event count and compared by snapshot digest, which
tolerates two sides recorded at different checkpoint cadences. Memory is
bounded by the checkpoint interval: each side keeps only its latest
snapshot line and the raw lines since (the neighborhood window), exactly
what checkpoint-seek :func:`~repro.trace.replay.replay_trace` would read.

Streams may be trace files, raw bytes, loaded
:class:`~repro.trace.reader.TraceReader` objects, or in-memory record
lists (the live re-simulation mode of ``repro diff --live`` records the
header's scenario identity to a sink list and diffs against that).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.trace import _state_repr, world_from_dict
from repro.errors import TraceError
from repro.trace.encoding import encode_line
from repro.trace.reader import TraceReader, TraceValidator
from repro.trace.replay import TraceCursor

#: Schema identifier stamped into every diff payload (``repro validate``
#: dispatches on it; registered in ``repro.experiments.io.KNOWN_SCHEMAS``).
DIFF_SCHEMA = "repro.trace.diff/v1"

#: The closed classification vocabulary (see the module docstring).
CLASSIFICATIONS = (
    "event-mismatch",
    "fault-mismatch",
    "checkpoint-drift",
    "chain-break",
    "premature-end",
)

#: Record kinds that advance the shared event counter.
_EVENT_KINDS = ("event", "move")

#: Record kinds the lockstep loop compares pairwise (checkpoints are
#: aligned by event count instead — cadences may differ between sides).
_COMPARABLE_KINDS = ("event", "move", "detach", "excise", "end")

#: Header keys excluded from the identity comparison: the checkpoint
#: cadence shapes the *encoding* of a trajectory, not the trajectory.
_HEADER_ADVISORY_KEYS = ("checkpoint_every",)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


@dataclass
class Divergence:
    """The first point where the two sides part ways."""

    classification: str  #: one of :data:`CLASSIFICATIONS`
    event: Optional[int]  #: event index at the divergence (0 = header)
    seq_a: Optional[int]  #: line number of the diverging record, side a
    seq_b: Optional[int]  #: line number of the diverging record, side b
    record_a: Optional[Dict[str, Any]]  #: side a's record (None past EOF)
    record_b: Optional[Dict[str, Any]]  #: side b's record
    side: Optional[str]  #: 'a'/'b' when one side alone is defective
    detail: str  #: one human sentence
    neighborhood: Optional[Dict[str, Any]] = None  #: decoded world context

    def to_dict(self) -> Dict[str, Any]:
        return {
            "classification": self.classification,
            "event": self.event,
            "seq_a": self.seq_a,
            "seq_b": self.seq_b,
            "record_a": self.record_a,
            "record_b": self.record_b,
            "side": self.side,
            "detail": self.detail,
            "neighborhood": self.neighborhood,
        }


@dataclass
class DiffResult:
    """The outcome of :func:`diff_traces`."""

    identical: bool
    a: Dict[str, Any]  #: side descriptor: source label + counters
    b: Dict[str, Any]
    events_compared: int  #: event/move pairs that matched
    checkpoints_compared: int  #: same-event-count snapshot digests matched
    divergence: Optional[Divergence] = None

    def to_payload(self) -> Dict[str, Any]:
        """The stable ``repro.trace.diff/v1`` JSON payload."""
        return {
            "schema": DIFF_SCHEMA,
            "kind": "trace-diff",
            "identical": self.identical,
            "a": self.a,
            "b": self.b,
            "events_compared": self.events_compared,
            "checkpoints_compared": self.checkpoints_compared,
            "divergence": (
                None if self.divergence is None else self.divergence.to_dict()
            ),
        }

    def describe(self) -> str:
        """One human line (the CLI's non-JSON output)."""
        if self.identical:
            return (
                f"identical: {self.events_compared} events, "
                f"{self.checkpoints_compared} checkpoint anchors compared"
            )
        d = self.divergence
        assert d is not None
        where = f"event {d.event}" if d.event is not None else "stream"
        return f"DIVERGED at {where} ({d.classification}): {d.detail}"


# ----------------------------------------------------------------------
# Stream sides
# ----------------------------------------------------------------------


@dataclass
class _Pull:
    """One lockstep pull: a comparable record, or a terminal defect."""

    record: Optional[Dict[str, Any]] = None
    seq: Optional[int] = None
    errors: List[str] = field(default_factory=list)
    defect: Optional[str] = None  #: 'chain-break' | 'premature-end' | None
    raw: Optional[bytes] = None  #: the record's raw line (window absorb)


class _Side:
    """One trace stream under incremental validation.

    Pulls raw lines lazily, validates each with
    :class:`~repro.trace.reader.TraceValidator`, stashes checkpoints for
    event-count alignment, and maintains the neighborhood window (latest
    snapshot line + raw lines since) in bounded memory.
    """

    def __init__(self, lines: Iterator[bytes], label: str) -> None:
        self._lines = lines
        self._peeked: Optional[bytes] = None
        self._exhausted = False
        self.label = label
        self.validator = TraceValidator()
        self.header: Optional[Dict[str, Any]] = None
        #: pending checkpoints: event count -> (seq, snapshot_digest, raw)
        self.checkpoints: Dict[int, Tuple[int, Any, bytes]] = {}
        self._window_snapshot: Optional[bytes] = None
        self._window_snapshot_events = 0
        self._window: List[bytes] = []

    # -- raw line plumbing ---------------------------------------------

    def _next_line(self) -> Optional[bytes]:
        if self._peeked is not None:
            line, self._peeked = self._peeked, None
            return line
        if self._exhausted:
            return None
        try:
            return next(self._lines)
        except StopIteration:
            self._exhausted = True
            return None

    def _at_last_line(self) -> bool:
        """True when the line just taken had no successor (torn-tail test)."""
        if self._peeked is not None:
            return False
        if self._exhausted:
            return True
        try:
            self._peeked = next(self._lines)
        except StopIteration:
            self._exhausted = True
            return True
        return False

    # -- validated pulls -----------------------------------------------

    def read_header(self) -> _Pull:
        line = self._next_line()
        if line is None:
            return _Pull(defect="premature-end", seq=0, errors=["empty trace"])
        seq = self.validator.seq
        record, errors, fatal = self.validator.feed(line)
        if fatal:
            if record is None and self._at_last_line():
                # A torn header on a one-line stream: truncation, the same
                # torn-tail rule next_comparable applies.
                return _Pull(seq=seq, errors=errors, defect="premature-end")
            return _Pull(record=record, seq=seq, errors=errors, defect="chain-break")
        if errors:
            # A header whose own snapshot digest does not check out is
            # internally inconsistent — tampered before any comparison.
            return _Pull(record=record, seq=seq, errors=errors, defect="chain-break")
        self.header = record
        self._window_snapshot = line
        self._window_snapshot_events = 0
        self._window = []
        return _Pull(record=record, seq=seq)

    def next_comparable(self) -> _Pull:
        """Advance to the next event/move/detach/excise/end record.

        Checkpoints are consumed here: validated, stashed for event-count
        alignment, and adopted as the new neighborhood window base.
        """
        while True:
            line = self._next_line()
            if line is None:
                # EOF without an end anchor: the stream just stops.
                return _Pull(
                    defect="premature-end",
                    seq=self.validator.seq,
                    errors=["stream ends without an end anchor"],
                )
            seq = self.validator.seq
            record, errors, fatal = self.validator.feed(line)
            if fatal:
                if record is None and self._at_last_line():
                    # A torn final line is truncation, not tampering: the
                    # writer was cut off mid-record.
                    return _Pull(
                        seq=seq,
                        errors=errors,
                        defect="premature-end",
                    )
                return _Pull(record=record, seq=seq, errors=errors, defect="chain-break")
            kind = record.get("kind") if record else None
            if kind == "checkpoint":
                if errors:
                    # The trace disagrees with itself at its own anchor.
                    return _Pull(
                        record=record, seq=seq, errors=errors, defect="chain-break"
                    )
                events = int(record.get("events", self.validator.events))
                self.checkpoints[events] = (
                    seq,
                    record.get("snapshot_digest"),
                    line,
                )
                self._window_snapshot = line
                self._window_snapshot_events = events
                self._window = []
                continue
            if kind == "end" and errors:
                return _Pull(
                    record=record, seq=seq, errors=errors, defect="chain-break"
                )
            return _Pull(record=record, seq=seq, errors=errors, raw=line)

    # -- neighborhood window -------------------------------------------

    def absorb(self, raw: bytes) -> None:
        """Append a compared-equal record's raw line to the window."""
        self._window.append(raw)

    def rebuild_window_world(self):
        """Checkpoint-seek replay of the window: the pre-divergence world.

        Returns ``(world, events)`` or ``(None, 0)`` when the window cannot
        be rebuilt (no snapshot yet, or corrupt records).
        """
        if self._window_snapshot is None:
            return None, 0
        try:
            snapshot = json.loads(self._window_snapshot)
            cursor = TraceCursor()
            cursor.world = world_from_dict(snapshot["snapshot"])
            cursor.events = self._window_snapshot_events
            for raw in self._window:
                cursor.feed(json.loads(raw))
            return cursor.world, cursor.events
        except (TraceError, KeyError, ValueError, TypeError):
            return None, 0


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------

TraceSource = Union[str, Path, bytes, TraceReader, Sequence[Dict[str, Any]]]


def _file_lines(path: Path) -> Iterator[bytes]:
    with open(path, "rb") as fh:
        for line in fh:
            yield line[:-1] if line.endswith(b"\n") else line


def _bytes_lines(data: bytes) -> Iterator[bytes]:
    lines = data.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    return iter(lines)


def _record_lines(records: Sequence[Dict[str, Any]]) -> Iterator[bytes]:
    # Re-encoding parsed canonical lines reproduces their original bytes
    # exactly (canonical JSON round-trips), so the hash chain still checks.
    return (encode_line(r).rstrip(b"\n") for r in records)


def _make_side(source: TraceSource, fallback_label: str) -> _Side:
    if isinstance(source, (str, Path)):
        path = Path(source)
        return _Side(_file_lines(path), str(path))
    if isinstance(source, bytes):
        return _Side(_bytes_lines(source), fallback_label)
    if isinstance(source, TraceReader):
        records = [source.header] + list(source.records)
        label = str(source.path) if source.path is not None else fallback_label
        return _Side(_record_lines(records), label)
    return _Side(_record_lines(list(source)), fallback_label)


# ----------------------------------------------------------------------
# The lockstep diff
# ----------------------------------------------------------------------


def _touched_nids(record: Optional[Dict[str, Any]]) -> List[int]:
    if not isinstance(record, dict):
        return []
    kind = record.get("kind")
    if kind == "event":
        return [n for n in (record.get("nid1"), record.get("nid2")) if n is not None]
    if kind == "move":
        return [n for n in (record.get("leaf"), record.get("pivot")) if n is not None]
    if kind == "detach":
        bond = record.get("bond") or []
        return [end[0] for end in bond if isinstance(end, (list, tuple)) and end]
    if kind == "excise":
        return [] if record.get("nid") is None else [record["nid"]]
    return []


def _describe_node(world, nid: int) -> Dict[str, Any]:
    rec = world.nodes[nid]
    comp = world.component_of(nid)
    neighbors = []
    for bond in sorted(comp.bonds, key=lambda b: sorted(n for n, _ in b)):
        ends = {n: p for n, p in bond}
        if nid not in ends:
            continue
        for peer, port in ends.items():
            if peer == nid:
                continue
            neighbors.append(
                {
                    "nid": peer,
                    "port": ends[nid].value,
                    "peer_port": port.value,
                    "peer_state": _state_repr(world.state_of(peer)),
                }
            )
    return {
        "nid": nid,
        "state": _state_repr(world.state_of(nid)),
        "pos": rec.pos.as_tuple(),
        "component": rec.component_id,
        "neighbors": neighbors,
    }


def _neighborhood(
    side_a: _Side,
    side_b: _Side,
    record_a: Optional[Dict[str, Any]],
    record_b: Optional[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    """Decode the pre-divergence world around the touched nodes.

    Both sides agreed on every record up to this point, so either window
    rebuilds the same world; side a is tried first, side b is the backup
    when a's window snapshot is the corrupt part.
    """
    nids = sorted(set(_touched_nids(record_a)) | set(_touched_nids(record_b)))
    for side in (side_a, side_b):
        world, events = side.rebuild_window_world()
        if world is None:
            continue
        present = [n for n in nids if n in world.nodes]
        return {
            "events": events,
            "touched": nids,
            "nodes": [_describe_node(world, n) for n in present],
            "missing": [n for n in nids if n not in world.nodes],
        }
    return None


def _classify_pair(
    record_a: Dict[str, Any], record_b: Dict[str, Any]
) -> Tuple[str, Optional[int], str]:
    """(classification, event index, detail) for two unequal records."""
    kind_a = record_a.get("kind")
    kind_b = record_b.get("kind")
    index = record_a.get("index", record_b.get("index"))
    if kind_a == "end" or kind_b == "end":
        # Handled by the caller (needs side attribution); defensive here.
        return "premature-end", index, "one side ended early"
    if kind_a in ("detach", "excise") or kind_b in ("detach", "excise"):
        return (
            "fault-mismatch",
            index,
            f"fault records differ ({kind_a} vs {kind_b})",
        )
    keys = [
        k
        for k in sorted(set(record_a) | set(record_b))
        if record_a.get(k) != record_b.get(k)
    ]
    return (
        "event-mismatch",
        index,
        f"applied events differ in {', '.join(keys) or 'kind'}"
        + (f" ({kind_a} vs {kind_b})" if kind_a != kind_b else ""),
    )


def diff_traces(
    a: TraceSource,
    b: TraceSource,
    neighborhood: bool = True,
    label_a: str = "a",
    label_b: str = "b",
) -> DiffResult:
    """Stream both sides in lockstep; report the first divergence.

    Accepts trace files, raw bytes, loaded readers, or record lists on
    either side. Sides may use different checkpoint cadences; checkpoints
    are compared only where both sides wrote one at the same event count.
    Defective streams (tampering, truncation) are diffable up to the
    defect, which is itself reported as the divergence.
    """
    side_a = _make_side(a, label_a)
    side_b = _make_side(b, label_b)
    events_compared = 0
    checkpoints_compared = 0

    def result(divergence: Optional[Divergence]) -> DiffResult:
        return DiffResult(
            identical=divergence is None,
            a={"source": side_a.label, "events": side_a.validator.events},
            b={"source": side_b.label, "events": side_b.validator.events},
            events_compared=events_compared,
            checkpoints_compared=checkpoints_compared,
            divergence=divergence,
        )

    def defect_divergence(pull: _Pull, side: str) -> Divergence:
        validator = (side_a if side == "a" else side_b).validator
        return Divergence(
            classification=pull.defect or "chain-break",
            event=validator.events,
            seq_a=pull.seq if side == "a" else None,
            seq_b=pull.seq if side == "b" else None,
            record_a=pull.record if side == "a" else None,
            record_b=pull.record if side == "b" else None,
            side=side,
            detail="; ".join(pull.errors) or "stream defect",
        )

    # -- headers --------------------------------------------------------
    ha = side_a.read_header()
    if ha.defect is not None:
        return result(defect_divergence(ha, "a"))
    hb = side_b.read_header()
    if hb.defect is not None:
        return result(defect_divergence(hb, "b"))
    assert ha.record is not None and hb.record is not None
    header_keys = [
        k
        for k in sorted(set(ha.record) | set(hb.record))
        if k not in _HEADER_ADVISORY_KEYS
        and ha.record.get(k) != hb.record.get(k)
    ]
    if header_keys:
        snapshot_drift = bool(
            {"snapshot", "snapshot_digest", "dimension"} & set(header_keys)
        )
        return result(
            Divergence(
                classification="checkpoint-drift",
                event=0,
                seq_a=0,
                seq_b=0,
                record_a={k: ha.record.get(k) for k in header_keys if k != "snapshot"},
                record_b={k: hb.record.get(k) for k in header_keys if k != "snapshot"},
                side=None,
                detail=(
                    "initial snapshots differ"
                    if snapshot_drift
                    else "header identity differs"
                )
                + f" (keys: {', '.join(header_keys)})",
            )
        )

    # -- lockstep record streams ---------------------------------------
    while True:
        pa = side_a.next_comparable()
        if pa.defect is not None:
            return result(defect_divergence(pa, "a"))
        pb = side_b.next_comparable()
        if pb.defect is not None:
            return result(defect_divergence(pb, "b"))
        ra, rb = pa.record, pb.record
        assert ra is not None and rb is not None

        # Checkpoint alignment: compare snapshot digests wherever both
        # sides anchored the same event count; prune counts the other
        # side has irrevocably passed without anchoring.
        for count in sorted(set(side_a.checkpoints) & set(side_b.checkpoints)):
            seq_ca, digest_a, raw_a = side_a.checkpoints.pop(count)
            seq_cb, digest_b, raw_b = side_b.checkpoints.pop(count)
            if digest_a != digest_b:
                return result(
                    Divergence(
                        classification="checkpoint-drift",
                        event=count,
                        seq_a=seq_ca,
                        seq_b=seq_cb,
                        record_a={"kind": "checkpoint", "events": count, "snapshot_digest": digest_a},
                        record_b={"kind": "checkpoint", "events": count, "snapshot_digest": digest_b},
                        side=None,
                        detail=(
                            f"checkpoint snapshots drift at event {count} "
                            "although the record streams agree — a run "
                            "mutated the world outside the traced stream"
                        ),
                    )
                )
            checkpoints_compared += 1
        for side, other in ((side_a, side_b), (side_b, side_a)):
            for count in [
                c
                for c in side.checkpoints
                if other.validator.events > c and c not in other.checkpoints
            ]:
                del side.checkpoints[count]  # cadence mismatch: unmatched anchor

        kind_a, kind_b = ra.get("kind"), rb.get("kind")
        if kind_a == "end" and kind_b == "end":
            if ra.get("world_digest") != rb.get("world_digest"):
                return result(
                    Divergence(
                        classification="checkpoint-drift",
                        event=side_a.validator.events,
                        seq_a=pa.seq,
                        seq_b=pb.seq,
                        record_a=ra,
                        record_b=rb,
                        side=None,
                        detail=(
                            "final world digests differ although every "
                            "record matched"
                        ),
                    )
                )
            return result(None)
        if kind_a == "end" or kind_b == "end":
            ended = "a" if kind_a == "end" else "b"
            ended_side = side_a if ended == "a" else side_b
            more = (rb if ended == "a" else ra) or {}
            div = Divergence(
                classification="premature-end",
                event=more.get("index", ended_side.validator.events),
                seq_a=pa.seq,
                seq_b=pb.seq,
                record_a=ra,
                record_b=rb,
                side=ended,
                detail=(
                    f"side {ended} finalized after "
                    f"{ended_side.validator.events} events; the other side "
                    f"continues with a {more.get('kind')!r} record"
                ),
            )
            if neighborhood:
                div.neighborhood = _neighborhood(side_a, side_b, ra, rb)
            return result(div)

        if ra == rb:
            if pa.errors:
                # Equal records with identical validator states carry equal
                # error lists: both sides share the same internal
                # inconsistency — a chain defect, not a cross-side diff.
                return result(
                    Divergence(
                        classification="chain-break",
                        event=side_a.validator.events,
                        seq_a=pa.seq,
                        seq_b=pb.seq,
                        record_a=ra,
                        record_b=rb,
                        side=None,
                        detail="; ".join(pa.errors),
                    )
                )
            if kind_a in _EVENT_KINDS:
                events_compared += 1
            assert pa.raw is not None and pb.raw is not None
            side_a.absorb(pa.raw)
            side_b.absorb(pb.raw)
            continue

        classification, event, detail = _classify_pair(ra, rb)
        if pa.errors or pb.errors:
            extra = "; ".join(pa.errors + pb.errors)
            detail = f"{detail} ({extra})"
        div = Divergence(
            classification=classification,
            event=event,
            seq_a=pa.seq,
            seq_b=pb.seq,
            record_a=ra,
            record_b=rb,
            side=None,
            detail=detail,
        )
        if neighborhood:
            div.neighborhood = _neighborhood(side_a, side_b, ra, rb)
        return result(div)


# ----------------------------------------------------------------------
# Live re-simulation (trace vs a fresh run of the current code)
# ----------------------------------------------------------------------


def resimulate_from_header(
    trace: Union[str, Path, bytes],
) -> List[Dict[str, Any]]:
    """Re-run a trace's scenario identity; return the fresh record stream.

    Reads only the header line (the rest of the file may be arbitrarily
    damaged), re-records the named scenario with the same params, seed,
    scheduler, run index, and checkpoint cadence, and returns the fresh
    records in memory — the ``b`` side for ``repro diff --live``. Raises
    :class:`TraceError` for traces with no scenario identity (builder-made
    goldens re-record through their :mod:`~repro.trace.goldens` spec).
    """
    from repro.trace.record import record_scenario
    from repro.trace.writer import DEFAULT_CHECKPOINT_EVERY

    if isinstance(trace, bytes):
        first = trace.split(b"\n", 1)[0]
    else:
        with open(trace, "rb") as fh:
            first = fh.readline().rstrip(b"\n")
    try:
        header = json.loads(first)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise TraceError(f"unreadable trace header: {exc}")
    if not isinstance(header, dict) or header.get("kind") != "header":
        raise TraceError("trace does not start with a header record")
    scenario = header.get("scenario")
    if not scenario:
        raise TraceError(
            "trace has no scenario identity (recorded from a hand-built "
            "simulation); re-record it through its golden spec instead"
        )
    records: List[Dict[str, Any]] = []
    record_scenario(
        scenario,
        params=header.get("params") or {},
        seed=header.get("seed"),
        scheduler=header.get("scheduler"),
        path=None,
        run_index=int(header.get("run", 0)),
        checkpoint_every=int(
            header.get("checkpoint_every", DEFAULT_CHECKPOINT_EVERY)
        ),
        sink=records.append,
    )
    return records


# ----------------------------------------------------------------------
# Payload validation (repro validate dispatch)
# ----------------------------------------------------------------------


def validate_diff_payload(data: Any) -> List[str]:
    """Validate a ``repro.trace.diff/v1`` payload; ``[]`` = valid."""
    if not isinstance(data, dict):
        return [f"expected a JSON object, got {type(data).__name__}"]
    errors: List[str] = []
    if data.get("schema") != DIFF_SCHEMA:
        errors.append(
            f"schema must be {DIFF_SCHEMA!r}, got {data.get('schema')!r}"
        )
    if data.get("kind") != "trace-diff":
        errors.append(f"kind must be 'trace-diff', got {data.get('kind')!r}")
    if not isinstance(data.get("identical"), bool):
        errors.append("identical must be a boolean")
    for side in ("a", "b"):
        if not isinstance(data.get(side), dict):
            errors.append(f"{side} must be a side descriptor object")
    for counter in ("events_compared", "checkpoints_compared"):
        value = data.get(counter)
        if isinstance(value, bool) or not isinstance(value, int):
            errors.append(f"{counter} must be an integer")
    divergence = data.get("divergence")
    if data.get("identical") is True and divergence is not None:
        errors.append("identical diffs must carry divergence: null")
    if data.get("identical") is False and not isinstance(divergence, dict):
        errors.append("non-identical diffs must carry a divergence object")
    if isinstance(divergence, dict):
        if divergence.get("classification") not in CLASSIFICATIONS:
            errors.append(
                f"divergence.classification must be one of "
                f"{', '.join(CLASSIFICATIONS)}, got "
                f"{divergence.get('classification')!r}"
            )
        event = divergence.get("event")
        if event is not None and (
            isinstance(event, bool) or not isinstance(event, int)
        ):
            errors.append("divergence.event must be an integer or null")
        if divergence.get("side") not in (None, "a", "b"):
            errors.append("divergence.side must be 'a', 'b', or null")
        if not isinstance(divergence.get("detail"), str):
            errors.append("divergence.detail must be a string")
    return errors
