"""Streaming traces: record, verify, seek, and replay runs bit-exactly.

The successor of the in-memory recorder in :mod:`repro.core.trace` (kept as
the thin compatibility layer): every run becomes a streamable, seekable,
verifiable NDJSON artifact in the versioned ``repro.trace/v1`` encoding.

* :mod:`repro.trace.encoding` — the record vocabulary, canonical bytes,
  digests, and the hash chain;
* :mod:`repro.trace.writer` — the bounded-memory streaming
  :class:`TraceWriter` (atomic finalize, optional live sink);
* :mod:`repro.trace.reader` — sign-then-validate loading
  (:class:`TraceReader`, :func:`validate_trace_file`);
* :mod:`repro.trace.replay` — checkpointed bit-exact reconstruction
  (:class:`TraceCursor`, :func:`replay_trace`);
* :mod:`repro.trace.record` — the live-simulation seam
  (:func:`recording`, :func:`record_scenario`);
* :mod:`repro.trace.diff` — lockstep first-divergence diffing
  (:func:`diff_traces`, the ``repro.trace.diff/v1`` payload);
* :mod:`repro.trace.goldens` — the committed golden-trace regression
  harness (:data:`GOLDENS`, :func:`check_goldens`).

CLI: ``repro record <scenario>``, ``repro replay <trace> [--to-event N]
[--render] [--verify]``, ``repro diff <a> [<b> | --live]``, and ``repro
goldens record|check|list``; the sweep service streams the same records
live with ``repro submit --trace --wait``.
"""

from repro.trace.diff import (
    CLASSIFICATIONS,
    DIFF_SCHEMA,
    DiffResult,
    Divergence,
    diff_traces,
    resimulate_from_header,
    validate_diff_payload,
)
from repro.trace.encoding import (
    CHAIN_SEED,
    RECORD_KINDS,
    TRACE_SCHEMA,
    canonical_json,
    encode_line,
    payload_digest,
    world_digest,
)
from repro.trace.goldens import (
    GOLDENS,
    GoldenReport,
    GoldenSpec,
    check_golden,
    check_goldens,
    golden_specs,
    record_golden,
    record_goldens,
)
from repro.trace.reader import (
    TraceReader,
    TraceValidator,
    validate_trace_bytes,
    validate_trace_file,
)
from repro.trace.record import record_scenario, recording
from repro.trace.replay import ReplayResult, TraceCursor, replay_trace
from repro.trace.writer import DEFAULT_CHECKPOINT_EVERY, TraceWriter

__all__ = [
    "CLASSIFICATIONS",
    "DIFF_SCHEMA",
    "DiffResult",
    "Divergence",
    "diff_traces",
    "resimulate_from_header",
    "validate_diff_payload",
    "GOLDENS",
    "GoldenReport",
    "GoldenSpec",
    "check_golden",
    "check_goldens",
    "golden_specs",
    "record_golden",
    "record_goldens",
    "TraceValidator",
    "TRACE_SCHEMA",
    "RECORD_KINDS",
    "CHAIN_SEED",
    "canonical_json",
    "encode_line",
    "payload_digest",
    "world_digest",
    "TraceWriter",
    "DEFAULT_CHECKPOINT_EVERY",
    "TraceReader",
    "validate_trace_bytes",
    "validate_trace_file",
    "TraceCursor",
    "ReplayResult",
    "replay_trace",
    "recording",
    "record_scenario",
]
