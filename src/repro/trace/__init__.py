"""Streaming traces: record, verify, seek, and replay runs bit-exactly.

The successor of the in-memory recorder in :mod:`repro.core.trace` (kept as
the thin compatibility layer): every run becomes a streamable, seekable,
verifiable NDJSON artifact in the versioned ``repro.trace/v1`` encoding.

* :mod:`repro.trace.encoding` — the record vocabulary, canonical bytes,
  digests, and the hash chain;
* :mod:`repro.trace.writer` — the bounded-memory streaming
  :class:`TraceWriter` (atomic finalize, optional live sink);
* :mod:`repro.trace.reader` — sign-then-validate loading
  (:class:`TraceReader`, :func:`validate_trace_file`);
* :mod:`repro.trace.replay` — checkpointed bit-exact reconstruction
  (:class:`TraceCursor`, :func:`replay_trace`);
* :mod:`repro.trace.record` — the live-simulation seam
  (:func:`recording`, :func:`record_scenario`).

CLI: ``repro record <scenario>`` and ``repro replay <trace> [--to-event N]
[--render] [--verify]``; the sweep service streams the same records live
with ``repro submit --trace --wait``.
"""

from repro.trace.encoding import (
    CHAIN_SEED,
    RECORD_KINDS,
    TRACE_SCHEMA,
    canonical_json,
    encode_line,
    payload_digest,
    world_digest,
)
from repro.trace.reader import TraceReader, validate_trace_bytes, validate_trace_file
from repro.trace.record import record_scenario, recording
from repro.trace.replay import ReplayResult, TraceCursor, replay_trace
from repro.trace.writer import DEFAULT_CHECKPOINT_EVERY, TraceWriter

__all__ = [
    "TRACE_SCHEMA",
    "RECORD_KINDS",
    "CHAIN_SEED",
    "canonical_json",
    "encode_line",
    "payload_digest",
    "world_digest",
    "TraceWriter",
    "DEFAULT_CHECKPOINT_EVERY",
    "TraceReader",
    "validate_trace_bytes",
    "validate_trace_file",
    "TraceCursor",
    "ReplayResult",
    "replay_trace",
    "recording",
    "record_scenario",
]
