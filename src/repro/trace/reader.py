"""The :class:`TraceReader`: sign-then-validate loading of trace files.

Mirrors the trial store's discipline: every digest is recomputed and every
structural claim is checked *before* any record is served — a tampered,
truncated, or malformed trace raises :class:`~repro.errors.TraceError` (or
surfaces as a non-empty error list from :func:`validate_trace_bytes`) and is
never replayed into a wrong world. Checks, per line:

* line 0 is a ``repro.trace/v1`` header whose embedded snapshot matches its
  ``snapshot_digest``;
* the hash chain ``sha256(chain || raw line)`` reproduces the ``chain``
  anchor embedded in every checkpoint and in the final end record, so any
  flipped byte breaks a later anchor;
* ``seq``/``events``/``index`` counters are consistent and monotone;
* the last line is the end record the writer's atomic finalize wrote — a
  stream that just stops mid-run is rejected as unfinalized.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import TraceError
from repro.trace.encoding import (
    CHAIN_SEED,
    RECORD_KINDS,
    TRACE_SCHEMA,
    chain_advance,
    payload_digest,
)


class TraceValidator:
    """Incremental, line-at-a-time trace validation.

    The stateful core of :func:`validate_trace_bytes`, factored out so
    streaming consumers (the first-divergence diff engine of
    ``repro.trace.diff``) can validate two traces in lockstep without
    buffering either one. Feed raw lines (no trailing newline) in stream
    order; each call returns ``(record, errors, fatal)``:

    * ``record`` — the parsed dict, or ``None`` when the line did not parse;
    * ``errors`` — validation messages for this line (``[]`` = clean),
      byte-identical to the ones :func:`validate_trace_bytes` reports;
    * ``fatal`` — ``True`` when the stream cannot be meaningfully continued
      (unparseable line, wrong header, unknown kind, record after the end
      anchor). Non-fatal errors (index drift, digest mismatches) leave the
      validator consistent enough to keep going, exactly as the batch
      validator does.
    """

    def __init__(self) -> None:
        self.chain = CHAIN_SEED
        self.events = 0  #: event + move records seen (the event counter)
        self.last_index = 0
        self.ended = False
        self.seq = 0  #: line number the next feed() will validate

    def feed(
        self, raw: bytes, parsed: Optional[Dict[str, Any]] = None
    ) -> Tuple[Optional[Dict[str, Any]], List[str], bool]:
        """Validate the next raw line; see the class docstring.

        ``parsed`` lets a caller that already decoded ``raw`` (the diff
        engine, when both sides carry identical bytes) skip the duplicate
        ``json.loads`` — it must be the exact decoding of ``raw``.
        """
        i = self.seq
        errors: List[str] = []
        if parsed is not None:
            record: Any = parsed
        else:
            try:
                record = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                # UnicodeDecodeError: a flipped byte can leave a line that
                # is not even UTF-8 — still "tampered", never a crash.
                return None, [f"line {i}: not valid JSON ({exc})"], True
        if not isinstance(record, dict):
            return None, [f"line {i}: expected a JSON object"], True
        kind = record.get("kind")
        if self.ended:
            return record, [f"line {i}: record after the end anchor"], True
        if i == 0:
            if kind != "header":
                return (
                    record,
                    [f"line 0: expected the header, got kind {kind!r}"],
                    True,
                )
            if record.get("schema") != TRACE_SCHEMA:
                return (
                    record,
                    [
                        f"line 0: schema must be {TRACE_SCHEMA!r}, "
                        f"got {record.get('schema')!r}"
                    ],
                    True,
                )
            snapshot = record.get("snapshot")
            if not isinstance(snapshot, dict):
                errors.append("line 0: header has no snapshot object")
            elif payload_digest(snapshot) != record.get("snapshot_digest"):
                errors.append("line 0: header snapshot digest mismatch")
        elif kind in ("event", "move"):
            if record.get("index") != self.last_index + 1:
                errors.append(
                    f"line {i}: {kind} index {record.get('index')!r} "
                    f"(expected {self.last_index + 1})"
                )
            self.last_index = record.get("index", self.last_index + 1)
            self.events += 1
        elif kind in ("detach", "excise"):
            if record.get("index") != self.last_index:
                errors.append(
                    f"line {i}: fault record at index {record.get('index')!r} "
                    f"(expected the current event count {self.last_index})"
                )
        elif kind in ("checkpoint", "end"):
            if record.get("chain") != self.chain:
                errors.append(f"line {i}: hash chain broken at {kind} anchor")
            if record.get("seq") != i:
                errors.append(
                    f"line {i}: {kind} seq {record.get('seq')!r} "
                    f"(expected {i})"
                )
            if record.get("events") != self.events:
                errors.append(
                    f"line {i}: {kind} events {record.get('events')!r} "
                    f"(expected {self.events})"
                )
            if kind == "checkpoint":
                snapshot = record.get("snapshot")
                if not isinstance(snapshot, dict):
                    errors.append(f"line {i}: checkpoint has no snapshot")
                elif payload_digest(snapshot) != record.get("snapshot_digest"):
                    errors.append(f"line {i}: checkpoint snapshot digest mismatch")
            else:
                if not isinstance(record.get("world_digest"), str):
                    errors.append(f"line {i}: end record has no world digest")
                body = {k: v for k, v in record.items() if k != "self_digest"}
                if payload_digest(body) != record.get("self_digest"):
                    errors.append(f"line {i}: end record self digest mismatch")
                self.ended = True
        else:
            return (
                record,
                [
                    f"line {i}: unknown record kind {kind!r} "
                    f"(expected one of {', '.join(RECORD_KINDS)})"
                ],
                True,
            )
        self.chain = chain_advance(self.chain, raw)
        self.seq += 1
        return record, errors, False


def validate_trace_bytes(data: bytes) -> List[str]:
    """Validate one trace's raw bytes; ``[]`` means valid."""
    errors: List[str] = []
    lines = data.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    if not lines:
        return ["empty trace (no header line)"]
    validator = TraceValidator()
    for raw in lines:
        _record, errs, fatal = validator.feed(raw)
        errors.extend(errs)
        if fatal:
            break
    if not errors and not validator.ended:
        errors.append(
            "trace is unfinalized: no end anchor (truncated file, or a "
            "recording that was never finalize()d)"
        )
    return errors


def validate_trace_file(path: Union[str, Path]) -> List[str]:
    """Validate a trace file on disk; ``[]`` means valid."""
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        return [f"unreadable ({exc})"]
    return validate_trace_bytes(data)


class TraceReader:
    """A fully-validated, in-memory view of one trace file.

    :meth:`load` refuses invalid traces outright; on success the reader
    exposes the header, the ordered record list, the checkpoint positions
    (the replay engine's seek index) and the end anchor.
    """

    def __init__(
        self,
        header: Dict[str, Any],
        records: List[Dict[str, Any]],
        end: Dict[str, Any],
        path: Union[str, Path, None] = None,
    ) -> None:
        self.header = header
        self.records = records  #: every record after the header, incl. end
        self.end = end
        self.path = Path(path) if path is not None else None

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceReader":
        """Validate then parse; raises :class:`TraceError` on any defect."""
        errors = validate_trace_file(path)
        if errors:
            detail = "; ".join(errors[:4])
            raise TraceError(f"invalid trace {path}: {detail}")
        lines = Path(path).read_bytes().split(b"\n")
        records = [json.loads(raw) for raw in lines if raw]
        return cls(records[0], records[1:], records[-1], path)

    @classmethod
    def from_records(cls, records: List[Dict[str, Any]]) -> "TraceReader":
        """A reader over already-validated in-memory records (live mode)."""
        if not records or records[0].get("kind") != "header":
            raise TraceError("record stream does not start with a header")
        if records[-1].get("kind") != "end":
            raise TraceError("record stream does not finish with an end anchor")
        return cls(records[0], records[1:], records[-1])

    # ------------------------------------------------------------------

    @property
    def events(self) -> int:
        """Total effective interactions the trace records."""
        return int(self.end["events"])

    @property
    def world_digest(self) -> str:
        """The recorded final world digest."""
        return self.end["world_digest"]

    def checkpoints(self) -> List[Tuple[int, Dict[str, Any]]]:
        """Checkpoint records as ``(position in self.records, record)``."""
        return [
            (i, rec)
            for i, rec in enumerate(self.records)
            if rec.get("kind") == "checkpoint"
        ]

    def describe(self) -> str:
        """One human line: identity, counts, digest prefix."""
        h = self.header
        bits = [
            f"scenario={h.get('scenario') or '-'}",
            f"seed={h.get('seed')}",
            f"scheduler={h.get('scheduler') or '-'}",
            f"events={self.events}",
            f"checkpoints={len(self.checkpoints())}",
            f"digest={self.world_digest[:12]}",
        ]
        return " ".join(bits)
