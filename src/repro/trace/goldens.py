"""The golden-trace regression harness behind ``repro goldens``.

A *golden* is a compact, committed ``repro.trace/v1`` file pinning one
scenario family's exact seeded trajectory (``tests/goldens/``). The check
is two-sided:

1. **replay** — the committed bytes still replay bit-exactly (``--verify``
   semantics: every checkpoint anchor and the final world digest
   recomputed), both header-onwards and checkpoint-seek;
2. **diff against a fresh run** — the *current code* re-records the same
   spec and :func:`~repro.trace.diff.diff_traces` must find the two
   streams identical. Any behavioral change fails naming the exact first
   diverging event instead of a hand-run fingerprint battery.

Traces are byte-identical across the columnar and pure-Python candidate
backends (the determinism contract), so CI runs the check under both
``REPRO_COLUMNAR`` legs against one committed artifact set.

Specs cover the scenario families: line and square construction
(``demo``'s two runs), §7 line self-replication, the leaderless line,
injected faults/splits, the hybrid Nubot-style walker (move records),
the 3D spanning line, and counting. Scenario-backed specs re-record
through the registry; builder-backed specs construct their simulation
directly under a :func:`~repro.trace.record.recording` context — used
where no registry scenario is both recordable and *replay-faithful*
(the ``square``/``cube`` runners assemble with out-of-band world
surgery the trace vocabulary does not carry).

Regeneration: ``PYTHONPATH=src python -m repro goldens record`` rewrites
every golden (or the named ones). A regenerated golden is a *behavioral
claim change* — justify it in CHANGES.md.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import TraceError
from repro.trace.diff import DiffResult, diff_traces
from repro.trace.record import record_scenario, recording
from repro.trace.replay import replay_trace
from repro.trace.writer import TraceWriter

#: Default committed location, relative to the repository root.
DEFAULT_GOLDEN_DIR = Path("tests") / "goldens"


@dataclass(frozen=True)
class GoldenSpec:
    """One committed golden: a family, an identity, and how to record it."""

    name: str  #: file stem under the golden directory
    family: str  #: scenario family the golden pins
    summary: str
    scenario: Optional[str] = None  #: registry scenario (None = builder)
    builder: Optional[str] = None  #: key into :data:`BUILDERS`
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0
    scheduler: Optional[str] = None
    run_index: int = 0
    checkpoint_every: int = 16

    def filename(self) -> str:
        return f"{self.name}.trace"

    def path(self, root: Path) -> Path:
        return Path(root) / self.filename()


# ----------------------------------------------------------------------
# Builder-backed runs (families with no recordable registry scenario)
# ----------------------------------------------------------------------


def _build_leaderless(params: Dict[str, Any], seed: int) -> None:
    from repro.core.simulator import Simulation
    from repro.core.world import World
    from repro.protocols.leaderless_line import (
        leaderless_spanning_line_protocol,
    )

    protocol = leaderless_spanning_line_protocol()
    world = World.of_free_nodes(int(params["n"]), protocol)
    sim = Simulation(world, protocol, seed=seed)
    sim.run_to_stabilization(max_events=int(params.get("max_events", 100_000)))


def _build_hybrid_walker(params: Dict[str, Any], seed: int) -> None:
    from repro.hybrid.movement import (
        HybridSimulation,
        make_walker_world,
        walker_protocol,
    )

    world, _mover, _pivot = make_walker_world()
    sim = HybridSimulation(world, walker_protocol(), seed=seed)
    sim.run(max_events=int(params["max_events"]))


def _build_replication(params: Dict[str, Any], seed: int) -> None:
    # Pure §7 replication: a parent line copies itself into free nodes.
    # (The full ``square`` scenario is not replay-faithful: its runner
    # assembles rows with out-of-band world surgery — ``transplant_line``,
    # conversion walks — that the trace vocabulary does not carry.)
    from repro.core.simulator import Simulation
    from repro.core.world import World
    from repro.protocols.replication import (
        add_line,
        self_replicating_lines_protocol,
    )

    protocol = self_replicating_lines_protocol()
    world = World(dimension=2)
    add_line(world, int(params["side"]), "L")
    for _ in range(int(params["side"])):
        world.add_free_node("q0")
    sim = Simulation(world, protocol, seed=seed)
    # One full replication: the parent's restore walk ends in ``Lstart``.
    sim.run(
        max_events=int(params.get("max_events", 100_000)),
        until=lambda w: bool(w.nodes_in_state("Lstart")),
    )


def _build_line3d(params: Dict[str, Any], seed: int) -> None:
    # §4.1's spanning line generalized verbatim to the 3D model (the
    # ``cube`` scenario's slab assembly is likewise out-of-band surgery).
    from repro.core.simulator import Simulation
    from repro.core.world import World
    from repro.protocols.line import spanning_line_protocol

    protocol = spanning_line_protocol(dimension=3)
    world = World.of_free_nodes(int(params["n"]), protocol, leaders=1)
    sim = Simulation(world, protocol, seed=seed)
    sim.run_to_stabilization(max_events=int(params.get("max_events", 100_000)))


#: Named builders: deterministic (params, seed) -> run-under-recording.
BUILDERS: Dict[str, Callable[[Dict[str, Any], int], None]] = {
    "leaderless-line": _build_leaderless,
    "hybrid-walker": _build_hybrid_walker,
    "replicating-line": _build_replication,
    "spanning-line-3d": _build_line3d,
}


#: The committed golden set, one per scenario family (plus counting).
GOLDENS: Tuple[GoldenSpec, ...] = (
    GoldenSpec(
        "line",
        family="line",
        summary="§4 spanning line (demo run 0)",
        scenario="demo",
        params=(("n", 8),),
        seed=3,
        run_index=0,
        checkpoint_every=4,
    ),
    GoldenSpec(
        "square",
        family="square",
        summary="§6 square construction (demo run 1)",
        scenario="demo",
        params=(("n", 8),),
        seed=3,
        run_index=1,
        checkpoint_every=8,
    ),
    GoldenSpec(
        "replication",
        family="replication",
        summary="§7 self-replicating line copies itself (builder-backed)",
        builder="replicating-line",
        params=(("side", 4),),
        seed=5,
        checkpoint_every=8,
    ),
    GoldenSpec(
        "leaderless",
        family="leaderless",
        summary="§4.1 leaderless spanning line (builder-backed)",
        builder="leaderless-line",
        params=(("n", 8),),
        seed=7,
        checkpoint_every=4,
    ),
    GoldenSpec(
        "faults",
        family="faults",
        summary="injected bond breaks / splits (detach records)",
        scenario="faulty-line",
        params=(("n", 10), ("break_prob", 0.25), ("max_breaks", 3)),
        seed=11,
        checkpoint_every=4,
    ),
    GoldenSpec(
        "hybrid",
        family="hybrid",
        summary="§8 hybrid walker dimer (move records, builder-backed)",
        builder="hybrid-walker",
        params=(("max_events", 12),),
        seed=2,
        checkpoint_every=4,
    ),
    GoldenSpec(
        "line-3d",
        family="3d",
        summary="§4.1 spanning line in the 3D model (builder-backed)",
        builder="spanning-line-3d",
        params=(("n", 8),),
        seed=1,
        checkpoint_every=4,
    ),
    GoldenSpec(
        "counting",
        family="counting",
        summary="§5.2 counting on a line",
        scenario="counting-line",
        params=(("n", 8),),
        seed=9,
        checkpoint_every=32,
    ),
)

#: Families the committed set must span (ISSUE 10's tentpole list).
REQUIRED_FAMILIES = (
    "line",
    "square",
    "replication",
    "leaderless",
    "faults",
    "hybrid",
    "3d",
)


def golden_specs(names: Optional[Iterable[str]] = None) -> List[GoldenSpec]:
    """The selected specs (all by default); unknown names raise."""
    if names is None:
        return list(GOLDENS)
    by_name = {spec.name: spec for spec in GOLDENS}
    selected = []
    for name in names:
        if name not in by_name:
            known = ", ".join(sorted(by_name))
            raise TraceError(f"unknown golden {name!r} (known: {known})")
        selected.append(by_name[name])
    return selected


# ----------------------------------------------------------------------
# Record / check
# ----------------------------------------------------------------------


def record_golden(spec: GoldenSpec, path: Path) -> TraceWriter:
    """Record ``spec``'s run to ``path``; returns the finalized writer."""
    params = dict(spec.params)
    if spec.scenario is not None:
        _result, writer = record_scenario(
            spec.scenario,
            params=params,
            seed=spec.seed,
            scheduler=spec.scheduler,
            path=path,
            run_index=spec.run_index,
            checkpoint_every=spec.checkpoint_every,
        )
        return writer
    if spec.builder is None:
        raise TraceError(f"golden {spec.name!r} has neither scenario nor builder")
    builder = BUILDERS[spec.builder]
    writer = TraceWriter(
        path,
        scenario=None,
        params=params,
        seed=spec.seed,
        scheduler=spec.scheduler,
        run_index=spec.run_index,
        checkpoint_every=spec.checkpoint_every,
    )
    try:
        with recording(writer):
            builder(params, spec.seed)
    except BaseException:
        writer.abort()
        raise
    writer.finalize()
    return writer


#: The failure epilogue every check message ends with.
REGENERATE_HINT = (
    "If this behavioral change is intentional, regenerate with "
    "`PYTHONPATH=src python -m repro goldens record` and justify the "
    "trajectory change in CHANGES.md."
)


@dataclass
class GoldenReport:
    """One golden's check outcome."""

    name: str
    ok: bool
    message: str
    events: int = 0
    diff: Optional[DiffResult] = None


def check_golden(spec: GoldenSpec, path: Path) -> GoldenReport:
    """Replay a committed golden bit-exactly, then diff vs a fresh run."""
    path = Path(path)
    if not path.exists():
        return GoldenReport(
            spec.name,
            ok=False,
            message=(
                f"golden {spec.name!r} missing at {path}; record it with "
                "`PYTHONPATH=src python -m repro goldens record`"
            ),
        )
    try:
        full = replay_trace(path, verify=True, use_checkpoints=False)
        seek = replay_trace(path, verify=True, use_checkpoints=True)
    except TraceError as exc:
        return GoldenReport(
            spec.name,
            ok=False,
            message=f"golden {spec.name!r} failed verified replay: {exc}. "
            + REGENERATE_HINT,
        )
    if full.digest != seek.digest:
        return GoldenReport(
            spec.name,
            ok=False,
            message=(
                f"golden {spec.name!r}: header-onwards and checkpoint-seek "
                f"replays disagree ({full.digest[:12]} vs {seek.digest[:12]})"
            ),
        )
    with tempfile.TemporaryDirectory(prefix="repro-goldens-") as tmp:
        fresh = Path(tmp) / spec.filename()
        record_golden(spec, fresh)
        diff = diff_traces(
            path, fresh, label_a=str(path), label_b=f"fresh:{spec.name}"
        )
    if not diff.identical:
        assert diff.divergence is not None
        return GoldenReport(
            spec.name,
            ok=False,
            message=(
                f"golden {spec.name!r} no longer reproduces: "
                f"{diff.describe()}. The current code's trajectory changed. "
                + REGENERATE_HINT
            ),
            events=full.events,
            diff=diff,
        )
    return GoldenReport(
        spec.name,
        ok=True,
        message=(
            f"golden {spec.name!r}: {full.events} events replayed "
            f"bit-exactly ({full.checkpoints_verified} anchors) and a fresh "
            "run diffs identical"
        ),
        events=full.events,
        diff=diff,
    )


def check_goldens(
    root: Path, names: Optional[Iterable[str]] = None
) -> List[GoldenReport]:
    """Check every selected golden under ``root``."""
    return [check_golden(spec, spec.path(root)) for spec in golden_specs(names)]


def record_goldens(
    root: Path, names: Optional[Iterable[str]] = None
) -> List[Tuple[GoldenSpec, TraceWriter]]:
    """(Re)record every selected golden under ``root``."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    out = []
    for spec in golden_specs(names):
        writer = record_golden(spec, spec.path(root))
        out.append((spec, writer))
    return out
