"""The streaming :class:`TraceWriter`: bounded memory, atomic finalize.

The writer holds no event buffer — each record is canonically serialized,
folded into the hash chain, appended to the on-disk tempfile, and handed to
the optional ``sink`` callback (the live-streaming seam the sweep service's
``--trace`` mode uses). Disk output follows the trial store's discipline:
records accumulate in a ``tempfile.mkstemp`` sibling of the target path and
:meth:`finalize` promotes it with one atomic ``os.replace``, so a crashed
or aborted recording never leaves a half-written trace where a reader
could find it.

The writer consumes no randomness and no wall clock, so a recorded run's
trace bytes are a pure function of (initial world, seed, scheduler) — the
determinism contract extends to the trace artifact itself.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Union

from repro.core.protocol import Update
from repro.core.world import Bond, Candidate, World
from repro.errors import TraceError
from repro.trace.encoding import (
    CHAIN_SEED,
    chain_advance,
    checkpoint_record,
    detach_record,
    encode_line,
    end_record,
    event_record,
    excise_record,
    header_record,
    move_record,
)

#: Default event interval between checkpoint snapshots.
DEFAULT_CHECKPOINT_EVERY = 256


class TraceWriter:
    """Streams one run's ``repro.trace/v1`` records to disk and/or a sink.

    Parameters
    ----------
    path:
        Target trace file, or ``None`` for stream-only mode (records go to
        ``sink`` and nothing touches disk — the sweep service's live mode).
    scenario, params, seed, scheduler, run_index:
        Header identity. ``run_index`` selects which Simulation of a
        multi-run scenario to record (``demo`` builds two; the default 0
        records the first). ``seed`` falls back to the attached
        simulation's seed when left ``None``.
    checkpoint_every:
        Events between checkpoint snapshots (0 disables periodic
        checkpoints; the header and end anchors are always written).
    sink:
        Callback invoked with every record dict as it is written.
    """

    def __init__(
        self,
        path: Union[str, Path, None],
        scenario: Optional[str] = None,
        params: Optional[Mapping[str, Any]] = None,
        seed: Optional[int] = None,
        scheduler: Optional[str] = None,
        run_index: int = 0,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.scenario = scenario
        self.params = dict(params) if params else {}
        self.seed = seed
        self.scheduler = scheduler
        self.run_index = run_index
        self.checkpoint_every = checkpoint_every
        self.sink = sink

        self.events = 0  #: event records written
        self.seq = 0  #: total records written
        self.checkpoints = 0  #: checkpoint records written
        self.chain = CHAIN_SEED
        self.finalized = False

        self._runs_seen = 0
        self._world: Optional[World] = None
        self._fh = None
        self._tmp: Optional[str] = None

        # The hook closure carries the writer so duck-typed integrations
        # (FaultySimulation's fault notifications) can reach it through
        # ``sim.trace.trace_writer`` without a faults -> trace import.
        def _hook(index: int, cand: Candidate, update: Update, world: World) -> None:
            self.on_event(index, cand, update, world)

        _hook.trace_writer = self  # type: ignore[attr-defined]
        self.hook = _hook

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def begun(self) -> bool:
        return self._world is not None

    def attach(self, sim) -> bool:
        """Bind to a Simulation if it is this writer's ``run_index``-th one.

        Called by the recording context's construction observer. Installs
        the writer's hook (chaining any hook the scenario set itself) and
        writes the header from the simulation's initial world.
        """
        run = self._runs_seen
        self._runs_seen += 1
        if run != self.run_index or self.begun:
            return False
        if self.seed is None:
            self.seed = sim.seed
        self.begin(sim.world)
        previous = sim.trace
        if previous is None:
            sim.trace = self.hook
        else:
            def chained(index, cand, update, world, _prev=previous):
                self.on_event(index, cand, update, world)
                _prev(index, cand, update, world)

            chained.trace_writer = self  # type: ignore[attr-defined]
            sim.trace = chained
        return True

    def begin(self, world: World) -> None:
        """Open the stream: write the header with the initial snapshot."""
        if self.begun:
            raise TraceError("trace writer already begun")
        self._world = world
        self._write(
            header_record(
                world,
                scenario=self.scenario,
                params=self.params,
                seed=self.seed,
                scheduler=self.scheduler,
                run=self.run_index,
                checkpoint_every=self.checkpoint_every,
            )
        )

    def finalize(self) -> Optional[Path]:
        """Write the end anchor and atomically promote the trace file.

        Returns the final path (``None`` in stream-only mode). Raises
        :class:`TraceError` if no simulation was ever recorded — an empty
        artifact would silently validate, which is worse than failing.
        """
        if self.finalized:
            raise TraceError("trace writer already finalized")
        if not self.begun:
            self.abort()
            raise TraceError(
                "recording captured no simulation (the scenario builds "
                f"fewer than {self.run_index + 1} Simulation(s), or runs a "
                "pure pipeline with no Simulation at all)"
            )
        assert self._world is not None
        self._write(end_record(self.events, self.seq, self.chain, self._world))
        self.finalized = True
        if self._fh is None:
            return None
        self._fh.close()
        self._fh = None
        assert self._tmp is not None and self.path is not None
        os.replace(self._tmp, self.path)
        self._tmp = None
        return self.path

    def close(self) -> Optional[Path]:
        """Finalize if anything was recorded, otherwise discard quietly."""
        if self.finalized:
            return self.path
        if self.begun:
            return self.finalize()
        self.abort()
        return None

    def abort(self) -> None:
        """Drop the recording: close and unlink the tempfile, keep nothing."""
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None
        if self._tmp is not None:
            try:
                os.unlink(self._tmp)
            except OSError:
                pass
            self._tmp = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        elif not self.finalized:
            self.close()

    # ------------------------------------------------------------------
    # Record emission
    # ------------------------------------------------------------------

    def on_event(
        self, index: int, cand: Candidate, update: Update, world: World
    ) -> None:
        """The TraceHook body: one event record, plus periodic checkpoints."""
        if not self.begun:
            # The hook fires post-apply; starting the stream here would
            # snapshot a header one event too late.
            raise TraceError(
                "trace writer received an event before begin()/attach()"
            )
        self._world = world
        self._write(event_record(index, cand, update))
        self.events += 1
        if self.checkpoint_every and self.events % self.checkpoint_every == 0:
            self.write_checkpoint(world)

    def write_checkpoint(self, world: Optional[World] = None) -> None:
        """Write a full-snapshot seek anchor at the current position."""
        world = world if world is not None else self._world
        if world is None:
            raise TraceError("cannot checkpoint before the header is written")
        self._write(checkpoint_record(self.events, self.seq, self.chain, world))
        self.checkpoints += 1

    def on_move(
        self,
        index: int,
        leaf: int,
        pivot: int,
        clockwise: bool,
        new_leaf_state: Any,
        new_pivot_state: Any,
        world: World,
    ) -> None:
        """One applied leaf swing (HybridSimulation's active branch).

        Moves share the event counter with passive events — the hybrid
        scheduler draws uniformly over both candidate sets — so the same
        checkpoint cadence applies.
        """
        if not self.begun:
            raise TraceError(
                "trace writer received a move before begin()/attach()"
            )
        self._world = world
        self._write(
            move_record(
                index, leaf, pivot, clockwise, new_leaf_state, new_pivot_state
            )
        )
        self.events += 1
        if self.checkpoint_every and self.events % self.checkpoint_every == 0:
            self.write_checkpoint(world)

    def record_break(self, index: int, bond: Bond) -> None:
        """Record an injected bond breakage (FaultySimulation seam)."""
        self._write(detach_record(index, bond))

    def record_excise(self, index: int, nid: int, state: Any) -> None:
        """Record an injected node excision (FaultySimulation seam)."""
        self._write(excise_record(index, nid, state))

    # ------------------------------------------------------------------

    def _write(self, record: Dict[str, Any]) -> None:
        if self.finalized:
            raise TraceError("trace writer already finalized")
        line = encode_line(record)
        if self.path is not None:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fd, self._tmp = tempfile.mkstemp(
                    dir=self.path.parent, suffix=".tmp"
                )
                self._fh = os.fdopen(fd, "wb")
            try:
                self._fh.write(line)
            except BaseException:
                self.abort()
                raise
        self.chain = chain_advance(self.chain, line.rstrip(b"\n"))
        self.seq += 1
        if self.sink is not None:
            self.sink(record)
