"""Recording contexts: attach a :class:`TraceWriter` to live simulations.

The seam is :func:`repro.core.simulator.add_simulation_observer`: while a
:func:`recording` context is active, every :class:`Simulation` constructed
anywhere in the process is offered to the innermost writer, which binds to
its ``run_index``-th one (scenarios like ``demo`` build several). Outside a
context the observer list is empty and untraced runs pay nothing — seeded
trajectories stay bit-identical to unrecorded executions, because the
writer only *observes* applied events and never touches the RNG.

:func:`record_scenario` is the high-level entry behind ``repro record`` and
the sweep service's ``--trace`` mode: run one registered scenario spec
under a recording and finalize the trace.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.core import simulator
from repro.trace.writer import DEFAULT_CHECKPOINT_EVERY, TraceWriter

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.result import ExperimentResult

#: The stack of active writers (innermost last). A module-level stack keeps
#: nested recordings well-defined: each Simulation is offered to the
#: innermost context only.
_ACTIVE: List[TraceWriter] = []


def _observe(sim: "simulator.Simulation") -> None:
    if _ACTIVE:
        _ACTIVE[-1].attach(sim)


@contextmanager
def recording(writer: TraceWriter) -> Iterator[TraceWriter]:
    """Attach ``writer`` to simulations constructed inside the context.

    The caller finalizes (or closes) the writer afterwards; the context
    only scopes the construction observer.
    """
    _ACTIVE.append(writer)
    if len(_ACTIVE) == 1:
        simulator.add_simulation_observer(_observe)
    try:
        yield writer
    finally:
        _ACTIVE.remove(writer)
        if not _ACTIVE:
            simulator.remove_simulation_observer(_observe)


def record_scenario(
    scenario: str,
    params: Optional[Mapping[str, Any]] = None,
    seed: Optional[int] = None,
    scheduler: Optional[str] = None,
    path: Union[str, Path, None] = None,
    run_index: int = 0,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    sink: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Tuple["ExperimentResult", TraceWriter]:
    """Run one registered scenario spec and record its simulation.

    Returns ``(result, writer)`` with the writer already finalized — the
    trace is on disk at ``writer.path`` (and/or fully streamed to
    ``sink``). Raises :class:`~repro.errors.TraceError` when the scenario
    never builds a ``run_index``-th Simulation (pure pipelines such as
    ``repair`` or ``replicate`` have nothing to record).
    """
    # Imported here: repro.trace must stay importable without dragging in
    # the whole experiment layer (and registry import would be circular
    # once scenarios themselves record traces).
    from repro.experiments.runner import run_experiment
    from repro.experiments.spec import ExperimentSpec

    spec = ExperimentSpec(
        scenario=scenario,
        params=dict(params) if params else {},
        seed=seed,
        scheduler=scheduler,
    ).resolved()
    writer = TraceWriter(
        path,
        scenario=spec.scenario,
        params=spec.params,
        seed=spec.seed,
        scheduler=spec.scheduler,
        run_index=run_index,
        checkpoint_every=checkpoint_every,
        sink=sink,
    )
    try:
        with recording(writer):
            result = run_experiment(spec)
    except BaseException:
        writer.abort()
        raise
    writer.finalize()
    return result, writer
