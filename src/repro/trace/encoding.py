"""The ``repro.trace/v1`` record vocabulary, canonical bytes, and digests.

A trace is NDJSON: one canonically-serialized JSON object per line. The
stream opens with a **header** (scenario identity, seed, scheduler, and a
full initial :func:`~repro.core.trace.world_to_dict` snapshot), carries one
**event** record per applied effective interaction (the exact shape of the
legacy :class:`~repro.core.trace.TraceEvent` dicts, so both trace layers
speak one vocabulary), interleaves out-of-band **detach**/**excise** records
for injected faults (the world-delta log's split vocabulary — a
non-disconnecting bond break journals no delta record, so faults must be
recorded explicitly), drops periodic **checkpoint** snapshots, and closes
with an **end** record carrying the final world digest.

Integrity is a hash chain over the raw line bytes:
``chain_0 = sha256(schema id)`` and ``chain_i = sha256(chain_{i-1} ||
line_i)``. Checkpoint and end records embed the chain value *before* their
own line, so flipping any byte anywhere breaks a later anchor — a finalized
trace always ends with one. Everything here is wall-clock-free: identical
seeds produce byte-identical traces.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.protocol import Update
from repro.core.trace import _state_from_repr, _state_repr, world_to_dict
from repro.core.world import Bond, Candidate, World, bond_of
from repro.geometry.ports import Port
from repro.geometry.rotation import Rotation
from repro.geometry.vec import Vec

#: Schema identifier stamped into every trace header (``repro validate``
#: dispatches on it; documented next to the result/history/analysis ids in
#: ``repro.experiments.io``).
TRACE_SCHEMA = "repro.trace/v1"

#: Every record kind the v1 stream may contain, in no particular order.
#: ``move`` is the hybrid model's active primitive (a leaf swing, §8): it
#: advances the event counter exactly like ``event`` — the hybrid scheduler
#: draws uniformly over passive *and* active candidates, so both kinds are
#: steps of the one trajectory. Pre-hybrid v1 traces simply contain none.
RECORD_KINDS = ("header", "event", "move", "detach", "excise", "checkpoint", "end")

#: The hash-chain seed: the digest of the schema id itself, so chains from
#: different schema versions can never be spliced together.
CHAIN_SEED = hashlib.sha256(TRACE_SCHEMA.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Canonical bytes and digests
# ----------------------------------------------------------------------


def canonical_json(obj: Any) -> str:
    """The one canonical serialization (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def encode_line(record: Mapping[str, Any]) -> bytes:
    """One trace line: canonical JSON plus the newline terminator."""
    return canonical_json(record).encode("utf-8") + b"\n"


def payload_digest(obj: Any) -> str:
    """SHA-256 over the canonical JSON of ``obj`` (hex)."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def world_digest(world: World) -> str:
    """The world hash: digest of the full canonical snapshot.

    Two worlds have equal digests iff :func:`world_to_dict` serializes them
    identically — same node ids, states, components, geometry, and bonds.
    This is the bit-exactness criterion of record→replay round trips.
    """
    return payload_digest(world_to_dict(world))


def chain_advance(chain: str, line: bytes) -> str:
    """Fold one raw line (without its newline) into the hash chain."""
    return hashlib.sha256(bytes.fromhex(chain) + line).hexdigest()


# ----------------------------------------------------------------------
# Record builders
# ----------------------------------------------------------------------


def header_record(
    world: World,
    scenario: Optional[str] = None,
    params: Optional[Mapping[str, Any]] = None,
    seed: Optional[int] = None,
    scheduler: Optional[str] = None,
    run: int = 0,
    checkpoint_every: Optional[int] = None,
) -> Dict[str, Any]:
    """The opening record: run identity plus the full initial snapshot.

    ``checkpoint_every`` records the writer's checkpoint cadence so a
    re-simulation from the header (``repro diff --live``) can reproduce the
    original anchor positions. It is advisory: the diff engine tolerates
    mismatched cadences, and pre-PR-10 traces omit the field entirely.
    """
    snapshot = world_to_dict(world)
    record = {
        "schema": TRACE_SCHEMA,
        "kind": "header",
        "scenario": scenario,
        "params": dict(params) if params else {},
        "seed": seed,
        "scheduler": scheduler,
        "run": run,
        "dimension": world.dimension,
        "snapshot": snapshot,
        "snapshot_digest": payload_digest(snapshot),
    }
    if checkpoint_every is not None:
        record["checkpoint_every"] = checkpoint_every
    return record


def event_record(index: int, cand: Candidate, update: Update) -> Dict[str, Any]:
    """One applied effective interaction (the TraceEvent dict shape)."""
    rotation = None
    translation = None
    if cand.rotation is not None:
        rotation = tuple(map(tuple, cand.rotation.matrix))
    if cand.translation is not None:
        translation = cand.translation.as_tuple()
    return {
        "kind": "event",
        "index": index,
        "nid1": cand.nid1,
        "port1": cand.port1.value,
        "nid2": cand.nid2,
        "port2": cand.port2.value,
        "bond": cand.bond,
        "new_state1": _state_repr(update[0]),
        "new_state2": _state_repr(update[1]),
        "new_bond": update[2],
        "rotation": rotation,
        "translation": translation,
    }


def move_record(
    index: int,
    leaf: int,
    pivot: int,
    clockwise: bool,
    new_leaf_state: Any,
    new_pivot_state: Any,
) -> Dict[str, Any]:
    """One applied leaf swing (the hybrid model's active primitive).

    ``index`` is the 1-based event count after the swing — moves and
    passive events share one counter, mirroring the hybrid scheduler's
    uniform draw over the union of both candidate sets.
    """
    return {
        "kind": "move",
        "index": index,
        "leaf": leaf,
        "pivot": pivot,
        "clockwise": bool(clockwise),
        "new_leaf_state": _state_repr(new_leaf_state),
        "new_pivot_state": _state_repr(new_pivot_state),
    }


def detach_record(index: int, bond: Bond) -> Dict[str, Any]:
    """An injected bond breakage (out-of-band split-vocabulary record).

    ``index`` is the event count the fault struck after; the endpoint list
    is sorted so the record is canonical regardless of bond-set iteration.
    """
    (a, pa), (b, pb) = sorted(bond, key=lambda e: (e[0], e[1].value))
    return {
        "kind": "detach",
        "index": index,
        "bond": [[a, pa.value], [b, pb.value]],
    }


def excise_record(index: int, nid: int, state: Any) -> Dict[str, Any]:
    """An injected node excision: ``nid`` cut free, resuming in ``state``."""
    return {
        "kind": "excise",
        "index": index,
        "nid": nid,
        "state": _state_repr(state),
    }


def checkpoint_record(
    events: int, seq: int, chain: str, world: World
) -> Dict[str, Any]:
    """A periodic full snapshot: the seek anchor for fast replay.

    ``chain`` is the hash-chain value *before* this line; ``events``/``seq``
    pin the checkpoint's position in both the event and record streams.
    """
    snapshot = world_to_dict(world)
    return {
        "kind": "checkpoint",
        "events": events,
        "seq": seq,
        "chain": chain,
        "snapshot": snapshot,
        "snapshot_digest": payload_digest(snapshot),
    }


def end_record(events: int, seq: int, chain: str, world: World) -> Dict[str, Any]:
    """The closing record: final world digest plus the last chain anchor."""
    record = {
        "kind": "end",
        "events": events,
        "seq": seq,
        "chain": chain,
        "world_digest": world_digest(world),
    }
    # Every earlier line is covered by a *later* chain anchor, but the end
    # line is the last one — so it carries a digest of its own payload
    # (sans this field), making a byte flip inside the final line just as
    # detectable as anywhere else in the stream.
    record["self_digest"] = payload_digest(record)
    return record


# ----------------------------------------------------------------------
# Record decoders (replay side)
# ----------------------------------------------------------------------


def candidate_from_record(record: Mapping[str, Any]) -> Candidate:
    """Rebuild the applied candidate of an event record."""
    rotation = None
    translation = None
    if record.get("rotation") is not None:
        rotation = Rotation(tuple(map(tuple, record["rotation"])))
    if record.get("translation") is not None:
        translation = Vec(*record["translation"])
    return Candidate(
        record["nid1"],
        Port(record["port1"]),
        record["nid2"],
        Port(record["port2"]),
        record["bond"],
        rotation,
        translation,
    )


def update_from_record(record: Mapping[str, Any]) -> Update:
    """Rebuild the applied update of an event record."""
    return (
        _state_from_repr(record["new_state1"]),
        _state_from_repr(record["new_state2"]),
        record["new_bond"],
    )


def bond_from_record(record: Mapping[str, Any]) -> Bond:
    """Rebuild the snapped bond of a detach record."""
    (a, pa), (b, pb) = record["bond"]
    return bond_of(a, Port(pa), b, Port(pb))


def state_from_record(record: Mapping[str, Any]) -> Any:
    """Rebuild the post-excision state of an excise record."""
    return _state_from_repr(record["state"])


def move_from_record(
    record: Mapping[str, Any],
) -> Tuple[int, int, bool, Any, Any]:
    """Rebuild a move record: (leaf, pivot, clockwise, new states)."""
    return (
        record["leaf"],
        record["pivot"],
        bool(record["clockwise"]),
        _state_from_repr(record["new_leaf_state"]),
        _state_from_repr(record["new_pivot_state"]),
    )


def rotation_translation(
    record: Mapping[str, Any],
) -> Tuple[Optional[tuple], Optional[tuple]]:
    """The raw placement tuples of an event record (display helpers)."""
    return record.get("rotation"), record.get("translation")
