"""Command-line interface: ``python -m repro <command>``.

Rebuilt on the scenario registry (``repro.experiments``): the generic
commands are *generated* from the registered scenarios —

* ``list`` / ``describe`` — browse the scenario catalogue (``--format md``
  regenerates ``EXPERIMENTS.md``);
* ``run <scenario>`` — execute one declarative spec; every scenario gets
  ``--seed`` and ``--json`` (plus ``--scheduler`` where the workload is
  scheduler-driven; deterministic scenarios record that in their spec);
* ``sweep <scenario>`` — a grid over comma-separated param values ×
  ``--seeds`` trials, fanned out over ``--workers`` processes with
  deterministic per-trial seed derivation (bit-identical results for any
  worker count);
* ``validate`` — check emitted JSON (and NDJSON streaming traces)
  against the known schemas;
* ``record <scenario>`` — run one spec under the streaming trace writer
  (``repro.trace/v1``: header snapshot, delta-encoded events, periodic
  checkpoints, digest hash chain);
* ``replay <trace>`` — reconstruct any intermediate world bit-exactly
  (``--to-event N`` seeks from the nearest checkpoint anchor;
  ``--verify`` recomputes every digest it passes);
* ``diff <a> [<b> | --live]`` — stream two traces in lockstep and report
  the first diverging event (``repro.trace.diff/v1``: classification,
  both records, decoded neighborhood); ``--live`` re-simulates side b
  from a's header identity;
* ``goldens record|check|list`` — the committed golden-trace regression
  set under ``tests/goldens/`` (replay bit-exactly + diff against a
  fresh run of the current code).

The sweep-service commands share the same declarative sweep form:
``serve`` runs the long-running daemon (persistent FIFO job queue,
content-addressed trial cache, process-pool fan-out), ``submit`` queues a
sweep (``--wait`` streams NDJSON progress; ``--trace`` additionally
streams per-event ``repro.trace/v1`` records, rendered live with
``--render``), ``status`` inspects the queue, and ``fetch`` retrieves a
finished job's results payload. The same
trial cache backs ``sweep --cache`` in-process, no daemon needed.

The historical subcommands (``demo``, ``count``, ``construct``,
``pattern``, ``cube``, ``replicate``, ``repair``) remain as aliases onto
the same registry and print byte-identical seeded output; ``inspect``
stays a plain introspection command. Results render as the ASCII analogues
of the paper's figures, or as schema-validated JSON with ``--json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.core.inspect import format_protocol, lint_protocol
from repro.errors import ReproError
from repro.experiments import (
    ExperimentResult,
    ExperimentSpec,
    SweepSpec,
    all_scenarios,
    describe_scenario,
    format_scenario_list,
    get_scenario,
    run_experiment,
    run_sweep,
    scenario_names,
    validate_payload,
    write_results_json,
)
from repro.experiments.io import results_payload
from repro.experiments.store import TrialStore
from repro.machines.shape_programs import PATTERN_CATALOGUE, SHAPE_CATALOGUE
from repro.protocols.line import simple_line_protocol, spanning_line_protocol
from repro.protocols.replication import (
    line_replication_protocol,
    no_leader_line_replication_protocol,
    self_replicating_lines_protocol,
)
from repro.protocols.square import square_protocol
from repro.protocols.square2 import square2_protocol

#: Scheduler kinds selectable from the command line (see ``make_scheduler``).
SCHEDULERS = ("hot", "enumerate", "rejection", "round-robin")

#: The shape catalogue exposed by ``construct`` (shared with the registry).
SHAPES = SHAPE_CATALOGUE

#: The pattern catalogue exposed by ``pattern`` (shared with the registry).
PATTERNS = PATTERN_CATALOGUE

#: The rule-table protocols exposed by ``inspect``.
PROTOCOLS: Dict[str, Callable[[], object]] = {
    "line": spanning_line_protocol,
    "simple-line": simple_line_protocol,
    "square": square_protocol,
    "square2": square2_protocol,
    "protocol4": line_replication_protocol,
    "protocol5": no_leader_line_replication_protocol,
    "self-replicating": self_replicating_lines_protocol,
}


# ----------------------------------------------------------------------
# Shared emission helpers
# ----------------------------------------------------------------------


def _emit_result(
    result: ExperimentResult,
    json_target: Optional[str],
    human: Optional[Callable[[ExperimentResult], None]] = None,
) -> int:
    """Print ``result`` as JSON (``--json [PATH]``) or via ``human``."""
    if json_target is not None:
        if json_target == "-":
            print(result.to_json(indent=2))
        else:
            with open(json_target, "w") as fh:
                fh.write(result.to_json(indent=2) + "\n")
        return 0
    if human is not None:
        human(result)
    else:
        _print_generic(result)
    return 0


def _print_generic(result: ExperimentResult) -> None:
    params = ", ".join(f"{k}={v}" for k, v in result.params.items())
    print(f"scenario {result.scenario!r} ({params})")
    bits = []
    if result.seed is not None:
        bits.append(f"seed {result.seed}")
    if result.scheduler is not None:
        bits.append(f"scheduler {result.scheduler}")
    if result.stop_reason is not None:
        bits.append(f"stop {result.stop_reason}")
    if result.events is not None:
        bits.append(f"events {result.events}")
    if result.raw_steps is not None:
        bits.append(f"raw steps {result.raw_steps}")
    bits.append(f"wall {result.wall_time:.3f}s")
    print("  " + ", ".join(bits))
    for key, value in result.metrics.items():
        print(f"  {key}: {value}")
    for name, render in result.renders.items():
        print(f"--- {name} ---")
        print(render)


def _add_json_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit the schema-validated result JSON (to PATH, or stdout)",
    )


def _add_uniform_flags(parser: argparse.ArgumentParser, scn) -> None:
    """The uniform per-scenario flags: --seed, --json, --scheduler."""
    seed_help = "trial seed"
    if scn.deterministic:
        seed_help += " (recorded; this scenario is deterministic)"
    parser.add_argument("--seed", type=int, default=None, help=seed_help)
    _add_json_flag(parser)
    if scn.schedulable:
        parser.add_argument(
            "--scheduler",
            choices=SCHEDULERS,
            default=None,
            help=(
                "uniform-scheduler implementation (all produce identical "
                "seeded trajectories) or the deterministic fair round-robin "
                "adversary"
            ),
        )


def _param_overrides(args: argparse.Namespace, scn) -> Dict[str, object]:
    overrides = {}
    for p in scn.params:
        value = getattr(args, f"param_{p.name}")
        if value is not None:
            overrides[p.name] = value
    return overrides


# ----------------------------------------------------------------------
# Generic registry commands
# ----------------------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    print(format_scenario_list(args.format), end="")
    if args.format == "text":
        print()
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    print(describe_scenario(get_scenario(args.scenario)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scn = get_scenario(args.scenario)
    spec = ExperimentSpec(
        scenario=scn.name,
        params=_param_overrides(args, scn),
        seed=args.seed,
        scheduler=getattr(args, "scheduler", None),
    )
    return _emit_result(run_experiment(spec), args.json)


def _sweep_from_args(args: argparse.Namespace, scn) -> SweepSpec:
    """The declarative sweep shared by ``sweep`` and ``submit``."""
    grid = {}
    for p in scn.params:
        raw = getattr(args, f"param_{p.name}")
        if raw is not None:
            grid[p.name] = [p.convert(tok) for tok in raw.split(",") if tok]
    return SweepSpec(
        scenario=scn.name,
        grid=grid,
        trials=args.seeds,
        base_seed=args.base_seed,
        scheduler=getattr(args, "scheduler", None),
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    scn = get_scenario(args.scenario)
    sweep = _sweep_from_args(args, scn)
    store = None
    if args.cache or args.cache_dir is not None:
        store = TrialStore(args.cache_dir)
    results = run_sweep(sweep, workers=args.workers, cache=store)
    header = {
        "kind": "results",
        "sweep": {
            "scenario": scn.name,
            "grid": {k: list(v) for k, v in sweep.grid.items()},
            "trials": args.seeds,
            "base_seed": args.base_seed,
        },
    }
    if store is not None:
        header["cache"] = store.stats()
    if args.json is not None:
        if args.json == "-":
            print(json.dumps(results_payload(results, header), indent=2, sort_keys=True))
        else:
            write_results_json(args.json, results, header)
        return 0
    for result in results:
        params = ", ".join(f"{k}={v}" for k, v in result.params.items())
        numeric = ", ".join(
            f"{k}={v}"
            for k, v in result.metrics.items()
            if isinstance(v, (int, float))
        )
        print(f"[{result.scenario} {params} seed={result.seed}] {numeric}")
    print(f"{len(results)} trials")
    if store is not None:
        print(
            f"cache hits {store.hits}/{len(results)} "
            f"(misses {store.misses}, rejected {store.rejected})"
        )
    return 0


def _trace_validate(raw: bytes) -> Optional[List[str]]:
    """Validate ``raw`` as an NDJSON streaming trace, if it looks like one.

    Returns the error list (``[]`` = valid) when the first line is a
    ``repro.trace/v1`` header, ``None`` when the bytes are not a trace at
    all (so ``validate`` can report its generic JSON error instead).
    """
    from repro.trace.encoding import TRACE_SCHEMA
    from repro.trace.reader import validate_trace_bytes

    first = raw.split(b"\n", 1)[0]
    try:
        head = json.loads(first)
    except json.JSONDecodeError:
        return None
    if not isinstance(head, dict) or head.get("schema") != TRACE_SCHEMA:
        return None
    return validate_trace_bytes(raw)


def _cmd_validate(args: argparse.Namespace) -> int:
    status = 0
    for path in args.paths:
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            print(f"{path}: unreadable ({exc})")
            status = 1
            continue
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            # Not a single JSON document: streaming traces are NDJSON, so
            # dispatch on the first line's schema before giving up.
            errors = _trace_validate(raw)
            if errors is None:
                print(f"{path}: unreadable ({exc})")
                status = 1
            elif errors:
                status = 1
                print(f"{path}: INVALID")
                for err in errors:
                    print(f"  {err}")
            else:
                lines = len(raw.splitlines())
                print(f"{path}: ok (trace, {lines} records)")
            continue
        errors = validate_payload(data)
        if errors:
            status = 1
            print(f"{path}: INVALID")
            for err in errors:
                print(f"  {err}")
        elif data.get("kind") == "trace-diff":
            verdict = "identical" if data.get("identical") else "diverged"
            print(f"{path}: ok (trace diff, {verdict})")
        else:
            count = len(data.get("results", [data]))
            print(f"{path}: ok ({count} result{'s' if count != 1 else ''})")
    return status


# ----------------------------------------------------------------------
# Streaming trace commands (repro record / replay)
# ----------------------------------------------------------------------


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.trace.record import record_scenario

    scn = get_scenario(args.scenario)
    out = args.out if args.out is not None else f"{scn.name}.trace"
    result, writer = record_scenario(
        scn.name,
        params=_param_overrides(args, scn),
        seed=args.seed,
        scheduler=getattr(args, "scheduler", None),
        path=out,
        run_index=args.run,
        checkpoint_every=args.checkpoint_every,
    )
    print(
        f"recorded {writer.events} events "
        f"({writer.checkpoints} checkpoints, {writer.seq} records) "
        f"-> {writer.path}"
    )
    if args.verify:
        from repro.trace.replay import replay_trace

        # Replay from the header (no seek) so *every* checkpoint anchor
        # in the fresh trace is recomputed, not just the final digest.
        res = replay_trace(writer.path, verify=True, use_checkpoints=False)
        print(
            f"verified: replay reproduces world digest {res.digest[:12]} "
            f"({res.checkpoints_verified} checkpoint anchors recomputed)"
        )
    if args.json is not None:
        return _emit_result(result, args.json)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.trace.reader import TraceReader
    from repro.trace.replay import replay_trace
    from repro.viz.ascii_art import render_world

    trace = TraceReader.load(args.path)
    print(trace.describe())
    res = replay_trace(
        trace,
        to_event=args.to_event,
        verify=args.verify,
        use_checkpoints=not args.no_seek,
    )
    bits = [
        f"seek start {res.start_events}",
        f"{res.records_applied} records applied",
    ]
    if args.verify:
        bits.append(f"{res.checkpoints_verified} checkpoints verified")
    print(
        f"replayed to event {res.events} ({', '.join(bits)}), "
        f"world digest {res.digest[:12]}"
    )
    if args.render:
        art = render_world(res.world, state_char=lambda s: "#")
        print(art if art.strip() else "(no multi-node components)")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.trace.diff import diff_traces, resimulate_from_header

    if args.live:
        if args.trace_b is not None:
            raise ReproError(
                "diff takes either a second trace or --live, not both"
            )
        side_b = resimulate_from_header(args.trace_a)
        label_b = "live re-simulation"
    else:
        if args.trace_b is None:
            raise ReproError(
                "diff needs a second trace (or --live to re-simulate "
                "from the first trace's header)"
            )
        side_b = args.trace_b
        label_b = str(args.trace_b)
    result = diff_traces(
        args.trace_a,
        side_b,
        neighborhood=not args.no_neighborhood,
        label_a=str(args.trace_a),
        label_b=label_b,
    )
    print(result.describe())
    if args.json is not None:
        text = json.dumps(result.to_payload(), indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
    return 0 if result.identical else 1


def _cmd_goldens(args: argparse.Namespace) -> int:
    from repro.trace.goldens import (
        check_goldens,
        golden_specs,
        record_goldens,
    )

    root = Path(args.dir)
    names = args.names or None
    if args.action == "list":
        for spec in golden_specs(names):
            kind = spec.scenario or f"builder:{spec.builder}"
            print(
                f"{spec.name:<12} [{spec.family}] {kind} seed={spec.seed} "
                f"-- {spec.summary}"
            )
        return 0
    if args.action == "record":
        for spec, writer in record_goldens(root, names):
            print(
                f"recorded golden {spec.name!r}: {writer.events} events "
                f"({writer.seq} records) -> {writer.path}"
            )
        return 0
    reports = check_goldens(root, names)
    for report in reports:
        print(("ok   " if report.ok else "FAIL ") + report.message)
    failed = [r for r in reports if not r.ok]
    print(
        f"{len(reports) - len(failed)}/{len(reports)} goldens reproduce "
        f"bit-exactly under {root}"
    )
    return 1 if failed else 0


# ----------------------------------------------------------------------
# Static analysis commands (repro analyze / lint)
# ----------------------------------------------------------------------


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.report import analysis_payload, analyze_scenario
    from repro.experiments.registry import all_scenarios

    if args.all:
        if args.scenario is not None:
            raise ReproError(
                f"cannot combine a scenario name ({args.scenario!r}) with "
                "--all; pass one or the other"
            )
        targets = [s for s in all_scenarios() if s.protocols]
    else:
        if args.scenario is None:
            raise ReproError("analyze needs a scenario name (or --all)")
        targets = [get_scenario(args.scenario)]
        if not targets[0].protocols:
            raise ReproError(
                f"scenario {args.scenario!r} declares no protocols; "
                "nothing to analyze"
            )
    per_scenario = {scn.name: analyze_scenario(scn) for scn in targets}
    payload = analysis_payload(per_scenario)

    if args.json is not None:
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
    else:
        for name in sorted(per_scenario):
            print(f"{name}:")
            for report in per_scenario[name]:
                print(f"  {report.name}: {report.summary()}")
                if not report.exact:
                    print(f"    {report.diagnostic}")
                    continue
                for state in report.unreachable_states:
                    print(f"    unreachable state: {state}")
                for rule in report.dead_rules:
                    print(f"    dead rule: {rule}")
                for rule in report.hot_violations:
                    print(f"    hot-set violation (no hot endpoint): {rule}")
                shadows = [s for s in report.shadows if s["matters"]]
                if shadows:
                    print(
                        f"    {len(shadows)} reachable ordered-table "
                        "shadow(s) (informational)"
                    )
                print(f"    stabilization: {report.stabilization_reason}")
        print(
            f"-- {payload['findings']} finding(s), "
            f"{payload['inexact']} protocol(s) skipped as not closed-world"
        )
    if payload["findings"]:
        return 1
    if args.strict and payload["inexact"]:
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import lint_paths

    findings = lint_paths(tuple(args.paths))
    if args.json is not None:
        payload = {
            "kind": "lint",
            "findings": [f.to_dict() for f in findings],
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
    else:
        for finding in findings:
            print(finding.format())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"-- {len(findings)} {noun}")
    return 1 if findings else 0


# ----------------------------------------------------------------------
# Sweep-service commands (repro serve / submit / status / fetch)
# ----------------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.experiments.service import ServiceClient, SweepService

    if args.stop:
        ServiceClient(state_dir=args.state_dir).shutdown()
        print("sweep service stopping")
        return 0
    store = TrialStore(args.cache_dir) if args.cache_dir is not None else None
    service = SweepService(
        state_dir=args.state_dir,
        port=args.port,
        workers=args.workers,
        store=store,
    )

    def on_ready(svc: SweepService) -> None:
        print(
            f"sweep service listening on {svc.host}:{svc.bound_port} "
            f"(state dir {svc.state_dir}, trial store {svc.store.root}, "
            f"{svc.workers} workers)",
            flush=True,
        )

    try:
        service.run(on_ready)
    except KeyboardInterrupt:
        pass  # queued jobs stay journalled; a restart resumes them
    return 0


def _print_progress(event: Dict) -> None:
    if event.get("event") == "trial":
        tag = "cached" if event.get("cached") else "computed"
        print(f"  trial {event['index']}: {tag} (seed {event.get('seed')})")
    elif event.get("event") == "job":
        print(f"job {event.get('id')}: {event.get('status')}")


def _trace_stream_handler(args: argparse.Namespace, out_fh):
    """The ``submit --trace --wait`` event handler: forward trace records.

    Non-trace progress lines go through :func:`_print_progress` (unless
    ``--quiet``); every streamed ``repro.trace/v1`` record is appended to
    ``--trace-out`` (canonical encoding, byte-identical to a writer-side
    file for single-trial jobs) and fed to the live ASCII view when
    ``--render`` is set.
    """
    from repro.trace.encoding import encode_line
    from repro.viz.live import LiveTraceView

    view = LiveTraceView() if args.render else None

    def on_event(event: Dict) -> None:
        if event.get("event") != "trace":
            if not args.quiet:
                _print_progress(event)
            return
        record = event["record"]
        if out_fh is not None:
            out_fh.write(encode_line(record))
        if view is not None:
            view.feed(record)

    return on_event


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.experiments.service import ServiceClient

    scn = get_scenario(args.scenario)
    sweep = _sweep_from_args(args, scn)
    client = ServiceClient(state_dir=args.state_dir)
    on_event = None if args.quiet else _print_progress
    out_fh = None
    try:
        if args.trace and args.wait:
            if args.trace_out is not None:
                out_fh = open(args.trace_out, "wb")
            on_event = _trace_stream_handler(args, out_fh)
        final = client.submit(
            sweep,
            workers=args.workers,
            wait=args.wait,
            on_event=on_event,
            trace=args.trace,
        )
    finally:
        if out_fh is not None:
            out_fh.close()
    if args.wait:
        print(
            f"job {final['id']}: {final['status']}, {final['total']} trials, "
            f"cache hits {final['hits']}/{final['total']} "
            f"(misses {final['misses']})"
        )
        return 0 if final["status"] == "done" else 1
    print(
        f"submitted {final['id']} ({final['total']} trials, "
        f"queue position {final['position']})"
    )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.experiments.service import ServiceClient

    client = ServiceClient(state_dir=args.state_dir)
    final = client.status(args.job_id)
    jobs = [final["job"]] if args.job_id is not None else final["jobs"]
    if args.json is not None:
        text = json.dumps(jobs, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
        return 0
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        line = (
            f"{job['id']}  {job['status']:<8} {job['scenario'] or '?':<16} "
            f"{job['completed']}/{job['total']} trials, "
            f"hits {job['hits']}, misses {job['misses']}"
        )
        if job.get("error"):
            line += f"  [{job['error']}]"
        print(line)
    store = final.get("store")
    if args.job_id is None and store is not None:
        print(
            f"trial store: {store['hits']} hits, {store['misses']} misses, "
            f"{store['rejected']} rejected"
        )
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    from repro.experiments.service import ServiceClient

    client = ServiceClient(state_dir=args.state_dir)
    payload = client.fetch(args.job_id)
    if args.json is not None and args.json != "-":
        with open(args.json, "w") as fh:
            fh.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return 0
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


# ----------------------------------------------------------------------
# Historical commands — aliases onto the registry
# ----------------------------------------------------------------------


def _run_alias(args: argparse.Namespace, scenario: str, params: Dict) -> ExperimentResult:
    return run_experiment(
        ExperimentSpec(
            scenario=scenario,
            params=params,
            seed=getattr(args, "seed", None),
            scheduler=getattr(args, "scheduler", None),
        )
    )


def _cmd_demo(args: argparse.Namespace) -> int:
    result = _run_alias(args, "demo", {"n": args.n})

    def human(res: ExperimentResult) -> None:
        m = res.metrics
        print(
            f"spanning line on {m['n']} nodes: "
            f"{m['line_events']} effective interactions"
        )
        print(res.renders["line"])
        print(
            f"\n{m['side']}x{m['side']} square on {m['square_n']} nodes: "
            f"{m['square_events']} effective interactions"
        )
        print(res.renders["square"])

    return _emit_result(result, args.json, human)


def _cmd_count(args: argparse.Namespace) -> int:
    result = _run_alias(
        args,
        "counting",
        {"n": args.n, "b": args.head_start, "trials": args.trials},
    )

    def human(res: ExperimentResult) -> None:
        m = res.metrics
        mean = m["mean_estimate"]
        print(
            f"counting n = {m['n']} (b = {m['b']}, {m['trials']} trials): "
            f"mean estimate {mean:.1f} ({mean / m['n']:.2%} of n), "
            f"success rate {m['successes']}/{m['trials']}"
        )

    return _emit_result(result, args.json, human)


def _cmd_construct(args: argparse.Namespace) -> int:
    result = _run_alias(args, "shape", {"shape": args.shape, "d": args.d})

    def human(res: ExperimentResult) -> None:
        m = res.metrics
        print(
            f"constructed {m['shape']!r} on a {m['d']}x{m['d']} square: "
            f"{m['useful_space']} on-cells, waste {m['waste']}, "
            f"{m['interactions']} interactions"
        )
        print(res.renders["shape"])

    return _emit_result(result, args.json, human)


def _cmd_pattern(args: argparse.Namespace) -> int:
    result = _run_alias(args, "pattern", {"pattern": args.pattern, "d": args.d})

    def human(res: ExperimentResult) -> None:
        m = res.metrics
        print(
            f"pattern {m['pattern']!r} on a {m['d']}x{m['d']} square "
            f"({m['colors']} colors, {m['interactions']} interactions)"
        )
        print(res.renders["pattern"])

    return _emit_result(result, args.json, human)


def _cmd_cube(args: argparse.Namespace) -> int:
    result = _run_alias(args, "cube", {"m": args.m})

    def human(res: ExperimentResult) -> None:
        m = res.metrics
        print(
            f"{m['m']}x{m['m']}x{m['m']} cube on {m['n']} nodes: "
            f"{m['scheduler_events']} scheduler events, "
            f"{m['leader_interactions']} leader interactions"
        )
        print(res.renders["cube"])

    return _emit_result(result, args.json, human)


def _cmd_replicate(args: argparse.Namespace) -> int:
    result = _run_alias(
        args, "replicate", {"size": args.size, "approach": args.approach}
    )

    def human(res: ExperimentResult) -> None:
        m = res.metrics
        print(
            f"replicated a random {m['size']}-cell shape by {m['approach']}: "
            f"{m['interactions']} interactions, waste {m['waste']}, "
            f"identical: {m['identical']}"
        )
        print("original:")
        print(res.renders["original"])
        print("replica:")
        print(res.renders["replica"])

    return _emit_result(result, args.json, human)


def _cmd_repair(args: argparse.Namespace) -> int:
    result = _run_alias(
        args, "repair", {"d": args.d, "fraction": args.fraction}
    )

    def human(res: ExperimentResult) -> None:
        m = res.metrics
        print(
            f"star on a {m['d']}x{m['d']} square: detached {m['detached']} cells, "
            f"repaired in {m['interactions']} interactions "
            f"({m['nodes_attached']} re-attached, {m['bonds_restored']} bonds)"
        )
        print("damaged:")
        print(res.renders["damaged"])
        print("repaired:")
        print(res.renders["repaired"])

    return _emit_result(result, args.json, human)


def _cmd_inspect(args: argparse.Namespace) -> int:
    protocol = PROTOCOLS[args.protocol]()
    print(format_protocol(protocol))
    seeds = ("i", "e") if "protocol" in args.protocol or args.protocol == "self-replicating" else ()
    report = lint_protocol(protocol, extra_initial=seeds)
    print(
        f"\nlint: {'clean' if report.clean else 'FINDINGS'}; "
        f"{report.bond_forming_rules} bond-forming, "
        f"{report.bond_breaking_rules} bond-breaking rules"
    )
    for note in report.notes:
        print(f"  note: {note}")
    for state in report.unreachable_states:
        print(f"  unreachable state: {state!r}")
    return 0


# ----------------------------------------------------------------------
# Parser construction
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Terminating distributed construction of shapes and patterns "
            "(Michail, 2015) — reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # --- generic registry commands -----------------------------------
    p = sub.add_parser("list", help="list every registered scenario")
    p.add_argument("--format", choices=("text", "md"), default="text")
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser("describe", help="print one scenario's param schema")
    p.add_argument("scenario", choices=scenario_names())
    p.set_defaults(func=_cmd_describe)

    run_parser = sub.add_parser("run", help="run one scenario spec")
    run_sub = run_parser.add_subparsers(dest="scenario", required=True)
    sweep_parser = sub.add_parser(
        "sweep", help="declarative grid × seeds sweep (parallel workers)"
    )
    sweep_sub = sweep_parser.add_subparsers(dest="scenario", required=True)
    submit_parser = sub.add_parser(
        "submit", help="queue a sweep on the running sweep service"
    )
    submit_sub = submit_parser.add_subparsers(dest="scenario", required=True)
    record_parser = sub.add_parser(
        "record",
        help="run one scenario under the streaming repro.trace/v1 writer",
    )
    record_sub = record_parser.add_subparsers(dest="scenario", required=True)
    for scn in all_scenarios():

        def _add_run_param_flags(p, scn=scn):
            for prm in scn.params:
                p.add_argument(
                    f"--{prm.name.replace('_', '-')}",
                    dest=f"param_{prm.name}",
                    type=prm.pytype,
                    choices=prm.choices,
                    default=None,
                    help=f"{prm.help} (default {prm.default!r})",
                )

        p = run_sub.add_parser(scn.name, help=scn.summary)
        _add_run_param_flags(p)
        _add_uniform_flags(p, scn)
        p.set_defaults(func=_cmd_run)

        p = record_sub.add_parser(scn.name, help=scn.summary)
        _add_run_param_flags(p)
        _add_uniform_flags(p, scn)
        p.add_argument(
            "--out", default=None, metavar="PATH",
            help=f"trace file to write (default {scn.name}.trace)",
        )
        p.add_argument(
            "--checkpoint-every", type=int, default=256, metavar="N",
            help="events between checkpoint snapshots (0 = none)",
        )
        p.add_argument(
            "--run", type=int, default=0, metavar="K",
            help="which Simulation of a multi-run scenario to record",
        )
        p.add_argument(
            "--verify", action="store_true",
            help="replay the finished trace and recompute every digest",
        )
        p.set_defaults(func=_cmd_record)

        def _add_sweep_grid_flags(p, scn=scn):
            for prm in scn.params:
                p.add_argument(
                    f"--{prm.name.replace('_', '-')}",
                    dest=f"param_{prm.name}",
                    type=str,
                    default=None,
                    metavar="V[,V...]",
                    help=f"values to sweep for {prm.name} (default {prm.default!r})",
                )
            p.add_argument(
                "--seeds", type=int, default=1,
                help="trials per grid point (seeds derived deterministically)",
            )
            p.add_argument("--base-seed", type=int, default=0)
            if scn.schedulable:
                p.add_argument("--scheduler", choices=SCHEDULERS, default=None)

        p = sweep_sub.add_parser(scn.name, help=scn.summary)
        _add_sweep_grid_flags(p)
        p.add_argument(
            "--workers", type=int, default=1,
            help="process fan-out; results are identical for any count",
        )
        p.add_argument(
            "--cache", action="store_true",
            help=(
                "serve repeated trials from the content-addressed trial "
                "store (~/.cache/repro/trials) instead of recomputing"
            ),
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="PATH",
            help="trial-store root (implies --cache)",
        )
        _add_json_flag(p)
        p.set_defaults(func=_cmd_sweep)

        p = submit_sub.add_parser(scn.name, help=scn.summary)
        _add_sweep_grid_flags(p)
        p.add_argument(
            "--workers", type=int, default=None,
            help="per-job process fan-out (default: the service's setting)",
        )
        p.add_argument(
            "--wait", action="store_true",
            help="stream per-trial progress and block until the job finishes",
        )
        p.add_argument("--quiet", action="store_true", help="no progress lines")
        p.add_argument(
            "--state-dir", default=None, metavar="PATH",
            help="service state directory (default ~/.cache/repro/service)",
        )
        p.add_argument(
            "--trace", action="store_true",
            help=(
                "stream per-event repro.trace/v1 records (uncached trials "
                "run sequentially under a recording)"
            ),
        )
        p.add_argument(
            "--render", action="store_true",
            help="with --trace --wait: live ASCII view of the streamed run",
        )
        p.add_argument(
            "--trace-out", default=None, metavar="PATH",
            help=(
                "with --trace --wait: append every streamed record to PATH "
                "(a valid trace file for single-trial jobs)"
            ),
        )
        p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "validate",
        help=(
            "validate emitted JSON (or NDJSON streaming traces) against "
            "the known schemas"
        ),
    )
    p.add_argument("paths", nargs="+", metavar="PATH")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser(
        "replay",
        help="bit-exact replay of a recorded trace (seek, verify, render)",
    )
    p.add_argument("path", metavar="TRACE")
    p.add_argument(
        "--to-event", type=int, default=None, metavar="N",
        help=(
            "reconstruct the world just after event N, including its "
            "same-step faults (default: the end of the trace)"
        ),
    )
    p.add_argument(
        "--verify", action="store_true",
        help="recompute the world digest against every anchor passed",
    )
    p.add_argument(
        "--render", action="store_true",
        help="ASCII-render the reconstructed world",
    )
    p.add_argument(
        "--no-seek", action="store_true",
        help="replay from the header instead of seeking to a checkpoint",
    )
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser(
        "diff",
        help=(
            "stream two traces in lockstep and report the first "
            "diverging event (repro.trace.diff/v1)"
        ),
    )
    p.add_argument("trace_a", metavar="TRACE_A")
    p.add_argument("trace_b", nargs="?", default=None, metavar="TRACE_B")
    p.add_argument(
        "--live", action="store_true",
        help=(
            "instead of a second trace, re-simulate from TRACE_A's header "
            "identity with the current code and diff against that"
        ),
    )
    p.add_argument(
        "--no-neighborhood", action="store_true",
        help="skip decoding the world neighborhood around the divergence",
    )
    _add_json_flag(p)
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser(
        "goldens",
        help=(
            "golden-trace regression set: record, check (replay + diff "
            "vs a fresh run), or list the committed specs"
        ),
    )
    p.add_argument(
        "action", choices=("list", "record", "check"),
        help="what to do with the golden set",
    )
    p.add_argument(
        "names", nargs="*", metavar="NAME",
        help="golden names to operate on (default: all)",
    )
    p.add_argument(
        "--dir", default="tests/goldens", metavar="PATH",
        help="golden directory (default: tests/goldens)",
    )
    p.set_defaults(func=_cmd_goldens)

    # --- static analysis ----------------------------------------------
    p = sub.add_parser(
        "analyze",
        help=(
            "static protocol analysis: reachability, dead rules, "
            "shadowing, hot-set soundness, stabilization witness"
        ),
    )
    p.add_argument(
        "scenario", nargs="?", default=None,
        help="registered scenario whose protocols to analyze",
    )
    p.add_argument(
        "--all", action="store_true",
        help="analyze every registered scenario that declares protocols",
    )
    p.add_argument(
        "--strict", action="store_true",
        help=(
            "also fail (exit 1) on handler-lowered protocols that cannot "
            "be analyzed statically"
        ),
    )
    _add_json_flag(p)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "lint",
        help="determinism linter over src/repro (AST pass, zero deps)",
    )
    p.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to lint (default: the repro package)",
    )
    _add_json_flag(p)
    p.set_defaults(func=_cmd_lint)

    # --- sweep service ------------------------------------------------
    p = sub.add_parser(
        "serve",
        help=(
            "run the sweep service: persistent FIFO job queue, "
            "content-addressed trial cache, process-pool fan-out"
        ),
    )
    p.add_argument(
        "--state-dir", default=None, metavar="PATH",
        help="journal/port/results directory (default ~/.cache/repro/service)",
    )
    p.add_argument(
        "--port", type=int, default=0,
        help="TCP port on 127.0.0.1 (0 = ephemeral, written to the port file)",
    )
    p.add_argument(
        "--workers", type=int, default=2,
        help="default process fan-out for uncached trials",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="trial-store root (default ~/.cache/repro/trials)",
    )
    p.add_argument(
        "--stop", action="store_true",
        help="shut down the running service instead of starting one",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("status", help="list the sweep service's jobs")
    p.add_argument("job_id", nargs="?", default=None, metavar="JOB")
    p.add_argument("--state-dir", default=None, metavar="PATH")
    _add_json_flag(p)
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser(
        "fetch", help="retrieve a finished job's results payload"
    )
    p.add_argument("job_id", metavar="JOB")
    p.add_argument("--state-dir", default=None, metavar="PATH")
    _add_json_flag(p)
    p.set_defaults(func=_cmd_fetch)

    # --- historical commands (registry aliases) ----------------------
    p = sub.add_parser("demo", help="quickstart: spanning line + square")
    p.add_argument("-n", type=int, default=10, help="population size")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--scheduler",
        choices=SCHEDULERS,
        default=None,
        help=(
            "uniform-scheduler implementation (all produce identical seeded "
            "trajectories) or the deterministic fair round-robin adversary"
        ),
    )
    _add_json_flag(p)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser("count", help="Theorem 1 terminating counting")
    p.add_argument("n", type=int, help="population size")
    p.add_argument("-b", "--head-start", type=int, default=4)
    p.add_argument("--trials", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    _add_json_flag(p)
    p.set_defaults(func=_cmd_count)

    p = sub.add_parser("construct", help="Theorem 4 universal construction")
    p.add_argument("shape", choices=sorted(SHAPES))
    p.add_argument("-d", type=int, default=9, help="square dimension")
    p.add_argument(
        "--seed", type=int, default=None,
        help="recorded in the result (the construction is deterministic)",
    )
    _add_json_flag(p)
    p.set_defaults(func=_cmd_construct)

    p = sub.add_parser("pattern", help="Remark 4 pattern construction")
    p.add_argument("pattern", choices=sorted(PATTERNS))
    p.add_argument("-d", type=int, default=8, help="square dimension")
    p.add_argument(
        "--seed", type=int, default=None,
        help="recorded in the result (the construction is deterministic)",
    )
    _add_json_flag(p)
    p.set_defaults(func=_cmd_pattern)

    p = sub.add_parser("cube", help="3D Cube-Knowing-n")
    p.add_argument("-m", type=int, default=3, help="cube side (>= 3)")
    p.add_argument("--seed", type=int, default=0)
    _add_json_flag(p)
    p.set_defaults(func=_cmd_cube)

    p = sub.add_parser("replicate", help="§7 shape self-replication")
    p.add_argument("--size", type=int, default=12, help="cells in the shape")
    p.add_argument(
        "--approach", choices=("shifting", "columns"), default="shifting"
    )
    p.add_argument("--seed", type=int, default=0)
    _add_json_flag(p)
    p.set_defaults(func=_cmd_replicate)

    p = sub.add_parser("repair", help="§8 damage-and-repair scenario")
    p.add_argument("-d", type=int, default=9, help="square dimension")
    p.add_argument("--fraction", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=0)
    _add_json_flag(p)
    p.set_defaults(func=_cmd_repair)

    p = sub.add_parser(
        "inspect", help="print a protocol's rule table (paper notation)"
    )
    p.add_argument("protocol", choices=sorted(PROTOCOLS))
    p.set_defaults(func=_cmd_inspect)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro list | head`; not an error
        return 0
    except ReproError as exc:
        # Spec/param problems (bad sweep values, out-of-range params,
        # scheduler on a deterministic scenario) are usage errors, not
        # tracebacks.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
