"""Command-line interface: ``python -m repro <command>``.

A thin front-end over the library for quick exploration:

* ``demo`` — the quickstart constructions (spanning line + square);
* ``count`` — the Theorem 1 terminating counting protocol;
* ``construct`` — Theorem 4's universal construction of a named shape;
* ``pattern`` — Remark 4 patterns on the square;
* ``cube`` — the 3D Cube-Knowing-n constructor;
* ``replicate`` — §7 self-replication of a random connected shape;
* ``repair`` — the §8 damage-and-repair scenario.

Every command accepts ``--seed`` for reproducibility and prints ASCII
renderings of the results (the textual analogues of the paper's figures).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Callable, Dict, List, Optional

from repro.constructors.cube import run_cube_known_n
from repro.core.inspect import format_protocol, lint_protocol
from repro.constructors.tm_construction import (
    run_pattern_construction,
    run_shape_construction,
)
from repro.core.scheduler import make_scheduler
from repro.core.simulator import Simulation
from repro.core.world import World
from repro.faults.repair import detach_part, repair_shape
from repro.geometry.random_shapes import random_connected_shape
from repro.machines.shape_programs import (
    ShapeProgram,
    checkerboard_pattern_program,
    comb_program,
    cross_program,
    diamond_program,
    frame_program,
    full_square_program,
    gradient_pattern_program,
    line_program,
    ring_pattern_program,
    serpentine_program,
    sierpinski_pattern_program,
    star_program,
    stripes_program,
)
from repro.population.counting import run_counting
from repro.protocols.line import simple_line_protocol, spanning_line_protocol
from repro.protocols.replication import (
    line_replication_protocol,
    no_leader_line_replication_protocol,
    self_replicating_lines_protocol,
)
from repro.protocols.square import square_protocol
from repro.protocols.square2 import square2_protocol
from repro.replication.columns import replicate_by_columns
from repro.replication.shifting import replicate_by_shifting
from repro.viz.ascii_art import render_labels, render_layers, render_shape, render_world

#: Scheduler kinds selectable from the command line (see ``make_scheduler``).
SCHEDULERS = ("hot", "enumerate", "rejection", "round-robin")

#: The shape catalogue exposed by ``construct``.
SHAPES: Dict[str, Callable[[], ShapeProgram]] = {
    "line": line_program,
    "full-square": full_square_program,
    "cross": cross_program,
    "star": star_program,
    "frame": frame_program,
    "comb": comb_program,
    "serpentine": serpentine_program,
    "diamond": diamond_program,
    "stripes": stripes_program,
}

#: The pattern catalogue exposed by ``pattern``.
PATTERNS: Dict[str, Callable[[], object]] = {
    "rings": ring_pattern_program,
    "checkerboard": checkerboard_pattern_program,
    "sierpinski": sierpinski_pattern_program,
    "gradient": gradient_pattern_program,
}

#: The rule-table protocols exposed by ``inspect``.
PROTOCOLS: Dict[str, Callable[[], object]] = {
    "line": spanning_line_protocol,
    "simple-line": simple_line_protocol,
    "square": square_protocol,
    "square2": square2_protocol,
    "protocol4": line_replication_protocol,
    "protocol5": no_leader_line_replication_protocol,
    "self-replicating": self_replicating_lines_protocol,
}


def _cmd_demo(args: argparse.Namespace) -> int:
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(args.n, protocol, leaders=1)
    result = Simulation(
        world, protocol, scheduler=make_scheduler(args.scheduler), seed=args.seed
    ).run_to_stabilization()
    print(f"spanning line on {args.n} nodes: {result.events} effective interactions")
    print(render_world(world, state_char=lambda s: "#"))
    side = max(3, int(args.n**0.5))
    n_sq = side * side
    protocol = square_protocol()
    world = World.of_free_nodes(n_sq, protocol, leaders=1)
    result = Simulation(
        world, protocol, scheduler=make_scheduler(args.scheduler), seed=args.seed
    ).run_to_stabilization()
    print(f"\n{side}x{side} square on {n_sq} nodes: {result.events} effective interactions")
    print(render_world(world, state_char=lambda s: "#"))
    return 0


def _cmd_count(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    successes = 0
    estimates = []
    for _ in range(args.trials):
        result = run_counting(args.n, b=args.head_start, seed=rng.randrange(2**31))
        successes += int(result.success)
        estimates.append(result.estimate)
    mean = sum(estimates) / len(estimates)
    print(
        f"counting n = {args.n} (b = {args.head_start}, {args.trials} trials): "
        f"mean estimate {mean:.1f} ({mean / args.n:.2%} of n), "
        f"success rate {successes}/{args.trials}"
    )
    return 0


def _cmd_construct(args: argparse.Namespace) -> int:
    program = SHAPES[args.shape]()
    result = run_shape_construction(program, args.d)
    print(
        f"constructed {args.shape!r} on a {args.d}x{args.d} square: "
        f"{result.useful_space} on-cells, waste {result.waste}, "
        f"{result.interactions} interactions"
    )
    print(render_shape(result.shape))
    return 0


def _cmd_pattern(args: argparse.Namespace) -> int:
    program = PATTERNS[args.pattern]()
    colors, interactions = run_pattern_construction(program, args.d)
    print(
        f"pattern {args.pattern!r} on a {args.d}x{args.d} square "
        f"({len(set(colors.values()))} colors, {interactions} interactions)"
    )
    print(render_labels(colors))
    return 0


def _cmd_cube(args: argparse.Namespace) -> int:
    result = run_cube_known_n(args.m**3, seed=args.seed)
    print(
        f"{args.m}x{args.m}x{args.m} cube on {args.m**3} nodes: "
        f"{result.scheduler_events} scheduler events, "
        f"{result.leader_interactions} leader interactions"
    )
    print(render_layers(result.cube_shape()))
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    shape = random_connected_shape(args.size, seed=args.seed)
    replicate = (
        replicate_by_shifting if args.approach == "shifting" else replicate_by_columns
    )
    result = replicate(shape, seed=args.seed)
    print(
        f"replicated a random {args.size}-cell shape by {args.approach}: "
        f"{result.interactions} interactions, waste {result.waste}, "
        f"identical: {result.identical}"
    )
    print("original:")
    print(render_shape(result.original))
    print("replica:")
    print(render_shape(result.replica))
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    from repro.machines.shape_programs import expected_shape

    blueprint = expected_shape(star_program(), args.d)
    rng = random.Random(args.seed)
    damaged, lost = detach_part(blueprint, args.fraction, rng=rng)
    result = repair_shape(damaged, blueprint, rng=rng)
    print(
        f"star on a {args.d}x{args.d} square: detached {len(lost)} cells, "
        f"repaired in {result.interactions} interactions "
        f"({result.nodes_attached} re-attached, {result.bonds_restored} bonds)"
    )
    print("damaged:")
    print(render_shape(damaged))
    print("repaired:")
    print(render_shape(result.repaired))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    protocol = PROTOCOLS[args.protocol]()
    print(format_protocol(protocol))
    seeds = ("i", "e") if "protocol" in args.protocol or args.protocol == "self-replicating" else ()
    report = lint_protocol(protocol, extra_initial=seeds)
    print(
        f"\nlint: {'clean' if report.clean else 'FINDINGS'}; "
        f"{report.bond_forming_rules} bond-forming, "
        f"{report.bond_breaking_rules} bond-breaking rules"
    )
    for note in report.notes:
        print(f"  note: {note}")
    for state in report.unreachable_states:
        print(f"  unreachable state: {state!r}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Terminating distributed construction of shapes and patterns "
            "(Michail, 2015) — reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", help="quickstart: spanning line + square")
    p.add_argument("-n", type=int, default=10, help="population size")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--scheduler",
        choices=SCHEDULERS,
        default="hot",
        help=(
            "uniform-scheduler implementation (all produce identical seeded "
            "trajectories) or the deterministic fair round-robin adversary"
        ),
    )
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser("count", help="Theorem 1 terminating counting")
    p.add_argument("n", type=int, help="population size")
    p.add_argument("-b", "--head-start", type=int, default=4)
    p.add_argument("--trials", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_count)

    p = sub.add_parser("construct", help="Theorem 4 universal construction")
    p.add_argument("shape", choices=sorted(SHAPES))
    p.add_argument("-d", type=int, default=9, help="square dimension")
    p.set_defaults(func=_cmd_construct)

    p = sub.add_parser("pattern", help="Remark 4 pattern construction")
    p.add_argument("pattern", choices=sorted(PATTERNS))
    p.add_argument("-d", type=int, default=8, help="square dimension")
    p.set_defaults(func=_cmd_pattern)

    p = sub.add_parser("cube", help="3D Cube-Knowing-n")
    p.add_argument("-m", type=int, default=3, help="cube side (>= 3)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_cube)

    p = sub.add_parser("replicate", help="§7 shape self-replication")
    p.add_argument("--size", type=int, default=12, help="cells in the shape")
    p.add_argument(
        "--approach", choices=("shifting", "columns"), default="shifting"
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_replicate)

    p = sub.add_parser("repair", help="§8 damage-and-repair scenario")
    p.add_argument("-d", type=int, default=9, help="square dimension")
    p.add_argument("--fraction", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_repair)

    p = sub.add_parser(
        "inspect", help="print a protocol's rule table (paper notation)"
    )
    p.add_argument("protocol", choices=sorted(PROTOCOLS))
    p.set_defaults(func=_cmd_inspect)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
