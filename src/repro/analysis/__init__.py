"""Analysis layer: stochastic models (Theorem 1) and static analysis.

Two families live here. The stochastic side backs Theorem 1 — ruin
problems, Ehrenfest walks, exact Markov chains, expected-time models.
The static side checks protocol and determinism invariants before any
event runs: :mod:`repro.analysis.protocol` (abstract pair-reachability
over the compiled IR: dead rules, unreachable states, shadowing, hot-set
soundness, a stabilization witness) and :mod:`repro.analysis.lint` (the
AST determinism linter), reported through the stable schema of
:mod:`repro.analysis.report` and the ``repro analyze`` / ``repro lint``
CLI verbs.

The static modules are intentionally *not* imported here: the linter and
analyzer stay importable without pulling the stochastic stack (and
``repro.experiments.io`` dispatches to them lazily).
"""

from repro.analysis.walks import (
    CountingWalk,
    counting_failure_bound,
    ehrenfest_mean_recurrence,
    ehrenfest_return_probability,
    gambler_ruin_win_probability,
    simulate_ehrenfest_return,
)
from repro.analysis.stats import (
    binomial_confidence,
    fit_power_law,
    mean,
    ratio_to_model,
)
from repro.analysis.timing import (
    counting_time_model,
    expected_epidemic_time,
    expected_leader_meet_all,
    harmonic,
    simulate_epidemic,
    simulate_leader_meet_all,
    timing_table,
)
from repro.analysis.markov import (
    AbsorbingChain,
    counting_exact_failure,
    counting_estimate_quantile,
    counting_expected_effective,
    counting_expected_estimate,
    counting_outcome_distribution,
    ehrenfest_absorption_chain,
    ehrenfest_mean_recurrence_exact,
    ehrenfest_spectral_gap,
    ehrenfest_stationary,
    ehrenfest_transition_matrix,
    failure_table_exact,
    ruin_chain,
    ruin_win_probability_exact,
)

__all__ = [
    "CountingWalk",
    "gambler_ruin_win_probability",
    "ehrenfest_mean_recurrence",
    "ehrenfest_return_probability",
    "simulate_ehrenfest_return",
    "counting_failure_bound",
    "mean",
    "binomial_confidence",
    "fit_power_law",
    "ratio_to_model",
    # exact Markov-chain analysis
    "AbsorbingChain",
    "counting_outcome_distribution",
    "counting_exact_failure",
    "counting_expected_estimate",
    "counting_expected_effective",
    "counting_estimate_quantile",
    "ruin_chain",
    "ruin_win_probability_exact",
    "ehrenfest_transition_matrix",
    "ehrenfest_stationary",
    "ehrenfest_mean_recurrence_exact",
    "ehrenfest_spectral_gap",
    "ehrenfest_absorption_chain",
    "failure_table_exact",
    # expected-time models
    "harmonic",
    "expected_leader_meet_all",
    "expected_epidemic_time",
    "counting_time_model",
    "simulate_leader_meet_all",
    "simulate_epidemic",
    "timing_table",
]
