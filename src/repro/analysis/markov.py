"""Exact Markov-chain analysis of the §5 counting process.

:mod:`repro.analysis.walks` estimates the quantities of Theorem 1's proof by
Monte Carlo; this module computes them *exactly*:

* :func:`counting_outcome_distribution` — the exact law of the leader's
  final count ``r0`` via dynamic programming over the ``(i, j)`` urn chain
  (``i = #q0``, ``j = #q1``). The chain is a DAG (``i`` never increases and,
  at fixed ``i``, ``j`` only decreases), so forward DP is exact in
  O(n²) time.
* :func:`counting_exact_failure` — the exact probability of Theorem 1's
  failure event ``r0 < n/2`` at halting; directly comparable with the paper
  bound ``1/n^(b-2)`` and the :class:`~repro.analysis.walks.CountingWalk`
  Monte Carlo estimate.
* :func:`counting_expected_estimate` / :func:`counting_expected_effective` —
  exact expectations behind Remark 2 ("close to (9/10)n") and the
  effective-interaction count.
* :class:`AbsorbingChain` — a generic absorbing-chain solver (absorption
  probabilities and expected hitting times by linear solves) used for the
  gambler's-ruin link of the proof.
* Ehrenfest-chain tools: transition matrix, binomial stationary law, Kac
  recurrence via ``1/pi(k)``, and the spectral gap.

The key simplification used throughout: the leader's counters satisfy
``r0 = (n - 1) - i`` (every decrease of ``i`` increments ``r0``, and ``r0``
starts at ``b`` with ``i = n - 1 - b``), so Theorem 1's success event
``2 r0 >= n`` is the event ``i <= (n - 2) / 2`` — a function of ``i`` alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ReproError


def _check_counting_args(n: int, b: int) -> int:
    if n < 2:
        raise ReproError(f"population size must be >= 2: {n}")
    if b < 1:
        raise ReproError(f"head start b must be >= 1: {b}")
    return min(b, n - 1)


def counting_outcome_distribution(n: int, b: int) -> Dict[int, float]:
    """Exact law of the final count ``r0`` of Counting-Upper-Bound.

    The chain state is ``(i, j)`` with ``i = #q0`` and ``j = #q1``; from
    ``(i, j)`` the next *effective* interaction moves to ``(i-1, j+1)`` with
    probability ``i/(i+j)`` and to ``(i, j-1)`` with ``j/(i+j)``. The
    protocol halts exactly when ``j = 0`` (``r0 = r1``), at which point
    ``r0 = (n-1) - i``. Returns ``{r0: probability}`` with probabilities
    summing to 1.
    """
    b = _check_counting_args(n, b)
    start_i = n - 1 - b
    # reach[i][j] = P[the chain visits state (i, j)]. Process states in DAG
    # order: i descending, then j descending (both moves go strictly later
    # in this order).
    reach: Dict[Tuple[int, int], float] = {(start_i, b): 1.0}
    absorbed: Dict[int, float] = {}
    for i in range(start_i, -1, -1):
        max_j = b + (start_i - i)
        for j in range(max_j, 0, -1):
            p = reach.pop((i, j), 0.0)
            if p == 0.0:
                continue
            total = i + j
            if i > 0:
                forward = p * (i / total)
                reach[(i - 1, j + 1)] = reach.get((i - 1, j + 1), 0.0) + forward
            backward = p * (j / total)
            if j == 1:
                r0 = (n - 1) - i
                absorbed[r0] = absorbed.get(r0, 0.0) + backward
            else:
                reach[(i, j - 1)] = reach.get((i, j - 1), 0.0) + backward
    total_mass = sum(absorbed.values())
    if not math.isclose(total_mass, 1.0, rel_tol=0, abs_tol=1e-9):
        raise ReproError(f"outcome distribution mass {total_mass} != 1")
    return absorbed


def counting_exact_failure(n: int, b: int) -> float:
    """Exact P[failure] of Theorem 1's event: halt with ``2 r0 < n``."""
    dist = counting_outcome_distribution(n, b)
    return sum(p for r0, p in dist.items() if 2 * r0 < n)


def counting_expected_estimate(n: int, b: int) -> float:
    """Exact ``E[r0]`` at halting (Remark 2's estimate quality)."""
    dist = counting_outcome_distribution(n, b)
    return sum(r0 * p for r0, p in dist.items())


def counting_expected_effective(n: int, b: int) -> float:
    """Exact expected number of effective interactions until halting.

    Every effective interaction increments ``r0`` or ``r1`` and the process
    halts when they are equal, so the count is ``2 r0 - b`` (``r0`` began at
    ``b`` without interactions).
    """
    return 2.0 * counting_expected_estimate(n, b) - min(b, n - 1)


def counting_estimate_quantile(n: int, b: int, q: float) -> int:
    """Smallest ``r0`` with ``P[final count <= r0] >= q`` (exact)."""
    if not 0.0 < q <= 1.0:
        raise ReproError(f"quantile level must be in (0, 1]: {q}")
    dist = counting_outcome_distribution(n, b)
    acc = 0.0
    for r0 in sorted(dist):
        acc += dist[r0]
        if acc >= q - 1e-12:
            return r0
    return max(dist)  # pragma: no cover - guarded by mass check


# ----------------------------------------------------------------------
# Generic absorbing chains (the gambler's-ruin step of the proof)
# ----------------------------------------------------------------------


@dataclass
class AbsorbingChain:
    """An absorbing Markov chain in canonical form.

    ``Q`` is the transient-to-transient block and ``R`` the
    transient-to-absorbing block of the transition matrix; rows of
    ``[Q | R]`` must sum to 1. Exposes the standard fundamental-matrix
    quantities via linear solves (no explicit inverse).
    """

    Q: np.ndarray
    R: np.ndarray

    def __post_init__(self) -> None:
        Q = np.asarray(self.Q, dtype=float)
        R = np.asarray(self.R, dtype=float)
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise ReproError(f"Q must be square, got shape {Q.shape}")
        if R.ndim != 2 or R.shape[0] != Q.shape[0]:
            raise ReproError("R must have one row per transient state")
        rows = Q.sum(axis=1) + R.sum(axis=1)
        if not np.allclose(rows, 1.0, atol=1e-9):
            raise ReproError("rows of [Q | R] must sum to 1")
        if (Q < -1e-12).any() or (R < -1e-12).any():
            raise ReproError("transition probabilities must be nonnegative")
        self.Q = Q
        self.R = R

    @property
    def num_transient(self) -> int:
        return self.Q.shape[0]

    @property
    def num_absorbing(self) -> int:
        return self.R.shape[1]

    def absorption_probabilities(self) -> np.ndarray:
        """``B[s, a] = P[absorbed in a | start at transient s]``.

        Solves ``(I - Q) B = R`` (the classical ``B = N R`` with fundamental
        matrix ``N = (I - Q)^{-1}``).
        """
        eye = np.eye(self.num_transient)
        return np.linalg.solve(eye - self.Q, self.R)

    def expected_steps(self) -> np.ndarray:
        """``t[s] = E[steps to absorption | start at transient s]``."""
        eye = np.eye(self.num_transient)
        ones = np.ones(self.num_transient)
        return np.linalg.solve(eye - self.Q, ones)

    def expected_visits(self, start: int) -> np.ndarray:
        """``N[start, :]``: expected visits to each transient state."""
        if not 0 <= start < self.num_transient:
            raise ReproError(f"start {start} out of range")
        eye = np.eye(self.num_transient)
        unit = np.zeros(self.num_transient)
        unit[start] = 1.0
        # N^T e_start solves (I - Q)^T x = e_start.
        return np.linalg.solve((eye - self.Q).T, unit)


def ruin_chain(b: int, p: float) -> AbsorbingChain:
    """The gambler's-ruin chain of Theorem 1's final reduction.

    Transient states are positions ``1 .. b-1`` on a line; absorbing states
    are ``0`` (index 0) and ``b`` (index 1). Forward (towards ``b``) with
    probability ``p``, backward with ``1 - p``.
    """
    if b < 2:
        raise ReproError(f"ruin chain needs b >= 2: {b}")
    if not 0.0 < p < 1.0:
        raise ReproError(f"step probability must be in (0, 1): {p}")
    m = b - 1
    Q = np.zeros((m, m))
    R = np.zeros((m, 2))
    for idx in range(m):
        pos = idx + 1
        if pos + 1 == b:
            R[idx, 1] = p
        else:
            Q[idx, idx + 1] = p
        if pos - 1 == 0:
            R[idx, 0] = 1.0 - p
        else:
            Q[idx, idx - 1] = 1.0 - p
    return AbsorbingChain(Q, R)


def ruin_win_probability_exact(b: int, p: float, start: int = 1) -> float:
    """P[reach ``b`` before 0 | start] by linear solve (cross-checks the
    closed form :func:`~repro.analysis.walks.gambler_ruin_win_probability`)."""
    if not 1 <= start <= b - 1:
        raise ReproError(f"start must be in [1, b-1]: {start}")
    chain = ruin_chain(b, p)
    return float(chain.absorption_probabilities()[start - 1, 1])


# ----------------------------------------------------------------------
# Ehrenfest chain (the diffusion model of the proof's middle step)
# ----------------------------------------------------------------------


def ehrenfest_transition_matrix(balls: int) -> np.ndarray:
    """Transition matrix of the Ehrenfest urn with ``balls`` balls.

    State ``m`` is the number of balls in urn I; a uniformly random ball
    switches urns each step, so ``m -> m-1`` with probability ``m/balls``
    and ``m -> m+1`` with ``(balls-m)/balls``.
    """
    if balls < 1:
        raise ReproError(f"need at least one ball: {balls}")
    size = balls + 1
    P = np.zeros((size, size))
    for m in range(size):
        if m > 0:
            P[m, m - 1] = m / balls
        if m < balls:
            P[m, m + 1] = (balls - m) / balls
    return P


def ehrenfest_stationary(balls: int) -> np.ndarray:
    """The binomial(balls, 1/2) stationary law of the Ehrenfest chain."""
    ks = np.arange(balls + 1)
    log_pmf = (
        np.vectorize(math.lgamma)(balls + 1.0)
        - np.vectorize(math.lgamma)(ks + 1.0)
        - np.vectorize(math.lgamma)(balls - ks + 1.0)
        - balls * math.log(2.0)
    )
    return np.exp(log_pmf)


def ehrenfest_mean_recurrence_exact(balls: int, state: int) -> float:
    """Mean recurrence time of ``state`` as ``1 / pi(state)``.

    For a positive-recurrent chain the mean return time to a state is the
    reciprocal of its stationary probability; equals Kac's factorial formula
    (:func:`~repro.analysis.walks.ehrenfest_mean_recurrence` with
    ``R = balls/2``, ``k = state - R``).
    """
    if not 0 <= state <= balls:
        raise ReproError(f"state {state} outside [0, {balls}]")
    pi = ehrenfest_stationary(balls)
    return float(1.0 / pi[state])


def ehrenfest_spectral_gap(balls: int) -> float:
    """The spectral gap ``2/balls`` of the Ehrenfest chain.

    The eigenvalues of the transition matrix are ``1 - 2k/balls`` for
    ``k = 0..balls`` (Kac); the gap between the top two is ``2/balls``.
    Computed numerically as a cross-check of the closed form.
    """
    P = ehrenfest_transition_matrix(balls)
    # Symmetrize with the stationary law for a stable eigensolve:
    # D^(1/2) P D^(-1/2) is symmetric for reversible chains.
    pi = ehrenfest_stationary(balls)
    d = np.sqrt(pi)
    # S = D^{1/2} P D^{-1/2} with D = diag(pi) is symmetric for reversible
    # chains and shares P's spectrum.
    S = (P * d[:, np.newaxis]) / d[np.newaxis, :]
    eigenvalues = np.sort(np.linalg.eigvalsh(S))[::-1]
    return float(eigenvalues[0] - eigenvalues[1])


def ehrenfest_absorption_chain(balls: int, lower: int, upper: int) -> AbsorbingChain:
    """The Ehrenfest chain with absorbing barriers at ``lower`` and ``upper``.

    The proof of Theorem 1 restricts the walk to ``[0, b]`` with absorbing
    barriers at both ends; this builds that object for arbitrary barriers so
    the restriction can be checked numerically.
    """
    if not 0 <= lower < upper <= balls:
        raise ReproError(f"need 0 <= lower < upper <= balls: {lower}, {upper}")
    transient = list(range(lower + 1, upper))
    if not transient:
        raise ReproError("no transient states between the barriers")
    index = {m: i for i, m in enumerate(transient)}
    Q = np.zeros((len(transient), len(transient)))
    R = np.zeros((len(transient), 2))
    for m in transient:
        i = index[m]
        down = m / balls
        up = 1.0 - down
        if m - 1 == lower:
            R[i, 0] = down
        else:
            Q[i, index[m - 1]] = down
        if m + 1 == upper:
            R[i, 1] = up
        else:
            Q[i, index[m + 1]] = up
    return AbsorbingChain(Q, R)


def failure_table_exact(
    ns: Sequence[int], bs: Sequence[int]
) -> List[Tuple[int, int, float, float]]:
    """Exact analogue of :func:`~repro.analysis.walks.walk_failure_table`.

    Returns ``(n, b, exact failure, paper bound)`` rows; the exact column
    replaces the Monte Carlo estimate, so the bench comparing against
    ``1/n^(b-2)`` needs no trial count.
    """
    from repro.analysis.walks import counting_failure_bound

    rows = []
    for n in ns:
        for b in bs:
            rows.append(
                (n, b, counting_exact_failure(n, b), counting_failure_bound(n, b))
            )
    return rows
