"""Random-walk models from the proof of Theorem 1 (§5.1, Figure 4).

The counting process is a random walk on positions ``j = r0 - r1``: a
particle starts at ``b``, moves forward on an ``(l, q0)`` interaction with
probability ``p_ij = i / (i + j)`` and backward on an ``(l, q1)`` with
``q_ij = j / (i + j)``; absorption at 0 is termination (failure when it
happens before ``r0 >= n/2``). The proof chain reduces this to the Ehrenfest
diffusion model and finally to the classical gambler's ruin; this module
implements every link of that chain so the bound ``1/n^(b-2)`` can be
checked numerically against simulation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ReproError


def gambler_ruin_win_probability(x: float, b: int) -> float:
    """P[reach b before 0 | start at 1] for ratio ``x = q'/p'``.

    The classical ruin formula used at the end of Theorem 1's proof:
    ``(x - 1) / (x^b - 1)`` (Feller); for ``x = (n' - b)/b`` this is
    ``~ 1/n^(b-1)``.
    """
    if b < 1:
        raise ReproError(f"barrier b must be >= 1: {b}")
    if x == 1.0:
        return 1.0 / b
    return (x - 1.0) / (x**b - 1.0)


def counting_failure_bound(n: int, b: int) -> float:
    """The paper's failure bound for Counting-Upper-Bound: ``1/n^(b-2)``.

    Derived via the union bound over at most ``n`` visits to ``b - 1``,
    each failing with probability at most ``~1/n^(b-1)``.
    """
    if b <= 2:
        return 1.0
    return 1.0 / float(n) ** (b - 2)


def ehrenfest_mean_recurrence(R: int, k: int) -> float:
    """Kac's mean recurrence time of the Ehrenfest chain.

    For a chain on positions ``-R..R`` (2R balls), the mean recurrence time
    of position ``k`` is ``((R + k)! (R - k)! / (2R)!) * 2^(2R)`` ([Kac47],
    p. 386). At ``k = -R`` (the empty-urn state of the paper's reduction)
    this evaluates to ``2^(2R)``.
    """
    if not (-R <= k <= R):
        raise ReproError(f"position k={k} outside [-{R}, {R}]")
    log_value = (
        math.lgamma(R + k + 1)
        + math.lgamma(R - k + 1)
        - math.lgamma(2 * R + 1)
        + 2 * R * math.log(2.0)
    )
    return math.exp(log_value)


def ehrenfest_return_probability(
    balls: int, start: int, horizon: int
) -> float:
    """P[urn I empties within ``horizon`` steps | starts with ``start`` balls].

    Exact dynamic programming over the Ehrenfest urn with ``balls`` total
    balls: at each step a uniformly random ball switches urns, so urn I
    (holding ``m`` balls) loses one with probability ``m/balls``. Absorbing
    at 0. This is the quantity Theorem 1's proof bounds: with ``start = b``
    and ``horizon = n`` it must be tiny.
    """
    if not (0 <= start <= balls):
        raise ReproError(f"start {start} outside [0, {balls}]")
    probs = [0.0] * (balls + 1)
    probs[start] = 1.0
    absorbed = probs[0]
    probs[0] = 0.0
    for _ in range(horizon):
        nxt = [0.0] * (balls + 1)
        for m in range(1, balls + 1):
            p = probs[m]
            if p == 0.0:
                continue
            down = m / balls
            nxt[m - 1] += p * down
            if m + 1 <= balls:
                nxt[m + 1] += p * (1.0 - down)
        absorbed += nxt[0]
        nxt[0] = 0.0
        probs = nxt
    return absorbed


def simulate_ehrenfest_return(
    balls: int, start: int, horizon: int, trials: int, seed: Optional[int] = None
) -> float:
    """Monte-Carlo estimate of :func:`ehrenfest_return_probability`."""
    rng = random.Random(seed)
    hits = 0
    for _ in range(trials):
        m = start
        for _ in range(horizon):
            if rng.random() < m / balls:
                m -= 1
                if m == 0:
                    hits += 1
                    break
            else:
                m = min(m + 1, balls)
    return hits / trials


@dataclass
class WalkResult:
    """Outcome of one counting-walk trajectory."""

    absorbed_at_zero: bool
    reached_half: bool
    steps: int
    final_j: int


class CountingWalk:
    """The exact position-dependent walk of Figure 4.

    State ``(i, j)`` with ``i = #q0`` and ``j = #q1 = r0 - r1``; forward
    with probability ``i/(i+j)``, backward with ``j/(i+j)``. Mirrors the
    effective-interaction subsequence of Counting-Upper-Bound exactly (the
    leader's q2 encounters are ineffective for the walk), so its failure
    probability equals the protocol's.
    """

    def __init__(self, n: int, b: int) -> None:
        if b < 1 or b > n - 1:
            raise ReproError(f"need 1 <= b <= n-1, got b={b}, n={n}")
        self.n = n
        self.b = b

    def run(self, rng: random.Random) -> WalkResult:
        n = self.n
        i = n - 1 - self.b
        j = self.b
        r0 = self.b
        r1 = 0
        steps = 0
        while True:
            if j == 0:
                return WalkResult(True, 2 * r0 >= n, steps, j)
            if 2 * r0 >= n:
                return WalkResult(False, True, steps, j)
            if i == 0 and j == 0:  # pragma: no cover - unreachable guard
                return WalkResult(False, 2 * r0 >= n, steps, j)
            total = i + j
            if rng.random() < i / total:
                i -= 1
                j += 1
                r0 += 1
            else:
                j -= 1
                r1 += 1
            steps += 1

    def failure_probability(
        self, trials: int, seed: Optional[int] = None
    ) -> Tuple[float, float]:
        """Monte-Carlo ``(P[failure], mean steps)`` over ``trials`` runs.

        Failure = absorbed at 0 before ``r0 >= n/2`` (Theorem 1's event).
        """
        rng = random.Random(seed)
        failures = 0
        total_steps = 0
        for _ in range(trials):
            res = self.run(rng)
            if res.absorbed_at_zero and not res.reached_half:
                failures += 1
            total_steps += res.steps
        return failures / trials, total_steps / trials


def walk_failure_table(
    ns: List[int], bs: List[int], trials: int = 2000, seed: int = 0
) -> List[Tuple[int, int, float, float]]:
    """Empirical failure probabilities vs the ``1/n^(b-2)`` bound.

    Returns ``(n, b, empirical failure, bound)`` rows for the Figure 4
    experiment of ``benchmarks/bench_random_walk.py``.
    """
    rows = []
    rng = random.Random(seed)
    for n in ns:
        for b in bs:
            walk = CountingWalk(n, b)
            fail, _ = walk.failure_probability(trials, seed=rng.randrange(2**31))
            rows.append((n, b, fail, counting_failure_bound(n, b)))
    return rows
