"""Small statistics helpers shared by tests and benchmarks."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import ReproError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ReproError("mean of empty sequence")
    return sum(values) / len(values)


def binomial_confidence(successes: int, trials: int, z: float = 2.576) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion (default 99%).

    Used to assert "w.h.p." claims without flaky tests: we check that the
    guaranteed probability lies inside (or above) the interval.
    """
    if trials <= 0:
        raise ReproError("binomial interval needs at least one trial")
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return max(0.0, center - margin), min(1.0, center + margin)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit of ``y = c * x^alpha`` in log-log space.

    Returns ``(alpha, c)``. Used by timing benchmarks to check growth
    exponents (e.g. Remark 1's ``O(n^2 log n)`` interactions).
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ReproError("power-law fit needs >= 2 matched points")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    sxx = sum((v - mx) ** 2 for v in lx)
    sxy = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    if sxx == 0:
        raise ReproError("degenerate x values in power-law fit")
    alpha = sxy / sxx
    c = math.exp(my - alpha * mx)
    return alpha, c


def ratio_to_model(
    xs: Sequence[float], ys: Sequence[float], model
) -> List[float]:
    """``y / model(x)`` per point — flat ratios mean the model captures the
    growth (the standard way we compare measured times to paper bounds)."""
    if len(xs) != len(ys):
        raise ReproError("mismatched sequences")
    return [y / model(x) for x, y in zip(xs, ys)]
