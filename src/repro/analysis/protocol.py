"""Static protocol analysis over the compiled IR (`repro.core.program`).

The simulator checks the paper's protocol invariants *dynamically*: a rule
that can never fire simply never shows up in a trajectory, and a protocol
that fails to stabilize burns an event budget. This module checks them
*statically*, on any exact :class:`~repro.core.program.CompiledProgram`,
before a single event runs:

* **Abstract pair-reachability closure.** Over-approximate geometry: any
  two reachable states may meet on any ports, and any two states that
  could ever share a bond may interact over it. The closure tracks the
  reachable state set ``R`` and the reachable *bonded pair* set ``B`` —
  bond-0 entries fire when both LHS states are in ``R``, bond-1 entries
  when the unordered state pair is in ``B``; firing adds RHS states to
  ``R``, bond-forming results add the RHS pair to ``B``, and bonded pairs
  are closed under single-endpoint rewriting (a bonded node may change
  state through interactions with third parties). Everything a concrete
  execution can reach is inside the closure, so "unreachable" and "dead"
  below are proofs, never heuristics.
* **Unreachable states** — interned states outside ``R``.
* **Dead rules** — table entries whose LHS can never abstractly fire: a
  strictly stronger check than the build-time ineffective-rule drop
  (which only removes identity updates) and than the boundary-table lint
  of :mod:`repro.core.inspect` (which ignores bond structure).
* **Shadowing diagnostics** — for ``match="ordered"`` tables, the
  orientation overlaps resolved at compile time
  (:class:`~repro.core.program.ShadowRecord`), each annotated with which
  orientation won and whether the suppressed one could ever have mattered
  (i.e. whether its LHS is abstractly reachable).
* **Hot-set soundness** — a fireable entry with *neither* endpoint in the
  declared hot set is an error: the hot scheduler enumerates candidates
  around hot states only, so such a rule could be missed entirely.
* **Stabilization witness** — the paper's core argument (§4): bonds only
  form and the number of possible bonds is bounded, so executions are
  finite. The witness generalizes it slightly: ``stabilizes: proven``
  when no reachable rule breaks a bond *and* the state-rewrite digraph of
  the reachable bond-preserving rules is acyclic (lexicographic measure:
  bonds formed, then topological height). Anything else is
  ``stabilizes: unknown`` — never "disproven": the abstraction cannot
  distinguish a live cycle from a fair one that terminates.

Handler-lowered programs (``exact=False``, :class:`MemoProgram`) are not
closed-world — absence from the table does not mean impossibility — so
:func:`analyze_protocol` returns a report carrying a clean diagnostic
instead of pretending to analyze them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.program import CompiledProgram, pack_lhs, unpack_lhs
from repro.geometry.ports import PORT_INDEX

State = Hashable

#: Port objects by packed index (PORT_INDEX iterates in index order).
_PORTS = tuple(PORT_INDEX)

#: Verdicts of the stabilization witness.
PROVEN = "proven"
UNKNOWN = "unknown"


def _pair(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class EntryView:
    """One packed-table orientation, decoded to boundary form."""

    state1: State
    port1: str
    state2: State
    port2: str
    bond: int
    new_state1: State
    new_state2: State
    new_bond: int

    def format(self) -> str:
        return (
            f"({self.state1!r}, {self.port1}), ({self.state2!r}, "
            f"{self.port2}), {self.bond} -> ({self.new_state1!r}, "
            f"{self.new_state2!r}, {self.new_bond})"
        )


@dataclass
class ProtocolReport:
    """Findings of :func:`analyze_program` for one protocol.

    ``errors`` (dead rules, unreachable states, hot violations) are
    correctness findings; ``shadows`` are informational diagnostics. An
    inexact program produces a report with ``exact=False`` and a
    ``diagnostic`` explaining why nothing else is filled in.
    """

    name: str
    exact: bool
    diagnostic: Optional[str] = None
    states: int = 0
    rules: int = 0
    entries: int = 0
    initial_states: List[str] = field(default_factory=list)
    reachable_states: List[str] = field(default_factory=list)
    unreachable_states: List[str] = field(default_factory=list)
    dead_rules: List[str] = field(default_factory=list)
    shadows: List[Dict[str, Any]] = field(default_factory=list)
    hot_declared: bool = False
    hot_violations: List[str] = field(default_factory=list)
    stabilizes: str = UNKNOWN
    stabilization_reason: str = ""
    notes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No correctness findings (shadows and notes do not count)."""
        return not (
            self.dead_rules or self.unreachable_states or self.hot_violations
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict in the ``repro.analysis.report/v1`` row shape."""
        return {
            "name": self.name,
            "exact": self.exact,
            "diagnostic": self.diagnostic,
            "states": self.states,
            "rules": self.rules,
            "entries": self.entries,
            "initial_states": list(self.initial_states),
            "reachable_states": list(self.reachable_states),
            "unreachable_states": list(self.unreachable_states),
            "dead_rules": list(self.dead_rules),
            "shadows": [dict(s) for s in self.shadows],
            "hot_declared": self.hot_declared,
            "hot_violations": list(self.hot_violations),
            "stabilizes": self.stabilizes,
            "stabilization_reason": self.stabilization_reason,
            "clean": self.clean,
            "notes": list(self.notes),
        }

    def summary(self) -> str:
        """The one-line digest used by ``repro describe``/``analyze``."""
        if not self.exact:
            return "handler-lowered (not closed-world): static analysis unavailable"
        return (
            f"{len(self.reachable_states)}/{self.states} states reachable, "
            f"{len(self.dead_rules)} dead rules, "
            f"stabilizes: {self.stabilizes}"
        )


class _Closure:
    """The abstract pair-reachability fixpoint over one compiled table."""

    def __init__(
        self,
        program: CompiledProgram,
        initial_ids: Iterable[int],
        initial_bonds: Iterable[Tuple[int, int]],
    ) -> None:
        self.program = program
        self.reached: Set[int] = set(initial_ids)
        self.bonded: Set[Tuple[int, int]] = {_pair(a, b) for a, b in initial_bonds}
        #: Single-endpoint rewrite edges observed on fired entries.
        self.rewrites: Set[Tuple[int, int]] = set()
        #: Packed keys of entries that abstractly fired.
        self.fired: Set[int] = set()
        self.notes: List[str] = []
        self._entries = [
            (key, unpack_lhs(key), rhs) for key, rhs in program.table.items()
        ]
        self._run()

    def fires(self, s1: int, s2: int, bond: int) -> bool:
        if bond == 0:
            return s1 in self.reached and s2 in self.reached
        return _pair(s1, s2) in self.bonded

    def _rhs_ids(self, rhs) -> Optional[Tuple[int, int]]:
        n1 = self.program.space.get_id(rhs[0])
        n2 = self.program.space.get_id(rhs[1])
        if n1 is None or n2 is None:
            # Cannot happen for tables built by compile_rules (every RHS
            # state is interned at build); recorded rather than crashed so
            # hand-built programs still get a sound (weaker) answer.
            self.notes.append(
                f"RHS states {rhs[0]!r}/{rhs[1]!r} missing from the state "
                "space; treated as reachable-unknown"
            )
            return None
        return n1, n2

    def _run(self) -> None:
        changed = True
        while changed:
            changed = False
            for key, (s1, p1, s2, p2, bond), rhs in self._entries:
                if key in self.fired or not self.fires(s1, s2, bond):
                    continue
                self.fired.add(key)
                changed = True
                ids = self._rhs_ids(rhs)
                if ids is None:
                    continue
                n1, n2 = ids
                self.reached.add(n1)
                self.reached.add(n2)
                if rhs[2] == 1:
                    self.bonded.add(_pair(n1, n2))
                if n1 != s1:
                    self.rewrites.add((s1, n1))
                if n2 != s2:
                    self.rewrites.add((s2, n2))
            # Close bonded pairs under single-endpoint rewriting: a bonded
            # node may change state by interacting with a third party, so
            # the bond survives with the rewritten endpoint.
            for a, b in list(self.bonded):
                for old, new in self.rewrites:
                    if old == a and _pair(new, b) not in self.bonded:
                        self.bonded.add(_pair(new, b))
                        changed = True
                    if old == b and _pair(a, new) not in self.bonded:
                        self.bonded.add(_pair(a, new))
                        changed = True


def _entry_view(program: CompiledProgram, key: int, rhs) -> EntryView:
    s1, p1, s2, p2, bond = unpack_lhs(key)
    decode = program.space.decode
    return EntryView(
        decode(s1), _PORTS[p1].value, decode(s2), _PORTS[p2].value, bond,
        rhs[0], rhs[1], rhs[2],
    )


def _has_cycle(nodes: Set[int], edges: Set[Tuple[int, int]]) -> Optional[List[int]]:
    """A cycle in the digraph, as a node list, or ``None`` (iterative DFS)."""
    adjacency: Dict[int, List[int]] = {}
    for a, b in sorted(edges):
        adjacency.setdefault(a, []).append(b)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in nodes}
    for root in sorted(nodes):
        if color[root] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        path = [root]
        color[root] = GRAY
        while stack:
            node, i = stack[-1]
            succs = adjacency.get(node, [])
            if i < len(succs):
                stack[-1] = (node, i + 1)
                succ = succs[i]
                if color.get(succ, BLACK) == GRAY:
                    return path[path.index(succ):] + [succ]
                if color.get(succ, BLACK) == WHITE:
                    color[succ] = GRAY
                    stack.append((succ, 0))
                    path.append(succ)
            else:
                color[node] = BLACK
                stack.pop()
                path.pop()
    return None


def analyze_program(
    program: CompiledProgram,
    *,
    name: str = "program",
    initial_states: Iterable[State] = (),
    structure_states: Iterable[State] = (),
) -> ProtocolReport:
    """Analyze one exact compiled program from the given initial states.

    ``initial_states`` are the states present in the scenario's initial
    configuration (the ordinary initial state, the leader, plus any
    pre-built structure's states). ``structure_states`` is the subset
    sitting on a pre-built *bonded* structure: the closure conservatively
    assumes any two of them may share a bond initially (free initial nodes
    carry no bonds, so an empty structure means an empty initial bond set).

    A non-exact program cannot be analyzed statically — the table only
    records observed transitions — and yields a diagnostic report, not an
    exception.
    """
    if not program.exact:
        return ProtocolReport(
            name=name,
            exact=False,
            diagnostic=(
                "not closed-world, cannot analyze statically: the program "
                "is lowered lazily from a handler, so absence from its "
                "table does not prove a transition impossible"
            ),
            states=len(program.space),
            rules=program.rule_count,
            stabilizes=UNKNOWN,
            stabilization_reason="inexact program: no static witness",
        )

    space = program.space
    report = ProtocolReport(
        name=name,
        exact=True,
        states=len(space),
        rules=program.rule_count,
        entries=program.table.entries,
    )
    initial_ids: List[int] = []
    for state in initial_states:
        sid = space.get_id(state)
        if sid is None:
            report.notes.append(
                f"declared initial state {state!r} is not in the protocol's "
                "state space"
            )
        else:
            initial_ids.append(sid)
    structure_ids = [
        sid
        for sid in (space.get_id(s) for s in structure_states)
        if sid is not None
    ]
    initial_bonds = [
        (a, b) for a in structure_ids for b in structure_ids if a <= b
    ]
    report.initial_states = sorted(repr(space.decode(i)) for i in set(initial_ids))

    closure = _Closure(program, initial_ids, initial_bonds)
    report.notes.extend(closure.notes)
    report.reachable_states = sorted(
        repr(space.decode(sid)) for sid in closure.reached
    )
    report.unreachable_states = sorted(
        repr(space.decode(sid))
        for sid in range(len(space))
        if sid not in closure.reached
    )

    # Dead rules: entries that never abstractly fire, reported once per
    # unordered LHS (fireability is orientation-symmetric, so the mirror
    # of a dead entry is dead too — reporting both would double-count).
    table = dict(program.table.items())
    for key, rhs in table.items():
        if key in closure.fired:
            continue
        s1, p1, s2, p2, bond = unpack_lhs(key)
        mirror = pack_lhs(s2, p2, s1, p1, bond)
        if mirror in table and mirror < key:
            continue
        report.dead_rules.append(_entry_view(program, key, rhs).format())
    report.dead_rules.sort()

    # Ordered-table shadowing: which orientation won, and does it matter?
    for shadow in program.shadows:
        s1, p1, s2, p2, bond = unpack_lhs(shadow.key)
        report.shadows.append(
            {
                "lhs": (
                    f"({space.decode(s1)!r}, {_PORTS[p1].value}), "
                    f"({space.decode(s2)!r}, {_PORTS[p2].value}), {bond}"
                ),
                "winner": repr(shadow.winner),
                "loser": repr(shadow.loser),
                "kind": shadow.kind,
                "matters": closure.fires(s1, s2, bond),
            }
        )

    # Hot-set soundness: every fireable entry needs a hot endpoint, or the
    # hot scheduler's candidate enumeration can miss it entirely.
    report.hot_declared = program.hot_mask != 0
    if report.hot_declared:
        for key in sorted(closure.fired):
            s1, p1, s2, p2, bond = unpack_lhs(key)
            mirror = pack_lhs(s2, p2, s1, p1, bond)
            if mirror in closure.fired and mirror < key:
                continue  # hotness is orientation-symmetric: report once
            if not (program.is_hot_id(s1) or program.is_hot_id(s2)):
                report.hot_violations.append(
                    _entry_view(program, key, table[key]).format()
                )
    else:
        report.notes.append(
            "no hot-state declaration: hot-set soundness not checked"
        )

    _stabilization_witness(program, closure, table, report)
    return report


def _stabilization_witness(
    program: CompiledProgram,
    closure: _Closure,
    table: Dict[int, Any],
    report: ProtocolReport,
) -> None:
    """The monotone-bonding witness over the reachable effective rules.

    Lexicographic termination measure: a reachable bond-*breaking* rule
    voids it outright; otherwise bond-forming rules strictly decrease the
    (bounded) count of missing bonds, and bond-preserving rules must
    strictly decrease the topological height of some endpoint — which
    needs their state-rewrite digraph to be acyclic.
    """
    breaking: List[int] = []
    drift_edges: Set[Tuple[int, int]] = set()
    for key in sorted(closure.fired):
        s1, _, s2, _, bond = unpack_lhs(key)
        rhs = table[key]
        if bond == 1 and rhs[2] == 0:
            breaking.append(key)
        elif bond == rhs[2]:
            ids = closure._rhs_ids(rhs)
            if ids is None:
                report.stabilizes = UNKNOWN
                report.stabilization_reason = "incomplete state space"
                return
            n1, n2 = ids
            if n1 != s1:
                drift_edges.add((s1, n1))
            if n2 != s2:
                drift_edges.add((s2, n2))
    if breaking:
        report.stabilizes = UNKNOWN
        report.stabilization_reason = (
            "a reachable rule breaks a bond: "
            + _entry_view(program, breaking[0], table[breaking[0]]).format()
        )
        return
    nodes = {n for edge in drift_edges for n in edge}
    cycle = _has_cycle(nodes, drift_edges)
    if cycle is not None:
        decode = program.space.decode
        report.stabilizes = UNKNOWN
        report.stabilization_reason = (
            "bond-preserving state rewrites admit a cycle: "
            + " -> ".join(repr(decode(sid)) for sid in cycle)
        )
        return
    report.stabilizes = PROVEN
    report.stabilization_reason = (
        "monotone bonding: every reachable effective rule forms a bond"
        if not drift_edges
        else (
            "monotone bonding with acyclic state drift: reachable rules "
            "only form bonds or rewrite states along an acyclic digraph"
        )
    )


def analyze_protocol(
    protocol,
    extra_initial: Iterable[State] = (),
) -> ProtocolReport:
    """Analyze a :class:`~repro.core.protocol.Protocol` instance.

    Initial states are the protocol's own (`initial_state`, the leader
    when defined) plus ``extra_initial`` — the states of any pre-built
    structure the scenario seeds (e.g. the ``i``/``e`` nodes of a parent
    line). The pre-built structure is assumed bonded: ``extra_initial``
    (plus the leader, which anchors such structures) feeds the initial
    bonded-pair set. Handler-backed protocols (no exact compiled table)
    yield the standard not-closed-world diagnostic report.
    """
    name = getattr(protocol, "name", type(protocol).__name__)
    program = protocol.program
    extra = tuple(extra_initial)
    if program is None:
        return ProtocolReport(
            name=name,
            exact=False,
            diagnostic=(
                "not closed-world, cannot analyze statically: compilation "
                "is disabled for this protocol (compiled=False)"
            ),
            stabilization_reason="no compiled program",
        )
    initial: List[State] = [protocol.initial_state]
    if protocol.leader_state is not None:
        initial.append(protocol.leader_state)
    initial.extend(extra)
    structure: Tuple[State, ...] = ()
    if extra:
        structure = extra + (
            (protocol.leader_state,) if protocol.leader_state is not None else ()
        )
    return analyze_program(
        program,
        name=name,
        initial_states=initial,
        structure_states=structure,
    )
