"""Determinism linter: a dependency-free AST pass over ``src/repro``.

The scheduler's reproducibility guarantee (two RNG draws per event,
canonical candidate ordering, bit-identical seeded trajectories — see
ROADMAP) only holds if *no* code path smuggles in an un-threaded source
of nondeterminism. ROADMAP states that contract in prose; this module
makes it machine-checked. It uses only :mod:`ast` and the standard
library so it can run anywhere the package imports — including the CI
``static-analysis`` job — with zero extra dependencies.

Determinism contract
====================

Each rule below names the hazard it bans and the pragma comment that
allowlists a deliberate, justified exception. Pragmas are line-scoped:
put ``# lint: allow-<name>`` on the flagged line itself.

``unseeded-random`` — escape hatch ``# lint: allow-unseeded-random``
    No calls to module-level :mod:`random` functions (``random.random()``,
    ``random.choice()``, …): they draw from the shared global generator,
    whose state depends on everything else in the process. Thread an
    explicit ``random.Random(seed)`` instance instead (those calls are
    fine — the rule only fires on the module object).

``wallclock`` — escape hatch ``# lint: allow-wallclock``
    No ``time.time()``/``time.perf_counter()``/``datetime.now()`` and
    friends in result-affecting code: wall-clock reads make output depend
    on when (and how fast) the run happened. Legitimate measurement
    boundaries (e.g. the ``wall_time`` field the experiment runner
    reports) carry the pragma with a justification.

``unsorted-set-iteration`` — escape hatch ``# lint: allow-unsorted-iter``
    In ordering-sensitive modules (candidate enumeration, schedulers, the
    columnar backend, the experiments layer), no iterating over a bare
    ``set``/``frozenset`` — set order varies with insertion history and
    (for str keys) the per-process hash seed. Wrap in ``sorted(...)``.
    Dict iteration is *not* flagged: insertion order is guaranteed.

``hash-order`` — escape hatch ``# lint: allow-hash``
    No calls to the builtin ``hash()``: for strings it is salted per
    process (PYTHONHASHSEED), so anything derived from its value —
    bucketing, tie-breaking, cache keys that leak into output — differs
    between runs. Use a content hash (``hashlib``) or an explicit key.

Files that cannot be linted (non-UTF-8 or syntactically invalid Python)
are reported as an ``unparsable`` finding rather than crashing the run;
that meta-rule has no pragma escape hatch.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: rule name -> pragma suffix that allowlists it.
RULES: Dict[str, str] = {
    "unseeded-random": "allow-unseeded-random",
    "wallclock": "allow-wallclock",
    "unsorted-set-iteration": "allow-unsorted-iter",
    "hash-order": "allow-hash",
}

_PRAGMA_RE = re.compile(r"#\s*lint:\s*(allow-[a-z-]+)")

#: Module-level :mod:`random` functions that draw from the global RNG.
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "random", "randrange", "randint", "randbytes", "getrandbits",
        "choice", "choices", "shuffle", "sample", "uniform", "triangular",
        "betavariate", "expovariate", "gammavariate", "gauss",
        "lognormvariate", "normalvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate", "seed",
    }
)

#: Attribute names that read the wall clock, per rooting module.
_WALLCLOCK_ATTRS: Dict[str, frozenset] = {
    "time": frozenset(
        {
            "time", "time_ns", "perf_counter", "perf_counter_ns",
            "monotonic", "monotonic_ns", "process_time", "process_time_ns",
        }
    ),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "date": frozenset({"today"}),
}

#: Path fragments (relative to the repro package) whose output depends on
#: iteration order: candidate enumeration, schedulers, the columnar
#: backend, everything in the experiments layer, and the streaming trace
#: subsystem (trace bytes are a pure function of the seeded run).
_ORDERING_SENSITIVE = (
    "core/candidates.py",
    "core/scheduler.py",
    "core/columnar.py",
    "experiments/",
    "trace/",
)


@dataclass(frozen=True)
class LintFinding:
    """One determinism-contract violation."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Whether ``node`` statically denotes a set/frozenset value."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra (s | t, s - t, ...) preserves set-ness when either
        # side is known to be a set.
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in ("union", "intersection", "difference",
                              "symmetric_difference"):
            return _is_set_expr(node.func.value, set_names)
    return False


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, ordering_sensitive: bool) -> None:
        self.path = path
        self.ordering_sensitive = ordering_sensitive
        self.findings: List[LintFinding] = []
        #: Names bound by ``from random import <fn>`` in this module.
        self.random_imports: Set[str] = set()
        #: Per-scope stack of names statically known to hold sets.
        self.set_names: List[Set[str]] = [set()]

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(self.path, node.lineno, node.col_offset, rule, message)
        )

    # -- scope handling for the light set-name dataflow -----------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.set_names.append(set())
        self.generic_visit(node)
        self.set_names.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = _is_set_expr(node.value, self.set_names[-1])
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self.set_names[-1].add(target.id)
                else:
                    self.set_names[-1].discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            if _is_set_expr(node.value, self.set_names[-1]):
                self.set_names[-1].add(node.target.id)
            else:
                self.set_names[-1].discard(node.target.id)
        self.generic_visit(node)

    # -- imports --------------------------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name in _GLOBAL_RNG_FUNCS:
                    self.random_imports.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- calls: unseeded-random / wallclock / hash-order ----------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            root = func.value
            if isinstance(root, ast.Name):
                if root.id == "random" and func.attr in _GLOBAL_RNG_FUNCS:
                    self._add(
                        node,
                        "unseeded-random",
                        f"random.{func.attr}() draws from the shared global "
                        "RNG; thread a random.Random(seed) instance",
                    )
                wall = _WALLCLOCK_ATTRS.get(root.id)
                if wall is not None and func.attr in wall:
                    self._add(
                        node,
                        "wallclock",
                        f"{root.id}.{func.attr}() reads the wall clock in "
                        "result-affecting code",
                    )
            elif (
                isinstance(root, ast.Attribute)
                and isinstance(root.value, ast.Name)
                and root.value.id == "datetime"
                and func.attr in _WALLCLOCK_ATTRS["datetime"]
            ):
                # datetime.datetime.now() / datetime.date.today()
                self._add(
                    node,
                    "wallclock",
                    f"datetime.{root.attr}.{func.attr}() reads the wall "
                    "clock in result-affecting code",
                )
        elif isinstance(func, ast.Name):
            if func.id in self.random_imports:
                self._add(
                    node,
                    "unseeded-random",
                    f"{func.id}() (imported from random) draws from the "
                    "shared global RNG; thread a random.Random(seed) "
                    "instance",
                )
            elif func.id == "hash":
                self._add(
                    node,
                    "hash-order",
                    "hash() is salted per process for str inputs; use "
                    "hashlib or an explicit key",
                )
            elif (
                self.ordering_sensitive
                and func.id in ("list", "tuple")
                and len(node.args) == 1
                and _is_set_expr(node.args[0], self.set_names[-1])
            ):
                self._add(
                    node,
                    "unsorted-set-iteration",
                    f"{func.id}() over a set materializes unstable order; "
                    "wrap in sorted(...)",
                )
        self.generic_visit(node)

    # -- iteration: unsorted-set-iteration ------------------------------

    def _check_iter(self, node: ast.AST, iterable: ast.AST) -> None:
        if self.ordering_sensitive and _is_set_expr(
            iterable, self.set_names[-1]
        ):
            self._add(
                node,
                "unsorted-set-iteration",
                "iterating a bare set yields unstable order; wrap in "
                "sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(node, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from a set keeps unordered semantics: not a
        # hazard in itself (the hazard is where the result is iterated).
        self.generic_visit(node)


def _pragmas_by_line(source: str) -> Dict[int, Set[str]]:
    pragmas: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        found = _PRAGMA_RE.findall(line)
        if found:
            pragmas[lineno] = set(found)
    return pragmas


def is_ordering_sensitive(path: str) -> bool:
    """Whether ``path`` (posix-style) is held to the set-iteration rule."""
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in _ORDERING_SENSITIVE)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    ordering_sensitive: Optional[bool] = None,
) -> List[LintFinding]:
    """Lint one module's source text; returns findings sorted by line."""
    if ordering_sensitive is None:
        ordering_sensitive = is_ordering_sensitive(path)
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, ordering_sensitive)
    linter.visit(tree)
    pragmas = _pragmas_by_line(source)
    kept = [
        finding
        for finding in linter.findings
        if RULES[finding.rule] not in pragmas.get(finding.line, ())
    ]
    return sorted(kept, key=lambda f: (f.line, f.col, f.rule))


def default_root() -> Path:
    """The ``src/repro`` package directory this module is installed in."""
    return Path(__file__).resolve().parent.parent


def lint_paths(paths: Sequence[str] = ()) -> List[LintFinding]:
    """Lint the given files/directories (default: the repro package)."""
    roots = [Path(p) for p in paths] if paths else [default_root()]
    files: List[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    findings: List[LintFinding] = []
    package_parent = default_root().parent
    for file in files:
        try:
            rel = file.resolve().relative_to(package_parent)
            label = rel.as_posix()
        except ValueError:
            label = file.as_posix()
        try:
            source = file.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                LintFinding(label, 0, 0, "unparsable", f"unreadable file: {exc}")
            )
            continue
        try:
            findings.extend(lint_source(source, label))
        except SyntaxError as exc:
            findings.append(
                LintFinding(
                    label,
                    exc.lineno or 0,
                    (exc.offset or 1) - 1,
                    "unparsable",
                    f"syntax error: {exc.msg}",
                )
            )
    return findings
