"""Stable report schema for ``repro analyze`` (and its CI validation).

The analyzer's JSON artifact follows the same conventions as the
experiment payloads in :mod:`repro.experiments.io`: a ``schema``
identifier, a ``kind`` discriminator, and a dependency-free validator
that returns a list of error strings (empty = valid). ``repro validate``
dispatches here on the schema field, so the CI ``static-analysis`` job
can check its artifact with the existing command.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.analysis.protocol import ProtocolReport, analyze_protocol
from repro.experiments.registry import Scenario, protocol_specs

#: Schema identifier for analyzer-report payloads.
ANALYSIS_SCHEMA = "repro.analysis.report/v1"

#: Required keys of one protocol row, with their expected types.
_ROW_FIELDS: Tuple[Tuple[str, type], ...] = (
    ("name", str),
    ("exact", bool),
    ("states", int),
    ("rules", int),
    ("entries", int),
    ("initial_states", list),
    ("reachable_states", list),
    ("unreachable_states", list),
    ("dead_rules", list),
    ("shadows", list),
    ("hot_declared", bool),
    ("hot_violations", list),
    ("stabilizes", str),
    ("stabilization_reason", str),
    ("clean", bool),
    ("notes", list),
)


def analyze_scenario(scenario: Scenario) -> List[ProtocolReport]:
    """Analyzer reports for every protocol the scenario declares."""
    return [
        analyze_protocol(spec.factory(), extra_initial=spec.extra_initial)
        for spec in protocol_specs(scenario)
    ]


def analysis_payload(
    per_scenario: Mapping[str, List[ProtocolReport]],
) -> Dict[str, Any]:
    """The uniform ``repro analyze --json`` payload.

    ``findings`` counts correctness findings (dead rules, unreachable
    states, hot violations) across all reports; ``inexact`` counts the
    handler-lowered protocols that static analysis had to skip. Shadows
    and notes are informational and do not count as findings.
    """
    scenarios = []
    findings = 0
    inexact = 0
    for name in sorted(per_scenario):
        reports = per_scenario[name]
        rows = [r.to_dict() for r in reports]
        for report in reports:
            if not report.exact:
                inexact += 1
            else:
                findings += (
                    len(report.dead_rules)
                    + len(report.unreachable_states)
                    + len(report.hot_violations)
                )
        scenarios.append({"scenario": name, "protocols": rows})
    return {
        "schema": ANALYSIS_SCHEMA,
        "kind": "analysis",
        "scenarios": scenarios,
        "findings": findings,
        "inexact": inexact,
    }


def validate_analysis_payload(data: Any) -> List[str]:
    """Validate a ``repro analyze --json`` payload; [] = valid."""
    if not isinstance(data, Mapping):
        return [f"expected a JSON object, got {type(data).__name__}"]
    errors: List[str] = []
    if data.get("schema") != ANALYSIS_SCHEMA:
        errors.append(
            f"schema must be {ANALYSIS_SCHEMA!r}, got {data.get('schema')!r}"
        )
    if data.get("kind") != "analysis":
        errors.append(f"kind must be 'analysis', got {data.get('kind')!r}")
    for key in ("findings", "inexact"):
        if not isinstance(data.get(key), int) or isinstance(data.get(key), bool):
            errors.append(f"{key} must be an integer")
    scenarios = data.get("scenarios")
    if not isinstance(scenarios, list):
        return errors + ["scenarios must be an array"]
    for i, entry in enumerate(scenarios):
        where = f"scenarios[{i}]"
        if not isinstance(entry, Mapping):
            errors.append(f"{where}: expected an object")
            continue
        if not isinstance(entry.get("scenario"), str):
            errors.append(f"{where}: scenario must be a string")
        rows = entry.get("protocols")
        if not isinstance(rows, list):
            errors.append(f"{where}: protocols must be an array")
            continue
        for j, row in enumerate(rows):
            errors.extend(_validate_row(row, f"{where}.protocols[{j}]"))
    return errors


def _validate_row(row: Any, where: str) -> List[str]:
    if not isinstance(row, Mapping):
        return [f"{where}: expected an object"]
    errors: List[str] = []
    for key, expected in _ROW_FIELDS:
        value = row.get(key, _MISSING)
        if value is _MISSING:
            errors.append(f"{where}: missing field {key!r}")
        elif expected is int:
            if not isinstance(value, int) or isinstance(value, bool):
                errors.append(f"{where}: {key} must be an integer")
        elif not isinstance(value, expected):
            errors.append(
                f"{where}: {key} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    diagnostic = row.get("diagnostic")
    if diagnostic is not None and not isinstance(diagnostic, str):
        errors.append(f"{where}: diagnostic must be a string or null")
    stabilizes = row.get("stabilizes")
    if isinstance(stabilizes, str) and stabilizes not in ("proven", "unknown"):
        errors.append(
            f"{where}: stabilizes must be 'proven' or 'unknown', "
            f"got {stabilizes!r}"
        )
    return errors


class _Missing:
    pass


_MISSING = _Missing()
