"""Expected-time models for the uniform scheduler (Remark 1, Theorem 2).

Remark 1 bounds Counting-Upper-Bound's running time by "twice the expected
time of a meet everybody", giving ``O(n² log n)`` interactions; Theorem 2's
proof contrasts the UID protocol's ``Θ(n^b)`` with the ``Θ(n log n)``
epidemic spread. This module provides the exact closed forms of those
reference quantities under the uniform pair scheduler, plus Monte-Carlo
simulators to validate them (and the protocol benches use them as the
model columns of the timing tables).

Derivations (uniform scheduler over the ``C(n,2)`` pairs):

* *Leader meets everybody*: a step involves the leader with probability
  ``(n-1)/C(n,2) = 2/n`` and the partner is uniform; the coupon collector
  over ``n - 1`` partners needs ``(n-1) H_{n-1}`` leader interactions, so
  ``E[steps] = (n/2)(n-1) H_{n-1} = Θ(n² log n)``.
* *One-way epidemic* ("any node influences every other node"): from ``k``
  informed nodes the next step informs a new one with probability
  ``k(n-k)/C(n,2)``, hence
  ``E[steps] = C(n,2) Σ_{k=1}^{n-1} 1/(k(n-k)) = (n-1) H_{n-1} = Θ(n log n)``.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

from repro.errors import ReproError


def harmonic(n: int) -> float:
    """The n-th harmonic number ``H_n``."""
    if n < 0:
        raise ReproError(f"harmonic number of negative index: {n}")
    if n < 100:
        return sum(1.0 / k for k in range(1, n + 1))
    # Euler–Maclaurin: accurate to ~1e-10 for n >= 100.
    return (
        math.log(n)
        + 0.5772156649015329
        + 1.0 / (2 * n)
        - 1.0 / (12 * n * n)
    )


def expected_leader_meet_all(n: int) -> float:
    """E[raw interactions] until a fixed node has met every other node."""
    if n < 2:
        raise ReproError(f"need n >= 2: {n}")
    return (n / 2.0) * (n - 1) * harmonic(n - 1)


def counting_time_model(n: int, b: int = 0) -> float:
    """Remark 1's model for Counting-Upper-Bound: two meet-everybodies.

    The head start ``b`` spares the leader ``b`` first meetings; the
    correction is lower-order and omitted (the model is an upper-bound
    shape, not an exact expectation).
    """
    del b
    return 2.0 * expected_leader_meet_all(n)


def expected_epidemic_time(n: int) -> float:
    """E[raw interactions] for a one-way epidemic to cover the population.

    Equals ``(n-1) H_{n-1}`` — the ``Θ(n log n)`` reference Theorem 2's
    discussion contrasts with the UID protocol's ``Θ(n^b)``.
    """
    if n < 2:
        raise ReproError(f"need n >= 2: {n}")
    total = 0.0
    pairs = n * (n - 1) / 2.0
    for k in range(1, n):
        total += pairs / (k * (n - k))
    return total


def simulate_leader_meet_all(
    n: int, trials: int, seed: Optional[int] = None
) -> float:
    """Monte-Carlo mean of the leader-meets-everybody time."""
    rng = random.Random(seed)
    total = 0
    for _ in range(trials):
        met = 0
        seen = [False] * n  # index 0 is the leader
        steps = 0
        while met < n - 1:
            steps += 1
            # One uniform pair; it involves the leader with prob 2/n.
            a = rng.randrange(n)
            b = rng.randrange(n - 1)
            if b >= a:
                b += 1
            if a == 0 or b == 0:
                partner = a + b  # the non-zero one
                if not seen[partner]:
                    seen[partner] = True
                    met += 1
        total += steps
    return total / trials


def simulate_epidemic(
    n: int, trials: int, seed: Optional[int] = None
) -> float:
    """Monte-Carlo mean of the one-way-epidemic cover time."""
    rng = random.Random(seed)
    total = 0
    for _ in range(trials):
        informed = [False] * n
        informed[0] = True
        count = 1
        steps = 0
        while count < n:
            steps += 1
            a = rng.randrange(n)
            b = rng.randrange(n - 1)
            if b >= a:
                b += 1
            if informed[a] != informed[b]:
                informed[a] = informed[b] = True
                count += 1
        total += steps
    return total / trials


def timing_table(
    ns: List[int], trials: int = 20, seed: int = 0
) -> List[Tuple[int, float, float, float, float]]:
    """``(n, meet model, meet measured, epidemic model, epidemic measured)``.

    The rows of the R1-time reference table in
    ``benchmarks/bench_timing.py``.
    """
    rng = random.Random(seed)
    rows = []
    for n in ns:
        rows.append(
            (
                n,
                expected_leader_meet_all(n),
                simulate_leader_meet_all(n, trials, seed=rng.randrange(2**31)),
                expected_epidemic_time(n),
                simulate_epidemic(n, trials, seed=rng.randrange(2**31)),
            )
        )
    return rows
