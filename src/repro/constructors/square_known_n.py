"""Square-Knowing-n (§6.2, Lemma 2): assemble the ``sqrt(n) x sqrt(n)`` square.

The leader, knowing ``n`` (from Counting-on-a-Line), expands its line to
length ``sqrt(n)``, spawns the *seed* replica, and then waits at the square
segment while the seed (and the seed's ``Lr`` children, which are totally
self-replicating) keep producing lines of length ``sqrt(n)``. Each free
replica is accepted below the segment's lowest row; nodes of the replica's
own incomplete replication are released back into the solution ("the free
node will be released and eventually it will be attached to the last free
position below the seed"); the seed itself is accepted only as the very
last row, which guarantees replication never ceases early. When the
row-counter reaches ``sqrt(n) - 1`` and the seed attaches, the leader
terminates.

Implementation note (see DESIGN.md): line self-replication runs fully
under the scheduler via
:func:`repro.protocols.replication.self_replicating_lines_protocol`; the
square-side bookkeeping the paper assigns to the waiting leader (bonding a
row, converting it to inert square states, releasing strays, counting rows)
is performed by an orchestrator between scheduler events, with its
interaction cost accounted explicitly (one interaction per bond activated,
stray released, or cell walked).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import SimulationError, TerminationError
from repro.core.simulator import Simulation
from repro.core.world import World
from repro.geometry.grid import integer_sqrt
from repro.geometry.vec import Vec
from repro.protocols.replication import add_line, self_replicating_lines_protocol


@dataclass
class SquareResult:
    """Outcome of a Square-Knowing-n run."""

    n: int
    side: int
    scheduler_events: int
    leader_interactions: int
    rows_attached: int
    world: World

    @property
    def total_interactions(self) -> int:
        """Scheduler events plus the leader's accounted assembly work."""
        return self.scheduler_events + self.leader_interactions

    def square_component(self):
        return self.world.components[self._square_cid]

    _square_cid: int = -1


def _is_free_line(
    world: World, cid: int, length: int, left_states: Tuple[str, ...]
) -> Optional[List[int]]:
    """If component ``cid`` is a complete line of ``length`` whose left
    endpoint is in one of ``left_states``, return the line's node ids
    left-to-right.

    The component may be in the middle of an *incomplete replication* —
    extra nodes hanging one row below the line (the paper explicitly allows
    attaching such replicas; the strays are released at attachment). That
    is also why a *blocked* left endpoint (``Lr'``: replication in flight)
    is acceptable — accepting such lines is exactly the deadlock-avoidance
    device of Lemma 2's proof.
    """
    comp = world.components[cid]
    if comp.size() < length:
        return None
    top = max(c.y for c in comp.cells)
    row = sorted(c for c in comp.cells if c.y == top)
    if len(row) != length:
        return None
    if any(c.z != 0 for c in comp.cells):
        return None
    xs = [c.x for c in row]
    if xs != list(range(xs[0], xs[0] + length)):
        return None
    # Everything else must be a partial child row directly below the line.
    for c in comp.cells:
        if c.y == top:
            continue
        if c.y != top - 1 or not (xs[0] - 1 <= c.x <= xs[-1] + 1):
            return None
    nids = [comp.cells[c] for c in row]
    if world.state_of(nids[0]) not in left_states:
        return None
    return nids


def _find_free_line(world: World, length: int, left_states: Tuple[str, ...],
                    exclude: Optional[int] = None) -> Optional[Tuple[int, List[int]]]:
    for cid in list(world.components):
        if cid == exclude:
            continue
        nids = _is_free_line(world, cid, length, left_states)
        if nids is not None:
            return cid, nids
    return None


def _component_with_state(world: World, state: str) -> Optional[int]:
    nodes = world.nodes_in_state(state)
    if not nodes:
        return None
    nid = next(iter(nodes))
    return world.nodes[nid].component_id


def _shed_strays(world: World, keep: List[int]) -> int:
    """Release every node sharing a component with ``keep[0]`` but outside
    ``keep`` as a free q0.

    Returns the number of interactions accounted (one per released node;
    each release is at least one bond deactivation in the paper's walk).
    The stray list is computed up front: releases can split the component,
    but the stray node handles remain valid throughout.
    """
    comp = world.component_of(keep[0])
    keep_set = set(keep)
    strays = [nid for nid in comp.cells.values() if nid not in keep_set]
    for nid in strays:
        world.free_singleton(nid, "q0")
    return len(strays)


def run_square_known_n(
    n: int,
    seed: Optional[int] = None,
    max_events: int = 5_000_000,
) -> SquareResult:
    """Run Square-Knowing-n on ``n`` nodes (``sqrt(n)`` must be an integer).

    Returns the result with the final world; the square occupies one
    component of ``side x side`` inert ``sq`` nodes with the leader cell
    marked ``sq_L`` at the bottom-left corner.
    """
    side, exact = integer_sqrt(n)
    if not exact:
        raise SimulationError(f"n = {n} is not a perfect square")
    if side < 3:
        raise SimulationError("the replication chain needs side >= 3")
    protocol = self_replicating_lines_protocol()
    world = World(dimension=2)
    add_line(world, side, "L")  # the leader's line, already length sqrt(n)
    for _ in range(n - side):
        world.add_free_node("q0")
    sim = Simulation(world, protocol, seed=seed)
    leader_interactions = 0

    # --- Stage 1: the original line replicates once into the seed. -------
    # ``Lstart`` appears at the end of the parent's restore walk, which only
    # starts after the child has detached; the child's own restore then
    # completes on intra-component rules alone, so waiting for ``Lstart``
    # suffices. (Waiting for ``Ls`` as well is wrong: the seed may start
    # replicating — blocking its endpoint as ``Ls'`` — before the parent's
    # walk finishes, and small populations then deadlock with every free
    # node locked in incomplete replications.)
    res = sim.run(
        max_events=max_events,
        until=lambda w: bool(w.nodes_in_state("Lstart")),
    )
    if not res.stopped:
        raise TerminationError("seed creation did not complete")
    original_cid = _component_with_state(world, "Lstart")
    assert original_cid is not None
    # The original line becomes the square's top row; convert it to inert
    # square states so it stops attracting attachments, and release any
    # partial replication already hanging below it.
    comp = world.components[original_cid]
    # The component's frame may have been translated by merges (frames are
    # arbitrary); the line is always the topmost row, children hang below.
    top_y = max(c.y for c in comp.cells)
    row_cells = sorted(c for c in comp.cells if c.y == top_y)
    if len(row_cells) != side:
        raise SimulationError("original line lost nodes")  # pragma: no cover
    row_nids = [comp.cells[c] for c in row_cells]
    leader_interactions += _shed_strays(world, row_nids)
    for k, nid in enumerate(row_nids):
        world.set_state(nid, "sq_L" if k == 0 else "sq")
    leader_interactions += side  # the leader's conversion walk
    square_cid = original_cid

    # --- Stage 2: accept sqrt(n) - 1 rows; the seed strictly last. -------
    rows = 0
    while rows < side - 1:
        last = rows == side - 2
        # Non-seed rows may be accepted mid-replication (blocked endpoint
        # ``Lr'``) — Lemma 2's deadlock-avoidance; the seed is accepted
        # strictly last, by which point it can hold no children (every
        # spare node is already in the segment) so plain ``Ls`` suffices.
        want_left = ("Ls",) if last else ("Lr", "Lr'")

        found: List[Optional[Tuple[int, List[int]]]] = [None]

        def ready(w: World) -> bool:
            found[0] = _find_free_line(w, side, want_left, exclude=square_cid)
            return found[0] is not None

        if not ready(world):
            res = sim.run(max_events=max_events, until=ready)
            if not res.stopped:
                if res.stabilized:
                    raise TerminationError(
                        f"stabilized waiting for row {rows + 1}: "
                        "replication ceased (deadlock)"
                    )
                raise TerminationError(f"event budget exhausted at row {rows + 1}")
        cid, nids = found[0]  # type: ignore[misc]
        # Release the strays of the replica's own incomplete replication.
        leader_interactions += _shed_strays(world, nids)
        # Attach under the current lowest row: one vertical bond per cell
        # (the leader's walk), plus horizontal bonds along the row.
        y = row_cells[0].y - (rows + 1)
        targets = [Vec(row_cells[0].x + i, y) for i in range(side)]
        world.transplant_line(nids, targets, square_cid, "sq")
        leader_interactions += 2 * side  # walk + bond activations
        rows += 1

    world.check_invariants()
    square = world.components[square_cid]
    if square.size() != n:
        raise SimulationError(
            f"square has {square.size()} nodes, expected {n}"
        )  # pragma: no cover
    result = SquareResult(
        n=n,
        side=side,
        scheduler_events=sim.events,
        leader_interactions=leader_interactions,
        rows_attached=rows,
        world=world,
    )
    result._square_cid = square_cid
    return result
