"""Distributed TM simulation on the square and the release phase (§6.3).

The ``d x d`` square built by Square-Knowing-n is viewed as a TM tape of
length ``d^2`` traversed by the leader in the zig-zag fashion of Figure
7(b). The protocol invokes ``d^2`` simulations of the shape-constructing
machine ``M``, one per pixel: the input ``(i, d)`` is written on the
leftmost tape cells, the simulation runs with the head's moves realized as
leader walks over the square's nodes (one interaction per hop), the pixel
is marked *on* or *off* according to ``M``'s decision, and the tape is
cleared for the next pixel. Finally the leader walks the tape backwards
passing a *release* signal; every bond with at least one *off* endpoint is
deactivated, leaving exactly the connected shape of the on pixels
(Figure 7(c)-(d)). For patterns (Remark 4) the square is colored instead
and nothing is released.

Interaction accounting: every head move, walk hop, marking and bond
deactivation counts as one interaction. For predicate-backed programs
(the documented TM stand-in) each decision is charged its declared space
bound; TM-backed programs are charged their true step count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import MachineError, SimulationError
from repro.core.world import World, bond_of
from repro.geometry.grid import zigzag_index_to_cell, zigzag_order
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec
from repro.machines.shape_programs import (
    PatternProgram,
    PredicateShapeProgram,
    ShapeProgram,
    TMShapeProgram,
)


@dataclass
class ConstructionResult:
    """Outcome of a shape (or pattern) construction on the square."""

    d: int
    interactions: int
    on_cells: Tuple[Vec, ...]
    waste: int
    world: Optional[World]
    shape: Shape

    @property
    def useful_space(self) -> int:
        """|V(G)|: nodes belonging to the output shape (Definition 4)."""
        return len(self.on_cells)


class DistributedTMSquare:
    """The square-as-tape abstraction with explicit interaction metering.

    Binds a square component of a world (or a fresh standalone square) and
    exposes pixel marking, distributed TM runs, and the release phase.
    """

    def __init__(
        self,
        world: World,
        square_cid: int,
        side: int,
    ) -> None:
        self.world = world
        self.cid = square_cid
        self.side = side
        comp = world.components[square_cid]
        if comp.size() != side * side:
            raise SimulationError("component is not a full square")
        origin = Vec(min(c.x for c in comp.cells), min(c.y for c in comp.cells))
        #: Node ids in zig-zag tape order (Figure 7(b)).
        self.tape_nids: List[int] = []
        for cell in zigzag_order(side, side, origin):
            nid = comp.cells.get(cell)
            if nid is None:
                raise SimulationError(f"square is missing cell {cell!r}")
            self.tape_nids.append(nid)
        self.origin = origin
        self.head = 0
        self.interactions = 0

    @staticmethod
    def fresh(side: int) -> "DistributedTMSquare":
        """A standalone pre-built square (for testing this stage alone)."""
        world = World(dimension=2)
        states = {
            Vec(x, y): "sq" for x in range(side) for y in range(side)
        }
        states[Vec(0, 0)] = "sq_L"
        world.add_component_from_cells(states)
        cid = next(iter(world.components))
        return DistributedTMSquare(world, cid, side)

    # -- head movement and symbols ----------------------------------------

    def _move_head_to(self, index: int) -> None:
        """Walk the head along the tape; one interaction per hop."""
        if not (0 <= index < len(self.tape_nids)):
            raise MachineError(f"head moved off the square tape: {index}")
        self.interactions += abs(index - self.head)
        self.head = index

    def _write(self, index: int, symbol: Hashable, mark: Optional[str] = None) -> None:
        nid = self.tape_nids[index]
        state = self.world.state_of(nid)
        current_mark = state[2] if isinstance(state, tuple) and state[0] == "px" else None
        self.world.set_state(nid, ("px", symbol, mark if mark is not None else current_mark))

    def _read(self, index: int) -> Hashable:
        state = self.world.state_of(self.tape_nids[index])
        if isinstance(state, tuple) and state[0] == "px":
            return state[1]
        return "_"

    def _mark(self, index: int, mark: str) -> None:
        nid = self.tape_nids[index]
        state = self.world.state_of(nid)
        symbol = state[1] if isinstance(state, tuple) and state[0] == "px" else "_"
        self.world.set_state(nid, ("px", symbol, mark))
        self.interactions += 1

    def mark_of(self, index: int) -> Optional[str]:
        state = self.world.state_of(self.tape_nids[index])
        if isinstance(state, tuple) and state[0] == "px":
            return state[2]
        return None

    # -- one pixel decision ------------------------------------------------

    def decide_pixel(self, program: ShapeProgram, pixel: int) -> bool:
        """Run one simulation of ``M`` on input ``(pixel, d)``.

        TM-backed programs run with the head's excursions realized on the
        square tape (genuinely bounded by the square's ``d^2`` cells);
        predicate programs are charged their declared space bound.
        """
        d = self.side
        if isinstance(program, TMShapeProgram):
            tape_input = program.encoder(pixel, d)
            # Write the input on the leftmost tape cells (leader walk),
            # keeping cell 0 blank so left excursions stay on the square.
            self._move_head_to(0)
            for k, sym in enumerate(tape_input):
                self._move_head_to(k + 1)
                self._write(k + 1, sym)
            result = self._run_tm_on_tape(program, start=1)
            # Clear residues for the next simulation.
            for k in range(len(tape_input) + 3):
                if k < len(self.tape_nids):
                    self._move_head_to(k)
                    self._write(k, "_")
            return result
        if isinstance(program, PredicateShapeProgram):
            self.interactions += program.space_bound(d)
            return program.decide(pixel, d)
        raise SimulationError(f"unsupported program type: {type(program)!r}")

    def _run_tm_on_tape(self, program: TMShapeProgram, start: int = 0) -> bool:
        machine = program.machine
        state = machine.start
        self._move_head_to(start)
        steps = 0
        max_steps = 10_000_000
        while state not in (machine.accept, machine.reject):
            if steps >= max_steps:
                raise MachineError("distributed TM exceeded its step budget")
            sym = self._read(self.head)
            trans = machine.transitions.get((state, sym))
            if trans is None:
                state = machine.reject
                break
            state, write, move = trans
            self._write(self.head, write)
            if move != 0:
                self._move_head_to(self.head + move)
            steps += 1
        return state == machine.accept

    # -- the full construction ---------------------------------------------

    def construct(self, program: ShapeProgram) -> Tuple[List[int], List[int]]:
        """Decide every pixel; returns (on indices, off indices)."""
        d = self.side
        on: List[int] = []
        off: List[int] = []
        for pixel in range(d * d):
            accepted = self.decide_pixel(program, pixel)
            self._move_head_to(pixel)
            self._mark(pixel, "on" if accepted else "off")
            (on if accepted else off).append(pixel)
        return on, off

    def color(self, program: PatternProgram) -> Dict[Vec, Hashable]:
        """Remark 4: color every pixel; returns the cell -> color map."""
        d = self.side
        out: Dict[Vec, Hashable] = {}
        for pixel in range(d * d):
            value = program.color(pixel, d)
            self._move_head_to(pixel)
            self._mark(pixel, f"color:{value}")
            out[zigzag_index_to_cell(pixel, d, self.origin)] = value
        return out

    def release(self) -> Shape:
        """The release phase: walk back, then drop every bond touching an
        *off* node; returns the final connected output shape.

        Raises when the on-pixels are not connected (the protocol requires
        the TM to compute connected shapes, Definition 3).
        """
        world = self.world
        # The leader walks the tape in the opposite direction, passing the
        # release signal to every node (Figure 7(c) -> (d)).
        self.interactions += len(self.tape_nids)
        comp = world.components[self.cid]
        off_nids = {
            nid
            for k, nid in enumerate(self.tape_nids)
            if self.mark_of(k) == "off"
        }
        dropped = {b for b in comp.bonds if any(nid in off_nids for nid, _ in b)}
        self.interactions += len(dropped)
        comp.bonds -= dropped
        comp.version += 1
        world._split_if_disconnected(comp)
        # Off nodes become free isolated nodes in the solution.
        on_comp = None
        for cid, c in world.components.items():
            members = set(c.cells.values())
            if members & set(self.tape_nids) and not members & off_nids:
                if any(self.mark_of(k) == "on" for k, nid in enumerate(self.tape_nids) if nid in members):
                    if on_comp is not None:
                        raise SimulationError(
                            "release left the on-shape disconnected"
                        )
                    on_comp = cid
        if on_comp is None:
            raise SimulationError("release produced no output shape")
        out = world.components[on_comp]
        expected_on = {
            nid for k, nid in enumerate(self.tape_nids) if self.mark_of(k) == "on"
        }
        if set(out.cells.values()) != expected_on:
            raise SimulationError("release left the on-shape disconnected")
        return world.component_shape(on_comp)


def run_shape_construction(
    program: ShapeProgram,
    d: int,
    square: Optional[DistributedTMSquare] = None,
) -> ConstructionResult:
    """Build the shape of ``program`` on a ``d x d`` square and release it."""
    sq = square if square is not None else DistributedTMSquare.fresh(d)
    on, off = sq.construct(program)
    shape = sq.release()
    return ConstructionResult(
        d=d,
        interactions=sq.interactions,
        on_cells=tuple(sorted(shape.cells)),
        waste=len(off),
        world=sq.world,
        shape=shape,
    )


def run_pattern_construction(
    program: PatternProgram,
    d: int,
    square: Optional[DistributedTMSquare] = None,
) -> Tuple[Dict[Vec, Hashable], int]:
    """Remark 4: color the square; returns (cell -> color, interactions)."""
    sq = square if square is not None else DistributedTMSquare.fresh(d)
    colors = sq.color(program)
    return colors, sq.interactions
