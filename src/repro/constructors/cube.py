"""Cube-Knowing-n: the 3D extension of §6.2's Square-Knowing-n.

The paper introduces the 3D model (six ports, §3) and uses the third
dimension for the parallel slab of §6.4.1; the natural 3D counterpart of
Lemma 2 is the ``m x m x m`` cube on ``n = m³`` nodes. This constructor
stages the paper's own pipeline once per slab:

1. every slab is an ``m x m`` square assembled by the fully
   scheduler-driven Square-Knowing-n run (seed/replica line
   self-replication, Protocol 4 rules — Lemma 2's machinery verbatim);
2. finished slabs are stacked along the z axis by the leader's walk, one
   vertical bond per cell, with every walked cell and activated bond
   charged one interaction (the same explicit-orchestration accounting the
   2D constructor uses for its row attachments).

Why the stacking is orchestrated rather than rule-driven: a node bonding
in 3D may be arbitrarily *twisted* about the bond axis (the model's
rotation freedom, up to four alignments per port pair), so the 2D
replication walk — which steers by its local left/right ports — can
deadlock on a twisted attachment. Within a plane the 2D rules are
unambiguous, hence slabs are built in-plane and the out-of-plane stacking
is the leader's accounted walk. DESIGN.md records this as a fidelity
decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.constructors.square_known_n import SquareResult, run_square_known_n
from repro.core.world import World
from repro.geometry.grid import integer_cbrt
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec


@dataclass
class CubeResult:
    """Outcome of a Cube-Knowing-n run."""

    n: int
    side: int
    scheduler_events: int
    leader_interactions: int
    slabs: List[SquareResult]
    world: World

    _cube_cid: int = -1

    @property
    def total_interactions(self) -> int:
        return self.scheduler_events + self.leader_interactions

    def cube_shape(self) -> Shape:
        """The assembled cube as a normalized shape."""
        return self.world.component_shape(self._cube_cid)


def run_cube_known_n(
    n: int,
    seed: Optional[int] = None,
    max_events: int = 5_000_000,
) -> CubeResult:
    """Assemble the ``m x m x m`` cube on ``n = m³`` nodes.

    Each of the ``m`` slabs runs the full scheduler-driven 2D pipeline on
    its own ``m²`` nodes; the leader then stacks them along z. Requires
    ``m >= 3`` (the slab pipeline's replication chain needs side >= 3).
    """
    side, exact = integer_cbrt(n)
    if not exact:
        raise SimulationError(f"n = {n} is not a perfect cube")
    if side < 3:
        raise SimulationError("the replication chain needs side >= 3")
    seed0 = seed if seed is not None else 0

    scheduler_events = 0
    leader_interactions = 0
    slabs: List[SquareResult] = []
    cube_states: Dict[Vec, object] = {}
    for layer in range(side):
        slab = run_square_known_n(side * side, seed=seed0 + layer,
                                  max_events=max_events)
        slabs.append(slab)
        scheduler_events += slab.scheduler_events
        leader_interactions += slab.leader_interactions
        # The slab's square component, normalized to its own frame.
        shape = slab.world.component_shape(slab._square_cid).normalize()
        if len(shape.cells) != side * side:
            raise SimulationError(
                f"slab {layer} has {len(shape.cells)} cells"
            )  # pragma: no cover - guarded by the square run
        for cell in shape.cells:
            target = Vec(cell.x, cell.y, -layer)
            state = "cb_L" if (cell.x, cell.y, layer) == (0, 0, 0) else "cb"
            cube_states[target] = state
        # Stacking walk: the leader crosses the new slab once (side² hops)
        # and activates one vertical bond per cell of the interface.
        leader_interactions += side * side
        if layer > 0:
            leader_interactions += side * side

    world = World(dimension=3)
    world.add_component_from_cells(cube_states)
    cube_cid = next(iter(world.components))
    world.check_invariants()
    cube = world.components[cube_cid]
    if cube.size() != n:
        raise SimulationError(
            f"cube has {cube.size()} nodes, expected {n}"
        )  # pragma: no cover
    shape = world.component_shape(cube_cid)
    if not shape.is_full_box():
        raise SimulationError("assembled component is not a full cube")
    result = CubeResult(
        n=n,
        side=side,
        scheduler_events=scheduler_events,
        leader_interactions=leader_interactions,
        slabs=slabs,
        world=world,
    )
    result._cube_cid = cube_cid
    return result
