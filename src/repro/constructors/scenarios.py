"""Scenario adapters for the §5.2–§6 constructors (``repro.constructors``).

Registered into ``repro.experiments.registry``; see that module for the
adapter contract. Covers counting-on-a-line, Square-/Cube-Knowing-n, the
Theorem 4 universal shape constructor, Remark 4 patterns, the Theorem 5/6
parallelizations, and the full count → square → simulate → release
universal pipeline.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.constructors.counting_line import (
    counting_line_protocol,
    run_counting_on_a_line,
)
from repro.constructors.cube import run_cube_known_n
from repro.constructors.parallel import run_parallel_3d, run_parallel_segments
from repro.constructors.square_known_n import run_square_known_n
from repro.constructors.tm_construction import (
    run_pattern_construction,
    run_shape_construction,
)
from repro.constructors.universal import run_universal
from repro.core.scheduler import make_scheduler
from repro.core.simulator import StopReason
from repro.experiments.registry import (
    Param,
    ProtocolSpec,
    ScenarioOutcome,
    scenario,
)
from repro.protocols.replication import self_replicating_lines_protocol
from repro.machines.shape_programs import PATTERN_CATALOGUE, SHAPE_CATALOGUE
from repro.viz.ascii_art import render_labels, render_layers, render_shape

_SHAPE_PARAM = Param(
    "shape",
    "str",
    "star",
    choices=tuple(sorted(SHAPE_CATALOGUE)),
    help="named shape program from the catalogue",
)


@scenario(
    name="counting-line",
    summary="§5.2 Counting-on-a-Line: count while growing the base line",
    params=(
        Param("n", "int", 32, help="population size"),
        Param("b", "int", 4, help="the leader's head start"),
    ),
    tags=("counting", "constructor", "terminating"),
    schedulable=True,
    covers=("repro.constructors.counting_line.run_counting_on_a_line",),
    protocols=(counting_line_protocol,),
)
def _run_counting_line(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    sched = None if scheduler is None else make_scheduler(scheduler)
    result = run_counting_on_a_line(
        params["n"], b=params["b"], seed=seed, scheduler=sched
    )
    return ScenarioOutcome(
        metrics={
            "n": result.n,
            "b": result.b,
            "r0": result.r0,
            "r1": result.r1,
            "r2": result.r2,
            "line_length": result.line_length,
            "expected_length": result.expected_length,
            "success": result.success,
        },
        events=result.events,
        stop_reason=StopReason.PREDICATE,
    )


@scenario(
    name="square",
    summary="§6.2 Square-Knowing-n via self-replicating lines (Lemma 2)",
    params=(Param("n", "int", 36, help="population size (a perfect square)"),),
    tags=("constructor", "2d"),
    covers=("repro.constructors.square_known_n.run_square_known_n",),
    # The rows grow from a pre-built parent line, so the analyzer's
    # closure starts with bonded i/e structure states alongside the
    # protocol's own initial/leader states.
    protocols=(
        ProtocolSpec(self_replicating_lines_protocol, extra_initial=("i", "e")),
    ),
)
def _run_square(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    result = run_square_known_n(params["n"], seed=seed)
    return ScenarioOutcome(
        metrics={
            "n": result.n,
            "side": result.side,
            "scheduler_events": result.scheduler_events,
            "leader_interactions": result.leader_interactions,
            "total_interactions": result.total_interactions,
            "rows_attached": result.rows_attached,
            "square_nodes": result.square_component().size(),
        },
        events=result.scheduler_events,
        stop_reason=StopReason.PREDICATE,
    )


@scenario(
    name="cube",
    summary="§6.3 Cube-Knowing-n: m slabs stacked along z (3D)",
    params=(Param("m", "int", 3, help="cube side (>= 3)"),),
    tags=("constructor", "3d"),
    covers=("repro.constructors.cube.run_cube_known_n",),
)
def _run_cube(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    m = params["m"]
    result = run_cube_known_n(m**3, seed=seed)
    shape = result.cube_shape()
    return ScenarioOutcome(
        metrics={
            "n": result.n,
            "m": m,
            "side": result.side,
            "scheduler_events": result.scheduler_events,
            "leader_interactions": result.leader_interactions,
            "total_interactions": result.total_interactions,
            "slab_scheduler_events": sum(
                s.scheduler_events for s in result.slabs
            ),
            "full_box": shape.is_full_box(),
        },
        events=result.scheduler_events,
        stop_reason=StopReason.PREDICATE,
        renders={"cube": render_layers(shape)},
    )


@scenario(
    name="shape",
    summary="Theorem 4 universal construction of a named shape on a square",
    params=(
        _SHAPE_PARAM,
        Param("d", "int", 9, help="square dimension"),
    ),
    tags=("constructor", "universal", "tm"),
    deterministic=True,
    covers=("repro.constructors.tm_construction.run_shape_construction",),
)
def _run_shape(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    program = SHAPE_CATALOGUE[params["shape"]]()
    result = run_shape_construction(program, params["d"])
    return ScenarioOutcome(
        metrics={
            "shape": params["shape"],
            "d": result.d,
            "useful_space": result.useful_space,
            "waste": result.waste,
            "interactions": result.interactions,
        },
        events=result.interactions,
        stop_reason=StopReason.PREDICATE,
        renders={"shape": render_shape(result.shape)},
    )


@scenario(
    name="pattern",
    summary="Remark 4 pattern (coloring) construction on a square",
    params=(
        Param(
            "pattern",
            "str",
            "checkerboard",
            choices=tuple(sorted(PATTERN_CATALOGUE)),
            help="named pattern program from the catalogue",
        ),
        Param("d", "int", 8, help="square dimension"),
    ),
    tags=("constructor", "universal", "tm"),
    deterministic=True,
    covers=("repro.constructors.tm_construction.run_pattern_construction",),
)
def _run_pattern(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    program = PATTERN_CATALOGUE[params["pattern"]]()
    colors, interactions = run_pattern_construction(program, params["d"])
    return ScenarioOutcome(
        metrics={
            "pattern": params["pattern"],
            "d": params["d"],
            "colors": len(set(colors.values())),
            "interactions": interactions,
        },
        events=interactions,
        stop_reason=StopReason.PREDICATE,
        renders={"pattern": render_labels(colors)},
    )


@scenario(
    name="universal",
    summary="§6 full pipeline: count, build the square, simulate, release",
    params=(
        _SHAPE_PARAM,
        Param("n", "int", 16, help="population size (>= 9)"),
        Param("b", "int", 4, help="counting head start"),
    ),
    tags=("constructor", "universal", "pipeline"),
    covers=("repro.constructors.universal.run_universal",),
)
def _run_universal_scenario(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    program = SHAPE_CATALOGUE[params["shape"]]()
    result = run_universal(program, params["n"], b=params["b"], seed=seed)
    return ScenarioOutcome(
        metrics={
            "shape": params["shape"],
            "n": result.n,
            "n_estimate": result.n_estimate,
            "count_exact": result.count_exact,
            "d": result.d,
            "counting_events": result.counting_events,
            "square_events": result.square_events,
            "construction_interactions": result.construction_interactions,
            "waste": result.waste,
            "matches": result.matches(program),
        },
        events=result.total_interactions,
        stop_reason=StopReason.PREDICATE,
        renders={"shape": render_shape(result.shape)},
    )


def _parallel_outcome(result, shape_name: str) -> ScenarioOutcome:
    return ScenarioOutcome(
        metrics={
            "shape": shape_name,
            "d": result.d,
            "k": result.k,
            "n": result.n,
            "parallel_interactions": result.parallel_interactions,
            "sequential_interactions": result.sequential_interactions,
            "assembly_interactions": result.assembly_interactions,
            "speedup": result.speedup,
            "waste": result.waste,
        },
        events=result.parallel_interactions,
        stop_reason=StopReason.PREDICATE,
        renders={"shape": render_layers(result.shape)},
    )


@scenario(
    name="parallel-3d",
    summary="Theorem 5 / §6.4.1: parallel construction on the 3D slab",
    params=(
        _SHAPE_PARAM,
        Param("d", "int", 7, help="square dimension"),
    ),
    tags=("constructor", "parallel", "3d"),
    deterministic=True,
    covers=("repro.constructors.parallel.run_parallel_3d",),
)
def _run_parallel_3d_scenario(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    program = SHAPE_CATALOGUE[params["shape"]]()
    result = run_parallel_3d(program, params["d"])
    return _parallel_outcome(result, params["shape"])


@scenario(
    name="parallel-segments",
    summary="§6.4.2: simulate on a flat line, reassemble segments by keys",
    params=(
        _SHAPE_PARAM,
        Param("d", "int", 7, help="square dimension"),
    ),
    tags=("constructor", "parallel", "2d"),
    covers=("repro.constructors.parallel.run_parallel_segments",),
)
def _run_parallel_segments_scenario(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    program = SHAPE_CATALOGUE[params["shape"]]()
    result = run_parallel_segments(program, params["d"], seed=seed)
    return _parallel_outcome(result, params["shape"])
