"""Generic constructors of §6: counting, squares, TM simulation, parallelism.

* :mod:`repro.constructors.counting_line` — Counting-on-a-Line (§6.1,
  Lemma 1): the terminating counting protocol storing ``n`` in binary on a
  self-assembled line.
* :mod:`repro.constructors.square_known_n` — Square-Knowing-n (§6.2,
  Lemma 2): seed/replica line pipeline assembling the ``sqrt(n) x sqrt(n)``
  square with termination detection.
* :mod:`repro.constructors.tm_construction` — distributed simulation of a
  shape-constructing TM on the square plus the release phase (§6.3,
  Theorem 4) and patterns (Remark 4).
* :mod:`repro.constructors.parallel` — the parallel simulation schemes of
  §6.4 (3D slab and segmented lines), Theorem 5.
* :mod:`repro.constructors.universal` — the end-to-end pipeline: count ->
  sqrt -> square -> simulate -> release.
* :mod:`repro.constructors.cube` — Cube-Knowing-n: the 3D extension of
  Lemma 2 (scheduler-driven slabs stacked by the leader's walk).
"""

from repro.constructors.counting_line import (
    CountingLineResult,
    counting_line_protocol,
    counting_line_world,
    decode_counters,
    run_counting_on_a_line,
)
from repro.constructors.square_known_n import (
    SquareResult,
    run_square_known_n,
)
from repro.constructors.tm_construction import (
    ConstructionResult,
    DistributedTMSquare,
    run_pattern_construction,
    run_shape_construction,
)
from repro.constructors.parallel import (
    ParallelResult,
    run_parallel_3d,
    run_parallel_segments,
)
from repro.constructors.cube import CubeResult, run_cube_known_n
from repro.constructors.universal import UniversalResult, run_universal

__all__ = [
    "counting_line_protocol",
    "counting_line_world",
    "run_counting_on_a_line",
    "decode_counters",
    "CountingLineResult",
    "run_square_known_n",
    "SquareResult",
    "run_cube_known_n",
    "CubeResult",
    "DistributedTMSquare",
    "run_shape_construction",
    "run_pattern_construction",
    "ConstructionResult",
    "run_parallel_3d",
    "run_parallel_segments",
    "ParallelResult",
    "run_universal",
    "UniversalResult",
]
