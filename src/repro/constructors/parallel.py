"""Parallel simulation of the pixel machines (§6.4, Theorem 5).

Approach 1 (3D): the ``d x d`` square lives in the x/y plane; below each
pixel a line of ``k - 1`` nodes extends in the z dimension, giving every
pixel its own TM tape of length ``k``. All ``d^2`` simulations then run in
parallel, so the simulation phase costs (in parallel time) the *maximum*
per-pixel work rather than the sum. Population size is ``n = k * d^2``;
the memories are released before the usual release phase, so the waste is
``(k - 1) d^2`` plus the off pixels.

Approach 2 (2D): the pixels are arranged on a line of length ``d^2`` with
their ``k - 1`` memories hanging below in y; after the parallel
simulations, the line is partitioned into ``d`` segments of length ``d``
carrying unique matching keys (segment ``i`` marks its ``i``-th and
``(i-1)``-th nodes, counted from alternating ends so consecutive segments
key into each other after the required 180-degree flips); the released
segments then reassemble into the square by key matching (Figure 9).

Both runners verify the final shape and report parallel vs sequential
interaction counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import MachineError, SimulationError
from repro.core.world import World
from repro.geometry.grid import zigzag_index_to_cell
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec
from repro.machines.shape_programs import (
    PredicateShapeProgram,
    ShapeProgram,
    TMShapeProgram,
)


@dataclass
class ParallelResult:
    """Outcome of a parallel construction."""

    d: int
    k: int
    n: int
    parallel_interactions: int
    sequential_interactions: int
    assembly_interactions: int
    shape: Shape
    waste: int

    @property
    def speedup(self) -> float:
        """Sequential / parallel simulation-phase interaction ratio."""
        if self.parallel_interactions == 0:
            return 1.0
        return self.sequential_interactions / self.parallel_interactions


def _pixel_costs(program: ShapeProgram, d: int, k: int) -> Tuple[List[bool], List[int]]:
    """Decide every pixel on its own k-cell tape; returns (bits, costs)."""
    bits: List[bool] = []
    costs: List[int] = []
    for pixel in range(d * d):
        if isinstance(program, TMShapeProgram):
            tape = program.encoder(pixel, d)
            if len(tape) + 1 > k:
                raise MachineError(
                    f"pixel tape of length {k} too short for the input"
                )
            result = program.machine.run(tape, max_space=k)
            bits.append(result.accepted)
            costs.append(result.steps + len(tape))
        else:
            bits.append(program.decide(pixel, d))
            costs.append(program.space_bound(d))
    return bits, costs


def _shape_from_bits(bits: List[bool], d: int) -> Shape:
    cells = [zigzag_index_to_cell(i, d) for i, b in enumerate(bits) if b]
    return Shape.from_cells(cells)


def run_parallel_3d(
    program: ShapeProgram,
    d: int,
    k: Optional[int] = None,
    build_world: bool = True,
) -> ParallelResult:
    """Approach 1: the 3D slab of Figure 8.

    ``k`` defaults to the program's declared space bound. When
    ``build_world`` is set, the actual 3D world (square + z-lines) is
    constructed and the released output shape is extracted from it,
    exercising the 3D geometry substrate.
    """
    k = k if k is not None else max(program.space_bound(d), 4)
    bits, costs = _pixel_costs(program, d, k)
    shape = _shape_from_bits(bits, d)
    n = k * d * d
    # Parallel simulation phase: all pixels advance concurrently; the
    # elapsed parallel time is the slowest pixel's work. Building the slab
    # costs one interaction per attached node; releasing the memories one
    # per memory node; the release phase one per square cell plus dropped
    # bonds (counted on the world below when built).
    build_cost = n - 1
    release_memories = (k - 1) * d * d
    parallel = build_cost + max(costs) + release_memories + d * d
    sequential = build_cost + sum(costs) + release_memories + d * d
    waste = n - len(shape.cells)
    if build_world:
        world = World(dimension=3)
        states: Dict[Vec, object] = {}
        for x in range(d):
            for y in range(d):
                states[Vec(x, y, 0)] = "sq"
                for z in range(1, k):
                    states[Vec(x, y, z)] = "mem"
        world.add_component_from_cells(states)
        world.check_invariants()
        # Mark pixels and release: memories drop first, then off pixels.
        cid = next(iter(world.components))
        comp = world.components[cid]
        keep = set()
        for i, bit in enumerate(bits):
            cell2d = zigzag_index_to_cell(i, d)
            if bit:
                keep.add(Vec(cell2d.x, cell2d.y, 0))
        comp.bonds = {
            b
            for b in comp.bonds
            if all(world.nodes[nid].pos in keep for nid, _ in b)
        }
        comp.version += 1
        world._split_if_disconnected(comp)
        out_cid = world.nodes[comp.cells[next(iter(keep))]].component_id
        shape = world.component_shape(out_cid)
        if len(shape.cells) != len(keep):
            raise SimulationError("3D release left the shape disconnected")
    return ParallelResult(
        d=d,
        k=k,
        n=n,
        parallel_interactions=parallel,
        sequential_interactions=sequential,
        assembly_interactions=0,
        shape=shape.normalize(),
        waste=waste,
    )


# ----------------------------------------------------------------------
# Approach 2: segmented line (2D)
# ----------------------------------------------------------------------


@dataclass
class _Segment:
    """One row segment with its matching keys (Figure 9).

    ``index`` counts segments from 1; odd segments keep their orientation,
    even segments are flipped 180 degrees before attachment. ``key_cells``
    are the black/gray mark positions (in final square coordinates) whose
    alignment uniquely identifies the predecessor row.
    """

    index: int
    bits: List[bool]
    flipped: bool
    key_black: int
    key_gray: int


def _make_segments(bits: List[bool], d: int) -> List[_Segment]:
    """Build the ``d`` row segments with unique matching keys.

    The paper marks nodes ``i`` and ``i - 1`` of segment ``i`` counting
    from alternating ends; we realize the same mechanism with an explicit
    column-key scheme: segment ``i`` carries its black mark at column
    ``i mod d`` and its gray mark at column ``(i + 1) mod d``, so that
    ``black(b)`` sits directly above ``gray(a)`` iff ``b = a + 1`` (for
    ``1 <= a < b <= d``) — the uniqueness Figure 9(b) relies on. Even
    segments are additionally flagged as 180-degree flipped, matching the
    zig-zag pixel order of their row.
    """
    segments = []
    for i in range(1, d + 1):
        row_bits = bits[(i - 1) * d : i * d]
        segments.append(
            _Segment(i, row_bits, flipped=i % 2 == 0,
                     key_black=i % d, key_gray=(i + 1) % d)
        )
    return segments


def _segments_match(a: _Segment, b: _Segment, d: int) -> bool:
    """True iff ``b`` may attach above ``a``: b's black mark aligns with
    a's gray mark once their endpoints are aligned (Figure 9(b))."""
    del d
    return b.index > a.index and b.key_black == a.key_gray


def run_parallel_segments(
    program: ShapeProgram,
    d: int,
    k: Optional[int] = None,
    seed: Optional[int] = None,
) -> ParallelResult:
    """Approach 2: simulate on a flat line, then reassemble by keys.

    The reassembly is a random process: the scheduler brings uniformly
    random segment pairs into contact and a pair binds iff the key marks
    align (which happens only for consecutive segments); the count of
    contacts until the square completes is the assembly cost.
    """
    k = k if k is not None else max(program.space_bound(d), 4)
    bits, costs = _pixel_costs(program, d, k)
    n = k * d * d
    segments = _make_segments(bits, d)
    # Sanity: the key scheme is unique — segment i matches only i - 1.
    for a in segments:
        for b in segments:
            if a.index >= b.index:
                continue
            match = _segments_match(a, b, d)
            if match != (b.index == a.index + 1):
                raise SimulationError(
                    f"key marks are ambiguous for segments {a.index}, {b.index}"
                )
    rng = random.Random(seed)
    # Random assembly: clusters of consecutive segments merge on contact.
    clusters: List[List[_Segment]] = [[s] for s in segments]
    contacts = 0
    while len(clusters) > 1:
        i, j = rng.sample(range(len(clusters)), 2)
        contacts += 1
        a, b = clusters[i], clusters[j]
        if a[-1].index + 1 == b[0].index:
            merged = a + b
        elif b[-1].index + 1 == a[0].index:
            merged = b + a
        else:
            continue
        clusters = [c for idx, c in enumerate(clusters) if idx not in (i, j)]
        clusters.append(merged)
    ordered = clusters[0]
    if [s.index for s in ordered] != list(range(1, d + 1)):
        raise SimulationError("segments assembled out of order")
    shape = _shape_from_bits(bits, d)
    build_cost = n - 1
    release_memories = (k - 1) * d * d
    parallel = build_cost + max(costs) + release_memories + contacts + d * d
    sequential = build_cost + sum(costs) + release_memories + contacts + d * d
    return ParallelResult(
        d=d,
        k=k,
        n=n,
        parallel_interactions=parallel,
        sequential_interactions=sequential,
        assembly_interactions=contacts,
        shape=shape.normalize(),
        waste=n - len(shape.cells),
    )
