"""The end-to-end universal constructor (Theorem 4).

Pipeline: (1) Counting-on-a-Line with the Remark 2 exact-count extension
(the leader learns ``n`` w.h.p., stored in binary on its line); (2)
Square-Knowing-n assembles the ``d x d`` square with ``d = floor(sqrt(n))``
(for ``n = d^2`` there is no pre-square waste; otherwise the surplus nodes
remain free, Definition 4's waste); (3) the shape-constructing TM is
simulated on the square's zig-zag tape, one run per pixel; (4) the release
phase isolates the connected on-shape. The run fails — and reports so —
exactly when the counting stage under- or over-estimated ``n``, which
happens with the probability bounded by Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.constructors.counting_line import run_counting_on_a_line
from repro.constructors.square_known_n import run_square_known_n
from repro.constructors.tm_construction import (
    DistributedTMSquare,
    run_shape_construction,
)
from repro.geometry.grid import integer_sqrt
from repro.geometry.shape import Shape
from repro.machines.shape_programs import ShapeProgram, expected_shape


@dataclass
class UniversalResult:
    """Outcome of the full count -> square -> simulate -> release pipeline."""

    n: int
    n_estimate: int
    d: int
    shape: Shape
    counting_events: int
    square_events: int
    construction_interactions: int
    waste: int

    @property
    def count_exact(self) -> bool:
        return self.n_estimate == self.n

    @property
    def total_interactions(self) -> int:
        return (
            self.counting_events
            + self.square_events
            + self.construction_interactions
        )

    def matches(self, program: ShapeProgram) -> bool:
        """True iff the released shape equals the program's shape for d."""
        return self.shape.same_up_to_translation(expected_shape(program, self.d))


def run_universal(
    program: ShapeProgram,
    n: int,
    b: int = 4,
    seed: Optional[int] = None,
    exact_factor: int = 4,
) -> UniversalResult:
    """Run the universal constructor on ``n`` nodes.

    The three stages run in sequence on populations carried over from one
    another (the library stages them as separate worlds of the counted
    sizes; see DESIGN.md on stage gluing). Waste is ``n - |V(G)|``.
    """
    if n < max(9, b + 2):
        raise SimulationError(f"universal construction needs n >= 9, got {n}")
    seed0 = seed if seed is not None else 0
    count = run_counting_on_a_line(
        n, b, seed=seed0, exact_factor=exact_factor
    )
    n_hat = count.r0 + 1  # the leader plus everyone it counted
    d, _exact = integer_sqrt(n_hat)
    if d < 3:
        raise SimulationError("estimated population too small for a square")
    square = run_square_known_n(d * d, seed=seed0 + 1)
    tape = DistributedTMSquare(square.world, square._square_cid, d)
    construction = run_shape_construction(program, d, square=tape)
    return UniversalResult(
        n=n,
        n_estimate=n_hat,
        d=d,
        shape=construction.shape,
        counting_events=count.events,
        square_events=square.total_interactions,
        construction_interactions=construction.interactions,
        waste=n - len(construction.shape.cells),
    )
