"""Counting-on-a-Line (§6.1, Lemma 1) as a genuine 2-local agent protocol.

The unique leader runs the Counting-Upper-Bound process while storing the
counters ``r0``, ``r1`` and the *debt* counter ``r2`` in binary on a line of
nodes it assembles on the fly. Every node of the line holds one bit of each
counter; the leader is the line's right endpoint and holds the most
significant bits. Arithmetic is performed by a *cursor* that travels the
line one interaction at a time — the protocol below is expressed purely as
a transition function over pairs of local states, so it runs under any of
the library's schedulers with the exact interaction law of the paper.

Layout and operations:

* Bits are least-significant at the line's left end (the original leader
  node) and grow toward the leader, whose own state embeds the current
  most significant bits. When all ``r0`` bits are 1 (tape full) the next
  encountered ``q0`` is *bound* at the leader's right port; leadership
  transfers onto it and the old leader becomes the new top bit cell —
  this is the paper's "reorganizes the tape" step, and the bound node is
  recorded as debt in ``r2``.
* Cursor ops: ``i0`` (increment r0, recompute fullness), ``i1`` (increment
  r1 and compare r0 == r1 — the halting test), ``i2`` (increment the
  debt), ``d2`` (repay one debt when a ``q2`` is converted back to ``q1``).
  Each op is a left walk to the least significant bit followed by a right
  walk applying the carry and accumulating the fullness/equality/nonzero
  flags, exactly one interaction per hop.
* The head start: the leader ignores ``q1`` nodes until ``r0 >= b``
  (tracked by a bounded counter in its state), the paper's "initial
  advantage of b".

When the leader halts, the line holds ``n'`` in binary in the ``r0``
components with ``n' >= n/2`` w.h.p. (Theorem 1 carried over by Lemma 1)
and the line has exactly ``floor(lg r0) + 1`` nodes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.core.protocol import AgentProtocol, InteractionView, Update
from repro.core.scheduler import Scheduler
from repro.core.simulator import Simulation
from repro.core.world import World
from repro.geometry.ports import Port

# ----------------------------------------------------------------------
# State encodings (plain tuples: hashable, cheap, and explicit)
# ----------------------------------------------------------------------
# Leader:  ("L", mode, bits, full, r2nz, head, has_cells)
#   mode:  "idle" | "halt" | ("send", op[, pending]) | ("wait", op[, pending])
#   bits:  (r0_bit, r1_bit, r2_bit) — the leader's embedded top bits
#   full:  every r0 bit of the tape is 1
#   r2nz:  the debt counter is nonzero
#   head:  min(r0, b) — progress toward the head start
# Cell:    ("C", bits, leftmost, cursor)
#   cursor: None | ("gl", op) | ("ap", op, carry, acc)

FREE_STATES = ("q0", "q1", "q2")

#: Accumulator identities per op: AND-style ops start True, OR-style False.
_ACC_INIT = {"i0": True, "i1": True, "i2": False, "d2": False}


def _apply_op(
    bits: Tuple[int, int, int], op: str, carry: bool, acc: bool
) -> Tuple[Tuple[int, int, int], bool, bool]:
    """Apply one cursor op at a bit position; returns (bits', carry', acc')."""
    r0, r1, r2 = bits
    if op == "i0":
        if carry:
            carry = r0 == 1
            r0 = 1 - r0
        acc = acc and r0 == 1  # fullness: AND of r0 bits
    elif op == "i1":
        if carry:
            carry = r1 == 1
            r1 = 1 - r1
        acc = acc and r0 == r1  # equality: r0 == r1 bitwise
    elif op == "i2":
        if carry:
            carry = r2 == 1
            r2 = 1 - r2
        acc = acc or r2 == 1  # nonzero: OR of r2 bits
    elif op == "d2":
        if carry:  # "carry" doubles as the borrow flag
            carry = r2 == 0
            r2 = 1 - r2
        acc = acc or r2 == 1
    else:  # pragma: no cover - internal
        raise SimulationError(f"unknown cursor op {op!r}")
    return (r0, r1, r2), carry, acc


def _leader(mode, bits, full, r2nz, head, has_cells, ex=None):
    """Leader state; ``ex`` is the exact-count extension of Remark 2:
    ``None`` (classic halting), ``("t", r0_echo)`` while tracking, or
    ``("c", cooldown, r0_echo)`` during the confirmation wait."""
    return ("L", mode, bits, full, r2nz, head, has_cells, ex)


def _cell(bits, leftmost, cursor=None):
    return ("C", bits, leftmost, cursor)


class _CountingLineHandler:
    """The transition function delta, packaged for :class:`AgentProtocol`.

    With ``exact_factor`` set, the Remark 2 extension is enabled: instead
    of halting at ``r0 == r1``, the leader enters a confirmation wait and
    halts only after ``exact_factor * r0 * lg(r0)`` consecutive meetings
    without a fresh ``q0`` — after which w.h.p. it has met every node and
    ``r0 = n - 1`` exactly.
    """

    def __init__(self, b: int, exact_factor: Optional[int] = None) -> None:
        self.b = b
        self.exact_factor = exact_factor

    def _cool_limit(self, echo: int) -> int:
        assert self.exact_factor is not None
        return self.exact_factor * max(1, echo) * max(1, echo.bit_length())

    def _counted_q0(self, ex):
        """Update the exact-mode tracker after a fresh q0 was counted."""
        if ex is None:
            return None
        if ex[0] == "t":
            return ("t", ex[1] + 1)
        return ("c", 0, ex[2] + 1)

    def _cooled(self, ex):
        """One ineffective-for-counting meeting during the confirmation."""
        cooldown = ex[1] + 1
        if cooldown >= self._cool_limit(ex[2]):
            return "halt", ("c", cooldown, ex[2])
        return "idle", ("c", cooldown, ex[2])

    # -- main entry ----------------------------------------------------

    def __call__(self, view: InteractionView) -> Optional[Update]:
        for s1, p1, s2, p2, flip in (
            (view.state1, view.port1, view.state2, view.port2, False),
            (view.state2, view.port2, view.state1, view.port1, True),
        ):
            result = self._oriented(s1, p1, s2, p2, view.bond)
            if result is not None:
                a, b_, bond = result
                return (b_, a, bond) if flip else (a, b_, bond)
        return None

    # -- oriented dispatch ----------------------------------------------

    def _oriented(self, s1, p1, s2, p2, bond) -> Optional[Update]:
        if isinstance(s1, tuple) and s1[0] == "L":
            if isinstance(s2, str) and s2 in FREE_STATES:
                return self._leader_meets_free(s1, p1, s2, p2, bond)
            if isinstance(s2, tuple) and s2[0] == "C":
                return self._leader_meets_cell(s1, p1, s2, p2, bond)
            return None
        if isinstance(s1, tuple) and s1[0] == "C":
            if isinstance(s2, tuple) and s2[0] == "C":
                return self._cell_meets_cell(s1, p1, s2, p2, bond)
        return None

    # -- leader vs free node --------------------------------------------

    def _leader_meets_free(self, leader, p1, free, p2, bond) -> Optional[Update]:
        _, mode, bits, full, r2nz, head, has_cells, ex = leader
        if mode != "idle":
            return None
        if p1 != Port.RIGHT or p2 != Port.LEFT or bond != 0:
            # Counting meetings happen at the leader's right port against
            # the free node's left port (the paper's convention).
            return None
        confirming = ex is not None and ex[0] == "c"
        if free == "q0":
            if not full:
                return self._count_q0(leader), "q1", 0
            # Tape full: bind the q0 as the new leader cell; the old leader
            # becomes the top bit cell. The bound node is debt (r2 += 1).
            new_cell = _cell(bits, leftmost=not has_cells)
            new_leader = _leader(
                ("send", "i0", "i2"), (0, 0, 0), False, r2nz, head, True, ex
            )
            return new_cell, new_leader, 1
        if free == "q1":
            if confirming:
                new_mode, new_ex = self._cooled(ex)
                return _leader(new_mode, bits, full, r2nz, head, has_cells, new_ex), "q1", 0
            if head < self.b:
                return None  # head start not reached: ignore q1s
            if not has_cells:
                # Single-node tape: increment r1 and test halting locally.
                nbits, carry, eq = _apply_op(bits, "i1", True, True)
                if carry:
                    raise SimulationError("r1 overflowed r0 — invariant broken")
                new_mode, new_ex = self._triggered(eq, ex)
                return _leader(new_mode, nbits, full, r2nz, head, has_cells, new_ex), "q2", 0
            return _leader(("send", "i1"), bits, full, r2nz, head, True, ex), "q2", 0
        if free == "q2":
            if confirming:
                new_mode, new_ex = self._cooled(ex)
                return _leader(new_mode, bits, full, r2nz, head, has_cells, new_ex), "q2", 0
            if not r2nz:
                return None
            if not has_cells:  # pragma: no cover - debt requires cells
                raise SimulationError("debt recorded without any tape cell")
            return _leader(("send", "d2"), bits, full, r2nz, head, True, ex), "q1", 0
        return None

    def _triggered(self, eq: bool, ex):
        """The r0 == r1 halting condition fired (or not)."""
        if not eq:
            return "idle", ex
        if ex is None:
            return "halt", None
        # Exact mode: enter the confirmation wait instead of halting.
        return "idle", ("c", 0, ex[1] if ex[0] == "t" else ex[2])

    def _count_q0(self, leader):
        """Count one q0 into r0 (dispatching a walk when cells exist)."""
        _, mode, bits, full, r2nz, head, has_cells, ex = leader
        if not has_cells:
            nbits, carry, is_full = _apply_op(bits, "i0", True, True)
            if carry:
                raise SimulationError("i0 overflow on a non-full tape")
            return _leader(
                "idle", nbits, is_full, r2nz, min(head + 1, self.b), False,
                self._counted_q0(ex),
            )
        return _leader(("send", "i0"), bits, full, r2nz, head, True, ex)

    # -- leader vs its top cell (dispatch / completion) -------------------

    def _leader_meets_cell(self, leader, p1, cell, p2, bond) -> Optional[Update]:
        _, mode, bits, full, r2nz, head, has_cells, ex = leader
        _, cbits, leftmost, cursor = cell
        if bond != 1 or p1 != Port.LEFT or p2 != Port.RIGHT:
            return None
        if isinstance(mode, tuple) and mode[0] == "send" and cursor is None:
            op = mode[1]
            pending = mode[2] if len(mode) > 2 else None
            new_mode = ("wait", op) if pending is None else ("wait", op, pending)
            if leftmost:
                # One-cell tape: apply at the cell immediately (arrival and
                # application coincide, as for any leftmost arrival).
                nbits, carry, acc = _apply_op(cbits, op, True, _ACC_INIT[op])
                new_cursor = ("ap", op, carry, acc)
                return (
                    _leader(new_mode, bits, full, r2nz, head, has_cells, ex),
                    _cell(nbits, leftmost, new_cursor),
                    1,
                )
            return (
                _leader(new_mode, bits, full, r2nz, head, has_cells, ex),
                _cell(cbits, leftmost, ("gl", op)),
                1,
            )
        if (
            isinstance(mode, tuple)
            and mode[0] == "wait"
            and cursor is not None
            and cursor[0] == "ap"
        ):
            _, op, carry, acc = cursor
            if op != mode[1]:  # pragma: no cover - internal
                raise SimulationError("cursor/op mismatch at the leader")
            nbits, carry, acc = _apply_op(bits, op, carry, acc)
            if carry and op != "i0":
                raise SimulationError(f"op {op} overflowed past the leader")
            if carry:  # pragma: no cover - prevented by the fullness flag
                raise SimulationError("r0 overflow: bind should have happened")
            pending = mode[2] if len(mode) > 2 else None
            full2, r2nz2, head2, ex2 = full, r2nz, head, ex
            new_mode: object = "idle"
            if op == "i0":
                full2 = acc
                head2 = min(head + 1, self.b)
                ex2 = self._counted_q0(ex)
            elif op == "i1":
                new_mode, ex2 = self._triggered(acc, ex)
            else:  # i2 / d2
                r2nz2 = acc
            if pending is not None and new_mode == "idle":
                new_mode = ("send", pending)
            return (
                _leader(new_mode, nbits, full2, r2nz2, head2, has_cells, ex2),
                _cell(cbits, leftmost, None),
                1,
            )
        return None

    # -- cursor hops between cells ----------------------------------------

    def _cell_meets_cell(self, c1, p1, c2, p2, bond) -> Optional[Update]:
        if bond != 1:
            return None
        _, b1, lm1, cur1 = c1
        _, b2, lm2, cur2 = c2
        # Leftward hop: holder's left port against left neighbor's right.
        if (
            cur1 is not None
            and cur1[0] == "gl"
            and p1 == Port.LEFT
            and p2 == Port.RIGHT
            and cur2 is None
        ):
            op = cur1[1]
            if lm2:
                nbits, carry, acc = _apply_op(b2, op, True, _ACC_INIT[op])
                return _cell(b1, lm1, None), _cell(nbits, lm2, ("ap", op, carry, acc)), 1
            return _cell(b1, lm1, None), _cell(b2, lm2, ("gl", op)), 1
        # Rightward hop: holder's right port against right neighbor's left.
        if (
            cur1 is not None
            and cur1[0] == "ap"
            and p1 == Port.RIGHT
            and p2 == Port.LEFT
            and cur2 is None
        ):
            _, op, carry, acc = cur1
            nbits, carry, acc = _apply_op(b2, op, carry, acc)
            return _cell(b1, lm1, None), _cell(nbits, lm2, ("ap", op, carry, acc)), 1
        return None


def _is_hot(state) -> bool:
    if isinstance(state, str):
        return False
    if state[0] == "L":
        return state[1] != "halt"
    if state[0] == "C":
        return state[3] is not None  # cursor holder
    return True


def _pair_compatible(s1, s2) -> bool:
    kinds = []
    for s in (s1, s2):
        if isinstance(s, str):
            kinds.append("free")
        elif isinstance(s, tuple) and s[0] == "L":
            kinds.append("L")
        else:
            kinds.append("C")
    pair = frozenset(kinds) if kinds[0] != kinds[1] else frozenset([kinds[0]])
    return pair in (
        frozenset(["L", "free"]),
        frozenset(["L", "C"]),
        frozenset(["C"]),
    )


def counting_line_protocol(
    b: int = 4, exact_factor: Optional[int] = None
) -> AgentProtocol:
    """The Counting-on-a-Line protocol with head start ``b``.

    ``exact_factor`` enables the Remark 2 extension: the leader, after the
    normal halting condition fires, keeps counting until it has seen
    ``exact_factor * r0 * lg(r0)`` consecutive meetings with no fresh
    ``q0``; it then halts with ``r0 = n - 1`` w.h.p. (the exact count).
    """
    handler = _CountingLineHandler(b, exact_factor)
    ex0 = None if exact_factor is None else ("t", 0)
    return AgentProtocol(
        handler,
        initial_state="q0",
        leader_state=_leader("idle", (0, 0, 0), False, False, 0, False, ex0),
        hot=_is_hot,
        halted=lambda s: isinstance(s, tuple) and s[0] == "L" and s[1] == "halt",
        compatible=_pair_compatible,
        name=f"counting-on-a-line(b={b})",
    )


# ----------------------------------------------------------------------
# Running and decoding
# ----------------------------------------------------------------------


@dataclass
class CountingLineResult:
    """Outcome of a Counting-on-a-Line run."""

    n: int
    b: int
    r0: int
    r1: int
    r2: int
    line_length: int
    events: int
    halted: bool

    @property
    def success(self) -> bool:
        """Theorem 1 / Lemma 1 guarantee: counted at least half."""
        return 2 * self.r0 >= self.n

    @property
    def expected_length(self) -> int:
        """Lemma 1: the line has ``floor(lg r0) + 1`` nodes."""
        return self.r0.bit_length() if self.r0 > 0 else 1


def counting_line_world(
    n: int, b: int = 4, exact_factor: Optional[int] = None
) -> Tuple[World, AgentProtocol]:
    """A fresh solution of one leader and ``n - 1`` free q0 nodes."""
    if n < b + 2:
        raise SimulationError(
            f"counting-on-a-line needs n >= b + 2 (got n={n}, b={b}): "
            "otherwise r0 can never reach the head start"
        )
    protocol = counting_line_protocol(b, exact_factor)
    world = World.of_free_nodes(n, protocol, leaders=1)
    return world, protocol


def decode_counters(world: World) -> Tuple[int, int, int, int]:
    """Read ``(r0, r1, r2, line_length)`` off the leader's line.

    Bits are least significant at the line's left end; the leader's
    embedded bits are the most significant.
    """
    leader_nid = None
    for nid, state in world.states().items():
        if isinstance(state, tuple) and state[0] == "L":
            leader_nid = nid
            break
    if leader_nid is None:
        raise SimulationError("no leader in the world")
    comp = world.component_of(leader_nid)
    ordered = [comp.cells[cell] for cell in sorted(comp.cells)]
    r0 = r1 = r2 = 0
    for k, nid in enumerate(ordered):
        state = world.state_of(nid)
        if isinstance(state, tuple) and state[0] == "C":
            bits = state[1]
        else:
            bits = state[2]  # the leader's embedded bits
        r0 += bits[0] << k
        r1 += bits[1] << k
        r2 += bits[2] << k
    return r0, r1, r2, len(ordered)


def run_counting_on_a_line(
    n: int,
    b: int = 4,
    seed: Optional[int] = None,
    scheduler: Optional[Scheduler] = None,
    max_events: int = 50_000_000,
    exact_factor: Optional[int] = None,
) -> CountingLineResult:
    """One full Counting-on-a-Line execution to termination."""
    world, protocol = counting_line_world(n, b, exact_factor)
    kwargs = {} if scheduler is None else {"scheduler": scheduler}
    sim = Simulation(world, protocol, seed=seed, **kwargs)
    result = sim.run(
        max_events=max_events,
        until=lambda w: any(
            isinstance(s, tuple) and s[0] == "L" and s[1] == "halt"
            for s in w.states().values()
        ),
        require_stop=True,
    )
    r0, r1, r2, length = decode_counters(world)
    return CountingLineResult(n, b, r0, r1, r2, length, result.events, True)
