"""Serialization surfaces shared by the CLI, benchmarks, and CI.

One writer for every result collection: ``repro sweep --json``, the
``BENCH_<scenario>.json`` benchmark artifacts, and the CI smoke job all
emit the same ``kind: "results"`` payload so one validator
(:func:`validate_payload`) covers them all. :func:`known_schemas` is the
dispatch registry behind ``repro validate`` — one entry per emitted
schema id: single results (``repro.experiments.result/v1``), collections
(``repro.experiments.results/v1``), benchmark history records
(``repro.experiments.history/v1``), analyzer reports
(``repro.analysis.report/v1``), streaming traces (``repro.trace/v1``),
and first-divergence trace diffs (``repro.trace.diff/v1``). The
scenario-index formatters here also generate ``EXPERIMENTS.md``
(``repro list --format md``), which a test keeps in sync with the
registry.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.experiments.registry import Scenario, all_scenarios, protocol_specs
from repro.experiments.result import (
    RESULT_SCHEMA,
    ExperimentResult,
    validate_result_dict,
)

#: Schema identifier for result-collection payloads.
RESULTS_SCHEMA = "repro.experiments.results/v1"

#: Schema identifier for benchmark-history records (history.jsonl lines).
HISTORY_SCHEMA = "repro.experiments.history/v1"

#: Schema identifier for analyzer reports (owned by repro.analysis.report;
#: duplicated here so dispatching on it does not import the analysis layer).
ANALYSIS_SCHEMA_ID = "repro.analysis.report/v1"

#: Schema identifier for streaming traces (owned by repro.trace.encoding;
#: duplicated here so dispatching on it does not import the trace layer).
#: Trace artifacts are NDJSON — one record per line, hash-chained — so
#: ``repro validate`` feeds whole files to the trace validator; a payload
#: that parsed as a single JSON object is at most a trace's header line.
TRACE_SCHEMA_ID = "repro.trace/v1"

#: Schema identifier for first-divergence trace diffs (owned by
#: repro.trace.diff; duplicated here for the same lazy-dispatch reason).
DIFF_SCHEMA_ID = "repro.trace.diff/v1"


# ----------------------------------------------------------------------
# Result collections
# ----------------------------------------------------------------------


def results_payload(
    results: Iterable[ExperimentResult],
    header: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The uniform collection payload (sweeps, benchmarks, CI smoke)."""
    payload: Dict[str, Any] = {"schema": RESULTS_SCHEMA, "kind": "results"}
    if header:
        payload.update({k: v for k, v in header.items() if k not in payload})
    payload["results"] = [r.to_dict() for r in results]
    return payload


def write_results_json(
    path: Union[str, Path],
    results: Iterable[ExperimentResult],
    header: Optional[Mapping[str, Any]] = None,
) -> Path:
    path = Path(path)
    path.write_text(json.dumps(results_payload(results, header), indent=2, sort_keys=True) + "\n")
    return path


def write_bench_json(
    scenario: str,
    results: Iterable[ExperimentResult],
    directory: Union[str, Path],
    header: Optional[Mapping[str, Any]] = None,
) -> Path:
    """The shared benchmark artifact writer: ``BENCH_<scenario>.json``."""
    return write_results_json(
        Path(directory) / f"BENCH_{scenario}.json", results, header
    )


def _validate_results_collection(data: Mapping) -> List[str]:
    errors: List[str] = []
    results = data.get("results")
    if not isinstance(results, list):
        return ["results must be an array"]
    for i, entry in enumerate(results):
        errors.extend(f"results[{i}]: {e}" for e in validate_result_dict(entry))
    return errors


def _validate_analysis(data: Mapping) -> List[str]:
    # Imported lazily: repro.analysis.report imports this module's
    # sibling registry, and eager cross-imports would cycle.
    from repro.analysis.report import validate_analysis_payload

    return validate_analysis_payload(data)


def _validate_trace_header(data: Mapping) -> List[str]:
    # A complete trace never parses as one JSON object (it is NDJSON
    # with at least a header and an end anchor), so this branch sees a
    # lone header record: re-encode canonically and run the full trace
    # validator, which reports what is missing. Imported lazily to
    # keep the experiment layer free of the trace layer.
    from repro.trace.encoding import encode_line
    from repro.trace.reader import validate_trace_bytes

    return validate_trace_bytes(encode_line(dict(data)))


def _validate_diff(data: Mapping) -> List[str]:
    from repro.trace.diff import validate_diff_payload

    return validate_diff_payload(dict(data))


def known_schemas() -> Dict[str, Any]:
    """The schema-id registry ``repro validate`` dispatches on.

    Maps every known schema id to its validator callable. A single source
    of truth: the dispatch in :func:`validate_payload` *and* the
    unknown-schema error message both derive from this mapping, so a newly
    registered schema is automatically named in the error.
    """
    return {
        RESULT_SCHEMA: validate_result_dict,
        RESULTS_SCHEMA: _validate_results_collection,
        HISTORY_SCHEMA: validate_history_record,
        ANALYSIS_SCHEMA_ID: _validate_analysis,
        TRACE_SCHEMA_ID: _validate_trace_header,
        DIFF_SCHEMA_ID: _validate_diff,
    }


def validate_payload(data: Any) -> List[str]:
    """Validate one emitted JSON payload against its declared schema.

    Dispatches on ``data["schema"]`` through :func:`known_schemas`;
    ``[]`` = valid. Unknown (or missing) schema ids name the full known
    registry instead of a bare rejection.
    """
    if not isinstance(data, Mapping):
        return [f"expected a JSON object, got {type(data).__name__}"]
    registry = known_schemas()
    validator = registry.get(data.get("schema"))
    if validator is None:
        known = ", ".join(repr(schema) for schema in registry)
        return [
            f"unknown schema {data.get('schema')!r} (known schemas: {known})"
        ]
    return validator(data)


# ----------------------------------------------------------------------
# Benchmark history (benchmarks/history.jsonl)
# ----------------------------------------------------------------------


def history_record(
    bench: str,
    results: Iterable[ExperimentResult],
    git_sha: Optional[str] = None,
    recorded_at: Optional[str] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """One normalized perf-trajectory record for a bench run.

    Aggregates the run's deterministic counters (evaluations, events, raw
    steps — the regression-gateable numbers) and its advisory total wall
    time, stamped with the git SHA the run was taken at. ``extra`` merges
    additional bench-specific scalars (speedup factors, cache hit counts)
    and may fill normalized fields the results left unset — benches whose
    artifact is not an ``ExperimentResult`` collection pass ``results=[]``
    and supply their counters directly — but never overrides a counter
    the results did determine.
    """
    results = list(results)

    def total(attr: str) -> Optional[int]:
        values = [getattr(r, attr) for r in results if getattr(r, attr) is not None]
        return sum(values) if values else None

    record: Dict[str, Any] = {
        "schema": HISTORY_SCHEMA,
        "bench": bench,
        "scenarios": sorted({r.scenario for r in results}),
        "trials": len(results),
        "evaluations": total("evaluations"),
        "events": total("events"),
        "raw_steps": total("raw_steps"),
        "wall_time": sum(r.wall_time for r in results) if results else None,
        "git_sha": git_sha,
        "recorded_at": recorded_at,
    }
    if extra:
        for key, value in extra.items():
            if key not in record or record[key] is None:
                record[key] = value
    return record


#: Required history-record fields: name -> (allowed types, nullable).
_HISTORY_FIELDS: Dict[str, Any] = {
    "bench": ((str,), False),
    "scenarios": ((list,), False),
    "trials": ((int,), False),
    "evaluations": ((int,), True),
    "events": ((int,), True),
    "raw_steps": ((int,), True),
    "wall_time": ((int, float), True),
    "git_sha": ((str,), True),
    "recorded_at": ((str,), True),
}


def validate_history_record(record: Any) -> List[str]:
    """Validate one ``history.jsonl`` record; [] = valid.

    The perf-trajectory gate only works if every appended line stays
    machine-comparable, so the benchmark conftest validates each record
    at append time with this function.
    """
    if not isinstance(record, Mapping):
        return [f"expected a JSON object, got {type(record).__name__}"]
    errors: List[str] = []
    if record.get("schema") != HISTORY_SCHEMA:
        errors.append(
            f"schema must be {HISTORY_SCHEMA!r}, got {record.get('schema')!r}"
        )
    for key, (types, nullable) in _HISTORY_FIELDS.items():
        if key not in record:
            errors.append(f"missing field {key!r}")
            continue
        value = record[key]
        if value is None:
            if not nullable:
                errors.append(f"{key} must not be null")
            continue
        if isinstance(value, bool) or not isinstance(value, types):
            names = "/".join(t.__name__ for t in types)
            errors.append(f"{key} must be {names}, got {type(value).__name__}")
    scenarios = record.get("scenarios")
    if isinstance(scenarios, list):
        for i, name in enumerate(scenarios):
            if not isinstance(name, str):
                errors.append(f"scenarios[{i}] must be a string")
    return errors


def append_history(
    path: Union[str, Path],
    bench: str,
    results: Iterable[ExperimentResult],
    git_sha: Optional[str] = None,
    recorded_at: Optional[str] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Append one :func:`history_record` line to ``path`` (JSONL).

    This is the seed of the perf-trajectory gate: every bench run appends
    exactly one normalized record, so regressions are a diff over
    ``benchmarks/history.jsonl`` instead of archaeology over ad-hoc
    artifact shapes.
    """
    record = history_record(bench, results, git_sha, recorded_at, extra)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


# ----------------------------------------------------------------------
# Scenario index (repro list / describe, EXPERIMENTS.md)
# ----------------------------------------------------------------------


def _param_cell(scenario: Scenario) -> str:
    parts = []
    for p in scenario.params:
        spec = f"{p.name}={p.default!r}"
        if p.choices is not None:
            spec += f" ∈ {{{', '.join(str(c) for c in p.choices)}}}"
        parts.append(spec)
    return ", ".join(parts) if parts else "—"


def _rng_cell(scenario: Scenario) -> str:
    if scenario.deterministic:
        return "deterministic"
    return "seeded + scheduler" if scenario.schedulable else "seeded"


def format_scenario_list(fmt: str = "text") -> str:
    """The scenario index, as plain text or as Markdown (EXPERIMENTS.md)."""
    scenarios = all_scenarios()
    if fmt == "text":
        width = max(len(s.name) for s in scenarios)
        lines = [f"{s.name:<{width}}  {s.summary}" for s in scenarios]
        return "\n".join(lines)
    if fmt == "md":
        lines = [
            "# EXPERIMENTS — registered scenarios",
            "",
            "Generated from the scenario registry (`repro list --format md`);",
            "`tests/test_experiments.py` fails when this file drifts from the",
            "registry. Run any row with `repro run <name>`, grids with",
            "`repro sweep <name>`; `repro describe <name>` prints the full",
            "parameter schema. `repro sweep --cache` serves repeated trials",
            "from the content-addressed trial store (provenance-verified on",
            "load), and the same store backs the long-running sweep service:",
            "`repro serve` + `repro submit / status / fetch`. Any run records",
            "to a streaming trace (`repro record <name>`), replays bit-exactly",
            "(`repro replay`), and diffs against another trace or a live",
            "re-simulation to the first diverging event (`repro diff`); the",
            "committed golden set replays under `repro goldens check`.",
            "",
            "| scenario | summary | params (defaults) | randomness | tags |",
            "|---|---|---|---|---|",
        ]
        for s in scenarios:
            lines.append(
                f"| `{s.name}` | {s.summary} | {_param_cell(s)} "
                f"| {_rng_cell(s)} | {', '.join(s.tags) or '—'} |"
            )
        lines += [
            "",
            "Every public `run_*` workload entrypoint in the library is",
            "reachable through one of these scenarios (`covers` fields,",
            "enforced by the registry-completeness test); results share the",
            "`ExperimentResult` schema of `repro.experiments.result`.",
            "",
        ]
        return "\n".join(lines)
    raise ValueError(f"unknown list format {fmt!r} (expected 'text' or 'md')")


def describe_scenario(scenario: Scenario) -> str:
    """Human-readable schema dump for ``repro describe <name>``."""
    lines = [
        f"{scenario.name} — {scenario.summary}",
        f"  tags:        {', '.join(scenario.tags) or '—'}",
        f"  randomness:  {_rng_cell(scenario)}",
        f"  covers:      {', '.join(scenario.covers) or '—'}",
        "  params:",
    ]
    if not scenario.params:
        lines.append("    (none)")
    for p in scenario.params:
        extra = f", choices {list(p.choices)}" if p.choices is not None else ""
        lines.append(
            f"    --{p.name.replace('_', '-')} ({p.type}, default {p.default!r}{extra})"
            + (f": {p.help}" if p.help else "")
        )
    if scenario.protocols:
        # Scheduler-driven scenarios report the candidate backend the
        # schedulers would use (columnar vs pure-Python fallback, resolved
        # against REPRO_COLUMNAR and numpy availability) and their
        # compiled programs: state count, rule count and hot-state set of
        # the packed IR the schedulers actually dispatch on
        # (repro.core.program).
        from repro.analysis.protocol import analyze_protocol
        from repro.core.columnar import backend_name

        lines.append(f"  backend:     {backend_name()}")
        lines.append("  protocols:")
        for spec in protocol_specs(scenario):
            protocol = spec.factory()
            program = protocol.program
            name = getattr(protocol, "name", type(protocol).__name__)
            lines.append(f"    {name}: {program.describe()}")
            report = analyze_protocol(protocol, extra_initial=spec.extra_initial)
            lines.append(f"      analysis: {report.summary()}")
    return "\n".join(lines)
