"""Execution: one spec, or a parallel seed-sweep fan-out.

:func:`run_experiment` executes a single :class:`ExperimentSpec` through
its registered scenario adapter and wraps the outcome into the uniform
:class:`ExperimentResult`. :func:`run_sweep` expands a :class:`SweepSpec`
and executes every trial, either inline (``workers <= 1``) or fanned out
over a ``ProcessPoolExecutor``. Because each trial's seed is derived
declaratively (``repro.experiments.spec.derive_seed``) and trials share no
state, the result list is **bit-identical for any worker count** — results
come back in expansion order, and only ``wall_time`` may differ between a
serial and a parallel run.

``run_sweep(cache=...)`` threads the content-addressed trial store
(:mod:`repro.experiments.store`) through the same seam: cached trials are
served from disk (provenance-verified on load, zero RNG consumed, the
scenario adapter never runs) and only the misses reach the pool, which is
sized to the miss count. The long-running sweep service
(:mod:`repro.experiments.service`) reuses both this worker function and
the store, so daemon and in-process sweeps share one cache.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ReproError
from repro.experiments.registry import get_scenario
from repro.experiments.result import ExperimentResult
from repro.experiments.spec import ExperimentSpec, SweepSpec
from repro.experiments.store import TrialStore, resolve_store


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Execute one trial and return the uniform result record."""
    spec = spec.resolved()
    scn = get_scenario(spec.scenario)
    # wall_time is a reported measurement, not a result input: the trial
    # outcome is fully determined by (scenario, params, seed, scheduler).
    start = time.perf_counter()  # lint: allow-wallclock
    outcome = scn.run(spec.params, spec.seed, spec.scheduler)
    wall = time.perf_counter() - start  # lint: allow-wallclock
    return ExperimentResult(
        scenario=spec.scenario,
        params=dict(spec.params),
        seed=spec.seed,
        scheduler=spec.scheduler,
        events=outcome.events,
        raw_steps=outcome.raw_steps,
        evaluations=outcome.evaluations,
        stop_reason=outcome.stop_reason,
        wall_time=wall,
        metrics=dict(outcome.metrics),
        renders=dict(outcome.renders),
    )


def _sweep_worker(payload: Dict) -> Dict:
    """Top-level (picklable) worker: spec dict in, result dict out.

    Serialized dicts cross the process boundary instead of live objects so
    a ``spawn``-start pool (macOS/Windows default) works exactly like
    ``fork``: the child re-imports the registry on first use.
    """
    import repro.experiments  # ensure built-in scenarios are registered

    spec = ExperimentSpec(
        scenario=payload["scenario"],
        params=payload["params"],
        seed=payload["seed"],
        scheduler=payload["scheduler"],
    )
    return run_experiment(spec).to_dict()


def spec_payload(spec: ExperimentSpec) -> Dict:
    """The picklable dict form of a resolved spec (pool boundary shape)."""
    return {
        "scenario": spec.scenario,
        "params": dict(spec.params),
        "seed": spec.seed,
        "scheduler": spec.scheduler,
    }


def _run_specs(specs: List[ExperimentSpec], workers: int) -> List[ExperimentResult]:
    """Execute ``specs`` in order, inline or over a capped process pool.

    The pool is never wider than the work: ``max_workers`` is capped at
    ``len(specs)`` so a small sweep (or the uncached remainder of a
    mostly-cached one) does not spawn idle worker processes.
    """
    if not specs:
        return []
    if workers <= 1 or len(specs) == 1:
        return [run_experiment(spec) for spec in specs]
    with ProcessPoolExecutor(max_workers=min(workers, len(specs))) as pool:
        # map() preserves submission order regardless of completion order.
        dicts = list(pool.map(_sweep_worker, [spec_payload(s) for s in specs]))
    return [ExperimentResult.from_dict(d) for d in dicts]


def run_sweep(
    sweep: SweepSpec,
    workers: int = 1,
    cache: Union[None, bool, str, Path, TrialStore] = None,
) -> List[ExperimentResult]:
    """Execute every trial of ``sweep``; results in expansion order.

    ``workers <= 1`` runs inline (no pool, easiest to debug); larger
    values fan trials out over that many processes (capped at the trial
    count). Either way the returned results — seeds, counters, metrics,
    renders — are identical; only wall times differ.

    ``cache`` enables the content-addressed trial store (``True`` for the
    default root, a path, or a :class:`TrialStore` — pass the instance to
    read its hit/miss counters afterwards). Cached trials are served from
    disk after provenance verification and consume no RNG; only misses
    run, and each freshly computed result is stored before returning. The
    result list is bit-identical to an uncached run for any worker count
    — a cache hit returns the original record verbatim, ``wall_time``
    included.
    """
    specs = [spec.resolved() for spec in sweep.specs()]
    if not specs:
        raise ReproError("sweep expanded to zero trials")
    store = resolve_store(cache)
    if store is None:
        return _run_specs(specs, workers)
    results: List[Optional[ExperimentResult]] = [store.get(spec) for spec in specs]
    miss = [i for i, r in enumerate(results) if r is None]
    for i, result in zip(miss, _run_specs([specs[i] for i in miss], workers)):
        store.put(specs[i], result)
        results[i] = result
    return results  # type: ignore[return-value]  # every slot is filled


def run_named(
    scenario: str,
    seed: Optional[int] = None,
    scheduler: Optional[str] = None,
    **params,
) -> ExperimentResult:
    """Keyword-argument convenience: ``run_named("counting", n=64)``."""
    return run_experiment(
        ExperimentSpec(scenario=scenario, params=params, seed=seed, scheduler=scheduler)
    )
