"""Execution: one spec, or a parallel seed-sweep fan-out.

:func:`run_experiment` executes a single :class:`ExperimentSpec` through
its registered scenario adapter and wraps the outcome into the uniform
:class:`ExperimentResult`. :func:`run_sweep` expands a :class:`SweepSpec`
and executes every trial, either inline (``workers <= 1``) or fanned out
over a ``ProcessPoolExecutor``. Because each trial's seed is derived
declaratively (``repro.experiments.spec.derive_seed``) and trials share no
state, the result list is **bit-identical for any worker count** — results
come back in expansion order, and only ``wall_time`` may differ between a
serial and a parallel run.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.experiments.registry import get_scenario
from repro.experiments.result import ExperimentResult
from repro.experiments.spec import ExperimentSpec, SweepSpec


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Execute one trial and return the uniform result record."""
    spec = spec.resolved()
    scn = get_scenario(spec.scenario)
    start = time.perf_counter()
    outcome = scn.run(spec.params, spec.seed, spec.scheduler)
    wall = time.perf_counter() - start
    return ExperimentResult(
        scenario=spec.scenario,
        params=dict(spec.params),
        seed=spec.seed,
        scheduler=spec.scheduler,
        events=outcome.events,
        raw_steps=outcome.raw_steps,
        evaluations=outcome.evaluations,
        stop_reason=outcome.stop_reason,
        wall_time=wall,
        metrics=dict(outcome.metrics),
        renders=dict(outcome.renders),
    )


def _sweep_worker(payload: Dict) -> Dict:
    """Top-level (picklable) worker: spec dict in, result dict out.

    Serialized dicts cross the process boundary instead of live objects so
    a ``spawn``-start pool (macOS/Windows default) works exactly like
    ``fork``: the child re-imports the registry on first use.
    """
    import repro.experiments  # ensure built-in scenarios are registered

    spec = ExperimentSpec(
        scenario=payload["scenario"],
        params=payload["params"],
        seed=payload["seed"],
        scheduler=payload["scheduler"],
    )
    return run_experiment(spec).to_dict()


def run_sweep(
    sweep: SweepSpec,
    workers: int = 1,
) -> List[ExperimentResult]:
    """Execute every trial of ``sweep``; results in expansion order.

    ``workers <= 1`` runs inline (no pool, easiest to debug); larger
    values fan trials out over that many processes. Either way the
    returned results — seeds, counters, metrics, renders — are identical;
    only wall times differ.
    """
    specs = [spec.resolved() for spec in sweep.specs()]
    if not specs:
        raise ReproError("sweep expanded to zero trials")
    if workers <= 1:
        return [run_experiment(spec) for spec in specs]
    payloads = [
        {
            "scenario": spec.scenario,
            "params": dict(spec.params),
            "seed": spec.seed,
            "scheduler": spec.scheduler,
        }
        for spec in specs
    ]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # map() preserves submission order regardless of completion order.
        dicts = list(pool.map(_sweep_worker, payloads))
    return [ExperimentResult.from_dict(d) for d in dicts]


def run_named(
    scenario: str,
    seed: Optional[int] = None,
    scheduler: Optional[str] = None,
    **params,
) -> ExperimentResult:
    """Keyword-argument convenience: ``run_named("counting", n=64)``."""
    return run_experiment(
        ExperimentSpec(scenario=scenario, params=params, seed=seed, scheduler=scheduler)
    )
