"""Declarative run specifications and deterministic seed derivation.

An :class:`ExperimentSpec` is everything needed to reproduce one trial:
scenario name, fully-resolved params, seed, scheduler kind. A
:class:`SweepSpec` is the declarative grid form — parameter value lists ×
trials — that expands to a deterministic, ordered list of specs whose
per-trial seeds derive from the base seed by :func:`derive_seed`, so a
sweep is bit-reproducible regardless of how many worker processes execute
it (``repro.experiments.runner``).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional

from repro.errors import ReproError
from repro.experiments.registry import MetricValue, get_scenario


def derive_seed(
    base_seed: int,
    scenario: str,
    params: Mapping[str, MetricValue],
    trial: int,
) -> int:
    """The sweep seed-derivation rule (stable across processes and runs).

    SHA-256 over the canonical JSON of ``(base_seed, scenario, sorted
    params, trial)``, truncated to 63 bits. Every (grid point, trial index)
    pair gets an independent, collision-resistant stream; nothing depends
    on hash randomization, scheduling order, or worker count.
    """
    payload = json.dumps(
        [base_seed, scenario, sorted(params.items()), trial],
        sort_keys=True,
        default=str,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class ExperimentSpec:
    """One trial, declaratively: ``run_experiment(spec)`` executes it."""

    scenario: str
    params: Mapping[str, MetricValue] = field(default_factory=dict)
    seed: Optional[int] = None
    scheduler: Optional[str] = None

    def resolved(self) -> "ExperimentSpec":
        """The spec with defaults filled in and params validated."""
        scn = get_scenario(self.scenario)
        if self.scheduler is not None and not scn.schedulable:
            raise ReproError(
                f"scenario {self.scenario!r} does not take a scheduler "
                f"(its spec records it as "
                f"{'deterministic' if scn.deterministic else 'self-scheduled'})"
            )
        return ExperimentSpec(
            self.scenario, scn.resolve(self.params), self.seed, self.scheduler
        )


@dataclass(frozen=True)
class SweepSpec:
    """A grid of experiments: param value lists × ``trials`` seeds.

    ``grid`` maps param names to candidate-value lists (unlisted params
    keep their defaults); ``trials`` runs each grid point that many times
    with seeds ``derive_seed(base_seed, scenario, point, t)`` for
    ``t = 0 .. trials-1``. Expansion order is the deterministic cartesian
    product in declared-parameter order, trials innermost.
    """

    scenario: str
    grid: Mapping[str, List[MetricValue]] = field(default_factory=dict)
    trials: int = 1
    base_seed: int = 0
    scheduler: Optional[str] = None

    def specs(self) -> Iterator[ExperimentSpec]:
        scn = get_scenario(self.scenario)
        if self.trials < 1:
            raise ReproError(f"sweep needs trials >= 1, got {self.trials}")
        unknown = set(self.grid) - {p.name for p in scn.params}
        if unknown:
            raise ReproError(
                f"sweep over unknown params {sorted(unknown)} "
                f"for scenario {self.scenario!r}"
            )
        empty = sorted(name for name, vals in self.grid.items() if not vals)
        if empty:
            raise ReproError(
                f"sweep axes {empty} have no values "
                f"(scenario {self.scenario!r})"
            )
        # Axes in declared-parameter order so expansion is deterministic.
        axes = [
            (p.name, [p.convert(v) for v in self.grid[p.name]])
            for p in scn.params
            if p.name in self.grid
        ]
        names = [name for name, _ in axes]
        for values in itertools.product(*(vals for _, vals in axes)):
            point: Dict[str, MetricValue] = scn.resolve(dict(zip(names, values)))
            for trial in range(self.trials):
                yield ExperimentSpec(
                    scenario=self.scenario,
                    params=point,
                    seed=derive_seed(self.base_seed, self.scenario, point, trial),
                    scheduler=self.scheduler,
                )

    def size(self) -> int:
        points = 1
        for values in self.grid.values():
            points *= len(values)  # an empty axis really is zero trials
        return points * self.trials
