"""The one result schema every scenario emits.

:class:`ExperimentResult` is the uniform record of one executed trial —
scenario, params, seed, scheduler, the normalized counters (events, raw
steps, protocol-delta evaluations), the :class:`StopReason`, wall time, a
scenario-specific JSON-safe ``metrics`` dict, and named ASCII ``renders``.
It round-trips losslessly through JSON (``to_json`` / ``from_json``), and
:func:`validate_result_dict` is the dependency-free schema check used by
``repro validate`` and the CI smoke job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.core.simulator import StopReason
from repro.errors import ReproError

#: Schema identifier embedded in every serialized result.
RESULT_SCHEMA = "repro.experiments.result/v1"

_OPTIONAL_INT_FIELDS = ("events", "raw_steps", "evaluations")


@dataclass
class ExperimentResult:
    """Outcome of one trial, in the shape shared by run, sweep and bench."""

    scenario: str
    params: Dict[str, Any]
    seed: Optional[int]
    scheduler: Optional[str]
    events: Optional[int]
    raw_steps: Optional[int]
    evaluations: Optional[int]
    stop_reason: Optional[StopReason]
    wall_time: float
    metrics: Dict[str, Any] = field(default_factory=dict)
    renders: Dict[str, str] = field(default_factory=dict)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": RESULT_SCHEMA,
            "scenario": self.scenario,
            "params": dict(self.params),
            "seed": self.seed,
            "scheduler": self.scheduler,
            "events": self.events,
            "raw_steps": self.raw_steps,
            "evaluations": self.evaluations,
            "stop_reason": None if self.stop_reason is None else self.stop_reason.value,
            "wall_time": self.wall_time,
            "metrics": dict(self.metrics),
            "renders": dict(self.renders),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        errors = validate_result_dict(data)
        if errors:
            raise ReproError(
                "not a valid experiment result: " + "; ".join(errors)
            )
        reason = data.get("stop_reason")
        return cls(
            scenario=data["scenario"],
            params=dict(data["params"]),
            seed=data["seed"],
            scheduler=data.get("scheduler"),
            events=data["events"],
            raw_steps=data["raw_steps"],
            evaluations=data["evaluations"],
            stop_reason=None if reason is None else StopReason(reason),
            wall_time=data["wall_time"],
            metrics=dict(data["metrics"]),
            renders=dict(data.get("renders", {})),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))

    # -- comparison -----------------------------------------------------

    def comparable(self) -> Dict[str, Any]:
        """Everything except wall time — the bit-reproducible payload.

        Two runs of the same spec must agree on this dict exactly,
        regardless of worker count or machine load.
        """
        data = self.to_dict()
        del data["wall_time"]
        return data


def validate_result_dict(data: Mapping[str, Any]) -> List[str]:
    """Schema check for one serialized result; returns human-readable
    problems (empty list = valid). Dependency-free on purpose: the CI
    smoke job must run on a bare interpreter."""
    errors: List[str] = []
    if not isinstance(data, Mapping):
        return [f"expected an object, got {type(data).__name__}"]
    # Presence first: everything from_dict indexes directly must exist, so
    # "validates" always implies "loads".
    required = (
        "scenario", "params", "seed", "events", "raw_steps", "evaluations",
        "wall_time", "metrics",
    )
    missing = [name for name in required if name not in data]
    if missing:
        return [f"missing field {name!r}" for name in missing]
    schema = data.get("schema", RESULT_SCHEMA)
    if schema != RESULT_SCHEMA:
        errors.append(f"schema is {schema!r}, expected {RESULT_SCHEMA!r}")
    if not isinstance(data.get("scenario"), str) or not data.get("scenario"):
        errors.append("scenario must be a non-empty string")
    if not isinstance(data.get("params"), Mapping):
        errors.append("params must be an object")
    seed = data.get("seed")
    if not (seed is None or (isinstance(seed, int) and not isinstance(seed, bool))):
        errors.append("seed must be an integer or null")
    sched = data.get("scheduler")
    if not (sched is None or isinstance(sched, str)):
        errors.append("scheduler must be a string or null")
    for name in _OPTIONAL_INT_FIELDS:
        value = data.get(name)
        if not (value is None or (isinstance(value, int) and not isinstance(value, bool))):
            errors.append(f"{name} must be an integer or null")
    reason = data.get("stop_reason")
    if reason is not None:
        try:
            StopReason(reason)
        except ValueError:
            errors.append(
                f"stop_reason {reason!r} not one of "
                f"{[r.value for r in StopReason]}"
            )
    wall = data.get("wall_time")
    if not isinstance(wall, (int, float)) or isinstance(wall, bool) or wall < 0:
        errors.append("wall_time must be a non-negative number")
    if not isinstance(data.get("metrics"), Mapping):
        errors.append("metrics must be an object")
    renders = data.get("renders", {})
    if not isinstance(renders, Mapping) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in renders.items()
    ):
        errors.append("renders must map strings to strings")
    return errors
