"""Content-addressed trial store: cached ``ExperimentResult`` records.

Every trial the sweep runner executes is fully identified by its resolved
spec — scenario name, resolved params, seed, scheduler kind — and is
bit-deterministic for that identity (per-trial seeds are themselves
SHA-256 of ``(base_seed, scenario, params, trial)``, and results are
identical for any worker count). Recomputing an identical trial is
therefore pure waste: :class:`TrialStore` keys stored results by the
SHA-256 of that identity (:func:`trial_key`) and serves them back on
resubmission, so ``run_sweep(cache=...)`` and the sweep service skip the
process pool entirely for cached trials.

Records follow the sign-then-validate-on-load idiom: each JSON file
carries a provenance stamp — the store schema version, the spec hash
(``key``), and a content ``digest`` over everything except ``wall_time``
— and :meth:`TrialStore.get` re-verifies all three *plus* the result
schema (:func:`validate_result_dict`) before serving. A corrupted, stale
or tampered record is rejected (counted in :attr:`TrialStore.rejected`)
and the trial is recomputed, never served.

Layout: ``<root>/<key[:2]>/<key>.json`` (two-level fan-out keeps
directories small at millions of trials); writes are atomic
(tempfile + ``os.replace``) so concurrent writers of the *same* key are
benign — both write identical bytes. The default root is
``~/.cache/repro/trials``, overridable per store or globally via the
``REPRO_CACHE_DIR`` environment variable.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.experiments.result import ExperimentResult, validate_result_dict
from repro.experiments.spec import ExperimentSpec

#: Schema identifier stamped into every stored trial record. Bumping it
#: invalidates every existing record at once (stale stamps are rejected
#: on load), which is exactly what a record-format change requires.
TRIAL_SCHEMA = "repro.experiments.trial/v1"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro`` — shared by the trial
    store (``trials/``) and the sweep service state (``service/``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


def trial_key(
    scenario: str,
    params: Mapping[str, Any],
    seed: Optional[int],
    scheduler: Optional[str],
) -> str:
    """The content address of one trial: SHA-256 hex of its identity.

    Canonical JSON over ``(scenario, sorted params, seed, scheduler)`` —
    the same canonicalization discipline as
    :func:`repro.experiments.spec.derive_seed`, so the key never depends
    on dict iteration order, hash randomization, or who computes it.
    """
    payload = json.dumps(
        [scenario, sorted(params.items()), seed, scheduler],
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def spec_key(spec: ExperimentSpec) -> str:
    """:func:`trial_key` of a (resolved) :class:`ExperimentSpec`."""
    return trial_key(spec.scenario, spec.params, spec.seed, spec.scheduler)


def result_digest(data: Mapping[str, Any]) -> str:
    """Content digest of a serialized result, excluding ``wall_time``.

    Wall time is the one field the determinism contract exempts (it
    varies run to run by definition), so it is the one field the stamp
    does not cover; every other byte of the record is signed.
    """
    body = {k: v for k, v in data.items() if k != "wall_time"}
    payload = json.dumps(body, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TrialStore:
    """Filesystem-backed content-addressed cache of trial results.

    ``get``/``put`` take *resolved* :class:`ExperimentSpec` objects (the
    runner and the service only ever hold resolved specs). Counters:
    ``hits`` (served from store), ``misses`` (no record), ``rejected``
    (record present but failed provenance verification — also counted as
    a miss, since the trial gets recomputed).
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root() / "trials"
        self.hits = 0
        self.misses = 0
        self.rejected = 0

    # -- addressing -----------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- read -----------------------------------------------------------

    def get(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        """The stored result for ``spec``, or ``None`` (miss / rejected).

        A served result passed every provenance check: record schema is
        current, the embedded result validates against the result schema,
        the spec hash recomputed *from the stored result's own fields*
        matches both the stamp and the requested spec, and the content
        digest matches. Anything less is treated as a miss and the
        caller recomputes.
        """
        key = spec_key(spec)
        path = self.path_for(key)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.rejected += 1
            self.misses += 1
            return None
        result = self._verify(record, key)
        if result is None:
            self.rejected += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    @staticmethod
    def _verify(record: Any, key: str) -> Optional[ExperimentResult]:
        """The load-time provenance check; ``None`` on any mismatch."""
        if not isinstance(record, Mapping):
            return None
        if record.get("schema") != TRIAL_SCHEMA:
            return None  # stale or foreign record format
        data = record.get("result")
        if not isinstance(data, Mapping) or validate_result_dict(data):
            return None
        # The stamp's spec hash must match the hash recomputed from the
        # stored result's own identity fields *and* the requested key:
        # a record whose identity was edited (or that was filed under
        # the wrong address) never serves.
        recomputed = trial_key(
            data["scenario"], data["params"], data["seed"], data.get("scheduler")
        )
        if recomputed != key or record.get("key") != key:
            return None
        if record.get("digest") != result_digest(data):
            return None  # payload tampered (metrics, counters, renders…)
        return ExperimentResult.from_dict(data)

    # -- write ----------------------------------------------------------

    def put(self, spec: ExperimentSpec, result: ExperimentResult) -> Path:
        """Persist ``result`` under ``spec``'s content address, atomically."""
        key = spec_key(spec)
        data = result.to_dict()
        record = {
            "schema": TRIAL_SCHEMA,
            "key": key,
            "digest": result_digest(data),
            "result": data,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(record, sort_keys=True) + "\n"
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # -- bookkeeping ----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "rejected": self.rejected}


def resolve_store(
    cache: Union[None, bool, str, Path, TrialStore]
) -> Optional[TrialStore]:
    """Normalize the ``cache=`` argument accepted by ``run_sweep``.

    ``None``/``False`` → no caching; ``True`` → a store at the default
    root; a path → a store rooted there; a :class:`TrialStore` → itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return TrialStore()
    if isinstance(cache, TrialStore):
        return cache
    return TrialStore(cache)
