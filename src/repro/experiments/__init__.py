"""repro.experiments — the declarative experiment layer.

One composable front door for every workload the library can run:

* :mod:`repro.experiments.registry` — the :class:`Scenario` catalogue
  (name, typed param schema, tags, capabilities, adapter callable);
* :mod:`repro.experiments.spec` — declarative :class:`ExperimentSpec` /
  :class:`SweepSpec` and the deterministic :func:`derive_seed` rule;
* :mod:`repro.experiments.result` — the uniform :class:`ExperimentResult`
  record with lossless JSON round-trip;
* :mod:`repro.experiments.runner` — :func:`run_experiment` and the
  process-parallel, bit-reproducible :func:`run_sweep` (with the
  ``cache=`` trial-store seam);
* :mod:`repro.experiments.store` — the content-addressed trial store:
  results keyed by the SHA-256 trial identity, provenance-verified on
  load, shared by ``run_sweep(cache=...)`` and the sweep service;
* :mod:`repro.experiments.service` — the long-running sweep daemon
  (``repro serve``) with its persistent job queue and NDJSON-streaming
  clients (imported on demand, not re-exported here);
* :mod:`repro.experiments.io` — shared JSON writers/validators, the
  benchmark history appender, and the scenario index behind
  ``repro list`` and ``EXPERIMENTS.md``.

The adapters themselves live next to the code they wrap
(``repro.<package>.scenarios``); importing this package registers all of
them. The execution engine underneath is ``repro.core.simulator``.
"""

from repro.experiments.registry import (
    Param,
    Scenario,
    ScenarioOutcome,
    all_scenarios,
    get_scenario,
    load_builtin_scenarios,
    register,
    scenario,
    scenario_names,
)
from repro.experiments.result import (
    RESULT_SCHEMA,
    ExperimentResult,
    validate_result_dict,
)
from repro.experiments.spec import ExperimentSpec, SweepSpec, derive_seed
from repro.experiments.runner import run_experiment, run_named, run_sweep
from repro.experiments.store import (
    TRIAL_SCHEMA,
    TrialStore,
    default_cache_root,
    spec_key,
    trial_key,
)
from repro.experiments.io import (
    HISTORY_SCHEMA,
    RESULTS_SCHEMA,
    append_history,
    describe_scenario,
    format_scenario_list,
    results_payload,
    validate_payload,
    write_bench_json,
    write_results_json,
)

__all__ = [
    "Param",
    "Scenario",
    "ScenarioOutcome",
    "ExperimentSpec",
    "SweepSpec",
    "ExperimentResult",
    "RESULT_SCHEMA",
    "RESULTS_SCHEMA",
    "TRIAL_SCHEMA",
    "HISTORY_SCHEMA",
    "TrialStore",
    "trial_key",
    "spec_key",
    "default_cache_root",
    "append_history",
    "register",
    "scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "load_builtin_scenarios",
    "derive_seed",
    "run_experiment",
    "run_named",
    "run_sweep",
    "results_payload",
    "write_results_json",
    "write_bench_json",
    "validate_payload",
    "validate_result_dict",
    "format_scenario_list",
    "describe_scenario",
]

# Register the built-in scenario adapters eagerly: every consumer of this
# package (CLI, runner workers, benchmarks, tests) needs the catalogue
# populated, and the adapter modules only touch packages the root
# ``repro`` package imports anyway.
load_builtin_scenarios()
